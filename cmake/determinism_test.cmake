# Determinism contract test, run via `cmake -P`: the same command must
# produce byte-identical stdout AND stderr for every --jobs value.
#
# Arguments (all -D):
#   BINARY  path to the executable under test
#   ARGS    semicolon-separated argument list (without --jobs)
#   JOBS    semicolon-separated --jobs values to compare (e.g. "1;2;8")
if(NOT DEFINED BINARY OR NOT DEFINED JOBS)
  message(FATAL_ERROR "determinism_test.cmake needs -DBINARY and -DJOBS")
endif()

set(have_reference FALSE)
foreach(jobs ${JOBS})
  execute_process(
    COMMAND ${BINARY} ${ARGS} --jobs ${jobs}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "'${BINARY}' failed with '${rc}' at --jobs ${jobs}.\nstderr:\n${err}")
  endif()
  if(NOT have_reference)
    set(have_reference TRUE)
    set(ref_jobs ${jobs})
    set(ref_out "${out}")
    set(ref_err "${err}")
  else()
    if(NOT out STREQUAL ref_out)
      message(FATAL_ERROR
          "stdout differs between --jobs ${ref_jobs} and --jobs ${jobs}")
    endif()
    if(NOT err STREQUAL ref_err)
      message(FATAL_ERROR
          "stderr differs between --jobs ${ref_jobs} and --jobs ${jobs}")
    endif()
  endif()
endforeach()
