# Determinism contract test, run via `cmake -P`: the same command must
# produce byte-identical stdout AND stderr for every --jobs value and for
# every value of an optional environment-variable cross (e.g. QFS_IR mode),
# all compared against one reference run.
#
# Arguments (all -D):
#   BINARY   path to the executable under test
#   ARGS     semicolon-separated argument list (without --jobs)
#   JOBS     semicolon-separated --jobs values to compare (e.g. "1;2;8")
#   MODE_VAR optional environment variable name to cross with JOBS
#   MODES    semicolon-separated values for MODE_VAR (e.g. "flat;legacy");
#            requires MODE_VAR
if(NOT DEFINED BINARY OR NOT DEFINED JOBS)
  message(FATAL_ERROR "determinism_test.cmake needs -DBINARY and -DJOBS")
endif()
if(DEFINED MODES AND NOT DEFINED MODE_VAR)
  message(FATAL_ERROR "determinism_test.cmake: -DMODES requires -DMODE_VAR")
endif()
if(NOT DEFINED MODES)
  set(MODES "_unset_")
endif()

set(have_reference FALSE)
foreach(mode ${MODES})
  if(mode STREQUAL "_unset_")
    set(env_prefix "")
    set(mode_desc "")
  else()
    set(env_prefix ${CMAKE_COMMAND} -E env ${MODE_VAR}=${mode})
    set(mode_desc " ${MODE_VAR}=${mode}")
  endif()
  foreach(jobs ${JOBS})
    execute_process(
      COMMAND ${env_prefix} ${BINARY} ${ARGS} --jobs ${jobs}
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
          "'${BINARY}' failed with '${rc}' at --jobs ${jobs}${mode_desc}."
          "\nstderr:\n${err}")
    endif()
    if(NOT have_reference)
      set(have_reference TRUE)
      set(ref_desc "--jobs ${jobs}${mode_desc}")
      set(ref_out "${out}")
      set(ref_err "${err}")
    else()
      if(NOT out STREQUAL ref_out)
        message(FATAL_ERROR
            "stdout differs between ${ref_desc} and --jobs ${jobs}${mode_desc}")
      endif()
      if(NOT err STREQUAL ref_err)
        message(FATAL_ERROR
            "stderr differs between ${ref_desc} and --jobs ${jobs}${mode_desc}")
      endif()
    endif()
  endforeach()
endforeach()
