# Exit-code/stderr contract test for qfsc, run via `cmake -P`.
#
# Arguments (all -D):
#   QFSC          path to the qfsc binary
#   ARGS          semicolon-separated argument list
#   EXPECT_EXIT   required exit code
#   EXPECT_STDERR regex that must match stderr
#   EXPECT_STDOUT optional regex that must match stdout (lint diagnostics)
#
# ctest's WILL_FAIL/PASS_REGULAR_EXPRESSION cannot express "this exact
# nonzero exit code AND this stderr text", which is precisely the CLI
# contract on invalid input — hence this script.
if(NOT DEFINED QFSC OR NOT DEFINED EXPECT_EXIT)
  message(FATAL_ERROR "contract_test.cmake needs -DQFSC and -DEXPECT_EXIT")
endif()

execute_process(
  COMMAND ${QFSC} ${ARGS}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(NOT rc EQUAL ${EXPECT_EXIT})
  message(FATAL_ERROR
      "qfsc exited with '${rc}', expected '${EXPECT_EXIT}'.\n"
      "stderr:\n${err}")
endif()

if(DEFINED EXPECT_STDERR AND NOT err MATCHES "${EXPECT_STDERR}")
  message(FATAL_ERROR
      "qfsc stderr does not match '${EXPECT_STDERR}'.\nstderr:\n${err}")
endif()

if(DEFINED EXPECT_STDOUT AND NOT out MATCHES "${EXPECT_STDOUT}")
  message(FATAL_ERROR
      "qfsc stdout does not match '${EXPECT_STDOUT}'.\nstdout:\n${out}")
endif()
