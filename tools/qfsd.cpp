// qfsd — the qfs compilation daemon.
//
// Serves service::CompileService over a Unix or loopback TCP socket:
// line-delimited CompileRequest JSON in, CompileResponse JSON out (see
// src/service/server.h for the wire protocol). One process-wide compile
// cache stays hot across every client, so a fleet of short-lived callers
// gets warm-cache latency without each paying the cold-start cost.
//
// With --worker-procs N the daemon runs compilations in N supervised child
// worker processes (this same binary re-exec'ed as `qfsd --worker`) instead
// of in-process threads: a compiler crash or hang then costs one worker —
// restarted with backoff, storm-limited by a circuit breaker — not the
// daemon and every in-flight request sharing its address space.
//
//   qfsd --listen unix:/tmp/qfsd.sock --workers 8 --cache-dir /var/qfs
//   qfsd --listen tcp:7717 --worker-procs 4
//   echo '{"op":"ping"}' | nc -U /tmp/qfsd.sock
#include <csignal>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "cache/cache.h"
#include "service/flags.h"
#include "service/server.h"
#include "support/strings.h"

namespace {

using namespace qfs;

void print_usage() {
  std::cout <<
      "usage: qfsd [options]\n"
      "\n"
      "options:\n"
      "  --listen <spec>   unix:<path> or tcp:<port> (loopback; port 0 =\n"
      "                    ephemeral)        (default unix:/tmp/qfsd-<pid>.sock)\n"
      "  --workers <n>     compile worker threads (0 = one per hardware\n"
      "                    thread)                               (default 0)\n"
      "  --queue <n>       max requests in flight before new ones are\n"
      "                    rejected with resource_exhausted      (default 64)\n"
      "  --cache-dir <d>   persist the shared compile cache under <d>\n"
      "                    (without it the cache is in-memory only)\n"
      "  --default-deadline-ms <x>\n"
      "                    deadline applied to requests that carry none\n"
      "                    (negative = unlimited)                (default -1)\n"
      "  --max-request-bytes <n>\n"
      "                    reject QASM sources larger than n     (default 8 MiB)\n"
      "\n"
      "crash isolation (supervised mode):\n"
      "  --worker-procs <n>\n"
      "                    run compilations in n supervised child processes\n"
      "                    instead of in-process threads         (default 0 = off)\n"
      "  --hang-timeout-ms <x>\n"
      "                    SIGKILL a worker silent this long on a request\n"
      "                    with no deadline of its own (negative disables)\n"
      "                                                          (default 30000)\n"
      "  --max-restarts <n>\n"
      "                    worker restarts tolerated per window before the\n"
      "                    circuit breaker sheds load            (default 8)\n"
      "  --restart-window-ms <x>\n"
      "                    sliding window for --max-restarts     (default 10000)\n"
      "  --enable-chaos    honour the test-only 'chaos' request field\n"
      "                    (hang/crash/exit fault injection in workers);\n"
      "                    never enable in production\n"
      "  --worker          internal: run as a supervised worker speaking the\n"
      "                    wire protocol on stdin/stdout\n"
      "  --help            this text\n"
      "\n"
      "Control ops (line-delimited JSON): {\"op\":\"ping\"} liveness,\n"
      "{\"op\":\"stats\"} counters, {\"op\":\"devices\"} the backend registry\n"
      "with parameter ranges, {\"op\":\"shutdown\"} graceful exit.\n"
      "The daemon exits on SIGINT/SIGTERM or a {\"op\":\"shutdown\"} request,\n"
      "draining in-flight compilations first.\n";
}

/// The listening socket, for the signal handler: shutdown(2) is
/// async-signal-safe and nudges the accept loop into a graceful stop.
volatile int g_listen_fd = -1;

void handle_signal(int) {
  int fd = g_listen_fd;
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

const std::vector<std::string>& known_flags() {
  static const std::vector<std::string> flags = {
      "--help",      "--listen",           "--workers",
      "--queue",     "--cache-dir",        "--default-deadline-ms",
      "--max-request-bytes",               "--worker-procs",
      "--hang-timeout-ms",                 "--max-restarts",
      "--restart-window-ms",               "--enable-chaos",
      "--worker",
  };
  return flags;
}

bool write_all(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    ssize_t n = ::write(fd, text.data() + sent, text.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// `qfsd --worker`: one request at a time off stdin, one response line to
/// stdout, exit 0 on EOF (the supervisor hanging up). Both fds are the
/// supervisor's socketpair end. The only state a worker owns is its
/// CompileService — a crash loses nothing the supervisor can't replay.
int run_worker(const service::ServiceConfig& service_config,
               bool enable_chaos) {
  std::signal(SIGPIPE, SIG_IGN);
  service::CompileService compile_service(service_config);
  std::string buffer;
  char chunk[64 * 1024];
  for (;;) {
    std::size_t nl;
    while ((nl = buffer.find('\n')) == std::string::npos) {
      ssize_t n = ::read(STDIN_FILENO, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return 0;
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    std::string line = buffer.substr(0, nl);
    buffer.erase(0, nl + 1);

    auto request = service::parse_request_line(line);
    std::string out;
    if (!request.is_ok()) {
      out = service::error_response_json(service::ErrorCode::kInvalidRequest,
                                         request.status().message())
                .to_string();
    } else {
      if (enable_chaos && !request.value().chaos.empty()) {
        // Fault injection for the chaos harness: simulate the three ways a
        // compiler backend dies on an adversarial circuit.
        const std::string& chaos = request.value().chaos;
        if (chaos == "hang") {
          for (;;) ::usleep(100 * 1000);  // wedge until the watchdog SIGKILLs
        } else if (chaos == "crash") {
          ::kill(::getpid(), SIGKILL);  // die as a segfault would: no unwind
        } else if (chaos == "exit") {
          ::_exit(3);  // die "cleanly" without answering
        }
      }
      out = service::response_to_json(compile_service.execute(request.value()))
                .to_string();
    }
    out.push_back('\n');
    if (!write_all(STDOUT_FILENO, out)) return 0;
  }
}

/// Path of this binary for re-exec as a worker: /proc/self/exe when the
/// kernel provides it, argv[0] otherwise.
std::string self_path(const char* argv0) {
  char buffer[4096];
  ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n > 0) {
    buffer[n] = '\0';
    return buffer;
  }
  return argv0;
}

}  // namespace

int main(int argc, char** argv) {
  service::ServerConfig config;
  config.listen = "unix:/tmp/qfsd-" + std::to_string(::getpid()) + ".sock";
  std::string cache_dir;
  bool worker_mode = false;
  int worker_procs = 0;
  int max_request_bytes = 0;  // 0 = default

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "qfsd: missing value for " << arg << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--listen") {
      config.listen = next();
    } else if (arg == "--workers") {
      if (!parse_int(next(), config.workers) || config.workers < 0) {
        std::cerr << "qfsd: bad --workers value '" << argv[i] << "'\n";
        return 1;
      }
    } else if (arg == "--queue") {
      if (!parse_int(next(), config.max_queue) || config.max_queue < 1) {
        std::cerr << "qfsd: bad --queue value '" << argv[i] << "'\n";
        return 1;
      }
    } else if (arg == "--cache-dir") {
      cache_dir = next();
    } else if (arg == "--default-deadline-ms") {
      if (!parse_double(next(), config.default_deadline_ms)) {
        std::cerr << "qfsd: bad --default-deadline-ms value '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else if (arg == "--max-request-bytes") {
      if (!parse_int(next(), max_request_bytes) || max_request_bytes < 1) {
        std::cerr << "qfsd: bad --max-request-bytes value '" << argv[i]
                  << "'\n";
        return 1;
      }
      config.service.max_source_bytes =
          static_cast<std::size_t>(max_request_bytes);
    } else if (arg == "--worker-procs") {
      if (!parse_int(next(), worker_procs) || worker_procs < 0) {
        std::cerr << "qfsd: bad --worker-procs value '" << argv[i] << "'\n";
        return 1;
      }
    } else if (arg == "--hang-timeout-ms") {
      if (!parse_double(next(), config.supervisor.hang_timeout_ms)) {
        std::cerr << "qfsd: bad --hang-timeout-ms value '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else if (arg == "--max-restarts") {
      if (!parse_int(next(), config.supervisor.breaker.max_restarts) ||
          config.supervisor.breaker.max_restarts < 1) {
        std::cerr << "qfsd: bad --max-restarts value '" << argv[i] << "'\n";
        return 1;
      }
    } else if (arg == "--restart-window-ms") {
      if (!parse_double(next(), config.supervisor.breaker.window_ms) ||
          config.supervisor.breaker.window_ms <= 0) {
        std::cerr << "qfsd: bad --restart-window-ms value '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else if (arg == "--enable-chaos") {
      config.enable_chaos = true;
    } else if (arg == "--worker") {
      worker_mode = true;
    } else {
      std::cerr << "qfsd: unknown option '" << arg << "'";
      std::string suggestion = service::suggest_flag(arg, known_flags());
      if (!suggestion.empty()) {
        std::cerr << " (did you mean " << suggestion << "?)";
      }
      std::cerr << " (try --help)\n";
      return 1;
    }
  }

  if (worker_mode) {
    // A worker keeps its own in-memory cache tier; a shared --cache-dir
    // still gives the fleet one warm disk tier (the store is atomic and
    // corruption-tolerant, so concurrent worker processes are safe).
    cache::CacheConfig cache_config;
    cache_config.disk_dir = cache_dir;
    cache::CompileCache compile_cache(cache_config);
    config.service.cache = &compile_cache;
    return run_worker(config.service, config.enable_chaos);
  }

  // The shared cache is the daemon's reason to exist: always on, with a
  // disk tier when --cache-dir names one.
  cache::CacheConfig cache_config;
  cache_config.disk_dir = cache_dir;
  cache::CompileCache compile_cache(cache_config);
  config.service.cache = &compile_cache;

  if (worker_procs > 0) {
    config.supervisor.workers = worker_procs;
    config.supervisor.command = {self_path(argv[0]), "--worker"};
    if (!cache_dir.empty()) {
      config.supervisor.command.push_back("--cache-dir");
      config.supervisor.command.push_back(cache_dir);
    }
    if (max_request_bytes > 0) {
      config.supervisor.command.push_back("--max-request-bytes");
      config.supervisor.command.push_back(std::to_string(max_request_bytes));
    }
    if (config.enable_chaos) {
      config.supervisor.command.push_back("--enable-chaos");
    }
  } else if (config.enable_chaos) {
    std::cerr << "qfsd: --enable-chaos requires --worker-procs\n";
    return 1;
  }

  service::Server server(std::move(config));
  qfs::Status status = server.start();
  if (!status.is_ok()) {
    std::cerr << "qfsd: " << status.to_string() << "\n";
    return 1;
  }
  g_listen_fd = server.listen_fd();
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::cerr << "qfsd: listening on " << server.endpoint() << "\n";
  if (worker_procs > 0) {
    std::cerr << "qfsd: supervising " << worker_procs << " worker process"
              << (worker_procs == 1 ? "" : "es")
              << (server.supervisor() != nullptr &&
                          !server.supervisor()->worker_pids().empty()
                      ? ""
                      : " (starting)")
              << "\n";
  }

  server.wait();

  service::ServerCounters c = server.counters();
  std::cerr << "qfsd: served " << c.requests << " requests ("
            << c.ok << " ok, " << c.failed << " failed, " << c.rejected
            << " rejected, " << c.cache_hits << " cache hits) over "
            << c.connections << " connections\n";
  return 0;
}
