// qfsd — the qfs compilation daemon.
//
// Serves service::CompileService over a Unix or loopback TCP socket:
// line-delimited CompileRequest JSON in, CompileResponse JSON out (see
// src/service/server.h for the wire protocol). One process-wide compile
// cache stays hot across every client, so a fleet of short-lived callers
// gets warm-cache latency without each paying the cold-start cost.
//
//   qfsd --listen unix:/tmp/qfsd.sock --workers 8 --cache-dir /var/qfs
//   qfsd --listen tcp:7717
//   echo '{"op":"ping"}' | nc -U /tmp/qfsd.sock
#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "cache/cache.h"
#include "service/flags.h"
#include "service/server.h"
#include "support/strings.h"

namespace {

using namespace qfs;

void print_usage() {
  std::cout <<
      "usage: qfsd [options]\n"
      "\n"
      "options:\n"
      "  --listen <spec>   unix:<path> or tcp:<port> (loopback; port 0 =\n"
      "                    ephemeral)        (default unix:/tmp/qfsd-<pid>.sock)\n"
      "  --workers <n>     compile worker threads (0 = one per hardware\n"
      "                    thread)                               (default 0)\n"
      "  --queue <n>       max requests in flight before new ones are\n"
      "                    rejected with resource_exhausted      (default 64)\n"
      "  --cache-dir <d>   persist the shared compile cache under <d>\n"
      "                    (without it the cache is in-memory only)\n"
      "  --default-deadline-ms <x>\n"
      "                    deadline applied to requests that carry none\n"
      "                    (negative = unlimited)                (default -1)\n"
      "  --max-request-bytes <n>\n"
      "                    reject QASM sources larger than n     (default 8 MiB)\n"
      "  --help            this text\n"
      "\n"
      "The daemon exits on SIGINT/SIGTERM or a {\"op\":\"shutdown\"} request,\n"
      "draining in-flight compilations first.\n";
}

/// The listening socket, for the signal handler: shutdown(2) is
/// async-signal-safe and nudges the accept loop into a graceful stop.
volatile int g_listen_fd = -1;

void handle_signal(int) {
  int fd = g_listen_fd;
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

const std::vector<std::string>& known_flags() {
  static const std::vector<std::string> flags = {
      "--help",      "--listen",           "--workers",
      "--queue",     "--cache-dir",        "--default-deadline-ms",
      "--max-request-bytes",
  };
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  service::ServerConfig config;
  config.listen = "unix:/tmp/qfsd-" + std::to_string(::getpid()) + ".sock";
  std::string cache_dir;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "qfsd: missing value for " << arg << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--listen") {
      config.listen = next();
    } else if (arg == "--workers") {
      if (!parse_int(next(), config.workers) || config.workers < 0) {
        std::cerr << "qfsd: bad --workers value '" << argv[i] << "'\n";
        return 1;
      }
    } else if (arg == "--queue") {
      if (!parse_int(next(), config.max_queue) || config.max_queue < 1) {
        std::cerr << "qfsd: bad --queue value '" << argv[i] << "'\n";
        return 1;
      }
    } else if (arg == "--cache-dir") {
      cache_dir = next();
    } else if (arg == "--default-deadline-ms") {
      if (!parse_double(next(), config.default_deadline_ms)) {
        std::cerr << "qfsd: bad --default-deadline-ms value '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else if (arg == "--max-request-bytes") {
      int bytes = 0;
      if (!parse_int(next(), bytes) || bytes < 1) {
        std::cerr << "qfsd: bad --max-request-bytes value '" << argv[i]
                  << "'\n";
        return 1;
      }
      config.service.max_source_bytes = static_cast<std::size_t>(bytes);
    } else {
      std::cerr << "qfsd: unknown option '" << arg << "'";
      std::string suggestion = service::suggest_flag(arg, known_flags());
      if (!suggestion.empty()) {
        std::cerr << " (did you mean " << suggestion << "?)";
      }
      std::cerr << " (try --help)\n";
      return 1;
    }
  }

  // The shared cache is the daemon's reason to exist: always on, with a
  // disk tier when --cache-dir names one.
  cache::CacheConfig cache_config;
  cache_config.disk_dir = cache_dir;
  cache::CompileCache compile_cache(cache_config);
  config.service.cache = &compile_cache;

  service::Server server(std::move(config));
  qfs::Status status = server.start();
  if (!status.is_ok()) {
    std::cerr << "qfsd: " << status.to_string() << "\n";
    return 1;
  }
  g_listen_fd = server.listen_fd();
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::cerr << "qfsd: listening on " << server.endpoint() << "\n";

  server.wait();

  service::ServerCounters c = server.counters();
  std::cerr << "qfsd: served " << c.requests << " requests ("
            << c.ok << " ok, " << c.failed << " failed, " << c.rejected
            << " rejected, " << c.cache_hits << " cache hits) over "
            << c.connections << " connections\n";
  return 0;
}
