# Chaos contract: a seeded fault storm (worker SIGKILLs, hung-worker
# injections, hostile frames, mid-write disconnects) against a supervised
# daemon must lose zero accepted requests — every request gets exactly one
# well-formed response and the daemon never exits.  Afterwards, warm
# retried results must stay byte-identical to offline `qfsc --emit-json`.
#
# Expects: -DCHAOS=<qfsd_chaos> -DQFSC=<qfsc> -DQFSD=<qfsd>
#          -DLOADGEN=<qfsd_loadgen> -DINPUTS=<qasm;files> -DSEED=<n>
if(NOT DEFINED SEED)
  set(SEED 2022)
endif()

execute_process(
  COMMAND ${CHAOS} --spawn ${QFSD} --seed ${SEED}
          --clients 8 --requests 120 --worker-procs 2
          --deadline-ms 8000 --retries 4
          --kill-interval-ms 150 --chaos-fraction 0.15
          ${INPUTS}
  OUTPUT_VARIABLE chaos_out
  ERROR_VARIABLE chaos_err
  RESULT_VARIABLE chaos_rc)
message(STATUS "qfsd_chaos output:\n${chaos_out}")
if(NOT chaos_rc EQUAL 0)
  message(FATAL_ERROR
    "qfsd_chaos contract violated (exit ${chaos_rc}):\n"
    "${chaos_out}\n${chaos_err}")
endif()

# Byte-identity after chaos: a fresh supervised daemon (retries enabled,
# same worker count) must return metrics documents byte-identical to the
# offline compiler for every input.
foreach(input ${INPUTS})
  execute_process(
    COMMAND ${QFSC} --emit-json ${input}
    OUTPUT_VARIABLE offline_out
    ERROR_VARIABLE offline_err
    RESULT_VARIABLE offline_rc)
  if(NOT offline_rc EQUAL 0)
    message(FATAL_ERROR
      "qfsc failed on ${input} (exit ${offline_rc}):\n${offline_err}")
  endif()

  execute_process(
    COMMAND ${LOADGEN} --spawn ${QFSD}
            --spawn-arg --worker-procs --spawn-arg 2
            --retries 3 --once ${input}
    OUTPUT_VARIABLE daemon_out
    ERROR_VARIABLE daemon_err
    RESULT_VARIABLE daemon_rc)
  if(NOT daemon_rc EQUAL 0)
    message(FATAL_ERROR
      "supervised qfsd_loadgen --once failed on ${input} "
      "(exit ${daemon_rc}):\n${daemon_err}")
  endif()

  if(NOT offline_out STREQUAL daemon_out)
    message(FATAL_ERROR
      "supervised daemon metrics differ from offline qfsc for ${input}:\n"
      "--- qfsc ---\n${offline_out}\n--- daemon ---\n${daemon_out}")
  endif()
endforeach()
message(STATUS "chaos contract held; supervised outputs byte-identical")
