OPENQASM 2.0;
include "qelib1.inc";
// Seeded violation: QFS004 (qubit 2 is declared but never used).
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
