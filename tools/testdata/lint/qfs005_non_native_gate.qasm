OPENQASM 2.0;
include "qelib1.inc";
// Seeded violation: QFS005 under --verify --device line:6 (t is not in the
// surface-code primitive set; rz and cz are).
qreg q[2];
creg c[2];
rz(0.5) q[0];
cz q[0],q[1];
t q[0];
