OPENQASM 2.0;
include "qelib1.inc";
// Seeded violation: QFS003 (gate acts on an already-measured qubit).
// Qubit 1 stays unmeasured so measure-all (QFS008) does not also fire.
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
h q[0];
