OPENQASM 2.0;
include "qelib1.inc";
// Seeded violation: QFS100 (statement that does not parse).
qreg q[2];
creg c[2];
bananas q[0];
