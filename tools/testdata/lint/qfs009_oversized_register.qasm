OPENQASM 2.0;
include "qelib1.inc";
// Seeded violation: QFS009 under --verify --device line:4 (eight qubits on
// a four-qubit chip).
qreg q[8];
creg c[8];
rz(0.25) q[7];
