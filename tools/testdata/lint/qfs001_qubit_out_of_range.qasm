OPENQASM 2.0;
include "qelib1.inc";
// Seeded violation: QFS001 (qubit operand out of range).
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[5];
