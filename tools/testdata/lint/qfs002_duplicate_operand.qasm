OPENQASM 2.0;
include "qelib1.inc";
// Seeded violation: QFS002 (duplicate qubit operands on one gate).
qreg q[2];
creg c[2];
cx q[0],q[0];
