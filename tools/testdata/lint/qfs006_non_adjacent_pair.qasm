OPENQASM 2.0;
include "qelib1.inc";
// Seeded violation: QFS006 under --verify --device line:6 (qubits 0 and 3
// are not coupled on a line; the gate itself is native).
qreg q[4];
creg c[4];
cz q[0],q[1];
cz q[0],q[3];
