OPENQASM 2.0;
include "qelib1.inc";
// 3-qubit Toffoli sandwiched in Hadamards
qreg q[3];
creg c[3];
h q[0];
h q[1];
ccx q[0],q[1],q[2];
h q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
