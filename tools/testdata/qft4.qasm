OPENQASM 2.0;
include "qelib1.inc";
// 4-qubit quantum Fourier transform (no final swaps)
qreg q[4];
creg c[4];
h q[0];
cu1(1.570796326794897) q[1],q[0];
cu1(0.785398163397448) q[2],q[0];
cu1(0.392699081698724) q[3],q[0];
h q[1];
cu1(1.570796326794897) q[2],q[1];
cu1(0.785398163397448) q[3],q[1];
h q[2];
cu1(1.570796326794897) q[3],q[2];
h q[3];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
