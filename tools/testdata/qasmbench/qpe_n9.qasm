// circuit: qpe_n9
// Quantum phase estimation: counting register + eigenstate register, crz
// controlled evolutions and an inverse-QFT readout.
OPENQASM 2.0;
include "qelib1.inc";
qreg count[8];
qreg psi[1];
creg c[8];
x psi[0];
h count;
crz(pi/2) count[0],psi[0];
crz(pi/4) count[1],psi[0];
crz(pi/8) count[2],psi[0];
crz(pi/16) count[3],psi[0];
crz(pi/32) count[4],psi[0];
crz(pi/64) count[5],psi[0];
crz(pi/128) count[6],psi[0];
crz(pi/256) count[7],psi[0];
h count[7];
cu1(-pi/2) count[6],count[7];
h count[6];
cu1(-pi/4) count[5],count[7];
cu1(-pi/2) count[5],count[6];
h count[5];
cu1(-pi/8) count[4],count[7];
cu1(-pi/4) count[4],count[6];
cu1(-pi/2) count[4],count[5];
h count[4];
h count[3];
h count[2];
h count[1];
h count[0];
measure count -> c;
