// circuit: bell_n4
// Pairwise Bell states with u2 rotations (QASMBench idiom for h).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
u2(0,pi) q[0];
u2(0,pi) q[2];
cx q[0],q[1];
cx q[2],q[3];
barrier q;
measure q -> c;
