// circuit: bv_n8
// Bernstein-Vazirani with a separate ancilla register: two qregs.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[7];
qreg anc[1];
creg c[7];
x anc[0];
h q;
h anc[0];
cx q[0],anc[0];
cx q[2],anc[0];
cx q[3],anc[0];
cx q[5],anc[0];
h q;
measure q -> c;
