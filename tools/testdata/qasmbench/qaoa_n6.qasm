// circuit: qaoa_n6
// One QAOA layer on a ring: rzz cost unitaries + rx mixer.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
creg c[6];
h q;
rzz(0.7853981633974483) q[0],q[1];
rzz(0.7853981633974483) q[1],q[2];
rzz(0.7853981633974483) q[2],q[3];
rzz(0.7853981633974483) q[3],q[4];
rzz(0.7853981633974483) q[4],q[5];
rzz(0.7853981633974483) q[5],q[0];
rx(1.5707963267948966) q;
measure q -> c;
