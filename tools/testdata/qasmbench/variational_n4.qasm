// circuit: variational_n4
// Hardware-efficient variational ansatz: u2/u3 layers, rxx entanglers, cu3.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
u2(0.2,1.1) q[0];
u3(0.4,0.3,0.9) q[1];
u2(0.5,0.7) q[2];
u3(1.2,0.1,0.4) q[3];
rxx(0.37) q[0],q[1];
rxx(0.37) q[2],q[3];
cu3(0.6,0.2,0.8) q[1],q[2];
crz(0.45) q[0],q[3];
u3(0.8,0.5,0.2) q[0];
u2(1.4,0.6) q[1];
u3(0.3,0.7,1.0) q[2];
u2(0.9,0.8) q[3];
measure q -> c;
