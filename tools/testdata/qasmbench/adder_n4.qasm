// circuit: adder_n4
// One-bit full adder (QASMBench small): Toffoli-chain carry logic.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
x q[0];
x q[1];
h q[3];
cx q[2],q[3];
t q[0];
t q[1];
t q[2];
tdg q[3];
cx q[0],q[1];
cx q[2],q[3];
cx q[3],q[0];
tdg q[1];
cx q[0],q[1];
tdg q[0];
tdg q[1];
t q[3];
cx q[2],q[3];
cx q[3],q[0];
cx q[0],q[1];
h q[3];
measure q[2] -> c[2];
measure q[3] -> c[3];
