// circuit: wstate_n3
// W-state preparation (QASMBench small). Exercises u3/cu3-style rotations.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
u3(-1.91063,0,0) q[0];
ch q[0],q[1];
ccx q[0],q[1],q[2];
x q[0];
x q[1];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
