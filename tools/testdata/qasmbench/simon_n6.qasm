// circuit: simon_n6
// Simon's algorithm oracle for s=110 across input/output registers.
OPENQASM 2.0;
include "qelib1.inc";
qreg qin[3];
qreg qout[3];
creg c[3];
h qin;
cx qin[0],qout[0];
cx qin[1],qout[1];
cx qin[2],qout[2];
cx qin[0],qout[1];
cx qin[0],qout[2];
h qin;
measure qin[0] -> c[0];
measure qin[1] -> c[1];
measure qin[2] -> c[2];
