// circuit: fredkin_n3
// Controlled-swap built from Toffoli (QASMBench small).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
x q[0];
x q[1];
cx q[2],q[1];
ccx q[0],q[1],q[2];
cx q[2],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
