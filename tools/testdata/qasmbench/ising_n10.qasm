// circuit: ising_n10
// Transverse-field Ising chain Trotter step: rzz couplings + rx field.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[10];
creg c[10];
h q;
rzz(0.3) q[0],q[1];
rzz(0.3) q[1],q[2];
rzz(0.3) q[2],q[3];
rzz(0.3) q[3],q[4];
rzz(0.3) q[4],q[5];
rzz(0.3) q[5],q[6];
rzz(0.3) q[6],q[7];
rzz(0.3) q[7],q[8];
rzz(0.3) q[8],q[9];
rx(0.6) q;
rzz(0.3) q[0],q[1];
rzz(0.3) q[1],q[2];
rzz(0.3) q[2],q[3];
rzz(0.3) q[3],q[4];
rzz(0.3) q[4],q[5];
rzz(0.3) q[5],q[6];
rzz(0.3) q[6],q[7];
rzz(0.3) q[7],q[8];
rzz(0.3) q[8],q[9];
rx(0.6) q;
measure q -> c;
