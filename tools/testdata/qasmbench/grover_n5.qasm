// circuit: grover_n5
// One Grover iteration with a ccz marking oracle over a 4-qubit search
// space plus a work qubit.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
qreg work[1];
creg c[4];
h q;
ccz q[0],q[1],q[2];
ccx q[2],q[3],work[0];
cz work[0],q[0];
ccx q[2],q[3],work[0];
h q;
x q;
ccz q[0],q[1],q[2];
ch q[2],q[3];
x q;
h q;
measure q -> c;
