// qfsd_chaos — seeded chaos harness for the supervised qfsd daemon.
//
// Spawns a private chaos-enabled daemon (`qfsd --worker-procs N
// --enable-chaos`), drives mixed compile load from concurrent retrying
// clients, and injects every fault class the supervision layer claims to
// survive, all from one deterministic seed:
//
//   - SIGKILL of random live workers (pids read off the stats op), on a
//     fixed cadence, for the whole run;
//   - hung-worker simulation (requests carrying chaos:"hang" under a
//     deadline, so the per-request watchdog must fire);
//   - worker crash/exit mid-request (chaos:"crash" / chaos:"exit");
//   - malformed frames (non-JSON garbage, JSON non-objects, unknown
//     fields) and oversized frames (sources past --max-request-bytes);
//   - mid-write client disconnects (half a request line, then close).
//
// And asserts the contract from the issue:
//
//   1. every accepted request gets exactly one well-formed typed response
//      (the load clients' transport never drops: connect failures and
//      dead connections must be zero, because worker death is not
//      connection death);
//   2. clean requests (no chaos field) that complete `ok` are
//      byte-consistent: one mapped_digest per circuit across the whole
//      run, crashes and retries included;
//   3. the daemon never exits: it still answers stats after the storm and
//      acknowledges a graceful shutdown with exit code 0;
//   4. the chaos actually happened (worker crashes and restarts observed
//      in the supervision counters) — a harness that quietly stops
//      injecting faults must fail, not pass.
//
//   qfsd_chaos --spawn ./qfsd --seed 2022 --requests 160 --clients 8 a.qasm
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/api.h"
#include "service/client.h"
#include "service/flags.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/strings.h"

namespace {

using namespace qfs;

struct ChaosOptions {
  std::string spawn;            // qfsd binary (required)
  int clients = 8;
  int requests = 160;           // total clean+chaotic compile requests
  int worker_procs = 2;
  std::uint64_t seed = 2022;
  double deadline_ms = 8000.0;  // per request; bounds hung-worker recovery
  int retries = 4;
  double kill_interval_ms = 150.0;  // cadence of the worker-killer thread
  double chaos_fraction = 0.15;     // share of requests carrying a directive
  std::vector<std::string> qasm_paths;
};

qfs::StatusOr<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return qfs::invalid_argument("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct ChaosStats {
  long long ok = 0;
  long long chaos_sent = 0;        ///< requests carrying a chaos directive
  long long typed_failures = 0;    ///< non-ok typed responses (expected)
  long long transport_losses = 0;  ///< INVARIANT: must stay 0 (load clients)
  long long digest_conflicts = 0;  ///< INVARIANT: must stay 0
  long long missing_digests = 0;   ///< ok response without a digest
  long long retries = 0;
};

/// One load client: its slice of the request schedule through a retrying
/// Client. Chaos directives ride on seeded request indices.
void run_load_client(const std::string& endpoint, const ChaosOptions& opts,
                     const std::vector<service::CompileRequest>& requests,
                     ChaosStats& stats,
                     std::map<std::string, std::string>& digest_by_source,
                     std::mutex& mu) {
  service::RetryPolicy policy;
  policy.max_attempts = opts.retries;
  service::Client client(endpoint, policy);
  ChaosStats local;
  std::vector<std::pair<std::string, std::string>> digests;
  for (const service::CompileRequest& request : requests) {
    service::RetryStats retry_stats;
    service::CompileResponse response = client.call(request, &retry_stats);
    local.retries += retry_stats.retries;
    if (!request.chaos.empty()) ++local.chaos_sent;
    // Invariant 1: the daemon must never drop a load-client connection —
    // worker death is the supervisor's problem, not the socket's. A
    // response synthesized after transport loss counts against this even
    // though the client still returned a typed answer.
    if (retry_stats.connect_failures > 0 ||
        retry_stats.dropped_connections > 0) {
      ++local.transport_losses;
    }
    if (response.ok()) {
      ++local.ok;
      if (request.chaos.empty()) {
        if (response.mapped_digest.empty()) {
          ++local.missing_digests;
        } else {
          digests.emplace_back(request.source_name, response.mapped_digest);
        }
      }
    } else {
      ++local.typed_failures;
    }
  }
  std::lock_guard<std::mutex> lock(mu);
  stats.ok += local.ok;
  stats.chaos_sent += local.chaos_sent;
  stats.typed_failures += local.typed_failures;
  stats.transport_losses += local.transport_losses;
  stats.missing_digests += local.missing_digests;
  stats.retries += local.retries;
  // Invariant 2: byte-identical results per circuit, chaos or not.
  for (const auto& [source, digest] : digests) {
    auto [it, inserted] = digest_by_source.emplace(source, digest);
    if (!inserted && it->second != digest) ++stats.digest_conflicts;
  }
}

/// The worker killer: every interval, read the live worker pids off the
/// stats op and SIGKILL one chosen by the seeded Rng.
void run_worker_killer(const std::string& endpoint, double interval_ms,
                       std::uint64_t seed, std::atomic<bool>& stop,
                       std::atomic<long long>& kills) {
  Rng rng(derive_seed(seed, /*stream=*/2));
  service::Client client(endpoint);
  while (!stop.load()) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(interval_ms));
    auto stats = client.op("stats");
    if (!stats.is_ok() || !stats.value().is_object()) continue;
    const JsonValue* sup = stats.value().find("supervisor");
    if (sup == nullptr || !sup->is_object()) continue;
    const JsonValue* pids = sup->find("worker_pids");
    if (pids == nullptr || !pids->is_array() || pids->size() == 0) continue;
    std::size_t which =
        static_cast<std::size_t>(rng.uniform_index(pids->size()));
    if (pids->at(which).is_integer()) {
      pid_t pid = static_cast<pid_t>(pids->at(which).as_integer());
      if (pid > 1 && ::kill(pid, SIGKILL) == 0) ++kills;
    }
  }
}

/// The vandal: malformed frames, oversized frames and mid-write
/// disconnects on throwaway connections. Every complete frame must earn a
/// typed error response; half frames may simply be dropped with the
/// connection, but the daemon must survive all of it.
void run_vandal(const std::string& endpoint, std::uint64_t seed, int rounds,
                long long& typed_errors, long long& frames_sent) {
  Rng rng(derive_seed(seed, /*stream=*/3));
  for (int round = 0; round < rounds; ++round) {
    std::string error;
    int fd = service::connect_endpoint(endpoint, error);
    if (fd < 0) continue;  // transient; the stats probe at the end decides
    int which = rng.uniform_int(0, 3);
    if (which == 0) {
      // Non-JSON garbage and a JSON non-object: one typed error each.
      for (const char* frame : {"this is not json\n", "[1,2,3]\n"}) {
        if (!service::send_all(fd, frame)) break;
        ++frames_sent;
        std::string line;
        if (service::LineReader(fd).next(line) &&
            line.find("\"code\"") != std::string::npos) {
          ++typed_errors;
        }
      }
    } else if (which == 1) {
      // Unknown field: typed invalid_request with a did-you-mean.
      if (service::send_all(fd, "{\"qasm\":\"x\",\"devcie\":\"s17\"}\n")) {
        ++frames_sent;
        std::string line;
        if (service::LineReader(fd).next(line) &&
            line.find("invalid_request") != std::string::npos) {
          ++typed_errors;
        }
      }
    } else if (which == 2) {
      // Oversized source (past --max-request-bytes): typed
      // resource_exhausted, connection stays up.
      std::string big(96 * 1024, 'x');
      std::string frame = "{\"qasm\":\"" + big + "\"}\n";
      if (service::send_all(fd, frame)) {
        ++frames_sent;
        std::string line;
        if (service::LineReader(fd).next(line) &&
            line.find("resource_exhausted") != std::string::npos) {
          ++typed_errors;
        }
      }
    } else {
      // Mid-write disconnect: half a request line, then hang up. No
      // response owed; the daemon just must not die (SIGPIPE hardening).
      service::send_all(fd, "{\"qasm\":\"OPENQASM 2.0; include \\\"qel");
    }
    ::close(fd);
  }
}

void print_usage() {
  std::cout <<
      "usage: qfsd_chaos --spawn <qfsd-binary> [options] input.qasm [...]\n"
      "\n"
      "options:\n"
      "  --spawn <qfsd>        qfsd binary to run supervised + chaos-enabled\n"
      "  --clients <n>         concurrent load clients          (default 8)\n"
      "  --requests <n>        total compile requests           (default 160)\n"
      "  --worker-procs <n>    supervised worker processes      (default 2)\n"
      "  --seed <s>            master seed for every fault draw (default 2022)\n"
      "  --deadline-ms <x>     per-request deadline             (default 8000)\n"
      "  --retries <n>         client attempts per request      (default 4)\n"
      "  --kill-interval-ms <x>  worker SIGKILL cadence         (default 150)\n"
      "  --chaos-fraction <f>  share of requests carrying a chaos directive\n"
      "                        (hang/crash/exit)                (default 0.15)\n"
      "  --help                this text\n";
}

const std::vector<std::string>& known_chaos_flags() {
  static const std::vector<std::string> flags = {
      "--help",        "--spawn",       "--clients",
      "--requests",    "--worker-procs", "--seed",
      "--deadline-ms", "--retries",     "--kill-interval-ms",
      "--chaos-fraction",
  };
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  ChaosOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "qfsd_chaos: missing value for " << arg << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--spawn") {
      opts.spawn = next();
    } else if (arg == "--clients") {
      if (!parse_int(next(), opts.clients) || opts.clients < 1) {
        std::cerr << "qfsd_chaos: bad --clients value '" << argv[i] << "'\n";
        return 1;
      }
    } else if (arg == "--requests") {
      if (!parse_int(next(), opts.requests) || opts.requests < 1) {
        std::cerr << "qfsd_chaos: bad --requests value '" << argv[i] << "'\n";
        return 1;
      }
    } else if (arg == "--worker-procs") {
      if (!parse_int(next(), opts.worker_procs) || opts.worker_procs < 1) {
        std::cerr << "qfsd_chaos: bad --worker-procs value '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else if (arg == "--seed") {
      int seed = 0;
      if (!parse_int(next(), seed) || seed < 0) {
        std::cerr << "qfsd_chaos: bad --seed value '" << argv[i] << "'\n";
        return 1;
      }
      opts.seed = static_cast<std::uint64_t>(seed);
    } else if (arg == "--deadline-ms") {
      if (!parse_double(next(), opts.deadline_ms) || opts.deadline_ms <= 0) {
        std::cerr << "qfsd_chaos: bad --deadline-ms value '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else if (arg == "--retries") {
      if (!parse_int(next(), opts.retries) || opts.retries < 1) {
        std::cerr << "qfsd_chaos: bad --retries value '" << argv[i] << "'\n";
        return 1;
      }
    } else if (arg == "--kill-interval-ms") {
      if (!parse_double(next(), opts.kill_interval_ms) ||
          opts.kill_interval_ms <= 0) {
        std::cerr << "qfsd_chaos: bad --kill-interval-ms value '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else if (arg == "--chaos-fraction") {
      if (!parse_double(next(), opts.chaos_fraction) ||
          opts.chaos_fraction < 0 || opts.chaos_fraction > 1) {
        std::cerr << "qfsd_chaos: bad --chaos-fraction value '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "qfsd_chaos: unknown option '" << arg << "'";
      std::string suggestion = service::suggest_flag(arg, known_chaos_flags());
      if (!suggestion.empty()) {
        std::cerr << " (did you mean " << suggestion << "?)";
      }
      std::cerr << " (try --help)\n";
      return 1;
    } else {
      opts.qasm_paths.push_back(arg);
    }
  }
  if (opts.spawn.empty() || opts.qasm_paths.empty()) {
    std::cerr << "qfsd_chaos: need --spawn and at least one input circuit "
                 "(try --help)\n";
    return 1;
  }

  std::vector<std::string> sources;
  for (const std::string& path : opts.qasm_paths) {
    auto source = read_file(path);
    if (!source.is_ok()) {
      std::cerr << "qfsd_chaos: " << source.status().message() << "\n";
      return 1;
    }
    sources.push_back(std::move(source).value());
  }

  // A chaos-enabled supervised daemon with a small request-size cap so the
  // vandal's oversized frames are rejected fast, and a tight restart
  // window so the kill storm exercises the breaker.
  service::SpawnedDaemon daemon;
  std::string error;
  if (!service::spawn_daemon(
          opts.spawn,
          {"--worker-procs", std::to_string(opts.worker_procs),
           "--enable-chaos", "--max-request-bytes", "65536"},
          daemon, error)) {
    std::cerr << "qfsd_chaos: " << error << "\n";
    return 1;
  }

  // Build the seeded request schedule: clean compiles with a deterministic
  // sprinkling of hang/crash/exit directives.
  Rng schedule_rng(derive_seed(opts.seed, /*stream=*/1));
  const std::vector<std::string> directives = {"hang", "crash", "exit"};
  std::vector<std::vector<service::CompileRequest>> per_client(
      static_cast<std::size_t>(opts.clients));
  for (int i = 0; i < opts.requests; ++i) {
    std::size_t which = static_cast<std::size_t>(i) % sources.size();
    service::CompileRequest request;
    request.id = "c" + std::to_string(i);
    request.qasm = sources[which];
    request.source_name = opts.qasm_paths[which];
    request.options.compute_latency = true;
    request.deadline_ms = opts.deadline_ms;
    if (schedule_rng.bernoulli(opts.chaos_fraction)) {
      request.chaos = directives[static_cast<std::size_t>(
          schedule_rng.uniform_index(directives.size()))];
    }
    per_client[static_cast<std::size_t>(i) %
               static_cast<std::size_t>(opts.clients)]
        .push_back(std::move(request));
  }

  ChaosStats stats;
  std::map<std::string, std::string> digest_by_source;
  std::mutex mu;
  std::atomic<bool> stop_killer{false};
  std::atomic<long long> kills{0};
  long long vandal_typed_errors = 0;
  long long vandal_frames = 0;

  // Pre-storm warm-up: one clean compile per circuit while nothing is
  // injecting faults yet. These must all succeed — pinning the ok>0 side of
  // the contract even if the storm then brownouts every remaining request —
  // and they seed the digest table the storm's results must stay
  // byte-identical with.
  std::vector<service::CompileRequest> warmup;
  for (std::size_t which = 0; which < sources.size(); ++which) {
    service::CompileRequest request;
    request.id = "w" + std::to_string(which);
    request.qasm = sources[which];
    request.source_name = opts.qasm_paths[which];
    request.options.compute_latency = true;
    request.deadline_ms = opts.deadline_ms;
    warmup.push_back(std::move(request));
  }
  ChaosStats warm_stats;
  run_load_client(daemon.endpoint, opts, warmup, warm_stats,
                  digest_by_source, mu);

  std::thread killer([&] {
    run_worker_killer(daemon.endpoint, opts.kill_interval_ms, opts.seed,
                      stop_killer, kills);
  });
  std::thread vandal([&] {
    run_vandal(daemon.endpoint, opts.seed, /*rounds=*/24,
               vandal_typed_errors, vandal_frames);
  });
  std::vector<std::thread> clients;
  clients.reserve(per_client.size());
  for (const auto& slice : per_client) {
    clients.emplace_back([&, &slice = slice] {
      run_load_client(daemon.endpoint, opts, slice, stats, digest_by_source,
                      mu);
    });
  }
  for (std::thread& t : clients) t.join();
  stop_killer.store(true);
  killer.join();
  vandal.join();

  // Invariant 3: the daemon is still alive and answering after the storm.
  service::Client probe(daemon.endpoint);
  auto final_stats = probe.op("stats");
  bool daemon_alive = final_stats.is_ok() && final_stats.value().is_object();
  long long crashes = 0, restarts = 0, hung_killed = 0, breaker_trips = 0,
            shed = 0;
  if (daemon_alive) {
    const JsonValue* sup = final_stats.value().find("supervisor");
    if (sup != nullptr && sup->is_object()) {
      auto count = [&sup](const char* key) -> long long {
        const JsonValue* v = sup->find(key);
        return v != nullptr && v->is_integer() ? v->as_integer() : 0;
      };
      crashes = count("crashes");
      restarts = count("restarts");
      hung_killed = count("hung_killed");
      breaker_trips = count("breaker_trips");
      shed = count("shed");
    }
  }
  probe.disconnect();
  int daemon_rc = service::stop_daemon(daemon);

  long long answered = stats.ok + stats.typed_failures;
  std::cerr << "qfsd_chaos: warm-up " << warm_stats.ok << "/"
            << warmup.size() << " ok\n"
            << "qfsd_chaos: " << answered << "/" << opts.requests
            << " requests answered (" << stats.ok << " ok, "
            << stats.typed_failures << " typed failures), "
            << stats.chaos_sent << " chaos directives, " << stats.retries
            << " client retries\n"
            << "qfsd_chaos: " << kills.load() << " worker SIGKILLs, "
            << crashes << " crashes, " << hung_killed << " hung-killed, "
            << restarts << " restarts, " << breaker_trips
            << " breaker trips, " << shed << " shed\n"
            << "qfsd_chaos: vandal sent " << vandal_frames
            << " bad frames, " << vandal_typed_errors
            << " answered with typed errors\n";

  bool violated = false;
  auto check = [&violated](bool ok, const std::string& what) {
    if (!ok) {
      std::cerr << "qfsd_chaos: INVARIANT VIOLATED: " << what << "\n";
      violated = true;
    }
  };
  check(answered == opts.requests,
        "every accepted request gets exactly one response (" +
            std::to_string(answered) + "/" + std::to_string(opts.requests) +
            ")");
  check(stats.transport_losses == 0,
        "load-client connections must survive worker death (" +
            std::to_string(stats.transport_losses) + " transport losses)");
  check(stats.digest_conflicts == 0,
        "ok results must be byte-consistent per circuit (" +
            std::to_string(stats.digest_conflicts) + " digest conflicts)");
  check(stats.missing_digests == 0,
        "ok results must carry a mapped digest (" +
            std::to_string(stats.missing_digests) + " missing)");
  // The warm-up ran with no faults in flight: anything short of all-ok
  // there is a real service bug, not storm collateral. (Storm-phase ok
  // counts are load-dependent and deliberately not an invariant — a full
  // brownout under a saturated machine is typed, answered, and correct.)
  check(warm_stats.ok == static_cast<long long>(warmup.size()) &&
            warm_stats.transport_losses == 0,
        "pre-storm warm-up compiles all complete ok (" +
            std::to_string(warm_stats.ok) + "/" +
            std::to_string(warmup.size()) + ")");
  check(vandal_typed_errors == vandal_frames,
        "every complete malformed frame earns a typed error (" +
            std::to_string(vandal_typed_errors) + "/" +
            std::to_string(vandal_frames) + ")");
  check(daemon_alive, "daemon answers stats after the storm");
  check(daemon_rc == 0, "daemon exits 0 on graceful shutdown (got " +
                            std::to_string(daemon_rc) + ")");
  check(kills.load() > 0 || stats.chaos_sent > 0,
        "chaos was actually injected");
  check(crashes + hung_killed > 0,
        "worker deaths were actually observed by the supervisor");
  check(restarts > 0, "the supervisor actually restarted workers");

  if (violated) return 1;
  std::cerr << "qfsd_chaos: all invariants held\n";
  return 0;
}
