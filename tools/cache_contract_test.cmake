# Compilation-cache contract test for qfsc, run via `cmake -P`.
#
# Arguments (all -D):
#   QFSC       path to the qfsc binary
#   INPUTS     semicolon-separated QASM inputs for a --jobs batch compile
#   WORK_DIR   scratch directory for the cache
#
# The contract, end to end through the CLI:
#   1. cold-then-warm `qfsc --jobs 4 --cache-dir` produces byte-identical
#      stdout and exit code 0 both times,
#   2. the warm run reports > 0 hits and 0 misses (--cache-stats JSON),
#   3. truncating a stored entry does not break anything: qfsc still exits 0
#      (the entry is a recorded miss and gets rewritten).
if(NOT DEFINED QFSC OR NOT DEFINED INPUTS OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
      "cache_contract_test.cmake needs -DQFSC, -DINPUTS and -DWORK_DIR")
endif()

set(cache_dir ${WORK_DIR}/cache)
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(compile_args
    --device surface17 --placer degree-match --router lookahead
    --emit-qasm --emit-json --jobs 4 --cache-dir ${cache_dir})

# 1. Cold run populates the cache.
execute_process(
  COMMAND ${QFSC} ${compile_args} ${INPUTS}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE cold_out
  ERROR_VARIABLE cold_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cold cache run failed (${rc}):\n${cold_err}")
endif()

# 2. Warm run must be byte-identical on stdout.
execute_process(
  COMMAND ${QFSC} ${compile_args} ${INPUTS}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE warm_out
  ERROR_VARIABLE warm_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm cache run failed (${rc}):\n${warm_err}")
endif()
if(NOT cold_out STREQUAL warm_out)
  message(FATAL_ERROR
      "warm-cache stdout differs from cold stdout.\n"
      "cold:\n${cold_out}\nwarm:\n${warm_out}")
endif()

# 3. A warm --cache-stats run reports hits and no misses. (The stats JSON
# goes to stdout, so this run is separate from the byte-compare above.)
execute_process(
  COMMAND ${QFSC} ${compile_args} --cache-stats ${INPUTS}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stats_out
  ERROR_VARIABLE stats_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm --cache-stats run failed (${rc}):\n${stats_err}")
endif()
if(stats_out MATCHES "\"hits\": 0[^0-9]")
  message(FATAL_ERROR "warm run reported 0 cache hits:\n${stats_out}")
endif()
if(NOT stats_out MATCHES "\"misses\": 0[^0-9]")
  message(FATAL_ERROR "warm run reported misses:\n${stats_out}")
endif()

# 4. Corrupt every stored entry (truncate to 10 bytes): compilation must
# still succeed — a damaged entry is a miss, never an error.
file(GLOB_RECURSE entries ${cache_dir}/*.entry)
list(LENGTH entries n_entries)
if(n_entries EQUAL 0)
  message(FATAL_ERROR "no .entry files found under ${cache_dir}")
endif()
foreach(entry ${entries})
  file(READ ${entry} head LIMIT 10)
  file(WRITE ${entry} "${head}")
endforeach()
execute_process(
  COMMAND ${QFSC} ${compile_args} --cache-stats ${INPUTS}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE corrupt_out
  ERROR_VARIABLE corrupt_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
      "qfsc failed on a corrupted cache (${rc}):\n${corrupt_err}")
endif()
if(corrupt_out MATCHES "\"corrupt_entries\": 0[^0-9]")
  message(FATAL_ERROR
      "corrupted entries were not detected:\n${corrupt_out}")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
