// qfsd_loadgen — bursty concurrent load generator and wire client for qfsd.
//
// Three modes:
//
//   Load (default): N client connections fire a total request budget at the
//   daemon in pipelined bursts, match responses by id, and report p50/p99
//   latency, throughput and cache-hit counts — optionally as BENCH_service
//   JSON. Exit code 0 only when every connection survived and every
//   response came back ok.
//
//   --once <file>: send one compile request and print the response's
//   "metrics" document verbatim, pretty-printed. Byte-identical to
//   `qfsc --emit-json` stdout for the same flags — the cross-entrypoint
//   contract pinned by tools/service_contract_test.cmake.
//
//   --spawn <qfsd>: fork/exec a private daemon on a scratch Unix socket,
//   wait for it to answer ping, run the selected mode against it, then ask
//   it to shut down and reap it. Makes ctest self-contained: no daemon
//   orchestration outside this process.
//
//   qfsd_loadgen --spawn $(which qfsd) --clients 8 --requests 100 a.qasm b.qasm
//   qfsd_loadgen --connect unix:/tmp/qfsd.sock --clients 4 --requests 40 x.qasm
//   qfsd_loadgen --spawn ./qfsd --once qft4.qasm --device surface17
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/api.h"
#include "service/flags.h"
#include "support/json.h"
#include "support/status.h"
#include "support/strings.h"

namespace {

using namespace qfs;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// Wire client: connect, send lines, read framed responses.
// ---------------------------------------------------------------------------

int connect_endpoint(const std::string& spec, std::string& error) {
  if (starts_with(spec, "unix:")) {
    std::string path = spec.substr(5);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
      error = "bad unix socket path '" + path + "'";
      return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
      error = std::string("connect '") + path + "': " + std::strerror(errno);
      if (fd >= 0) ::close(fd);
      return -1;
    }
    return fd;
  }
  if (starts_with(spec, "tcp:")) {
    // Accept both "tcp:<port>" and "tcp:127.0.0.1:<port>" (the form a
    // daemon prints as its endpoint).
    std::string rest = spec.substr(4);
    std::string host = "127.0.0.1";
    std::size_t colon = rest.rfind(':');
    if (colon != std::string::npos) {
      host = rest.substr(0, colon);
      rest = rest.substr(colon + 1);
    }
    int port = 0;
    if (!parse_int(rest, port) || port < 1 || port > 65535) {
      error = "bad tcp port in '" + spec + "'";
      return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      error = "bad tcp host in '" + spec + "'";
      return -1;
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
      error = "connect '" + spec + "': " + std::strerror(errno);
      if (fd >= 0) ::close(fd);
      return -1;
    }
    return fd;
  }
  error = "bad endpoint '" + spec + "' (expected unix:<path> or tcp:<port>)";
  return -1;
}

bool send_all(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    ssize_t n =
        ::send(fd, text.data() + sent, text.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Buffered line reader over a socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Next '\n'-terminated line (without the newline); false on EOF/error.
  bool next(std::string& line) {
    for (;;) {
      std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[64 * 1024];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

// ---------------------------------------------------------------------------
// Daemon lifecycle (--spawn)
// ---------------------------------------------------------------------------

struct SpawnedDaemon {
  pid_t pid = -1;
  std::string endpoint;
};

bool spawn_daemon(const std::string& qfsd_path, SpawnedDaemon& out,
                  std::string& error) {
  std::string socket_path =
      "/tmp/qfsd-loadgen-" + std::to_string(::getpid()) + ".sock";
  out.endpoint = "unix:" + socket_path;
  pid_t pid = ::fork();
  if (pid < 0) {
    error = std::string("fork: ") + std::strerror(errno);
    return false;
  }
  if (pid == 0) {
    std::string listen = "unix:" + socket_path;
    ::execl(qfsd_path.c_str(), qfsd_path.c_str(), "--listen", listen.c_str(),
            static_cast<char*>(nullptr));
    std::cerr << "qfsd_loadgen: exec '" << qfsd_path
              << "': " << std::strerror(errno) << "\n";
    ::_exit(127);
  }
  out.pid = pid;
  // The daemon is up once it answers a ping on its socket.
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::string connect_error;
    int fd = connect_endpoint(out.endpoint, connect_error);
    if (fd >= 0) {
      bool ok = send_all(fd, "{\"op\":\"ping\"}\n");
      std::string line;
      LineReader reader(fd);
      ok = ok && reader.next(line) && line.find("\"ok\"") != std::string::npos;
      ::close(fd);
      if (ok) return true;
    }
    int wait_status = 0;
    if (::waitpid(pid, &wait_status, WNOHANG) == pid) {
      error = "daemon exited before accepting connections";
      return false;
    }
    ::usleep(25 * 1000);
  }
  error = "daemon never answered ping on " + out.endpoint;
  return false;
}

int stop_daemon(const SpawnedDaemon& daemon) {
  std::string error;
  int fd = connect_endpoint(daemon.endpoint, error);
  if (fd >= 0) {
    send_all(fd, "{\"op\":\"shutdown\"}\n");
    std::string line;
    LineReader(fd).next(line);  // wait for the ack so the drain has begun
    ::close(fd);
  } else {
    ::kill(daemon.pid, SIGTERM);
  }
  int wait_status = 0;
  ::waitpid(daemon.pid, &wait_status, 0);
  return WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : 128;
}

// ---------------------------------------------------------------------------
// Request construction
// ---------------------------------------------------------------------------

struct LoadgenOptions {
  std::string connect;          // existing endpoint ("" = need --spawn)
  std::string spawn;            // path to a qfsd binary to run privately
  std::string once_path;        // --once: single-request contract mode
  int clients = 8;
  int requests = 100;           // total across all clients
  int burst = 4;                // pipelined requests per write burst
  double deadline_ms = -1.0;
  bool require_warm_hits = false;
  std::string bench_json;       // "" = don't write
  service::RequestFlagValues shared;  // --device/--placer/--router/--seed
  std::vector<std::string> qasm_paths;
};

qfs::StatusOr<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return qfs::invalid_argument("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The compile request every mode sends: mirrors the qfsc defaults so the
/// daemon's answers are comparable with the offline tool.
service::CompileRequest base_request(const LoadgenOptions& opts,
                                     std::string qasm_text,
                                     const std::string& source_name) {
  service::CompileRequest request;
  request.qasm = std::move(qasm_text);
  request.source_name = source_name;
  request.device = opts.shared.device;
  request.options.placer = opts.shared.placer;
  request.options.router = opts.shared.router;
  request.options.compute_latency = true;
  request.seed = opts.shared.seed;
  request.deadline_ms = opts.deadline_ms;
  return request;
}

// ---------------------------------------------------------------------------
// Modes
// ---------------------------------------------------------------------------

/// --once: one request, metrics printed verbatim (the byte-identity mode).
int run_once(const LoadgenOptions& opts, const std::string& endpoint) {
  auto source = read_file(opts.once_path);
  if (!source.is_ok()) {
    std::cerr << "qfsd_loadgen: " << source.status().message() << "\n";
    return 1;
  }
  std::string error;
  int fd = connect_endpoint(endpoint, error);
  if (fd < 0) {
    std::cerr << "qfsd_loadgen: " << error << "\n";
    return 1;
  }
  service::CompileRequest request =
      base_request(opts, std::move(source).value(), opts.once_path);
  request.id = "once";
  bool sent = send_all(fd, service::request_to_json(request).to_string() + "\n");
  std::string line;
  bool got = sent && LineReader(fd).next(line);
  ::close(fd);
  if (!got) {
    std::cerr << "qfsd_loadgen: connection dropped before a response\n";
    return 1;
  }
  auto json = JsonValue::parse(line);
  if (!json.is_ok()) {
    std::cerr << "qfsd_loadgen: bad response: " << json.status().to_string()
              << "\n";
    return 1;
  }
  auto response = service::response_from_json(json.value());
  if (!response.is_ok()) {
    std::cerr << "qfsd_loadgen: bad response: "
              << response.status().to_string() << "\n";
    return 1;
  }
  if (!response.value().ok()) {
    std::cerr << "qfsd_loadgen: "
              << service::error_code_name(response.value().code) << ": "
              << response.value().error_message << "\n";
    return service::exit_code_for(response.value().code);
  }
  // Print the wire document verbatim (not a re-encoded struct): this is
  // exactly what `qfsc --emit-json` prints for the same compile.
  const JsonValue* metrics = json.value().find("metrics");
  if (metrics == nullptr) {
    std::cerr << "qfsd_loadgen: response carries no metrics\n";
    return 1;
  }
  std::cout << metrics->to_pretty_string() << "\n";
  return 0;
}

struct LoadStats {
  std::vector<double> latencies_ms;
  long long ok = 0;
  long long failed = 0;
  long long cache_hits = 0;
  long long dropped_connections = 0;
};

/// One client connection: its slice of the request budget, sent in
/// pipelined bursts, responses matched by id.
void run_client(const std::string& endpoint,
                const std::vector<service::CompileRequest>& requests,
                int burst, LoadStats& stats, std::mutex& stats_mu) {
  std::string error;
  int fd = connect_endpoint(endpoint, error);
  if (fd < 0) {
    std::lock_guard<std::mutex> lock(stats_mu);
    ++stats.dropped_connections;
    return;
  }
  LineReader reader(fd);
  LoadStats local;
  std::size_t next_to_send = 0;
  std::vector<std::pair<std::string, Clock::time_point>> inflight;
  bool alive = true;
  while (alive && (next_to_send < requests.size() || !inflight.empty())) {
    // Fire one burst...
    while (next_to_send < requests.size() &&
           inflight.size() < static_cast<std::size_t>(burst)) {
      const service::CompileRequest& request = requests[next_to_send];
      std::string line = service::request_to_json(request).to_string() + "\n";
      inflight.emplace_back(request.id, Clock::now());
      ++next_to_send;
      if (!send_all(fd, line)) {
        alive = false;
        ++local.dropped_connections;
        break;
      }
    }
    // ...then drain responses until the window has room again.
    while (alive && !inflight.empty() &&
           (inflight.size() >= static_cast<std::size_t>(burst) ||
            next_to_send >= requests.size())) {
      std::string line;
      if (!reader.next(line)) {
        alive = false;
        ++local.dropped_connections;
        break;
      }
      auto json = JsonValue::parse(line);
      std::string id;
      bool ok = false;
      bool cache_hit = false;
      if (json.is_ok() && json.value().is_object()) {
        const JsonValue* id_field = json.value().find("id");
        if (id_field != nullptr && id_field->is_string()) {
          id = id_field->as_string();
        }
        const JsonValue* ok_field = json.value().find("ok");
        ok = ok_field != nullptr && ok_field->is_bool() && ok_field->as_bool();
        const JsonValue* hit_field = json.value().find("cache_hit");
        cache_hit = hit_field != nullptr && hit_field->is_bool() &&
                    hit_field->as_bool();
      }
      auto it = std::find_if(inflight.begin(), inflight.end(),
                             [&id](const auto& entry) {
                               return entry.first == id;
                             });
      if (it == inflight.end()) {
        ++local.failed;  // unmatched response: count it, keep draining
        continue;
      }
      local.latencies_ms.push_back(ms_since(it->second));
      inflight.erase(it);
      if (ok) {
        ++local.ok;
      } else {
        ++local.failed;
      }
      if (cache_hit) ++local.cache_hits;
    }
  }
  local.failed += static_cast<long long>(inflight.size());
  ::close(fd);
  std::lock_guard<std::mutex> lock(stats_mu);
  stats.ok += local.ok;
  stats.failed += local.failed;
  stats.cache_hits += local.cache_hits;
  stats.dropped_connections += local.dropped_connections;
  stats.latencies_ms.insert(stats.latencies_ms.end(),
                            local.latencies_ms.begin(),
                            local.latencies_ms.end());
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

int run_load(const LoadgenOptions& opts, const std::string& endpoint) {
  // Materialise the request schedule up front: round-robin over the input
  // circuits, ids globally unique, identical options everywhere so repeat
  // compiles hit the daemon's shared cache.
  std::vector<std::string> sources;
  for (const std::string& path : opts.qasm_paths) {
    auto source = read_file(path);
    if (!source.is_ok()) {
      std::cerr << "qfsd_loadgen: " << source.status().message() << "\n";
      return 1;
    }
    sources.push_back(std::move(source).value());
  }
  std::vector<std::vector<service::CompileRequest>> per_client(
      static_cast<std::size_t>(opts.clients));
  for (int i = 0; i < opts.requests; ++i) {
    std::size_t which = static_cast<std::size_t>(i) % sources.size();
    service::CompileRequest request = base_request(
        opts, sources[which], opts.qasm_paths[which]);
    request.id = "r" + std::to_string(i);
    per_client[static_cast<std::size_t>(i) %
               static_cast<std::size_t>(opts.clients)]
        .push_back(std::move(request));
  }

  LoadStats stats;
  std::mutex stats_mu;
  Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(per_client.size());
  for (const auto& slice : per_client) {
    clients.emplace_back([&endpoint, &slice, &opts, &stats, &stats_mu] {
      run_client(endpoint, slice, opts.burst, stats, stats_mu);
    });
  }
  for (std::thread& t : clients) t.join();
  double wall_ms = ms_since(start);

  double p50 = percentile(stats.latencies_ms, 0.50);
  double p99 = percentile(stats.latencies_ms, 0.99);
  double throughput =
      wall_ms > 0.0 ? 1000.0 * static_cast<double>(stats.ok) / wall_ms : 0.0;

  std::cerr << "qfsd_loadgen: " << stats.ok << "/" << opts.requests
            << " ok, " << stats.failed << " failed, "
            << stats.dropped_connections << " dropped connections, "
            << stats.cache_hits << " cache hits\n"
            << "qfsd_loadgen: p50 " << format_double(p50, 3) << " ms, p99 "
            << format_double(p99, 3) << " ms, "
            << format_double(throughput, 1) << " req/s over "
            << format_double(wall_ms, 1) << " ms\n";

  if (!opts.bench_json.empty()) {
    JsonValue doc = JsonValue::object();
    doc.set("bench", JsonValue::string("service"))
        .set("clients", JsonValue::integer(opts.clients))
        .set("requests", JsonValue::integer(opts.requests))
        .set("burst", JsonValue::integer(opts.burst))
        .set("ok", JsonValue::integer(stats.ok))
        .set("failed", JsonValue::integer(stats.failed))
        .set("dropped_connections",
             JsonValue::integer(stats.dropped_connections))
        .set("cache_hits", JsonValue::integer(stats.cache_hits))
        .set("p50_ms", JsonValue::number(p50))
        .set("p99_ms", JsonValue::number(p99))
        .set("throughput_rps", JsonValue::number(throughput))
        .set("wall_ms", JsonValue::number(wall_ms));
    std::ofstream out(opts.bench_json);
    if (!out) {
      std::cerr << "qfsd_loadgen: cannot write '" << opts.bench_json << "'\n";
      return 1;
    }
    out << doc.to_pretty_string() << "\n";
  }

  if (stats.dropped_connections > 0 || stats.failed > 0 ||
      stats.ok != opts.requests) {
    return 1;
  }
  if (opts.require_warm_hits && stats.cache_hits == 0) {
    std::cerr << "qfsd_loadgen: expected warm cache hits, saw none\n";
    return 1;
  }
  return 0;
}

void print_usage() {
  std::cout <<
      "usage: qfsd_loadgen (--connect <endpoint> | --spawn <qfsd-binary>)\n"
      "                    [options] input.qasm [...]\n"
      "\n"
      "options:\n"
      "  --connect <spec>  endpoint of a running daemon (unix:<path> or\n"
      "                    tcp:<port>)\n"
      "  --spawn <qfsd>    run a private daemon for the duration\n"
      "  --once <file>     send one request; print its metrics JSON verbatim\n"
      "                    (byte-identical to `qfsc --emit-json`)\n"
      "  --clients <n>     concurrent client connections      (default 8)\n"
      "  --requests <n>    total requests across clients      (default 100)\n"
      "  --burst <n>       pipelined requests per connection  (default 4)\n"
      "  --deadline-ms <x> per-request deadline               (default none)\n"
      "  --require-warm-hits  fail unless the daemon reports cache hits\n"
      "  --bench-json <f>  write the load report as JSON to <f>\n"
      "  --device/--placer/--router/--seed  forwarded into every request\n"
      "  --help            this text\n";
}

const std::vector<std::string>& known_loadgen_flags() {
  static const std::vector<std::string> flags = {
      "--help",     "--connect", "--spawn",
      "--once",     "--clients", "--requests",
      "--burst",    "--deadline-ms", "--require-warm-hits",
      "--bench-json",
  };
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string shared_error;
    switch (service::consume_request_flag(argc, argv, i, opts.shared,
                                          shared_error)) {
      case service::FlagParse::kConsumed:
        continue;
      case service::FlagParse::kError:
        std::cerr << "qfsd_loadgen: " << shared_error << "\n";
        return 1;
      case service::FlagParse::kNotMine:
        break;
    }
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "qfsd_loadgen: missing value for " << arg << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--connect") {
      opts.connect = next();
    } else if (arg == "--spawn") {
      opts.spawn = next();
    } else if (arg == "--once") {
      opts.once_path = next();
    } else if (arg == "--clients") {
      if (!parse_int(next(), opts.clients) || opts.clients < 1) {
        std::cerr << "qfsd_loadgen: bad --clients value '" << argv[i] << "'\n";
        return 1;
      }
    } else if (arg == "--requests") {
      if (!parse_int(next(), opts.requests) || opts.requests < 1) {
        std::cerr << "qfsd_loadgen: bad --requests value '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else if (arg == "--burst") {
      if (!parse_int(next(), opts.burst) || opts.burst < 1) {
        std::cerr << "qfsd_loadgen: bad --burst value '" << argv[i] << "'\n";
        return 1;
      }
    } else if (arg == "--deadline-ms") {
      if (!parse_double(next(), opts.deadline_ms)) {
        std::cerr << "qfsd_loadgen: bad --deadline-ms value '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else if (arg == "--require-warm-hits") {
      opts.require_warm_hits = true;
    } else if (arg == "--bench-json") {
      opts.bench_json = next();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "qfsd_loadgen: unknown option '" << arg << "'";
      std::string suggestion =
          service::suggest_flag(arg, known_loadgen_flags());
      if (!suggestion.empty()) {
        std::cerr << " (did you mean " << suggestion << "?)";
      }
      std::cerr << " (try --help)\n";
      return 1;
    } else {
      opts.qasm_paths.push_back(arg);
    }
  }

  if (opts.once_path.empty() && opts.qasm_paths.empty()) {
    std::cerr << "qfsd_loadgen: no input circuits (try --help)\n";
    return 1;
  }
  if (opts.connect.empty() && opts.spawn.empty()) {
    std::cerr << "qfsd_loadgen: need --connect or --spawn (try --help)\n";
    return 1;
  }

  SpawnedDaemon daemon;
  std::string endpoint = opts.connect;
  if (!opts.spawn.empty()) {
    std::string error;
    if (!spawn_daemon(opts.spawn, daemon, error)) {
      std::cerr << "qfsd_loadgen: " << error << "\n";
      return 1;
    }
    endpoint = daemon.endpoint;
  }

  int rc = opts.once_path.empty() ? run_load(opts, endpoint)
                                  : run_once(opts, endpoint);

  if (daemon.pid > 0) {
    int daemon_rc = stop_daemon(daemon);
    if (daemon_rc != 0) {
      std::cerr << "qfsd_loadgen: daemon exited with code " << daemon_rc
                << "\n";
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}
