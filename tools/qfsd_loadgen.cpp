// qfsd_loadgen — load generator and wire client for qfsd.
//
// Modes:
//
//   Closed-loop load (default): N client connections fire a total request
//   budget at the daemon in pipelined bursts, match responses by id, and
//   report p50/p99 latency, throughput and cache-hit counts — optionally
//   as BENCH_service JSON. Self-throttled: a slow daemon slows the
//   clients, so overload never shows up in the tail. Exit code 0 only
//   when every connection survived and every response came back ok.
//
//   Open-loop load (--rate R): requests arrive on a fixed schedule of R
//   per second regardless of how fast the daemon answers, and latency is
//   measured from each request's *scheduled* arrival time (wrk2-style, so
//   queueing delay under overload is charged to the tail instead of being
//   silently absorbed — no coordinated omission). Overload shows up as
//   shed/deadline-expired counts, which are reported and recorded but are
//   not failures.
//
//   --once <file>: send one compile request and print the response's
//   "metrics" document verbatim, pretty-printed. Byte-identical to
//   `qfsc --emit-json` stdout for the same flags — the cross-entrypoint
//   contract pinned by tools/service_contract_test.cmake.
//
//   --spawn <qfsd>: fork/exec a private daemon on a scratch Unix socket
//   (forwarding every --spawn-arg), run the selected mode against it, then
//   ask it to shut down and reap it. Makes ctest self-contained.
//
//   qfsd_loadgen --spawn $(which qfsd) --clients 8 --requests 100 a.qasm
//   qfsd_loadgen --spawn ./qfsd --spawn-arg --worker-procs --spawn-arg 2 \
//                --rate 200 --requests 400 --retries 3 a.qasm
//   qfsd_loadgen --connect unix:/tmp/qfsd.sock --once qft4.qasm
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/api.h"
#include "service/client.h"
#include "service/flags.h"
#include "stats/descriptive.h"
#include "support/json.h"
#include "support/status.h"
#include "support/strings.h"
#include "support/timer.h"

namespace {

using namespace qfs;
using Clock = qfs::MonotonicClock;

// ---------------------------------------------------------------------------
// Options and request construction
// ---------------------------------------------------------------------------

struct LoadgenOptions {
  std::string connect;          // existing endpoint ("" = need --spawn)
  std::string spawn;            // path to a qfsd binary to run privately
  std::vector<std::string> spawn_args;  // forwarded to the spawned daemon
  std::string once_path;        // --once: single-request contract mode
  int clients = 8;
  int requests = 100;           // total across all clients
  int burst = 4;                // closed-loop: pipelined requests per burst
  double rate = 0.0;            // > 0: open-loop arrivals per second
  int retries = 1;              // client attempts per request (1 = no retry)
  double deadline_ms = -1.0;
  bool require_warm_hits = false;
  std::string bench_json;       // "" = don't write
  service::RequestFlagValues shared;  // --device/--placer/--router/--seed
  std::vector<std::string> qasm_paths;
};

qfs::StatusOr<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return qfs::invalid_argument("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The compile request every mode sends: mirrors the qfsc defaults so the
/// daemon's answers are comparable with the offline tool.
service::CompileRequest base_request(const LoadgenOptions& opts,
                                     std::string qasm_text,
                                     const std::string& source_name) {
  service::CompileRequest request;
  request.qasm = std::move(qasm_text);
  request.source_name = source_name;
  request.device = opts.shared.device;
  request.options.placer = opts.shared.placer;
  request.options.router = opts.shared.router;
  request.options.compute_latency = true;
  request.seed = opts.shared.seed;
  request.deadline_ms = opts.deadline_ms;
  return request;
}

service::RetryPolicy retry_policy(const LoadgenOptions& opts) {
  service::RetryPolicy policy;
  policy.max_attempts = opts.retries;
  return policy;
}

// ---------------------------------------------------------------------------
// Server-side stats surfacing (supervision counters)
// ---------------------------------------------------------------------------

/// Fetch {"op":"stats"} and print/collect the supervision counters the PR's
/// satellite asks for. Returns the raw stats doc (null JsonValue on error).
JsonValue fetch_stats(const std::string& endpoint) {
  service::Client client(endpoint);
  auto stats = client.op("stats");
  if (!stats.is_ok()) return JsonValue::null();
  return std::move(stats).value();
}

void report_server_stats(const JsonValue& stats) {
  if (!stats.is_object()) return;
  const JsonValue* server = stats.find("server");
  if (server != nullptr && server->is_object()) {
    const JsonValue* retries = server->find("retries_observed");
    if (retries != nullptr && retries->is_integer()) {
      std::cerr << "qfsd_loadgen: server observed " << retries->as_integer()
                << " retried requests\n";
    }
  }
  const JsonValue* sup = stats.find("supervisor");
  if (sup != nullptr && sup->is_object()) {
    auto count = [&sup](const char* key) -> long long {
      const JsonValue* v = sup->find(key);
      return v != nullptr && v->is_integer() ? v->as_integer() : 0;
    };
    std::cerr << "qfsd_loadgen: supervisor: " << count("restarts")
              << " worker restarts (" << count("crashes") << " crashes, "
              << count("hung_killed") << " hung-killed), "
              << count("breaker_trips") << " breaker trips, "
              << count("shed") << " requests shed\n";
  }
}

// ---------------------------------------------------------------------------
// --once (byte-identity mode)
// ---------------------------------------------------------------------------

int run_once(const LoadgenOptions& opts, const std::string& endpoint) {
  auto source = read_file(opts.once_path);
  if (!source.is_ok()) {
    std::cerr << "qfsd_loadgen: " << source.status().message() << "\n";
    return 1;
  }
  service::CompileRequest request =
      base_request(opts, std::move(source).value(), opts.once_path);
  request.id = "once";
  service::Client client(endpoint, retry_policy(opts));
  service::RetryStats retry_stats;
  service::CompileResponse response = client.call(request, &retry_stats);
  if (client.last_response_line().empty()) {
    std::cerr << "qfsd_loadgen: connection dropped before a response\n";
    return 1;
  }
  if (!response.ok()) {
    std::cerr << "qfsd_loadgen: " << service::error_code_name(response.code)
              << ": " << response.error_message << "\n";
    return service::exit_code_for(response.code);
  }
  // Print the wire document verbatim (not a re-encoded struct): this is
  // exactly what `qfsc --emit-json` prints for the same compile.
  auto json = JsonValue::parse(client.last_response_line());
  const JsonValue* metrics =
      json.is_ok() && json.value().is_object() ? json.value().find("metrics")
                                               : nullptr;
  if (metrics == nullptr) {
    std::cerr << "qfsd_loadgen: response carries no metrics\n";
    return 1;
  }
  std::cout << metrics->to_pretty_string() << "\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Load statistics
// ---------------------------------------------------------------------------

struct LoadStats {
  std::vector<double> latencies_ms;
  long long ok = 0;
  long long failed = 0;           ///< every non-ok response
  long long shed = 0;             ///< ...of which resource_exhausted
  long long deadline_expired = 0; ///< ...of which deadline_exceeded
  long long cache_hits = 0;
  long long retries = 0;          ///< client-side retry attempts
  long long dropped_connections = 0;
};

void merge_into(LoadStats& stats, std::mutex& mu, LoadStats local) {
  std::lock_guard<std::mutex> lock(mu);
  stats.ok += local.ok;
  stats.failed += local.failed;
  stats.shed += local.shed;
  stats.deadline_expired += local.deadline_expired;
  stats.cache_hits += local.cache_hits;
  stats.retries += local.retries;
  stats.dropped_connections += local.dropped_connections;
  stats.latencies_ms.insert(stats.latencies_ms.end(),
                            local.latencies_ms.begin(),
                            local.latencies_ms.end());
}

void count_response(LoadStats& local, const service::CompileResponse& resp) {
  if (resp.ok()) {
    ++local.ok;
  } else {
    ++local.failed;
    if (resp.code == service::ErrorCode::kResourceExhausted) ++local.shed;
    if (resp.code == service::ErrorCode::kDeadlineExceeded) {
      ++local.deadline_expired;
    }
  }
  if (resp.cache_hit) ++local.cache_hits;
}

// Percentile semantics live in one shared implementation
// (stats::percentile_nearest_rank): empty-safe, exact at p=0/p=1, no
// round-half-up index excursion for small sample counts.
double percentile(const std::vector<double>& values, double p) {
  return stats::percentile_nearest_rank(values, p);
}

// ---------------------------------------------------------------------------
// Closed-loop mode (pipelined bursts, self-throttled)
// ---------------------------------------------------------------------------

/// One client connection: its slice of the request budget, sent in
/// pipelined bursts, responses matched by id. Raw sockets rather than the
/// retrying Client: pipelining needs out-of-order completion, and the
/// closed-loop contract ("every request answered ok") wants failures
/// surfaced, not retried away.
void run_client_closed(const std::string& endpoint,
                       const std::vector<service::CompileRequest>& requests,
                       int burst, LoadStats& stats, std::mutex& stats_mu) {
  std::string error;
  int fd = service::connect_endpoint(endpoint, error);
  if (fd < 0) {
    std::lock_guard<std::mutex> lock(stats_mu);
    ++stats.dropped_connections;
    return;
  }
  service::LineReader reader(fd);
  LoadStats local;
  std::size_t next_to_send = 0;
  std::vector<std::pair<std::string, Clock::time_point>> inflight;
  bool alive = true;
  while (alive && (next_to_send < requests.size() || !inflight.empty())) {
    // Fire one burst...
    while (next_to_send < requests.size() &&
           inflight.size() < static_cast<std::size_t>(burst)) {
      const service::CompileRequest& request = requests[next_to_send];
      std::string line = service::request_to_json(request).to_string() + "\n";
      inflight.emplace_back(request.id, Clock::now());
      ++next_to_send;
      if (!service::send_all(fd, line)) {
        alive = false;
        ++local.dropped_connections;
        break;
      }
    }
    // ...then drain responses until the window has room again.
    while (alive && !inflight.empty() &&
           (inflight.size() >= static_cast<std::size_t>(burst) ||
            next_to_send >= requests.size())) {
      std::string line;
      if (!reader.next(line)) {
        alive = false;
        ++local.dropped_connections;
        break;
      }
      auto json = JsonValue::parse(line);
      auto decoded =
          json.is_ok() && json.value().is_object()
              ? service::response_from_json(json.value())
              : qfs::StatusOr<service::CompileResponse>(
                    qfs::parse_error("malformed response line"));
      if (!decoded.is_ok()) {
        ++local.failed;  // unframed garbage: count it, keep draining
        continue;
      }
      const service::CompileResponse& resp = decoded.value();
      auto it = std::find_if(inflight.begin(), inflight.end(),
                             [&resp](const auto& entry) {
                               return entry.first == resp.id;
                             });
      if (it == inflight.end()) {
        ++local.failed;  // unmatched response: count it, keep draining
        continue;
      }
      local.latencies_ms.push_back(ms_since(it->second));
      inflight.erase(it);
      count_response(local, resp);
    }
  }
  local.failed += static_cast<long long>(inflight.size());
  ::close(fd);
  merge_into(stats, stats_mu, std::move(local));
}

// ---------------------------------------------------------------------------
// Open-loop mode (fixed arrival rate)
// ---------------------------------------------------------------------------

/// One open-loop client thread: its interleaved slice of the global
/// arrival schedule, one blocking (retrying) call per scheduled request.
/// Latency runs from the scheduled arrival, so time spent waiting behind
/// an overloaded daemon counts against the tail.
void run_client_open(const std::string& endpoint,
                     const std::vector<service::CompileRequest>& requests,
                     const std::vector<double>& scheduled_ms,
                     Clock::time_point start,
                     const service::RetryPolicy& policy, LoadStats& stats,
                     std::mutex& stats_mu) {
  service::Client client(endpoint, policy);
  LoadStats local;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    double wait_ms = scheduled_ms[i] - ms_since(start);
    if (wait_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(wait_ms));
    }
    service::RetryStats retry_stats;
    service::CompileResponse response =
        client.call(requests[i], &retry_stats);
    local.latencies_ms.push_back(ms_since(start) - scheduled_ms[i]);
    local.retries += retry_stats.retries;
    local.dropped_connections +=
        retry_stats.connect_failures + retry_stats.dropped_connections;
    count_response(local, response);
  }
  merge_into(stats, stats_mu, std::move(local));
}

// ---------------------------------------------------------------------------
// Load driver (both modes)
// ---------------------------------------------------------------------------

int run_load(const LoadgenOptions& opts, const std::string& endpoint) {
  // Materialise the request schedule up front: round-robin over the input
  // circuits, ids globally unique, identical options everywhere so repeat
  // compiles hit the daemon's shared cache.
  std::vector<std::string> sources;
  for (const std::string& path : opts.qasm_paths) {
    auto source = read_file(path);
    if (!source.is_ok()) {
      std::cerr << "qfsd_loadgen: " << source.status().message() << "\n";
      return 1;
    }
    sources.push_back(std::move(source).value());
  }
  const bool open_loop = opts.rate > 0.0;
  std::vector<std::vector<service::CompileRequest>> per_client(
      static_cast<std::size_t>(opts.clients));
  std::vector<std::vector<double>> per_client_schedule(
      static_cast<std::size_t>(opts.clients));
  for (int i = 0; i < opts.requests; ++i) {
    std::size_t which = static_cast<std::size_t>(i) % sources.size();
    service::CompileRequest request = base_request(
        opts, sources[which], opts.qasm_paths[which]);
    request.id = "r" + std::to_string(i);
    std::size_t slot = static_cast<std::size_t>(i) %
                       static_cast<std::size_t>(opts.clients);
    per_client[slot].push_back(std::move(request));
    if (open_loop) {
      // Deterministic fixed-rate arrivals: request i is due at i/rate.
      per_client_schedule[slot].push_back(1000.0 * static_cast<double>(i) /
                                          opts.rate);
    }
  }

  LoadStats stats;
  std::mutex stats_mu;
  service::RetryPolicy policy = retry_policy(opts);
  Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(per_client.size());
  for (std::size_t c = 0; c < per_client.size(); ++c) {
    clients.emplace_back([&, c] {
      if (open_loop) {
        run_client_open(endpoint, per_client[c], per_client_schedule[c],
                        start, policy, stats, stats_mu);
      } else {
        run_client_closed(endpoint, per_client[c], opts.burst, stats,
                          stats_mu);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  double wall_ms = ms_since(start);

  double p50 = percentile(stats.latencies_ms, 0.50);
  double p99 = percentile(stats.latencies_ms, 0.99);
  double throughput =
      wall_ms > 0.0 ? 1000.0 * static_cast<double>(stats.ok) / wall_ms : 0.0;

  std::cerr << "qfsd_loadgen: " << (open_loop ? "open-loop @" : "closed-loop")
            << (open_loop ? " " + format_double(opts.rate, 1) + " req/s"
                          : std::string())
            << ": " << stats.ok << "/" << opts.requests << " ok, "
            << stats.failed << " failed (" << stats.shed << " shed, "
            << stats.deadline_expired << " deadline), "
            << stats.dropped_connections << " dropped connections, "
            << stats.retries << " retries, " << stats.cache_hits
            << " cache hits\n"
            << "qfsd_loadgen: p50 " << format_double(p50, 3) << " ms, p99 "
            << format_double(p99, 3) << " ms, "
            << format_double(throughput, 1) << " req/s over "
            << format_double(wall_ms, 1) << " ms\n";

  JsonValue server_stats = fetch_stats(endpoint);
  report_server_stats(server_stats);

  if (!opts.bench_json.empty()) {
    JsonValue doc = JsonValue::object();
    doc.set("bench", JsonValue::string("service"))
        .set("mode", JsonValue::string(open_loop ? "open" : "closed"))
        .set("clients", JsonValue::integer(opts.clients))
        .set("requests", JsonValue::integer(opts.requests))
        .set("burst", JsonValue::integer(opts.burst))
        .set("rate_rps", JsonValue::number(opts.rate))
        .set("ok", JsonValue::integer(stats.ok))
        .set("failed", JsonValue::integer(stats.failed))
        .set("shed", JsonValue::integer(stats.shed))
        .set("deadline_expired",
             JsonValue::integer(stats.deadline_expired))
        .set("retries", JsonValue::integer(stats.retries))
        .set("dropped_connections",
             JsonValue::integer(stats.dropped_connections))
        .set("cache_hits", JsonValue::integer(stats.cache_hits))
        .set("p50_ms", JsonValue::number(p50))
        .set("p99_ms", JsonValue::number(p99))
        .set("throughput_rps", JsonValue::number(throughput))
        .set("wall_ms", JsonValue::number(wall_ms));
    if (server_stats.is_object()) {
      const JsonValue* sup = server_stats.find("supervisor");
      if (sup != nullptr && sup->is_object()) {
        JsonValue copy = *sup;
        doc.set("supervisor", std::move(copy));
      }
    }
    std::ofstream out(opts.bench_json);
    if (!out) {
      std::cerr << "qfsd_loadgen: cannot write '" << opts.bench_json << "'\n";
      return 1;
    }
    out << doc.to_pretty_string() << "\n";
  }

  if (open_loop) {
    // Under deliberate overload sheds and expired deadlines are the signal
    // being measured, not a failure; hard failures and transport losses
    // still are.
    long long hard_failed =
        stats.failed - stats.shed - stats.deadline_expired;
    if (stats.dropped_connections > 0 || hard_failed > 0 || stats.ok == 0) {
      return 1;
    }
  } else {
    if (stats.dropped_connections > 0 || stats.failed > 0 ||
        stats.ok != opts.requests) {
      return 1;
    }
  }
  if (opts.require_warm_hits && stats.cache_hits == 0) {
    std::cerr << "qfsd_loadgen: expected warm cache hits, saw none\n";
    return 1;
  }
  return 0;
}

void print_usage() {
  std::cout <<
      "usage: qfsd_loadgen (--connect <endpoint> | --spawn <qfsd-binary>)\n"
      "                    [options] input.qasm [...]\n"
      "\n"
      "options:\n"
      "  --connect <spec>  endpoint of a running daemon (unix:<path> or\n"
      "                    tcp:<port>)\n"
      "  --spawn <qfsd>    run a private daemon for the duration\n"
      "  --spawn-arg <a>   extra argument for the spawned daemon\n"
      "                    (repeatable, e.g. --spawn-arg --worker-procs\n"
      "                    --spawn-arg 2)\n"
      "  --once <file>     send one request; print its metrics JSON verbatim\n"
      "                    (byte-identical to `qfsc --emit-json`)\n"
      "  --clients <n>     concurrent client connections      (default 8)\n"
      "  --requests <n>    total requests across clients      (default 100)\n"
      "  --burst <n>       closed-loop: pipelined requests per connection\n"
      "                    (default 4)\n"
      "  --rate <r>        open-loop mode: fixed arrival rate in requests\n"
      "                    per second; latency measured from the scheduled\n"
      "                    arrival (default 0 = closed loop)\n"
      "  --retries <n>     client attempts per request, retrying only\n"
      "                    connect/internal/resource_exhausted and never\n"
      "                    past the deadline                  (default 1)\n"
      "  --deadline-ms <x> per-request deadline               (default none)\n"
      "  --require-warm-hits  fail unless the daemon reports cache hits\n"
      "  --bench-json <f>  write the load report as JSON to <f>\n"
      "  --device/--placer/--router/--seed  forwarded into every request\n"
      "  --help            this text\n";
}

const std::vector<std::string>& known_loadgen_flags() {
  static const std::vector<std::string> flags = {
      "--help",     "--connect", "--spawn",   "--spawn-arg",
      "--once",     "--clients", "--requests",
      "--burst",    "--rate",    "--retries",
      "--deadline-ms", "--require-warm-hits",
      "--bench-json",
  };
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string shared_error;
    switch (service::consume_request_flag(argc, argv, i, opts.shared,
                                          shared_error)) {
      case service::FlagParse::kConsumed:
        continue;
      case service::FlagParse::kError:
        std::cerr << "qfsd_loadgen: " << shared_error << "\n";
        return 1;
      case service::FlagParse::kNotMine:
        break;
    }
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "qfsd_loadgen: missing value for " << arg << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--connect") {
      opts.connect = next();
    } else if (arg == "--spawn") {
      opts.spawn = next();
    } else if (arg == "--spawn-arg") {
      opts.spawn_args.push_back(next());
    } else if (arg == "--once") {
      opts.once_path = next();
    } else if (arg == "--clients") {
      if (!parse_int(next(), opts.clients) || opts.clients < 1) {
        std::cerr << "qfsd_loadgen: bad --clients value '" << argv[i] << "'\n";
        return 1;
      }
    } else if (arg == "--requests") {
      if (!parse_int(next(), opts.requests) || opts.requests < 1) {
        std::cerr << "qfsd_loadgen: bad --requests value '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else if (arg == "--burst") {
      if (!parse_int(next(), opts.burst) || opts.burst < 1) {
        std::cerr << "qfsd_loadgen: bad --burst value '" << argv[i] << "'\n";
        return 1;
      }
    } else if (arg == "--rate") {
      if (!parse_double(next(), opts.rate) || opts.rate < 0) {
        std::cerr << "qfsd_loadgen: bad --rate value '" << argv[i] << "'\n";
        return 1;
      }
    } else if (arg == "--retries") {
      if (!parse_int(next(), opts.retries) || opts.retries < 1) {
        std::cerr << "qfsd_loadgen: bad --retries value '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else if (arg == "--deadline-ms") {
      if (!parse_double(next(), opts.deadline_ms)) {
        std::cerr << "qfsd_loadgen: bad --deadline-ms value '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else if (arg == "--require-warm-hits") {
      opts.require_warm_hits = true;
    } else if (arg == "--bench-json") {
      opts.bench_json = next();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "qfsd_loadgen: unknown option '" << arg << "'";
      std::string suggestion =
          service::suggest_flag(arg, known_loadgen_flags());
      if (!suggestion.empty()) {
        std::cerr << " (did you mean " << suggestion << "?)";
      }
      std::cerr << " (try --help)\n";
      return 1;
    } else {
      opts.qasm_paths.push_back(arg);
    }
  }

  if (opts.once_path.empty() && opts.qasm_paths.empty()) {
    std::cerr << "qfsd_loadgen: no input circuits (try --help)\n";
    return 1;
  }
  if (opts.connect.empty() && opts.spawn.empty()) {
    std::cerr << "qfsd_loadgen: need --connect or --spawn (try --help)\n";
    return 1;
  }

  service::SpawnedDaemon daemon;
  std::string endpoint = opts.connect;
  if (!opts.spawn.empty()) {
    std::string error;
    if (!service::spawn_daemon(opts.spawn, opts.spawn_args, daemon, error)) {
      std::cerr << "qfsd_loadgen: " << error << "\n";
      return 1;
    }
    endpoint = daemon.endpoint;
  }

  int rc = opts.once_path.empty() ? run_load(opts, endpoint)
                                  : run_once(opts, endpoint);

  if (daemon.pid > 0) {
    int daemon_rc = service::stop_daemon(daemon);
    if (daemon_rc != 0) {
      std::cerr << "qfsd_loadgen: daemon exited with code " << daemon_rc
                << "\n";
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}
