# Cross-entrypoint byte-identity contract: for every input circuit, the
# daemon's response metrics (mapped-circuit digest included) must be
# byte-identical to offline `qfsc --emit-json` stdout with the same flags.
#
# Expects: -DQFSC=<qfsc> -DQFSD=<qfsd> -DLOADGEN=<qfsd_loadgen>
#          -DINPUTS=<qasm;files> [-DFLAGS=<shared;request;flags>]
#          [-DSPAWN_ARGS=<args;for;the;spawned;daemon>] (e.g. supervised
#          mode: "--worker-procs;2" — the identity contract must hold with
#          compilations running in child worker processes too)
if(NOT DEFINED FLAGS)
  set(FLAGS "")
endif()
set(spawn_arg_flags "")
if(DEFINED SPAWN_ARGS)
  foreach(spawn_arg ${SPAWN_ARGS})
    list(APPEND spawn_arg_flags --spawn-arg ${spawn_arg})
  endforeach()
endif()

foreach(input ${INPUTS})
  execute_process(
    COMMAND ${QFSC} --emit-json ${FLAGS} ${input}
    OUTPUT_VARIABLE offline_out
    ERROR_VARIABLE offline_err
    RESULT_VARIABLE offline_rc)
  if(NOT offline_rc EQUAL 0)
    message(FATAL_ERROR
      "qfsc failed on ${input} (exit ${offline_rc}):\n${offline_err}")
  endif()

  execute_process(
    COMMAND ${LOADGEN} --spawn ${QFSD} ${spawn_arg_flags} --once ${input}
            ${FLAGS}
    OUTPUT_VARIABLE daemon_out
    ERROR_VARIABLE daemon_err
    RESULT_VARIABLE daemon_rc)
  if(NOT daemon_rc EQUAL 0)
    message(FATAL_ERROR
      "qfsd_loadgen --once failed on ${input} (exit ${daemon_rc}):\n"
      "${daemon_err}")
  endif()

  if(NOT offline_out STREQUAL daemon_out)
    message(FATAL_ERROR
      "daemon metrics differ from offline qfsc for ${input}:\n"
      "--- qfsc ---\n${offline_out}\n--- daemon ---\n${daemon_out}")
  endif()
endforeach()
message(STATUS "daemon and offline outputs byte-identical for ${INPUTS}")
