// qfsc — the qfs command-line compiler driver.
//
// Reads OpenQASM 2.0 circuits (file arguments or stdin), compiles them for
// a chosen device, and prints a mapping report and optionally the compiled
// QASM, the timed ISA program, or the interaction-graph profile. Several
// input files are batch-compiled over --jobs worker threads with output
// bytes independent of the job count.
//
//   qfsc --device surface17 --placer annealing --router lookahead in.qasm
//   qfsc --device surface97 --jobs 8 --emit-qasm batch/*.qasm
//   cat in.qasm | qfsc --device line:20 --emit-qasm
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <memory>

#include "analysis/checkers.h"
#include "analysis/diagnostic.h"
#include "cache/cache.h"
#include "cache/fingerprint.h"
#include "cache/memo.h"
#include "circuit/draw.h"
#include "report/cache_summary.h"
#include "compiler/schedule.h"
#include "device/calibration.h"
#include "device/faults.h"
#include "mapper/recommend.h"
#include "device/device.h"
#include "isa/timed_program.h"
#include "mapper/pipeline.h"
#include "profile/circuit_profile.h"
#include "profile/dot_export.h"
#include "profile/interaction.h"
#include "qasm/cqasm_writer.h"
#include "qasm/parser.h"
#include "qasm/writer.h"
#include "report/table.h"
#include "support/json.h"
#include "support/parallel.h"
#include "support/strings.h"

namespace {

using namespace qfs;

struct CliOptions {
  std::string device = "surface17";
  std::string placer = "trivial";
  std::string router = "trivial";
  int sabre_rounds = 0;
  std::uint64_t seed = 2022;
  bool emit_qasm = false;
  bool emit_cqasm = false;
  bool emit_timed = false;
  bool emit_dot = false;
  bool emit_json = false;
  bool profile_only = false;
  bool lint = false;
  bool verify = false;
  bool recommend = false;
  bool draw_circuit = false;
  bool avoid_crosstalk = false;
  std::string calibration_path;
  std::string fault_spec;
  int max_attempts = 4;
  int jobs = 1;  // worker threads for batch compiles; 0 = auto
  std::string cache_dir;     // persistent compile cache root; "" = off
  bool cache_stats = false;  // emit cache counters after compiling
  std::vector<std::string> input_paths;  // empty: stdin
  /// Process-wide compile cache (owned by main; thread-safe, shared across
  /// --jobs workers). Null when caching is disabled.
  cache::CompileCache* cache = nullptr;
};

void print_usage() {
  std::cout <<
      "usage: qfsc [options] [input.qasm ...]\n"
      "\n"
      "options:\n"
      "  --device <name>   surface7 | surface17 | surface97 | heavyhex27 |\n"
      "                    line:<N> | grid:<R>x<C> | full:<N> |\n"
      "                    file:<topology.txt>                  (default surface17)\n"
      "  --placer <name>   trivial | random | degree-match | annealing |\n"
      "                    subgraph | noise-aware                (default trivial)\n"
      "  --router <name>   trivial | lookahead | noise-aware | bridge |\n"
      "                    optimal                               (default trivial)\n"
      "  --sabre <n>       SABRE placement-refinement rounds     (default 0)\n"
      "  --seed <n>        RNG seed                              (default 2022)\n"
      "  --calibration <f> load per-qubit/per-edge fidelities from a file\n"
      "  --inject-faults <spec>\n"
      "                    degrade the device before compiling; spec is\n"
      "                    semicolon-separated key=value pairs, e.g.\n"
      "                    'dead_qubits=3|17;dead_edge_fraction=0.1;\n"
      "                    drift=0.02;seed=7' (compilation then targets the\n"
      "                    largest connected healthy subgraph)\n"
      "  --max-attempts <n> fallback ladder length for resilient\n"
      "                    compilation                         (default 4)\n"
      "  --jobs <n>        compile multiple input files over n worker\n"
      "                    threads (0 = one per hardware thread); output\n"
      "                    order and bytes are independent of n (default 1)\n"
      "  --cache-dir <d>   reuse compilation results from the persistent\n"
      "                    content-addressed cache rooted at <d> (created on\n"
      "                    demand; safe to share across --jobs workers and\n"
      "                    concurrent qfsc processes)\n"
      "  --cache-stats     after compiling, print cache hit/miss counters as\n"
      "                    JSON on stdout (without --cache-dir this enables\n"
      "                    an in-memory cache for the run)\n"
      "  --emit-qasm       print the compiled OpenQASM program\n"
      "  --emit-cqasm      print the compiled cQASM 1.0 program\n"
      "  --emit-timed      print the scheduled, timed ISA program\n"
      "  --emit-dot        print the interaction graph in Graphviz DOT\n"
      "  --emit-json       print the mapping report as JSON\n"
      "  --crosstalk-safe  schedule with crosstalk exclusion (with --emit-timed)\n"
      "  --lint            run the static circuit linter (device-independent\n"
      "                    checks: operand ranges, duplicate operands, gates\n"
      "                    after measurement, idle qubits, unreachable ops)\n"
      "                    and exit; diagnostics go to stdout, exit code 3\n"
      "                    when any error-severity finding exists\n"
      "  --verify          like --lint, but treat the input as a *mapped\n"
      "                    physical* circuit for --device and additionally\n"
      "                    check gate-set membership, coupling-graph\n"
      "                    adjacency, register width and the scheduled\n"
      "                    program's control-group timing\n"
      "  --profile         print the interaction-graph profile and exit\n"
      "  --recommend       use (and print) the profile-based strategy\n"
      "                    recommendation instead of --placer/--router\n"
      "  --draw            print the input circuit as ASCII art first\n"
      "  --version         print the compiler version and the salt folded\n"
      "                    into every cache key, then exit\n"
      "  --help            this text\n"
      "\n"
      "Circuits are read from the positional files, or stdin when omitted.\n"
      "With several input files, each is compiled independently (see\n"
      "--jobs); reports are prefixed per file and the exit code is that of\n"
      "the first failing input.\n";
}

bool parse_device(const std::string& spec, device::Device& out,
                  std::string& error) {
  if (spec == "surface7") {
    out = device::surface7_device();
  } else if (spec == "surface17") {
    out = device::surface17_device();
  } else if (spec == "surface97") {
    out = device::surface97_device();
  } else if (spec == "heavyhex27") {
    out = device::heavy_hex27_device();
  } else if (starts_with(spec, "line:")) {
    int n = 0;
    if (!parse_int(spec.substr(5), n) || n < 1) {
      error = "bad line size in '" + spec + "'";
      return false;
    }
    out = device::line_device(n);
  } else if (starts_with(spec, "full:")) {
    int n = 0;
    if (!parse_int(spec.substr(5), n) || n < 1) {
      error = "bad size in '" + spec + "'";
      return false;
    }
    out = device::fully_connected_device(n);
  } else if (starts_with(spec, "file:")) {
    std::ifstream in(std::string(spec.substr(5)));
    if (!in) {
      error = "cannot open topology file '" + spec.substr(5) + "'";
      return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto topo = device::parse_topology(buffer.str());
    if (!topo.is_ok()) {
      error = topo.status().to_string();
      return false;
    }
    std::string name = topo.value().name();
    out = device::Device(name, std::move(topo).value(),
                         device::surface_code_gateset(), device::ErrorModel());
  } else if (starts_with(spec, "grid:")) {
    auto dims = split(spec.substr(5), 'x');
    int r = 0, c = 0;
    if (dims.size() != 2 || !parse_int(dims[0], r) || !parse_int(dims[1], c) ||
        r < 1 || c < 1) {
      error = "bad grid spec in '" + spec + "' (expected grid:RxC)";
      return false;
    }
    out = device::grid_device(r, c);
  } else {
    error = "unknown device '" + spec + "'";
    return false;
  }
  return true;
}

/// Lint / verify one QASM source without compiling it. Diagnostics render
/// to `out` (JSON with --emit-json), a one-line summary to `err`. Exit
/// code 3 = error-severity findings, 1 = unusable configuration, 0 = clean
/// (warnings allowed) — extending the PR-2 contract without disturbing it.
int lint_source_mode(const CliOptions& cli, const std::string& source,
                     const std::string& source_name, std::ostream& out,
                     std::ostream& err) {
  analysis::CheckOptions opts;
  device::Device dev;
  if (cli.verify) {
    std::string error;
    if (!parse_device(cli.device, dev, error)) {
      err << "qfsc: " << error << "\n";
      return 1;
    }
    opts.device = &dev;
    opts.physical = true;
  }

  std::vector<analysis::Diagnostic> diags;
  auto parsed = qasm::parse(source);
  if (!parsed.is_ok()) {
    diags = analysis::lint_source(source, opts);
  } else {
    const circuit::Circuit& circuit = parsed.value();
    diags = analysis::analyze_circuit(circuit, opts);
    // With a structurally-valid physical circuit in hand, also verify the
    // scheduled timed program (double-booked qubits, control-group mixing).
    if (cli.verify && !analysis::has_errors(diags) &&
        circuit.num_qubits() <= dev.num_qubits()) {
      compiler::ScheduleOptions sched;
      sched.avoid_crosstalk = cli.avoid_crosstalk;
      auto schedule = compiler::asap_schedule(circuit, dev, sched);
      auto program = isa::lower_to_timed_program(circuit, schedule);
      auto timed = analysis::analyze_timed_program(program, dev);
      diags.insert(diags.end(), timed.begin(), timed.end());
    }
  }

  if (cli.emit_json) {
    out << analysis::diagnostics_to_json(diags).to_pretty_string() << "\n";
  } else {
    out << analysis::render_diagnostics(diags, source_name);
  }
  err << "qfsc: " << (cli.verify ? "verify" : "lint") << ": "
      << analysis::diagnostic_summary(diags) << "\n";
  return analysis::has_errors(diags) ? 3 : 0;
}

/// Compile one QASM source end to end, writing artifacts to `out` (stdout
/// in single-file mode) and diagnostics/reports to `err`. Returns the PR-2
/// exit-code contract: 0 = ok, 1 = bad input, 2 = compilation failed,
/// 3 = lint/verify errors (with --lint/--verify).
int compile_source(const CliOptions& cli, const std::string& source,
                   const std::string& source_name, std::ostream& out,
                   std::ostream& err) {
  if (cli.lint || cli.verify) {
    return lint_source_mode(cli, source, source_name, out, err);
  }
  auto parsed = qasm::parse(source);
  if (!parsed.is_ok()) {
    err << "qfsc: " << parsed.status().to_string() << "\n";
    return 1;
  }
  circuit::Circuit circuit = std::move(parsed).value();

  if (cli.draw_circuit) {
    circuit::DrawOptions draw_opts;
    draw_opts.show_params = false;
    err << circuit::draw(circuit, draw_opts) << "\n";
  }

  if (cli.emit_dot) {
    profile::DotOptions dot;
    dot.graph_name = "interaction";
    out << profile::to_dot(profile::interaction_graph(circuit), dot);
    if (!cli.emit_qasm && !cli.emit_cqasm && !cli.emit_timed &&
        !cli.profile_only) {
      return 0;
    }
  }

  if (cli.profile_only) {
    profile::CircuitProfile p = profile::profile_circuit(circuit);
    report::TextTable t({"metric", "value"});
    t.add_row({"qubits (active)", std::to_string(p.num_qubits)});
    t.add_row({"gates", std::to_string(p.gate_count)});
    t.add_row({"two-qubit gate %",
               format_double(100.0 * p.two_qubit_fraction, 1)});
    t.add_row({"depth", std::to_string(p.depth)});
    t.add_row({"interaction edges", std::to_string(p.ig_edges)});
    t.add_row({"avg shortest path", format_double(p.avg_shortest_path, 3)});
    t.add_row({"max degree", std::to_string(p.max_degree)});
    t.add_row({"min degree", std::to_string(p.min_degree)});
    t.add_row({"adjacency std dev", format_double(p.adj_matrix_stddev, 3)});
    out << t.to_string();
    return 0;
  }

  device::Device dev;
  std::string error;
  if (!parse_device(cli.device, dev, error)) {
    err << "qfsc: " << error << "\n";
    return 1;
  }
  if (!cli.calibration_path.empty()) {
    std::ifstream cal(cli.calibration_path);
    if (!cal) {
      err << "qfsc: cannot open calibration '" << cli.calibration_path
                << "'\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << cal.rdbuf();
    auto model = device::parse_calibration(buffer.str(), dev.num_qubits());
    if (!model.is_ok()) {
      err << "qfsc: " << model.status().to_string() << "\n";
      return 1;
    }
    dev.mutable_error_model() = model.value();
  }
  if (!cli.fault_spec.empty()) {
    auto spec = device::parse_fault_spec(cli.fault_spec);
    if (!spec.is_ok()) {
      err << "qfsc: " << spec.status().to_string() << "\n";
      return 1;
    }
    device::FaultInjector injector(std::move(spec).value());
    auto degraded = injector.apply(dev);
    if (!degraded.is_ok()) {
      err << "qfsc: fault injection: " << degraded.status().to_string()
                << "\n";
      return 1;
    }
    err << "fault injection: " << degraded.value().summary() << "\n";
    dev = std::move(degraded).value().device;
  }
  mapper::MappingOptions options;
  options.placer = cli.placer;
  options.router = cli.router;
  options.sabre_refinement_rounds = cli.sabre_rounds;
  if (cli.recommend) {
    auto rec = mapper::recommend_mapping(profile::profile_circuit(circuit));
    options = rec.options;
    err << "recommendation: placer=" << options.placer
              << " router=" << options.router << " ("
              << rec.rationale << ")\n";
  }
  options.compute_latency = true;

  mapper::ResilientOptions resilient;
  resilient.base = options;
  resilient.max_attempts = cli.max_attempts;
  resilient.seed = cli.seed;
  // With a cache attached, memoize per-attempt mappings keyed by the base
  // fingerprint (canonical QASM + post-calibration/fault device + options)
  // plus each attempt's strategy/seed. Hits still pass validation inside
  // compile_resilient, so a stale artifact degrades to a fresh compile.
  mapper::AttemptMemo memo;
  if (cli.cache != nullptr) {
    cache::Fingerprint base = cache::compile_fingerprint(
        qasm::to_qasm(circuit), dev, options, cli.seed);
    memo = cache::make_attempt_memo(*cli.cache, base);
    resilient.memo = &memo;
  }
  mapper::CompileAttemptLog attempt_log;
  auto compiled =
      mapper::compile_resilient(circuit, dev, resilient, &attempt_log);
  if (!compiled.is_ok()) {
    err << mapper::attempt_log_to_string(attempt_log);
    err << "qfsc: " << compiled.status().to_string() << "\n";
    return 2;
  }
  if (attempt_log.size() > 1) {
    // Fallbacks were needed; show the full ladder so the outcome is
    // explainable.
    err << mapper::attempt_log_to_string(attempt_log);
  }
  mapper::ResilientResult resilient_result = std::move(compiled).value();
  const mapper::MappingOptions& used = resilient_result.options_used;
  mapper::MappingResult result = std::move(resilient_result.mapping);

  report::TextTable t({"metric", "value"});
  t.add_row({"device", dev.name()});
  t.add_row({"placer / router", used.placer + " / " + used.router});
  t.add_row({"gates before -> after", std::to_string(result.gates_before) +
                                          " -> " +
                                          std::to_string(result.gates_after)});
  t.add_row({"SWAPs inserted", std::to_string(result.swaps_inserted)});
  t.add_row({"gate overhead %", format_double(result.gate_overhead_pct, 1)});
  t.add_row({"depth before -> after", std::to_string(result.depth_before) +
                                          " -> " +
                                          std::to_string(result.depth_after)});
  t.add_row({"est. fidelity before", format_double(result.fidelity_before, 5)});
  t.add_row({"est. fidelity after", format_double(result.fidelity_after, 5)});
  t.add_row({"fidelity decrease %",
             format_double(result.fidelity_decrease_pct, 2)});
  t.add_row({"latency ns before -> after",
             format_double(result.latency_before_ns, 0) + " -> " +
                 format_double(result.latency_after_ns, 0)});
  err << t.to_string();

  if (cli.emit_json) {
    JsonValue layouts = JsonValue::object();
    JsonValue init = JsonValue::array();
    for (int p : result.initial_layout) init.push_back(JsonValue::integer(p));
    JsonValue fin = JsonValue::array();
    for (int p : result.final_layout) fin.push_back(JsonValue::integer(p));
    layouts.set("initial", std::move(init)).set("final", std::move(fin));

    JsonValue doc = JsonValue::object();
    doc.set("device", JsonValue::string(dev.name()))
        .set("placer", JsonValue::string(used.placer))
        .set("router", JsonValue::string(used.router))
        .set("gates_before", JsonValue::integer(result.gates_before))
        .set("gates_after", JsonValue::integer(result.gates_after))
        .set("swaps_inserted", JsonValue::integer(result.swaps_inserted))
        .set("gate_overhead_pct", JsonValue::number(result.gate_overhead_pct))
        .set("depth_before", JsonValue::integer(result.depth_before))
        .set("depth_after", JsonValue::integer(result.depth_after))
        .set("fidelity_before", JsonValue::number(result.fidelity_before))
        .set("fidelity_after", JsonValue::number(result.fidelity_after))
        .set("fidelity_decrease_pct",
             JsonValue::number(result.fidelity_decrease_pct))
        .set("latency_before_ns", JsonValue::number(result.latency_before_ns))
        .set("latency_after_ns", JsonValue::number(result.latency_after_ns))
        .set("layouts", std::move(layouts));
    out << doc.to_pretty_string() << "\n";
  }
  if (cli.emit_qasm) {
    out << qasm::to_qasm(result.mapped);
  }
  if (cli.emit_cqasm) {
    out << qasm::to_cqasm(result.mapped);
  }
  if (cli.emit_timed) {
    compiler::ScheduleOptions sched;
    sched.avoid_crosstalk = cli.avoid_crosstalk;
    auto schedule = compiler::asap_schedule(result.mapped, dev, sched);
    out << isa::lower_to_timed_program(result.mapped, schedule).to_text();
  }
  return 0;
}

/// Read one input (file path, or stdin when empty) and compile it.
int compile_path(const CliOptions& cli, const std::string& path,
                 std::ostream& out, std::ostream& err) {
  std::string source;
  if (path.empty()) {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      err << "qfsc: cannot open '" << path << "'\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }
  return compile_source(cli, source, path.empty() ? "<stdin>" : path, out,
                        err);
}

/// Batch mode: compile every input over --jobs worker threads. Per-file
/// streams are buffered and flushed in input order, so stdout/stderr are
/// byte-identical for any --jobs value. The exit code is that of the first
/// failing input (in input order), preserving the single-file contract
/// (1 = bad input, 2 = compilation failed).
int run_batch(const CliOptions& cli) {
  struct FileResult {
    int rc = 0;
    std::string out;
    std::string err;
  };
  auto results = qfs::parallel_map(
      cli.jobs, cli.input_paths.size(), [&cli](std::size_t i) {
        std::ostringstream out, err;
        FileResult r;
        r.rc = compile_path(cli, cli.input_paths[i], out, err);
        r.out = out.str();
        r.err = err.str();
        return r;
      });
  int exit_code = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::cerr << "qfsc: === " << cli.input_paths[i] << " ===\n"
              << results[i].err;
    std::cout << results[i].out;
    if (exit_code == 0 && results[i].rc != 0) exit_code = results[i].rc;
  }
  return exit_code;
}

/// Every option qfsc understands (for did-you-mean suggestions).
const char* const kKnownFlags[] = {
    "--help",         "--device",        "--placer",       "--router",
    "--sabre",        "--seed",          "--calibration",  "--inject-faults",
    "--max-attempts", "--jobs",          "--emit-qasm",    "--emit-cqasm",
    "--emit-timed",   "--emit-dot",      "--emit-json",    "--crosstalk-safe",
    "--profile",      "--lint",          "--verify",       "--recommend",
    "--draw",         "--cache-dir",     "--cache-stats",  "--version",
};

/// Classic dynamic-programming edit distance (small inputs only).
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      std::size_t next = std::min({row[j] + 1, row[j - 1] + 1,
                                   diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

/// Closest known flag within edit distance 3, or "" when nothing is close.
std::string suggest_flag(std::string_view arg) {
  std::size_t best = 4;  // only suggest reasonably close matches
  std::string suggestion;
  for (const char* flag : kKnownFlags) {
    std::size_t d = edit_distance(arg, flag);
    if (d < best) {
      best = d;
      suggestion = flag;
    }
  }
  return suggestion;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "qfsc: missing value for " << arg << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--version") {
      std::cout << "qfsc (qfs full-stack NISQ compiler)\n"
                << "cache key salt: " << cache::kCacheVersionSalt << "\n";
      return 0;
    } else if (arg == "--cache-dir") {
      cli.cache_dir = next();
    } else if (arg == "--cache-stats") {
      cli.cache_stats = true;
    } else if (arg == "--device") {
      cli.device = next();
    } else if (arg == "--placer") {
      cli.placer = next();
    } else if (arg == "--router") {
      cli.router = next();
    } else if (arg == "--sabre") {
      if (!qfs::parse_int(next(), cli.sabre_rounds) || cli.sabre_rounds < 0) {
        std::cerr << "qfsc: bad --sabre round count\n";
        return 1;
      }
    } else if (arg == "--seed") {
      int seed = 0;
      if (!qfs::parse_int(next(), seed)) {
        std::cerr << "qfsc: bad seed\n";
        return 1;
      }
      cli.seed = static_cast<std::uint64_t>(seed);
    } else if (arg == "--emit-qasm") {
      cli.emit_qasm = true;
    } else if (arg == "--emit-cqasm") {
      cli.emit_cqasm = true;
    } else if (arg == "--emit-dot") {
      cli.emit_dot = true;
    } else if (arg == "--emit-json") {
      cli.emit_json = true;
    } else if (arg == "--calibration") {
      cli.calibration_path = next();
    } else if (arg == "--inject-faults") {
      cli.fault_spec = next();
    } else if (arg == "--max-attempts") {
      if (!qfs::parse_int(next(), cli.max_attempts) || cli.max_attempts < 1) {
        std::cerr << "qfsc: bad --max-attempts count\n";
        return 1;
      }
    } else if (arg == "--jobs") {
      if (!qfs::parse_int(next(), cli.jobs) || cli.jobs < 0) {
        std::cerr << "qfsc: bad --jobs count\n";
        return 1;
      }
    } else if (arg == "--emit-timed") {
      cli.emit_timed = true;
    } else if (arg == "--crosstalk-safe") {
      cli.avoid_crosstalk = true;
    } else if (arg == "--profile") {
      cli.profile_only = true;
    } else if (arg == "--lint") {
      cli.lint = true;
    } else if (arg == "--verify") {
      cli.verify = true;
    } else if (arg == "--recommend") {
      cli.recommend = true;
    } else if (arg == "--draw") {
      cli.draw_circuit = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "qfsc: unknown option '" << arg << "'";
      std::string suggestion = suggest_flag(arg);
      if (!suggestion.empty()) std::cerr << " (did you mean " << suggestion
                                         << "?)";
      std::cerr << " (try --help)\n";
      return 1;
    } else {
      cli.input_paths.push_back(arg);
    }
  }
  std::unique_ptr<cache::CompileCache> compile_cache;
  if (!cli.cache_dir.empty() || cli.cache_stats) {
    cache::CacheConfig cache_config;
    cache_config.disk_dir = cli.cache_dir;  // "" = in-memory tier only
    compile_cache = std::make_unique<cache::CompileCache>(cache_config);
    cli.cache = compile_cache.get();
  }
  int rc = cli.input_paths.size() > 1
               ? run_batch(cli)
               : compile_path(cli,
                              cli.input_paths.empty() ? "" : cli.input_paths[0],
                              std::cout, std::cerr);
  if (cli.cache_stats && cli.cache != nullptr) {
    cache::CacheStatsSnapshot snap = cli.cache->stats();
    JsonValue doc = JsonValue::object();
    doc.set("cache", report::cache_stats_to_json(snap));
    std::cout << doc.to_pretty_string() << "\n";
    std::cerr << report::cache_summary_line(snap) << "\n";
  }
  return rc;
}
