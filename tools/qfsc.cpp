// qfsc — the qfs command-line compiler driver.
//
// Reads OpenQASM 2.0 circuits (file arguments or stdin), compiles them for
// a chosen device, and prints a mapping report and optionally the compiled
// QASM, the timed ISA program, or the interaction-graph profile. Several
// input files are batch-compiled over --jobs worker threads with output
// bytes independent of the job count.
//
// Since the service layer landed, qfsc is a thin renderer: every compile,
// lint and verify goes through service::CompileService::execute() — the
// same entrypoint the qfsd daemon serves over its socket — and this file
// only turns CompileRequest/CompileResponse into the historical CLI bytes
// and exit codes (0 ok, 1 bad input, 2 compile failed, 3 lint errors).
//
//   qfsc --device surface17 --placer annealing --router lookahead in.qasm
//   qfsc --device surface97 --jobs 8 --emit-qasm batch/*.qasm
//   cat in.qasm | qfsc --device line:20 --emit-qasm
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "backends/registry.h"
#include "cache/cache.h"
#include "cache/fingerprint.h"
#include "circuit/draw.h"
#include "profile/circuit_profile.h"
#include "profile/dot_export.h"
#include "profile/interaction.h"
#include "qasm/parser.h"
#include "report/cache_summary.h"
#include "report/table.h"
#include "service/api.h"
#include "service/flags.h"
#include "service/service.h"
#include "support/json.h"
#include "support/parallel.h"
#include "support/strings.h"

namespace {

using namespace qfs;

struct CliOptions {
  std::string device = "surface17";
  std::string placer = "trivial";
  std::string router = "trivial";
  int sabre_rounds = 0;
  std::uint64_t seed = 2022;
  bool emit_qasm = false;
  bool emit_cqasm = false;
  bool emit_timed = false;
  bool emit_dot = false;
  bool emit_json = false;
  bool profile_only = false;
  bool lint = false;
  bool verify = false;
  bool verify_output = false;
  bool recommend = false;
  bool draw_circuit = false;
  bool avoid_crosstalk = false;
  std::string calibration_path;
  std::string fault_spec;
  int max_attempts = 4;
  int jobs = 1;  // worker threads for batch compiles; 0 = auto
  std::string cache_dir;     // persistent compile cache root; "" = off
  bool cache_stats = false;  // emit cache counters after compiling
  std::vector<std::string> input_paths;  // empty: stdin
  /// The shared execution engine (owned by main; thread-safe, one cache
  /// across --jobs workers — the same engine qfsd serves remotely).
  const service::CompileService* service = nullptr;
};

void print_usage() {
  std::cout <<
      "usage: qfsc [options] [input.qasm ...]\n"
      "\n"
      "options:\n"
      "  --device <spec>   a backend-registry spec: a name, optionally with\n"
      "                    parameters — surface17, heavyhex27,\n"
      "                    heavy_hex(rows=3,cols=9), sycamore(5,4),\n"
      "                    trapped_ion(ions=20), neutral_atom(4,5,radius=1.5)\n"
      "                    — or file:<topology.txt>; the legacy colon forms\n"
      "                    line:<N>, grid:<R>x<C>, full:<N> still work\n"
      "                    (default surface17; see --list-devices)\n"
      "  --placer <name>   trivial | random | degree-match | annealing |\n"
      "                    subgraph | noise-aware                (default trivial)\n"
      "  --router <name>   trivial | lookahead | noise-aware | bridge |\n"
      "                    optimal                               (default trivial)\n"
      "  --sabre <n>       SABRE placement-refinement rounds     (default 0)\n"
      "  --seed <n>        RNG seed                              (default 2022)\n"
      "  --calibration <f> load per-qubit/per-edge fidelities from a file\n"
      "  --inject-faults <spec>\n"
      "                    degrade the device before compiling; spec is\n"
      "                    semicolon-separated key=value pairs, e.g.\n"
      "                    'dead_qubits=3|17;dead_edge_fraction=0.1;\n"
      "                    drift=0.02;seed=7' (compilation then targets the\n"
      "                    largest connected healthy subgraph)\n"
      "  --max-attempts <n> fallback ladder length for resilient\n"
      "                    compilation                         (default 4)\n"
      "  --jobs <n>        compile multiple input files over n worker\n"
      "                    threads (0 = one per hardware thread); output\n"
      "                    order and bytes are independent of n (default 1)\n"
      "  --cache-dir <d>   reuse compilation results from the persistent\n"
      "                    content-addressed cache rooted at <d> (created on\n"
      "                    demand; safe to share across --jobs workers and\n"
      "                    concurrent qfsc processes)\n"
      "  --cache-stats     after compiling, print cache hit/miss counters as\n"
      "                    JSON on stdout (without --cache-dir this enables\n"
      "                    an in-memory cache for the run)\n"
      "  --emit-qasm       print the compiled OpenQASM program\n"
      "  --emit-cqasm      print the compiled cQASM 1.0 program\n"
      "  --emit-timed      print the scheduled, timed ISA program\n"
      "  --emit-dot        print the interaction graph in Graphviz DOT\n"
      "  --emit-json       print the mapping report as JSON\n"
      "  --crosstalk-safe  schedule with crosstalk exclusion (with --emit-timed)\n"
      "  --lint            run the static circuit linter (device-independent\n"
      "                    checks: operand ranges, duplicate operands, gates\n"
      "                    after measurement, idle qubits, unreachable ops)\n"
      "                    and exit; diagnostics go to stdout, exit code 3\n"
      "                    when any error-severity finding exists\n"
      "  --verify          like --lint, but treat the input as a *mapped\n"
      "                    physical* circuit for --device and additionally\n"
      "                    check gate-set membership, coupling-graph\n"
      "                    adjacency, register width and the scheduled\n"
      "                    program's control-group timing\n"
      "  --verify-output   after compiling, run the translation validator\n"
      "                    over the produced artifact: every physical gate\n"
      "                    must realize exactly one source gate under the\n"
      "                    tracked qubit permutation (QFS101-QFS110); a\n"
      "                    failure is reported as an internal compiler\n"
      "                    error (exit 6) with the findings\n"
      "  --profile         print the interaction-graph profile and exit\n"
      "  --recommend       use (and print) the profile-based strategy\n"
      "                    recommendation instead of --placer/--router\n"
      "  --draw            print the input circuit as ASCII art first\n"
      "  --version         print the compiler version and the salt folded\n"
      "                    into every cache key, then exit\n"
      "  --list-devices    print every registered backend with its\n"
      "                    parameter ranges and defaults, then exit\n"
      "  --help            this text\n"
      "\n"
      "Circuits are read from the positional files, or stdin when omitted.\n"
      "With several input files, each is compiled independently (see\n"
      "--jobs); reports are prefixed per file and the exit code is that of\n"
      "the first failing input.\n";
}

/// Build the service request for one source. Everything behavioural lives
/// in the request; qfsc itself only renders the response.
service::CompileRequest build_request(const CliOptions& cli,
                                      const std::string& source,
                                      const std::string& source_name) {
  service::CompileRequest request;
  request.mode = cli.verify  ? service::RequestMode::kVerify
                 : cli.lint ? service::RequestMode::kLint
                            : service::RequestMode::kCompile;
  request.qasm = source;
  request.source_name = source_name;
  request.device = cli.device;
  request.calibration_path = cli.calibration_path;
  request.fault_spec = cli.fault_spec;
  request.options.placer = cli.placer;
  request.options.router = cli.router;
  request.options.sabre_refinement_rounds = cli.sabre_rounds;
  request.options.compute_latency = true;
  request.seed = cli.seed;
  request.max_attempts = cli.max_attempts;
  request.recommend = cli.recommend;
  request.crosstalk_safe = cli.avoid_crosstalk;
  request.emit_qasm = cli.emit_qasm;
  request.emit_cqasm = cli.emit_cqasm;
  request.emit_timed = cli.emit_timed;
  request.verify_artifact = cli.verify_output;
  return request;
}

/// Render a lint/verify response in the historical CLI format.
int render_lint(const CliOptions& cli, const service::CompileResponse& resp,
                const std::string& source_name, std::ostream& out,
                std::ostream& err) {
  if (!resp.ok() && resp.code != service::ErrorCode::kLintError) {
    err << "qfsc: " << resp.error_message << "\n";
    return service::exit_code_for(resp.code);
  }
  if (cli.emit_json) {
    out << analysis::diagnostics_to_json(resp.diagnostics).to_pretty_string()
        << "\n";
  } else {
    out << analysis::render_diagnostics(resp.diagnostics, source_name);
  }
  err << "qfsc: " << (cli.verify ? "verify" : "lint") << ": "
      << analysis::diagnostic_summary(resp.diagnostics) << "\n";
  return service::exit_code_for(resp.code);
}

/// Compile one QASM source end to end through the service, writing
/// artifacts to `out` (stdout in single-file mode) and diagnostics/reports
/// to `err`. Returns the PR-2 exit-code contract: 0 = ok, 1 = bad input,
/// 2 = compilation failed, 3 = lint/verify errors (with --lint/--verify).
int compile_source(const CliOptions& cli, const std::string& source,
                   const std::string& source_name, std::ostream& out,
                   std::ostream& err) {
  service::CompileRequest request = build_request(cli, source, source_name);
  if (cli.lint || cli.verify) {
    return render_lint(cli, cli.service->execute(request), source_name, out,
                       err);
  }

  // The circuit-introspection modes (--draw/--emit-dot/--profile) render
  // client-side; parse here and lend the circuit to the request so the
  // source is parsed exactly once.
  circuit::Circuit local;
  if (cli.draw_circuit || cli.emit_dot || cli.profile_only) {
    auto parsed = qasm::parse(source);
    if (!parsed.is_ok()) {
      err << "qfsc: " << parsed.status().to_string() << "\n";
      return 1;
    }
    local = std::move(parsed).value();
    request.circuit = &local;

    if (cli.draw_circuit) {
      circuit::DrawOptions draw_opts;
      draw_opts.show_params = false;
      err << circuit::draw(local, draw_opts) << "\n";
    }
    if (cli.emit_dot) {
      profile::DotOptions dot;
      dot.graph_name = "interaction";
      out << profile::to_dot(profile::interaction_graph(local), dot);
      if (!cli.emit_qasm && !cli.emit_cqasm && !cli.emit_timed &&
          !cli.profile_only) {
        return 0;
      }
    }
    if (cli.profile_only) {
      profile::CircuitProfile p = profile::profile_circuit(local);
      report::TextTable t({"metric", "value"});
      t.add_row({"qubits (active)", std::to_string(p.num_qubits)});
      t.add_row({"gates", std::to_string(p.gate_count)});
      t.add_row({"two-qubit gate %",
                 format_double(100.0 * p.two_qubit_fraction, 1)});
      t.add_row({"depth", std::to_string(p.depth)});
      t.add_row({"interaction edges", std::to_string(p.ig_edges)});
      t.add_row({"avg shortest path", format_double(p.avg_shortest_path, 3)});
      t.add_row({"max degree", std::to_string(p.max_degree)});
      t.add_row({"min degree", std::to_string(p.min_degree)});
      t.add_row({"adjacency std dev", format_double(p.adj_matrix_stddev, 3)});
      out << t.to_string();
      return 0;
    }
  }

  service::CompileResponse resp = cli.service->execute(request);

  // Side-channel notes come back even when the compile later failed, in
  // the order the pre-service tool printed them.
  if (!resp.fault_note.empty()) {
    err << "fault injection: " << resp.fault_note << "\n";
  }
  if (!resp.recommend_note.empty()) {
    err << "recommendation: " << resp.recommend_note << "\n";
  }
  if (!resp.ok()) {
    err << resp.attempt_log;  // full ladder on resilient failure ("" else)
    if (!resp.diagnostics.empty()) {
      // --verify-output findings: the artifact failed translation validation.
      err << analysis::render_diagnostics(resp.diagnostics, source_name);
    }
    err << "qfsc: " << resp.error_message << "\n";
    return service::exit_code_for(resp.code);
  }
  if (!resp.attempt_log.empty()) {
    // Fallbacks were needed; show the full ladder so the outcome is
    // explainable.
    err << resp.attempt_log;
  }

  const mapper::MappingResult& result = resp.mapping;
  report::TextTable t({"metric", "value"});
  t.add_row({"device", resp.device_name});
  t.add_row({"placer / router", resp.placer_used + " / " + resp.router_used});
  t.add_row({"gates before -> after", std::to_string(result.gates_before) +
                                          " -> " +
                                          std::to_string(result.gates_after)});
  t.add_row({"SWAPs inserted", std::to_string(result.swaps_inserted)});
  t.add_row({"gate overhead %", format_double(result.gate_overhead_pct, 1)});
  t.add_row({"depth before -> after", std::to_string(result.depth_before) +
                                          " -> " +
                                          std::to_string(result.depth_after)});
  t.add_row({"est. fidelity before", format_double(result.fidelity_before, 5)});
  t.add_row({"est. fidelity after", format_double(result.fidelity_after, 5)});
  t.add_row({"fidelity decrease %",
             format_double(result.fidelity_decrease_pct, 2)});
  t.add_row({"latency ns before -> after",
             format_double(result.latency_before_ns, 0) + " -> " +
                 format_double(result.latency_after_ns, 0)});
  err << t.to_string();

  if (cli.emit_json) {
    out << service::mapping_metrics_json(resp).to_pretty_string() << "\n";
  }
  out << resp.mapped_qasm;
  out << resp.mapped_cqasm;
  out << resp.timed_text;
  return 0;
}

/// Read one input (file path, or stdin when empty) and compile it.
int compile_path(const CliOptions& cli, const std::string& path,
                 std::ostream& out, std::ostream& err) {
  std::string source;
  if (path.empty()) {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      err << "qfsc: cannot open '" << path << "'\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }
  return compile_source(cli, source, path.empty() ? "<stdin>" : path, out,
                        err);
}

/// Batch mode: compile every input over --jobs worker threads. Per-file
/// streams are buffered and flushed in input order, so stdout/stderr are
/// byte-identical for any --jobs value. The exit code is that of the first
/// failing input (in input order), preserving the single-file contract
/// (1 = bad input, 2 = compilation failed).
int run_batch(const CliOptions& cli) {
  struct FileResult {
    int rc = 0;
    std::string out;
    std::string err;
  };
  auto results = qfs::parallel_map(
      cli.jobs, cli.input_paths.size(), [&cli](std::size_t i) {
        std::ostringstream out, err;
        FileResult r;
        r.rc = compile_path(cli, cli.input_paths[i], out, err);
        r.out = out.str();
        r.err = err.str();
        return r;
      });
  int exit_code = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::cerr << "qfsc: === " << cli.input_paths[i] << " ===\n"
              << results[i].err;
    std::cout << results[i].out;
    if (exit_code == 0 && results[i].rc != 0) exit_code = results[i].rc;
  }
  return exit_code;
}

/// Every option qfsc understands (for did-you-mean suggestions): the
/// shared request flags plus the tool-specific ones.
std::vector<std::string> known_flags() {
  std::vector<std::string> flags = service::shared_request_flags();
  for (const char* flag :
       {"--help", "--sabre", "--calibration", "--inject-faults",
        "--max-attempts", "--emit-qasm", "--emit-cqasm", "--emit-timed",
        "--emit-dot", "--emit-json", "--crosstalk-safe", "--profile",
        "--lint", "--verify", "--verify-output", "--recommend", "--draw",
        "--cache-stats", "--version", "--list-devices"}) {
    flags.emplace_back(flag);
  }
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  service::RequestFlagValues shared;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string shared_error;
    switch (service::consume_request_flag(argc, argv, i, shared,
                                          shared_error)) {
      case service::FlagParse::kConsumed:
        continue;
      case service::FlagParse::kError:
        std::cerr << "qfsc: " << shared_error << "\n";
        return 1;
      case service::FlagParse::kNotMine:
        break;
    }
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "qfsc: missing value for " << arg << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--version") {
      std::cout << "qfsc (qfs full-stack NISQ compiler)\n"
                << "cache key salt: " << cache::kCacheVersionSalt << "\n";
      return 0;
    } else if (arg == "--list-devices") {
      std::cout << backends::list_devices_text();
      return 0;
    } else if (arg == "--cache-stats") {
      cli.cache_stats = true;
    } else if (arg == "--sabre") {
      if (!qfs::parse_int(next(), cli.sabre_rounds) || cli.sabre_rounds < 0) {
        std::cerr << "qfsc: bad --sabre round count\n";
        return 1;
      }
    } else if (arg == "--emit-qasm") {
      cli.emit_qasm = true;
    } else if (arg == "--emit-cqasm") {
      cli.emit_cqasm = true;
    } else if (arg == "--emit-dot") {
      cli.emit_dot = true;
    } else if (arg == "--emit-json") {
      cli.emit_json = true;
    } else if (arg == "--calibration") {
      cli.calibration_path = next();
    } else if (arg == "--inject-faults") {
      cli.fault_spec = next();
    } else if (arg == "--max-attempts") {
      if (!qfs::parse_int(next(), cli.max_attempts) || cli.max_attempts < 1) {
        std::cerr << "qfsc: bad --max-attempts count\n";
        return 1;
      }
    } else if (arg == "--emit-timed") {
      cli.emit_timed = true;
    } else if (arg == "--crosstalk-safe") {
      cli.avoid_crosstalk = true;
    } else if (arg == "--profile") {
      cli.profile_only = true;
    } else if (arg == "--lint") {
      cli.lint = true;
    } else if (arg == "--verify") {
      cli.verify = true;
    } else if (arg == "--verify-output") {
      cli.verify_output = true;
    } else if (arg == "--recommend") {
      cli.recommend = true;
    } else if (arg == "--draw") {
      cli.draw_circuit = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "qfsc: unknown option '" << arg << "'";
      std::string suggestion = service::suggest_flag(arg, known_flags());
      if (!suggestion.empty()) std::cerr << " (did you mean " << suggestion
                                         << "?)";
      std::cerr << " (try --help)\n";
      return 1;
    } else {
      cli.input_paths.push_back(arg);
    }
  }
  cli.device = shared.device;
  cli.placer = shared.placer;
  cli.router = shared.router;
  cli.seed = shared.seed;
  cli.jobs = shared.jobs;
  cli.cache_dir = shared.cache_dir;

  std::unique_ptr<cache::CompileCache> compile_cache;
  if (!cli.cache_dir.empty() || cli.cache_stats) {
    cache::CacheConfig cache_config;
    cache_config.disk_dir = cli.cache_dir;  // "" = in-memory tier only
    compile_cache = std::make_unique<cache::CompileCache>(cache_config);
  }
  service::ServiceConfig service_config;
  service_config.cache = compile_cache.get();
  // The CLI reads local files the user already owns; the wire-facing size
  // bound is a daemon concern.
  service_config.max_source_bytes = std::numeric_limits<std::size_t>::max();
  service::CompileService engine(service_config);
  cli.service = &engine;

  int rc = cli.input_paths.size() > 1
               ? run_batch(cli)
               : compile_path(cli,
                              cli.input_paths.empty() ? "" : cli.input_paths[0],
                              std::cout, std::cerr);
  if (cli.cache_stats && compile_cache != nullptr) {
    cache::CacheStatsSnapshot snap = compile_cache->stats();
    JsonValue doc = JsonValue::object();
    doc.set("cache", report::cache_stats_to_json(snap));
    std::cout << doc.to_pretty_string() << "\n";
    std::cerr << report::cache_summary_line(snap) << "\n";
  }
  return rc;
}
