#!/usr/bin/env bash
# Nondeterminism-source lint for src/.
#
# The repo's determinism contract (seeded Rng streams only; byte-identical
# suite output for any --jobs value; reproducible cache fingerprints) dies
# the moment somebody reaches for an ambient entropy source. This lint
# fails the build when src/ picks up:
#
#   rand-family      libc rand()/srand(): unseeded global-state PRNG
#   std-time         std::time() / time(NULL): wall-clock seeds
#   wall-clock       system_clock / high_resolution_clock / gettimeofday /
#                    clock(): non-monotonic clocks (benches must go through
#                    support/timer.h, which pins steady_clock)
#   unordered-iter   range-for over an unordered container: iteration order
#                    is implementation-defined, so any serialized output fed
#                    from one is nondeterministic across platforms
#
# Line comments are stripped before matching, so prose about these APIs
# (e.g. the rationale in support/timer.h) does not trip the lint. Genuine
# exceptions go in tools/lint_nondeterminism_allowlist.txt, one path prefix
# per line, with a justifying comment.
set -u -o pipefail

cd "$(dirname "$0")/.."

allowlist=tools/lint_nondeterminism_allowlist.txt

# name|regex pairs (POSIX ERE; (^|[^[:alnum:]_]) stands in for \b).
checks=(
  'rand-family|(^|[^[:alnum:]_])s?rand[[:space:]]*\('
  'std-time|std::time[[:space:]]*\(|(^|[^[:alnum:]_])time[[:space:]]*\([[:space:]]*(NULL|nullptr|0)[[:space:]]*\)'
  'wall-clock|system_clock|high_resolution_clock|gettimeofday|(^|[^[:alnum:]_])clock[[:space:]]*\('
  'unordered-iter|for[[:space:]]*\(.*:.*unordered_(map|set)'
)

allowed() {
  # $1 = "file:line:text"; allowed when the file starts with any
  # non-comment allowlist entry.
  local file="${1%%:*}"
  [ -f "$allowlist" ] || return 1
  while IFS= read -r entry; do
    case "$entry" in ''|'#'*) continue ;; esac
    case "$file" in "$entry"*) return 0 ;; esac
  done < "$allowlist"
  return 1
}

status=0
for check in "${checks[@]}"; do
  name="${check%%|*}"
  regex="${check#*|}"
  # grep narrows to candidate lines; awk re-tests after stripping
  # end-of-line // comments so documentation cannot trip the lint.
  hits="$(grep -rn --include='*.cpp' --include='*.h' -E "$regex" src \
    | awk -v re="$regex" -F: 'BEGIN{OFS=":"} {
        line = $0
        sub(/^[^:]*:[0-9]*:/, "", line)
        sub(/\/\/.*/, "", line)
        sub(/^[[:space:]]*\*.*/, "", line)   # block-comment continuation
        if (line ~ re) print $0
      }')"
  [ -n "$hits" ] || continue
  while IFS= read -r hit; do
    if allowed "$hit"; then
      continue
    fi
    echo "lint_nondeterminism[$name]: $hit" >&2
    status=1
  done <<< "$hits"
done

if [ "$status" -ne 0 ]; then
  echo "" >&2
  echo "nondeterminism sources found in src/ (see tools/lint_nondeterminism.sh" >&2
  echo "for the contract; genuine exceptions belong in $allowlist)" >&2
fi
exit "$status"
