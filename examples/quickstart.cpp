// Quickstart: build a circuit, compile it for a surface-code chip, and
// inspect the result.
//
//   $ ./quickstart
//
// Walks through the full public API surface in ~60 lines: circuit
// construction, device selection, mapping, fidelity estimation, scheduling
// and QASM export.
#include <iostream>

#include "circuit/draw.h"
#include "compiler/schedule.h"
#include "device/device.h"
#include "mapper/pipeline.h"
#include "qasm/writer.h"
#include "sim/equivalence.h"

int main() {
  using namespace qfs;

  // 1. Describe a quantum algorithm (a 5-qubit GHZ preparation).
  circuit::Circuit algo(5, "ghz5");
  algo.h(0);
  for (int i = 0; i + 1 < 5; ++i) algo.cx(i, i + 1);

  std::cout << "Input circuit:\n" << circuit::draw(algo) << "\n";

  // 2. Pick a target device: the 17-qubit surface-code chip, with the
  //    Versluis et al. error model and shared-control constraints.
  device::Device chip = device::surface17_device();
  std::cout << "Target: " << chip.name() << " (" << chip.num_qubits()
            << " qubits, gate set '" << chip.gateset().name() << "')\n\n";

  // 3. Map: decompose to the primitive set, place, route, report.
  qfs::Rng rng(1234);
  mapper::MappingOptions options;
  options.placer = "degree-match";  // algorithm-driven initial placement
  options.router = "trivial";       // the paper's baseline router
  options.compute_latency = true;
  mapper::MappingResult result = mapper::map_circuit(algo, chip, options, rng);

  std::cout << "gates before/after: " << result.gates_before << " -> "
            << result.gates_after << "  (overhead "
            << result.gate_overhead_pct << " %)\n";
  std::cout << "SWAPs inserted:     " << result.swaps_inserted << "\n";
  std::cout << "est. fidelity:      " << result.fidelity_before << " -> "
            << result.fidelity_after << "\n";
  std::cout << "latency (ASAP):     " << result.latency_before_ns << " ns -> "
            << result.latency_after_ns << " ns\n\n";

  // 4. Verify the compilation preserved semantics (simulator check).
  qfs::Rng check(99);
  bool ok = sim::mapping_preserves_semantics(
      algo, result.mapped, result.initial_layout, result.final_layout, check);
  std::cout << "semantics preserved: " << (ok ? "yes" : "NO") << "\n\n";

  // 5. Export the compiled circuit as OpenQASM 2.0.
  std::cout << "Compiled OpenQASM:\n" << qasm::to_qasm(result.mapped);
  return ok ? 0 : 1;
}
