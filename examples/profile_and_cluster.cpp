// Scenario: interaction-graph profiling and algorithm clustering (the
// paper's Sec. IV workflow). Takes OpenQASM text on stdin if provided,
// otherwise profiles a built-in mix of algorithms.
//
//   $ ./profile_and_cluster            # built-in demo suite
//   $ ./profile_and_cluster < my.qasm  # profile your own circuit
#include <iostream>
#include <sstream>
#include <unistd.h>

#include "profile/circuit_profile.h"
#include "profile/clustering.h"
#include "qasm/parser.h"
#include "report/table.h"
#include "support/strings.h"
#include "workloads/algorithms.h"
#include "workloads/random_circuit.h"

using namespace qfs;

namespace {

void print_profile(const profile::CircuitProfile& p) {
  report::TextTable t({"metric", "value"});
  t.add_row({"qubits (active)", std::to_string(p.num_qubits)});
  t.add_row({"gates", std::to_string(p.gate_count)});
  t.add_row({"two-qubit gate %",
             format_double(100.0 * p.two_qubit_fraction, 1)});
  t.add_row({"depth", std::to_string(p.depth)});
  t.add_row({"interaction edges", std::to_string(p.ig_edges)});
  t.add_row({"avg shortest path", format_double(p.avg_shortest_path, 3)});
  t.add_row({"max / min degree", std::to_string(p.max_degree) + " / " +
                                     std::to_string(p.min_degree)});
  t.add_row({"adjacency std dev", format_double(p.adj_matrix_stddev, 3)});
  t.add_row({"density", format_double(p.density, 3)});
  t.add_row({"clustering coeff", format_double(p.clustering, 3)});
  std::cout << t.to_string();
}

}  // namespace

int main() {
  // Piped QASM: profile that single circuit.
  if (!isatty(STDIN_FILENO)) {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    std::string text = buffer.str();
    if (!qfs::trim(text).empty()) {
      auto parsed = qasm::parse(text);
      if (!parsed.is_ok()) {
        std::cerr << "parse error: " << parsed.status().to_string() << "\n";
        return 1;
      }
      std::cout << "Profile of the piped circuit:\n";
      print_profile(profile::profile_circuit(parsed.value()));
      return 0;
    }
  }

  // Built-in demo: profile a mix and cluster it.
  std::cout << "=== Profiling a mixed set of algorithms ===\n\n";
  qfs::Rng rng(11);
  std::vector<std::pair<std::string, circuit::Circuit>> circuits;
  for (int n : {8, 12, 16}) circuits.emplace_back("ghz", workloads::ghz(n));
  for (int n : {6, 8, 10}) circuits.emplace_back("qft", workloads::qft(n));
  for (int n : {8, 12}) {
    circuits.emplace_back("vqe", workloads::vqe_ansatz(n, 3, rng));
  }
  for (int i = 0; i < 5; ++i) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 10;
    spec.num_gates = 300;
    spec.two_qubit_fraction = 0.5;
    circuits.emplace_back("random", workloads::random_circuit(spec, rng));
  }

  std::vector<profile::CircuitProfile> profiles;
  for (auto& [label, c] : circuits) {
    profiles.push_back(profile::profile_circuit(c));
    profiles.back().name = label + "/" + c.name();
  }

  report::TextTable t({"circuit", "qubits", "gates", "2q%", "avg sp",
                       "max deg", "adj std"});
  for (const auto& p : profiles) {
    t.add_row({p.name, std::to_string(p.num_qubits),
               std::to_string(p.gate_count),
               format_double(100.0 * p.two_qubit_fraction, 0),
               format_double(p.avg_shortest_path, 2),
               std::to_string(p.max_degree),
               format_double(p.adj_matrix_stddev, 2)});
  }
  std::cout << t.to_string() << "\n";

  qfs::Rng krng(3);
  auto clusters = profile::cluster_profiles(profiles, 3, krng);
  std::cout << "k-means (k=3) on the Pearson-reduced metric space:\n";
  for (int c = 0; c < 3; ++c) {
    std::cout << "  cluster " << c << ": ";
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      if (clusters.cluster_of_circuit[i] == c) {
        std::cout << profiles[i].name << "  ";
      }
    }
    std::cout << "\n";
  }
  std::cout << "\nStructurally similar algorithms (e.g. the GHZ family) land "
               "in the same cluster;\nrandom circuits separate from "
               "structured ones even at similar size parameters.\n";
  return 0;
}
