// Scenario: compile a QAOA-MaxCut instance — the NISQ workload class the
// paper's introduction motivates — onto the 97-qubit surface lattice, and
// quantify what algorithm-driven placement buys over the trivial baseline.
#include <iostream>

#include "device/device.h"
#include "graph/generators.h"
#include "mapper/pipeline.h"
#include "profile/circuit_profile.h"
#include "report/table.h"
#include "support/strings.h"
#include "workloads/algorithms.h"

int main() {
  using namespace qfs;

  // A random 3-regular MaxCut problem on 24 vertices (a standard QAOA
  // benchmark family), two QAOA layers.
  qfs::Rng rng(7);
  graph::Graph problem = graph::random_regular_graph(24, 3, rng);
  circuit::Circuit qaoa = workloads::qaoa_maxcut(problem, 2, rng);

  profile::CircuitProfile p = profile::profile_circuit(qaoa);
  std::cout << "QAOA instance: " << p.num_qubits << " qubits, "
            << p.gate_count << " gates, "
            << format_double(100.0 * p.two_qubit_fraction, 1)
            << " % two-qubit gates\n";
  std::cout << "interaction graph: " << p.ig_edges << " edges, avg shortest "
            << "path " << format_double(p.avg_shortest_path, 2)
            << ", max degree " << p.max_degree << "\n\n";

  device::Device chip = device::surface97_device();

  report::TextTable t({"placer", "router", "swaps", "overhead %",
                       "fidelity decrease %"});
  for (const std::string placer : {"trivial", "degree-match", "annealing"}) {
    for (const std::string router : {"trivial", "lookahead"}) {
      mapper::MappingOptions opt;
      opt.placer = placer;
      opt.router = router;
      qfs::Rng map_rng(2022);
      mapper::MappingResult r = mapper::map_circuit(qaoa, chip, opt, map_rng);
      t.add_row({placer, router, std::to_string(r.swaps_inserted),
                 format_double(r.gate_overhead_pct, 1),
                 format_double(r.fidelity_decrease_pct, 1)});
    }
  }
  std::cout << t.to_string() << "\n";
  std::cout << "Algorithm-driven placement (degree-match / annealing) reads\n"
               "the interaction graph before placing qubits; the paper's\n"
               "thesis is that this structural information reduces routing\n"
               "overhead compared to the hardware-agnostic trivial layout.\n";
  return 0;
}
