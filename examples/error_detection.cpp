// Scenario: error detection on NISQ hardware — a repetition code under
// depolarizing noise, simulated with the stabilizer tableau.
//
// Shows three substrates cooperating: the workload generator builds the
// syndrome-extraction circuit, the error model supplies physical error
// rates, and the stabilizer simulator runs thousands of noisy shots at
// widths a state-vector simulator could never touch.
#include <iostream>

#include "device/error_model.h"
#include "report/table.h"
#include "sim/stabilizer.h"
#include "support/rng.h"
#include "support/strings.h"
#include "workloads/algorithms.h"

int main() {
  using namespace qfs;

  const int n_data = 11;           // 11 data + 10 ancilla = 21 qubits
  const int n_anc = n_data - 1;
  const int shots = 2000;

  std::cout << "=== Repetition-code error detection (stabilizer shots) ===\n";
  std::cout << n_data << " data qubits, " << n_anc << " ancillas, " << shots
            << " shots per error rate\n\n";

  report::TextTable t({"data X-error prob", "mean injected errors/shot",
                       "shots with any syndrome fired", "detection rate"});
  for (double p_error : {0.001, 0.005, 0.02, 0.05}) {
    qfs::Rng rng(2022);
    int fired_shots = 0;
    int shots_with_errors = 0;
    long long total_errors = 0;
    for (int shot = 0; shot < shots; ++shot) {
      sim::StabilizerState state(n_data + n_anc);
      // Noise: independent X errors on the data register before syndrome
      // extraction (the storage-error model the repetition code targets).
      int injected = 0;
      for (int d = 0; d < n_data; ++d) {
        if (rng.bernoulli(p_error)) {
          state.apply_gate(circuit::make_gate(circuit::GateKind::kX, {d}));
          ++injected;
        }
      }
      total_errors += injected;
      if (injected > 0) ++shots_with_errors;
      // One noiseless syndrome-extraction round.
      for (int i = 0; i < n_anc; ++i) {
        state.apply_gate(
            circuit::make_gate(circuit::GateKind::kCx, {i, n_data + i}));
        state.apply_gate(
            circuit::make_gate(circuit::GateKind::kCx, {i + 1, n_data + i}));
      }
      bool fired = false;
      for (int i = 0; i < n_anc; ++i) {
        if (state.measure(n_data + i, rng)) fired = true;
      }
      if (fired) ++fired_shots;
    }
    double detection = shots_with_errors == 0
                           ? 1.0
                           : static_cast<double>(fired_shots) /
                                 static_cast<double>(shots_with_errors);
    t.add_row({format_double(p_error, 3),
               format_double(total_errors / static_cast<double>(shots), 3),
               std::to_string(fired_shots) + "/" + std::to_string(shots),
               format_double(100.0 * detection, 1) + " %"});
  }
  std::cout << t.to_string() << "\n";
  std::cout << "Every shot with at least one injected X fires a syndrome "
               "(detection rate 100 %):\nthe repetition code detects all "
               "single-shot bit-flip patterns except the\nundetectable "
               "full-register flip, which is vanishingly rare here.\n";
  return 0;
}
