// Scenario: materialise a benchmark suite on disk, reload it, and produce
// a compilation scoreboard — the workflow of a mapping-research study
// (generate once, share the QASM files, evaluate many strategies).
#include <iostream>

#include "mapper/pipeline.h"
#include "report/table.h"
#include "stats/descriptive.h"
#include "support/strings.h"
#include "workloads/suite.h"
#include "workloads/suite_io.h"

int main(int argc, char** argv) {
  using namespace qfs;

  std::string dir = argc > 1 ? argv[1] : "/tmp/qfs_suite_demo";

  // 1. Generate a small, seeded suite and write it as QASM + manifest.
  qfs::Rng rng(2022);
  workloads::SuiteOptions opts;
  opts.random_count = 6;
  opts.real_count = 8;
  opts.reversible_count = 4;
  opts.max_qubits = 16;
  opts.max_gates = 300;
  auto suite = workloads::make_suite(opts, rng);
  auto status = workloads::write_suite_to_directory(suite, dir);
  if (!status.is_ok()) {
    std::cerr << status.to_string() << "\n";
    return 1;
  }
  std::cout << "Wrote " << suite.size() << " circuits + manifest to " << dir
            << "\n\n";

  // 2. Reload from disk (the files are the ground truth now).
  auto loaded = workloads::load_suite_from_directory(dir);
  if (!loaded.is_ok()) {
    std::cerr << loaded.status().to_string() << "\n";
    return 1;
  }

  // 3. Scoreboard: two compilation strategies on the reloaded suite.
  device::Device chip = device::surface17_device();
  report::TextTable t({"strategy", "mean overhead %", "worst overhead %",
                       "mean fidelity decrease %"});
  for (const auto& [placer, router] :
       {std::pair<std::string, std::string>{"trivial", "trivial"},
        {"annealing", "lookahead"}}) {
    std::vector<double> overhead, fdec;
    for (const auto& b : loaded.value()) {
      mapper::MappingOptions mo;
      mo.placer = placer;
      mo.router = router;
      qfs::Rng map_rng(7);
      auto r = mapper::map_circuit(b.circuit, chip, mo, map_rng);
      overhead.push_back(r.gate_overhead_pct);
      fdec.push_back(r.fidelity_decrease_pct);
    }
    t.add_row({placer + " + " + router,
               format_double(stats::mean(overhead), 1),
               format_double(stats::max_value(overhead), 1),
               format_double(stats::mean(fdec), 1)});
  }
  std::cout << t.to_string() << "\n";
  std::cout << "The suite on disk is reusable: rerun this binary with the "
               "same directory\nor feed individual .qasm files to qfsc.\n";
  return 0;
}
