// Scenario: hardware-aware compilation with error variability.
//
// NISQ chips do not have uniform error rates; the paper lists "gate error
// rates [and] error variability across the quantum device" among the
// low-level details a co-designed compiler should exploit. This example
// randomises per-edge fidelities on a surface-17 chip and shows the
// noise-aware router picking higher-fidelity SWAP paths than the trivial
// router, at equal or better estimated success rate.
#include <iostream>

#include "device/device.h"
#include "device/fidelity.h"
#include "mapper/pipeline.h"
#include "report/table.h"
#include "support/strings.h"
#include "workloads/random_circuit.h"

int main() {
  using namespace qfs;

  device::Device chip = device::surface17_device();
  // Inject +-3% variability across qubits and edges, then kill one edge
  // almost completely (a "bad coupler", common on real devices).
  qfs::Rng noise(5);
  chip.mutable_error_model().randomize(chip.num_qubits(),
                                       chip.topology().edge_list(), 0.03,
                                       noise);
  chip.mutable_error_model().set_edge_fidelity(3, 5, 0.80);
  std::cout << "Device: " << chip.name()
            << " with randomized error rates; edge Q3-Q5 degraded to 0.80 "
               "two-qubit fidelity.\n\n";

  report::TextTable t({"circuit", "router", "swaps", "log fidelity",
                       "est. success rate"});
  qfs::Rng gen(21);
  for (int instance = 0; instance < 4; ++instance) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 10;
    spec.num_gates = 120;
    spec.two_qubit_fraction = 0.45;
    circuit::Circuit c = workloads::random_circuit(spec, gen);
    c.set_name("random#" + std::to_string(instance));

    for (const std::string router : {"trivial", "noise-aware"}) {
      mapper::MappingOptions opt;
      opt.router = router;
      qfs::Rng rng(100 + static_cast<std::uint64_t>(instance));
      mapper::MappingResult r = mapper::map_circuit(c, chip, opt, rng);
      t.add_row({c.name(), router, std::to_string(r.swaps_inserted),
                 format_double(r.log_fidelity_after, 3),
                 format_double(r.fidelity_after, 4)});
    }
  }
  std::cout << t.to_string() << "\n";
  std::cout << "The noise-aware router reads per-edge fidelities (bottom-up\n"
               "information flow through the stack) and detours around the\n"
               "degraded coupler whenever an equally short or slightly longer\n"
               "but more reliable path exists.\n";
  return 0;
}
