// Scenario: the full stack, top to bottom (Fig. 1 of the paper).
//
// A quantum algorithm descends through every layer qfs implements:
//   application  ->  circuit IR            (workloads / circuit)
//   compiler     ->  decompose + map       (compiler / mapper)
//   scheduler    ->  cycle-accurate timing (compiler::asap_schedule)
//   quantum ISA  ->  timed bundles         (isa::TimedProgram)
// and the control-electronics view is approximated by per-qubit
// utilisation and shared-control-group validation.
#include <iostream>

#include "compiler/schedule.h"
#include "device/device.h"
#include "isa/pulse.h"
#include "isa/timed_program.h"
#include "mapper/pipeline.h"
#include "report/table.h"
#include "support/strings.h"
#include "workloads/algorithms.h"

int main() {
  using namespace qfs;

  std::cout << "=== Full-stack lowering: application -> control timing ===\n\n";

  // Layer 1: the application (a 4-bit Cuccaro adder).
  circuit::Circuit algo = workloads::cuccaro_adder(4);
  std::cout << "[application]  " << algo.name() << ": " << algo.num_qubits()
            << " qubits, " << algo.gate_count() << " gates, depth "
            << algo.depth() << "\n";

  // Layer 2: compiler — decompose to surface-code primitives, place, route.
  device::Device chip = device::surface17_device();
  mapper::MappingOptions opt;
  opt.placer = "subgraph";  // exact embedding when the structure allows it
  qfs::Rng rng(8);
  mapper::MappingResult mapped = mapper::map_circuit(algo, chip, opt, rng);
  std::cout << "[compiler]     " << mapped.gates_after
            << " primitive gates on " << chip.name() << ", "
            << mapped.swaps_inserted << " SWAPs, overhead "
            << format_double(mapped.gate_overhead_pct, 1) << " %\n";

  // Layer 3: scheduler — ASAP with shared-control and crosstalk rules.
  compiler::ScheduleOptions sched_opt;
  sched_opt.avoid_crosstalk = true;
  compiler::Schedule schedule =
      compiler::asap_schedule(mapped.mapped, chip, sched_opt);
  std::cout << "[scheduler]    " << schedule.makespan_cycles << " cycles ("
            << format_double(schedule.makespan_ns() / 1000.0, 2)
            << " us), crosstalk pairs: "
            << compiler::count_crosstalk_pairs(mapped.mapped, chip, schedule)
            << "\n";

  // Layer 4: quantum ISA — explicit timed bundles.
  isa::TimedProgram program =
      isa::lower_to_timed_program(mapped.mapped, schedule);
  std::cout << "[quantum ISA]  " << program.instruction_count()
            << " instructions in " << program.bundles().size()
            << " bundles, mean width "
            << format_double(program.average_bundle_width(), 2)
            << ", valid on device: "
            << (isa::program_is_valid(program, chip) ? "yes" : "NO") << "\n\n";

  // Layer 5: control electronics — analog channels and waveforms.
  auto pulses = isa::lower_to_pulses(program, chip);
  if (pulses.is_ok()) {
    std::cout << "[electronics]  " << pulses.value().total_pulses()
              << " pulses on " << pulses.value().num_channels()
              << " analog channels (drive/flux/readout), channel-exclusive: "
              << (pulses.value().channels_exclusive() ? "yes" : "NO") << "\n\n";
  }

  // Control-electronics view: per-qubit utilisation of the busiest qubits.
  auto util = program.qubit_utilization();
  report::TextTable t({"physical qubit", "control group", "utilisation %"});
  for (int q = 0; q < chip.num_qubits(); ++q) {
    if (util[static_cast<std::size_t>(q)] == 0.0) continue;
    t.add_row({"Q" + std::to_string(q),
               std::to_string(chip.control_group(q)),
               format_double(100.0 * util[static_cast<std::size_t>(q)], 1)});
  }
  std::cout << t.to_string() << "\n";

  std::cout << "First bundles of the timed program:\n";
  std::string text = program.to_text();
  std::size_t shown = 0, pos = 0;
  while (shown < 15 && pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;
    std::cout << text.substr(pos, nl - pos + 1);
    pos = nl + 1;
    ++shown;
  }
  std::cout << "...\n";
  return 0;
}
