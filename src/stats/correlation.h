// Correlation analysis: Pearson / Spearman coefficients, correlation
// matrices over feature tables, and the greedy |rho|-threshold feature
// reduction the paper applies to its interaction-graph metric set (Sec. IV).
#pragma once

#include <string>
#include <vector>

namespace qfs::stats {

/// Pearson correlation coefficient; 0 when either series is constant or
/// sizes mismatch/empty (callers treat that as "no linear relation").
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Spearman rank correlation (Pearson on fractional ranks).
double spearman(const std::vector<double>& xs, const std::vector<double>& ys);

/// A named feature column: `values[i]` belongs to sample i.
struct Feature {
  std::string name;
  std::vector<double> values;
};

/// Symmetric Pearson matrix over feature columns; diagonal is 1.
std::vector<std::vector<double>> correlation_matrix(
    const std::vector<Feature>& features);

struct ReductionResult {
  std::vector<int> kept;     ///< indices into the input feature vector
  std::vector<int> dropped;  ///< indices dropped as redundant
  /// dropped[i] was removed because of |rho| >= threshold with kept feature
  /// redundant_with[i].
  std::vector<int> redundant_with;
};

/// Greedy forward selection in the given priority order: a feature is kept
/// unless it correlates (|rho| >= threshold) with an already-kept one.
/// This mirrors the paper's reduction of the hand-picked metric set.
ReductionResult reduce_features(const std::vector<Feature>& features,
                                double threshold);

}  // namespace qfs::stats
