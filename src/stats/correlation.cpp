#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/descriptive.h"
#include "support/assert.h"

namespace qfs::stats {

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.empty()) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
std::vector<double> fractional_ranks(const std::vector<double>& xs) {
  std::vector<std::size_t> idx(xs.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&xs](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(xs.size(), 0.0);
  std::size_t i = 0;
  while (i < idx.size()) {
    std::size_t j = i;
    while (j + 1 < idx.size() && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    // Average rank for ties (1-based ranks).
    double r = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[idx[k]] = r;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double spearman(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.empty()) return 0.0;
  return pearson(fractional_ranks(xs), fractional_ranks(ys));
}

std::vector<std::vector<double>> correlation_matrix(
    const std::vector<Feature>& features) {
  const std::size_t k = features.size();
  std::vector<std::vector<double>> m(k, std::vector<double>(k, 0.0));
  for (std::size_t i = 0; i < k; ++i) {
    m[i][i] = 1.0;
    for (std::size_t j = i + 1; j < k; ++j) {
      QFS_ASSERT_MSG(features[i].values.size() == features[j].values.size(),
                     "feature columns of unequal length");
      double r = pearson(features[i].values, features[j].values);
      m[i][j] = r;
      m[j][i] = r;
    }
  }
  return m;
}

ReductionResult reduce_features(const std::vector<Feature>& features,
                                double threshold) {
  QFS_ASSERT_MSG(threshold > 0.0 && threshold <= 1.0, "bad threshold");
  ReductionResult result;
  auto m = correlation_matrix(features);
  for (std::size_t i = 0; i < features.size(); ++i) {
    int redundant = -1;
    for (int kept : result.kept) {
      if (std::abs(m[i][static_cast<std::size_t>(kept)]) >= threshold) {
        redundant = kept;
        break;
      }
    }
    if (redundant == -1) {
      result.kept.push_back(static_cast<int>(i));
    } else {
      result.dropped.push_back(static_cast<int>(i));
      result.redundant_with.push_back(redundant);
    }
  }
  return result;
}

}  // namespace qfs::stats
