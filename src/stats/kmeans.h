// k-means clustering, used to group quantum algorithms by their
// interaction-graph feature vectors (Sec. IV: "algorithms can be clustered
// based on their similarities").
#pragma once

#include <vector>

#include "support/rng.h"

namespace qfs::stats {

struct KMeansResult {
  std::vector<int> assignment;                 ///< cluster id per sample
  std::vector<std::vector<double>> centroids;  ///< k x dim
  double inertia = 0.0;                        ///< sum of squared distances
  int iterations = 0;
};

/// Lloyd's algorithm with k-means++ seeding. Samples are row vectors of
/// equal dimension. k must satisfy 1 <= k <= samples.size().
KMeansResult kmeans(const std::vector<std::vector<double>>& samples, int k,
                    qfs::Rng& rng, int max_iterations = 100);

/// Squared Euclidean distance between equal-length vectors.
double squared_distance(const std::vector<double>& a,
                        const std::vector<double>& b);

}  // namespace qfs::stats
