// Descriptive statistics over samples.
#pragma once

#include <vector>

namespace qfs::stats {

double mean(const std::vector<double>& xs);

/// Population variance (divide by N). 0 for empty input.
double variance(const std::vector<double>& xs);

double stddev(const std::vector<double>& xs);

double min_value(const std::vector<double>& xs);
double max_value(const std::vector<double>& xs);

/// Median (average of middle two for even N). 0 for empty input.
double median(std::vector<double> xs);

/// Linear-interpolated quantile, q in [0, 1]. 0 for empty input.
double quantile(std::vector<double> xs, double q);

/// Nearest-rank percentile, p in [0, 1]: the smallest sample x such that at
/// least ceil(p * N) samples are <= x (the classic nearest-rank definition).
/// p = 0 returns the minimum, p = 1 the maximum — exactly, for every N, with
/// no rounding excursion past either end. 0 for empty input. Latency
/// reporting (p50/p99) uses this instead of `quantile` because a reported
/// percentile must be a latency that actually occurred, not an interpolated
/// value between two samples.
double percentile_nearest_rank(std::vector<double> xs, double p);

/// z-score standardisation; constant series map to all zeros.
std::vector<double> standardize(const std::vector<double>& xs);

}  // namespace qfs::stats

#include "support/rng.h"

namespace qfs::stats {

struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;  ///< the sample mean
};

/// Percentile-bootstrap confidence interval for the mean: resample with
/// replacement `resamples` times, take the (alpha/2, 1-alpha/2) quantiles
/// of the resampled means. Empty input returns a zero interval.
ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& xs,
                                     qfs::Rng& rng, int resamples = 2000,
                                     double alpha = 0.05);

}  // namespace qfs::stats
