// Descriptive statistics over samples.
#pragma once

#include <vector>

namespace qfs::stats {

double mean(const std::vector<double>& xs);

/// Population variance (divide by N). 0 for empty input.
double variance(const std::vector<double>& xs);

double stddev(const std::vector<double>& xs);

double min_value(const std::vector<double>& xs);
double max_value(const std::vector<double>& xs);

/// Median (average of middle two for even N). 0 for empty input.
double median(std::vector<double> xs);

/// Linear-interpolated quantile, q in [0, 1]. 0 for empty input.
double quantile(std::vector<double> xs, double q);

/// z-score standardisation; constant series map to all zeros.
std::vector<double> standardize(const std::vector<double>& xs);

}  // namespace qfs::stats

#include "support/rng.h"

namespace qfs::stats {

struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;  ///< the sample mean
};

/// Percentile-bootstrap confidence interval for the mean: resample with
/// replacement `resamples` times, take the (alpha/2, 1-alpha/2) quantiles
/// of the resampled means. Empty input returns a zero interval.
ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& xs,
                                     qfs::Rng& rng, int resamples = 2000,
                                     double alpha = 0.05);

}  // namespace qfs::stats
