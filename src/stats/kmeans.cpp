#include "stats/kmeans.h"

#include <limits>

#include "support/assert.h"

namespace qfs::stats {

double squared_distance(const std::vector<double>& a,
                        const std::vector<double>& b) {
  QFS_ASSERT_MSG(a.size() == b.size(), "dimension mismatch");
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

namespace {

std::vector<std::vector<double>> kmeanspp_seed(
    const std::vector<std::vector<double>>& samples, int k, qfs::Rng& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.push_back(samples[rng.uniform_index(samples.size())]);
  std::vector<double> d2(samples.size());
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : centroids) {
        best = std::min(best, squared_distance(samples[i], c));
      }
      d2[i] = best;
      total += best;
    }
    if (total == 0.0) {
      // All remaining samples coincide with a centroid; duplicate one.
      centroids.push_back(samples[rng.uniform_index(samples.size())]);
      continue;
    }
    double r = rng.uniform_real(0.0, total);
    std::size_t chosen = samples.size() - 1;
    double acc = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      acc += d2[i];
      if (acc >= r) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(samples[chosen]);
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans(const std::vector<std::vector<double>>& samples, int k,
                    qfs::Rng& rng, int max_iterations) {
  QFS_ASSERT_MSG(!samples.empty(), "kmeans on empty sample set");
  QFS_ASSERT_MSG(1 <= k && k <= static_cast<int>(samples.size()),
                 "k out of range");
  const std::size_t dim = samples[0].size();
  for (const auto& s : samples) {
    QFS_ASSERT_MSG(s.size() == dim, "ragged sample matrix");
  }

  KMeansResult result;
  result.centroids = kmeanspp_seed(samples, k, rng);
  result.assignment.assign(samples.size(), -1);

  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      int best = 0;
      double best_d = squared_distance(samples[i], result.centroids[0]);
      for (int c = 1; c < k; ++c) {
        double d = squared_distance(samples[i],
                                    result.centroids[static_cast<std::size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed) break;

    std::vector<std::vector<double>> sums(
        static_cast<std::size_t>(k), std::vector<double>(dim, 0.0));
    std::vector<int> counts(static_cast<std::size_t>(k), 0);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      auto c = static_cast<std::size_t>(result.assignment[i]);
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) sums[c][d] += samples[i][d];
    }
    for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid for empty clusters
      for (std::size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] = sums[c][d] / counts[c];
      }
    }
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    result.inertia += squared_distance(
        samples[i],
        result.centroids[static_cast<std::size_t>(result.assignment[i])]);
  }
  return result;
}

}  // namespace qfs::stats
