// Simple regressions used to extract figure trend lines (e.g. the
// exponential fidelity-vs-gate-count decay of Fig. 3a).
#pragma once

#include <vector>

namespace qfs::stats {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// Ordinary least squares y = slope*x + intercept.
LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Fit y = a * exp(b*x) by OLS on log(y); requires all y > 0 (pairs with
/// y <= 0 are skipped). Returns slope=b, intercept=log(a).
LinearFit exponential_fit(const std::vector<double>& xs,
                          const std::vector<double>& ys);

}  // namespace qfs::stats
