#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace qfs::stats {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double min_value(const std::vector<double>& xs) {
  QFS_ASSERT_MSG(!xs.empty(), "min of empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(const std::vector<double>& xs) {
  QFS_ASSERT_MSG(!xs.empty(), "max of empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  std::size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  QFS_ASSERT_MSG(0.0 <= q && q <= 1.0, "quantile out of [0,1]");
  std::sort(xs.begin(), xs.end());
  double pos = q * static_cast<double>(xs.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double percentile_nearest_rank(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  QFS_ASSERT_MSG(0.0 <= p && p <= 1.0, "percentile out of [0,1]");
  std::sort(xs.begin(), xs.end());
  // Nearest rank: 1-based rank ceil(p * N), clamped to [1, N]. The clamp
  // matters at both ends: p slightly above 0 must not underflow to rank 0,
  // and floating-point noise in p * N must never index past the maximum
  // (the old round-half-up formula did exactly that for small N at p=0.99).
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(xs.size())));
  if (rank < 1) rank = 1;
  if (rank > xs.size()) rank = xs.size();
  return xs[rank - 1];
}

ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& xs,
                                     qfs::Rng& rng, int resamples,
                                     double alpha) {
  QFS_ASSERT_MSG(resamples >= 1, "need at least one resample");
  QFS_ASSERT_MSG(0.0 < alpha && alpha < 1.0, "alpha out of (0,1)");
  ConfidenceInterval ci;
  if (xs.empty()) return ci;
  ci.point = mean(xs);
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      sum += xs[rng.uniform_index(xs.size())];
    }
    means.push_back(sum / static_cast<double>(xs.size()));
  }
  ci.lower = quantile(means, alpha / 2.0);
  ci.upper = quantile(std::move(means), 1.0 - alpha / 2.0);
  return ci;
}

std::vector<double> standardize(const std::vector<double>& xs) {
  double m = mean(xs);
  double s = stddev(xs);
  std::vector<double> out(xs.size(), 0.0);
  if (s == 0.0) return out;
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (xs[i] - m) / s;
  return out;
}

}  // namespace qfs::stats
