#include "stats/regression.h"

#include <cmath>

#include "stats/descriptive.h"

namespace qfs::stats {

LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  LinearFit fit;
  if (xs.size() != ys.size() || xs.size() < 2) return fit;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LinearFit exponential_fit(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  std::vector<double> fx, fy;
  for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    if (ys[i] > 0.0) {
      fx.push_back(xs[i]);
      fy.push_back(std::log(ys[i]));
    }
  }
  return linear_fit(fx, fy);
}

}  // namespace qfs::stats
