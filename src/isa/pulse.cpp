#include "isa/pulse.h"

#include <algorithm>
#include <sstream>

#include "support/strings.h"

namespace qfs::isa {

using circuit::GateKind;

const char* channel_kind_name(ChannelKind kind) {
  switch (kind) {
    case ChannelKind::kDrive: return "drive";
    case ChannelKind::kFlux: return "flux";
    case ChannelKind::kReadout: return "readout";
  }
  return "?";
}

std::string channel_name(const ChannelId& id) {
  std::ostringstream os;
  os << channel_kind_name(id.kind) << ':' << 'Q' << id.a;
  if (id.b >= 0) os << "-Q" << id.b;
  return os.str();
}

void PulseSchedule::add(const ChannelId& channel, Pulse pulse) {
  QFS_ASSERT_MSG(pulse.duration_cycles > 0, "pulse needs positive duration");
  channels_[channel].push_back(std::move(pulse));
}

int PulseSchedule::total_pulses() const {
  int n = 0;
  for (const auto& [id, pulses] : channels_) {
    n += static_cast<int>(pulses.size());
  }
  return n;
}

std::map<ChannelId, double> PulseSchedule::channel_utilization(
    int makespan_cycles) const {
  std::map<ChannelId, double> out;
  if (makespan_cycles <= 0) return out;
  for (const auto& [id, pulses] : channels_) {
    long long busy = 0;
    for (const Pulse& p : pulses) busy += p.duration_cycles;
    out[id] = static_cast<double>(busy) / makespan_cycles;
  }
  return out;
}

bool PulseSchedule::channels_exclusive() const {
  for (const auto& [id, pulses] : channels_) {
    std::vector<std::pair<int, int>> spans;
    for (const Pulse& p : pulses) {
      spans.emplace_back(p.start_cycle, p.start_cycle + p.duration_cycles);
    }
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i].first < spans[i - 1].second) return false;
    }
  }
  return true;
}

std::string PulseSchedule::to_string() const {
  std::ostringstream os;
  for (const auto& [id, pulses] : channels_) {
    os << channel_name(id) << ":";
    for (const Pulse& p : pulses) {
      os << "  [" << p.start_cycle << "," << p.start_cycle + p.duration_cycles
         << ") " << p.waveform;
    }
    os << '\n';
  }
  return os.str();
}

namespace {

std::string waveform_for(const Instruction& ins) {
  std::ostringstream os;
  switch (ins.kind) {
    case GateKind::kMeasure:
      return "readout";
    case GateKind::kReset:
      return "reset";
    case GateKind::kCz:
    case GateKind::kCx:
    case GateKind::kCy:
    case GateKind::kCphase:
    case GateKind::kSwap:
      os << "flux(" << circuit::gate_name(ins.kind);
      for (double p : ins.params) os << ',' << qfs::format_double(p, 6);
      os << ')';
      return os.str();
    default:
      os << "drag(" << circuit::gate_name(ins.kind);
      for (double p : ins.params) os << ',' << qfs::format_double(p, 6);
      os << ')';
      return os.str();
  }
}

}  // namespace

qfs::StatusOr<PulseSchedule> lower_to_pulses(const TimedProgram& program,
                                             const device::Device& device) {
  if (program.num_qubits() > device.num_qubits()) {
    return qfs::invalid_argument("program wider than device");
  }
  PulseSchedule schedule;
  for (const Bundle& bundle : program.bundles()) {
    for (const Instruction& ins : bundle.instructions) {
      Pulse pulse;
      pulse.start_cycle = bundle.start_cycle;
      pulse.duration_cycles = ins.duration_cycles;
      pulse.waveform = waveform_for(ins);
      if (ins.kind == GateKind::kMeasure || ins.kind == GateKind::kReset) {
        schedule.add(ChannelId{ChannelKind::kReadout, ins.qubits[0], -1},
                     pulse);
      } else if (ins.qubits.size() == 1) {
        schedule.add(ChannelId{ChannelKind::kDrive, ins.qubits[0], -1}, pulse);
      } else if (ins.qubits.size() == 2) {
        int a = std::min(ins.qubits[0], ins.qubits[1]);
        int b = std::max(ins.qubits[0], ins.qubits[1]);
        if (!device.topology().adjacent(a, b)) {
          return qfs::invalid_argument(
              "no flux channel for uncoupled pair Q" + std::to_string(a) +
              "-Q" + std::to_string(b));
        }
        schedule.add(ChannelId{ChannelKind::kFlux, a, b}, pulse);
      } else {
        return qfs::invalid_argument(
            "three-qubit instruction has no channel; decompose first");
      }
    }
  }
  if (!schedule.channels_exclusive()) {
    return qfs::invalid_argument("channel conflict in pulse schedule");
  }
  return schedule;
}

}  // namespace qfs::isa
