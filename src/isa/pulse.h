// Control-electronics model: the bottom layer of the full stack.
//
// A timed program lowers onto analog channels: one microwave drive channel
// per qubit (single-qubit rotations), one flux channel per coupling edge
// (two-qubit gates), and one readout channel per qubit (measurement).
// Each instruction becomes a waveform on its channel(s); channels are
// exclusive resources, so the lowering doubles as a hardware-level check
// that the schedule is executable by the electronics.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "device/device.h"
#include "isa/timed_program.h"
#include "support/status.h"

namespace qfs::isa {

enum class ChannelKind { kDrive, kFlux, kReadout };

const char* channel_kind_name(ChannelKind kind);

/// Identity of one analog channel.
struct ChannelId {
  ChannelKind kind = ChannelKind::kDrive;
  int a = 0;  ///< qubit (drive/readout) or lower edge endpoint (flux)
  int b = -1; ///< -1, or upper edge endpoint for flux channels

  bool operator<(const ChannelId& other) const {
    if (kind != other.kind) return kind < other.kind;
    if (a != other.a) return a < other.a;
    return b < other.b;
  }
  bool operator==(const ChannelId& other) const = default;
};

std::string channel_name(const ChannelId& id);

/// One waveform on a channel.
struct Pulse {
  int start_cycle = 0;
  int duration_cycles = 1;
  std::string waveform;  ///< e.g. "drag(rx,1.570796)", "cz_flux", "readout"
};

class PulseSchedule {
 public:
  PulseSchedule() = default;

  void add(const ChannelId& channel, Pulse pulse);

  const std::map<ChannelId, std::vector<Pulse>>& channels() const {
    return channels_;
  }

  int num_channels() const { return static_cast<int>(channels_.size()); }
  int total_pulses() const;

  /// Fraction of the makespan each channel is driving.
  std::map<ChannelId, double> channel_utilization(int makespan_cycles) const;

  /// True when no channel carries overlapping pulses.
  bool channels_exclusive() const;

  /// Multi-line listing for logs/examples.
  std::string to_string() const;

 private:
  std::map<ChannelId, std::vector<Pulse>> channels_;
};

/// Lower a timed program onto the device's channels. Fails with a status
/// (not a crash) when an instruction has no realisable channel — e.g. a
/// two-qubit gate on an uncoupled pair.
qfs::StatusOr<PulseSchedule> lower_to_pulses(const TimedProgram& program,
                                             const device::Device& device);

}  // namespace qfs::isa
