#include "isa/timed_program.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/strings.h"

namespace qfs::isa {

using circuit::GateKind;

TimedProgram::TimedProgram(std::string name, double cycle_time_ns,
                           int num_qubits, std::vector<Bundle> bundles)
    : name_(std::move(name)),
      cycle_time_ns_(cycle_time_ns),
      num_qubits_(num_qubits),
      bundles_(std::move(bundles)) {
  QFS_ASSERT_MSG(cycle_time_ns_ > 0, "bad cycle time");
  int prev = -1;
  for (const Bundle& b : bundles_) {
    QFS_ASSERT_MSG(b.start_cycle > prev, "bundles must be strictly ordered");
    prev = b.start_cycle;
  }
}

int TimedProgram::makespan_cycles() const {
  int end = 0;
  for (const Bundle& b : bundles_) {
    for (const Instruction& ins : b.instructions) {
      end = std::max(end, b.start_cycle + ins.duration_cycles);
    }
  }
  return end;
}

int TimedProgram::instruction_count() const {
  int n = 0;
  for (const Bundle& b : bundles_) n += static_cast<int>(b.instructions.size());
  return n;
}

double TimedProgram::average_bundle_width() const {
  if (bundles_.empty()) return 0.0;
  return static_cast<double>(instruction_count()) /
         static_cast<double>(bundles_.size());
}

std::vector<double> TimedProgram::qubit_utilization() const {
  std::vector<double> busy(static_cast<std::size_t>(num_qubits_), 0.0);
  int span = makespan_cycles();
  if (span == 0) return busy;
  for (const Bundle& b : bundles_) {
    for (const Instruction& ins : b.instructions) {
      for (int q : ins.qubits) {
        busy[static_cast<std::size_t>(q)] += ins.duration_cycles;
      }
    }
  }
  for (double& v : busy) v /= span;
  return busy;
}

std::string TimedProgram::to_text() const {
  std::ostringstream os;
  os << "# timed program: " << (name_.empty() ? "<anonymous>" : name_) << "\n";
  os << ".qubits " << num_qubits_ << "\n";
  os << ".cycle_time_ns " << qfs::format_double(cycle_time_ns_, 1) << "\n";
  for (const Bundle& b : bundles_) {
    os << b.start_cycle << ": { ";
    for (std::size_t i = 0; i < b.instructions.size(); ++i) {
      const Instruction& ins = b.instructions[i];
      if (i) os << " | ";
      os << circuit::gate_name(ins.kind);
      if (!ins.params.empty()) {
        os << '(';
        for (std::size_t p = 0; p < ins.params.size(); ++p) {
          if (p) os << ',';
          os << qfs::format_double(ins.params[p], 6);
        }
        os << ')';
      }
      os << ' ';
      for (std::size_t q = 0; q < ins.qubits.size(); ++q) {
        if (q) os << ',';
        os << 'Q' << ins.qubits[q];
      }
    }
    os << " }\n";
  }
  return os.str();
}

TimedProgram lower_to_timed_program(const circuit::Circuit& circuit,
                                    const compiler::Schedule& schedule) {
  QFS_ASSERT_MSG(schedule.gates.size() == circuit.gates().size(),
                 "schedule does not match circuit");
  std::map<int, Bundle> by_cycle;
  for (const auto& sg : schedule.gates) {
    const auto& g = circuit.gates()[static_cast<std::size_t>(sg.gate_index)];
    if (g.kind == GateKind::kBarrier) continue;
    Bundle& b = by_cycle[sg.start_cycle];
    b.start_cycle = sg.start_cycle;
    b.instructions.push_back(
        Instruction{g.kind, g.qubits, g.params, sg.duration_cycles});
  }
  std::vector<Bundle> bundles;
  bundles.reserve(by_cycle.size());
  for (auto& [cycle, bundle] : by_cycle) {
    bundles.push_back(std::move(bundle));
  }
  return TimedProgram(circuit.name(), schedule.cycle_time_ns,
                      circuit.num_qubits(), std::move(bundles));
}

bool program_is_valid(const TimedProgram& program,
                      const device::Device& device) {
  if (program.num_qubits() > device.num_qubits()) return false;

  // Qubit busy intervals.
  std::vector<std::vector<std::pair<int, int>>> busy(
      static_cast<std::size_t>(program.num_qubits()));
  for (const Bundle& b : program.bundles()) {
    for (const Instruction& ins : b.instructions) {
      if (ins.duration_cycles <= 0) return false;
      for (int q : ins.qubits) {
        if (q < 0 || q >= program.num_qubits()) return false;
        for (const auto& [s, e] : busy[static_cast<std::size_t>(q)]) {
          if (b.start_cycle < e && s < b.start_cycle + ins.duration_cycles) {
            return false;
          }
        }
        busy[static_cast<std::size_t>(q)].emplace_back(
            b.start_cycle, b.start_cycle + ins.duration_cycles);
      }
      if (circuit::is_two_qubit(ins.kind) &&
          !device.topology().adjacent(ins.qubits[0], ins.qubits[1])) {
        return false;
      }
    }
  }

  // Control groups: instructions overlapping in time within a group must
  // share a kind.
  if (device.has_control_groups()) {
    struct Span {
      int start, end;
      GateKind kind;
    };
    std::map<int, std::vector<Span>> spans;
    for (const Bundle& b : program.bundles()) {
      for (const Instruction& ins : b.instructions) {
        for (int q : ins.qubits) {
          spans[device.control_group(q)].push_back(
              {b.start_cycle, b.start_cycle + ins.duration_cycles, ins.kind});
        }
      }
    }
    for (const auto& [group, list] : spans) {
      for (std::size_t i = 0; i < list.size(); ++i) {
        for (std::size_t j = i + 1; j < list.size(); ++j) {
          if (list[i].kind != list[j].kind && list[i].start < list[j].end &&
              list[j].start < list[i].end) {
            return false;
          }
        }
      }
    }
  }
  return true;
}

}  // namespace qfs::isa
