// Binary instruction encoding — the executable form a control processor
// would fetch (eQASM's role in the stack). 32-bit word stream with a
// header, one record per instruction, and float32 angle payloads.
//
// Layout (little-endian words):
//   [0] magic 0x51465330 ("QFS0")
//   [1] num_qubits
//   [2] cycle time in units of 0.1 ns
//   [3] instruction count
//   per instruction:
//     [a] opcode(bits 0-7) | qubit0(8-15) | qubit1(16-23) | nparams(24-31)
//     [b] start cycle
//     [c] duration cycles (bits 0-15) | qubit2 (16-23, 0xFF if none) | 0
//     [d...] nparams words: float32 bit patterns
#pragma once

#include <cstdint>
#include <vector>

#include "isa/timed_program.h"
#include "support/status.h"

namespace qfs::isa {

inline constexpr std::uint32_t kBinaryMagic = 0x51465330u;

/// Encode a timed program. Programs wider than 255 qubits or with cycles
/// beyond 2^32 are a contract violation (no current device needs them).
std::vector<std::uint32_t> encode_program(const TimedProgram& program);

/// Decode a word stream back into a timed program. Malformed input
/// (truncation, bad magic, unknown opcodes, bad operand indices) yields a
/// parse error naming the offending word.
qfs::StatusOr<TimedProgram> decode_program(
    const std::vector<std::uint32_t>& words);

}  // namespace qfs::isa
