// Timed instruction programs: the quantum-ISA / microarchitecture layer of
// the full stack (eQASM-style explicit timing).
//
// A compiled+scheduled circuit lowers to a TimedProgram: bundles of
// instructions that start on the same cycle, each carrying its physical
// operands and duration. This is the representation the control
// electronics would consume; utilisation queries expose how busy the chip
// and its shared control channels are.
#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "compiler/schedule.h"
#include "device/device.h"

namespace qfs::isa {

struct Instruction {
  circuit::GateKind kind = circuit::GateKind::kI;
  std::vector<int> qubits;   ///< physical operands
  std::vector<double> params;
  int duration_cycles = 1;
};

/// Instructions issued on the same cycle.
struct Bundle {
  int start_cycle = 0;
  std::vector<Instruction> instructions;
};

class TimedProgram {
 public:
  TimedProgram() = default;
  TimedProgram(std::string name, double cycle_time_ns, int num_qubits,
               std::vector<Bundle> bundles);

  const std::string& name() const { return name_; }
  double cycle_time_ns() const { return cycle_time_ns_; }
  int num_qubits() const { return num_qubits_; }
  const std::vector<Bundle>& bundles() const { return bundles_; }

  /// Total cycles from first issue to last completion.
  int makespan_cycles() const;

  /// Total instruction count (barriers never appear in timed programs).
  int instruction_count() const;

  /// Mean instructions issued per non-empty bundle (a parallelism measure).
  double average_bundle_width() const;

  /// Fraction of the makespan each qubit spends executing.
  std::vector<double> qubit_utilization() const;

  /// eQASM-style text:  "<cycle>: { cz Q0,Q2 | rx(1.57) Q5 }".
  std::string to_text() const;

 private:
  std::string name_;
  double cycle_time_ns_ = 20.0;
  int num_qubits_ = 0;
  std::vector<Bundle> bundles_;
};

/// Lower a circuit with its schedule into a timed program. Barriers are
/// structural and dropped. The schedule must come from the same circuit.
TimedProgram lower_to_timed_program(const circuit::Circuit& circuit,
                                    const compiler::Schedule& schedule);

/// Validate a timed program against a device: operands in range,
/// two-qubit instructions on coupled qubits, no qubit busy in two bundles
/// at once, control groups never mixing kinds in one cycle.
bool program_is_valid(const TimedProgram& program,
                      const device::Device& device);

}  // namespace qfs::isa
