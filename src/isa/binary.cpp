#include "isa/binary.h"

#include <cmath>
#include <cstring>
#include <map>
#include <sstream>

namespace qfs::isa {

namespace {

std::uint32_t float_bits(float f) {
  std::uint32_t u = 0;
  std::memcpy(&u, &f, sizeof u);
  return u;
}

float bits_float(std::uint32_t u) {
  float f = 0;
  std::memcpy(&f, &u, sizeof f);
  return f;
}

constexpr std::uint32_t kNoQubit = 0xFF;

qfs::Status word_error(std::size_t index, const std::string& message) {
  std::ostringstream os;
  os << "binary program word " << index << ": " << message;
  return qfs::parse_error(os.str());
}

}  // namespace

std::vector<std::uint32_t> encode_program(const TimedProgram& program) {
  QFS_ASSERT_MSG(program.num_qubits() <= 255,
                 "binary encoding supports <= 255 qubits");
  std::vector<std::uint32_t> words;
  words.push_back(kBinaryMagic);
  words.push_back(static_cast<std::uint32_t>(program.num_qubits()));
  words.push_back(
      static_cast<std::uint32_t>(std::llround(program.cycle_time_ns() * 10.0)));
  words.push_back(static_cast<std::uint32_t>(program.instruction_count()));

  for (const Bundle& bundle : program.bundles()) {
    for (const Instruction& ins : bundle.instructions) {
      QFS_ASSERT_MSG(ins.qubits.size() >= 1 && ins.qubits.size() <= 3,
                     "instruction arity out of encodable range");
      QFS_ASSERT_MSG(ins.params.size() <= 255, "too many parameters");
      std::uint32_t q0 = static_cast<std::uint32_t>(ins.qubits[0]);
      std::uint32_t q1 =
          ins.qubits.size() > 1 ? static_cast<std::uint32_t>(ins.qubits[1])
                                : kNoQubit;
      std::uint32_t q2 =
          ins.qubits.size() > 2 ? static_cast<std::uint32_t>(ins.qubits[2])
                                : kNoQubit;
      words.push_back(static_cast<std::uint32_t>(ins.kind) | (q0 << 8) |
                      (q1 << 16) |
                      (static_cast<std::uint32_t>(ins.params.size()) << 24));
      words.push_back(static_cast<std::uint32_t>(bundle.start_cycle));
      QFS_ASSERT_MSG(ins.duration_cycles >= 0 && ins.duration_cycles < 65536,
                     "duration out of encodable range");
      words.push_back(static_cast<std::uint32_t>(ins.duration_cycles) |
                      (q2 << 16));
      for (double p : ins.params) {
        words.push_back(float_bits(static_cast<float>(p)));
      }
    }
  }
  return words;
}

qfs::StatusOr<TimedProgram> decode_program(
    const std::vector<std::uint32_t>& words) {
  if (words.size() < 4) return qfs::parse_error("binary program too short");
  if (words[0] != kBinaryMagic) {
    return word_error(0, "bad magic");
  }
  const int num_qubits = static_cast<int>(words[1]);
  if (num_qubits < 1 || num_qubits > 255) {
    return word_error(1, "bad qubit count");
  }
  const double cycle_time_ns = static_cast<double>(words[2]) / 10.0;
  if (cycle_time_ns <= 0.0) return word_error(2, "bad cycle time");
  const std::uint32_t count = words[3];

  std::map<int, Bundle> by_cycle;
  std::size_t pos = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (pos + 3 > words.size()) {
      return word_error(pos, "truncated instruction record");
    }
    std::uint32_t head = words[pos];
    auto opcode = static_cast<int>(head & 0xFF);
    auto q0 = static_cast<int>((head >> 8) & 0xFF);
    auto q1 = static_cast<int>((head >> 16) & 0xFF);
    auto nparams = static_cast<int>((head >> 24) & 0xFF);
    if (opcode >= circuit::kNumGateKinds) {
      return word_error(pos, "unknown opcode");
    }
    auto kind = static_cast<circuit::GateKind>(opcode);
    auto start_cycle = static_cast<int>(words[pos + 1]);
    auto duration = static_cast<int>(words[pos + 2] & 0xFFFF);
    auto q2 = static_cast<int>((words[pos + 2] >> 16) & 0xFF);
    pos += 3;
    if (pos + static_cast<std::size_t>(nparams) > words.size()) {
      return word_error(pos, "truncated parameter payload");
    }
    Instruction ins;
    ins.kind = kind;
    ins.duration_cycles = duration;
    for (int q : {q0, q1, q2}) {
      if (q == static_cast<int>(0xFF)) continue;
      if (q < 0 || q >= num_qubits) {
        return word_error(pos, "operand out of range");
      }
      ins.qubits.push_back(q);
    }
    int expected_arity = circuit::gate_arity(kind);
    if (expected_arity != 0 &&
        static_cast<int>(ins.qubits.size()) != expected_arity) {
      return word_error(pos, "operand count does not match opcode");
    }
    if (nparams != circuit::gate_param_count(kind)) {
      return word_error(pos, "parameter count does not match opcode");
    }
    for (int p = 0; p < nparams; ++p) {
      ins.params.push_back(static_cast<double>(bits_float(words[pos])));
      ++pos;
    }
    Bundle& bundle = by_cycle[start_cycle];
    bundle.start_cycle = start_cycle;
    bundle.instructions.push_back(std::move(ins));
  }
  if (pos != words.size()) {
    return word_error(pos, "trailing words after last instruction");
  }
  std::vector<Bundle> bundles;
  bundles.reserve(by_cycle.size());
  for (auto& [cycle, bundle] : by_cycle) {
    bundles.push_back(std::move(bundle));
  }
  return TimedProgram("decoded", cycle_time_ns, num_qubits,
                      std::move(bundles));
}

}  // namespace qfs::isa
