#include "circuit/flat.h"

#include <cstdlib>
#include <cstring>

#include "support/assert.h"

namespace qfs::circuit {

FlatCircuit flatten(const Circuit& circuit) {
  FlatCircuit flat;
  flat.num_qubits = circuit.num_qubits();
  flat.instrs.reserve(circuit.size());
  for (const Gate& g : circuit.gates()) {
    Instr ins;
    ins.op = to_op(g.kind);
    QFS_ASSERT_MSG(g.qubits.size() <= 255 && g.params.size() <= 255,
                   "gate operand/param count exceeds flat IR limits");
    ins.num_qubits = static_cast<std::uint8_t>(g.qubits.size());
    ins.num_params = static_cast<std::uint8_t>(g.params.size());
    if (g.qubits.size() <= static_cast<std::size_t>(Instr::kMaxInlineQubits)) {
      for (std::size_t i = 0; i < g.qubits.size(); ++i) {
        ins.q[i] = g.qubits[i];
      }
    } else {
      ins.overflow_offset = static_cast<std::uint32_t>(flat.overflow.size());
      flat.overflow.insert(flat.overflow.end(), g.qubits.begin(),
                           g.qubits.end());
    }
    ins.param_offset = static_cast<std::uint32_t>(flat.params.size());
    flat.params.insert(flat.params.end(), g.params.begin(), g.params.end());
    flat.instrs.push_back(ins);
  }
  return flat;
}

Circuit unflatten(const FlatCircuit& flat, const std::string& name) {
  Circuit out(flat.num_qubits, name);
  for (std::size_t i = 0; i < flat.instrs.size(); ++i) {
    const Instr& ins = flat.instrs[i];
    int count = 0;
    const std::int32_t* q = flat.qubits_of(i, &count);
    std::vector<int> qubits(q, q + count);
    const double* p = flat.params_of(i);
    std::vector<double> params(p, p + ins.num_params);
    out.add(to_gate_kind(ins.op), std::move(qubits), std::move(params));
  }
  return out;
}

namespace {

IrMode& ir_mode_storage() {
  // Read once at first use: the mode is a process-wide toggle for A/B
  // timing and the equivalence tests, not a per-compile knob (keeping it
  // out of MappingOptions keeps cache fingerprints identical across modes).
  static IrMode mode = [] {
    const char* env = std::getenv("QFS_IR");
    if (env != nullptr && std::strcmp(env, "legacy") == 0) {
      return IrMode::kLegacy;
    }
    return IrMode::kFlat;
  }();
  return mode;
}

}  // namespace

IrMode ir_mode() { return ir_mode_storage(); }

void set_ir_mode_for_testing(IrMode mode) { ir_mode_storage() = mode; }

}  // namespace qfs::circuit
