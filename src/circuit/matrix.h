// Small dense complex matrices and the unitary matrices of the gate set.
// Dimensions stay tiny (2/4/8 for gate matrices, up to 2^n for unitary
// equivalence checks on few-qubit circuits), so a flat row-major vector is
// the right representation.
#pragma once

#include <complex>
#include <vector>

#include "circuit/gate.h"

namespace qfs::circuit {

using Complex = std::complex<double>;

/// Square complex matrix, row-major.
class CMatrix {
 public:
  CMatrix() = default;
  explicit CMatrix(int dim) : dim_(dim), data_(static_cast<std::size_t>(dim) * dim) {}
  CMatrix(int dim, std::vector<Complex> data);

  static CMatrix identity(int dim);

  int dim() const { return dim_; }

  Complex& at(int r, int c) {
    return data_[static_cast<std::size_t>(r) * dim_ + c];
  }
  const Complex& at(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * dim_ + c];
  }

  CMatrix operator*(const CMatrix& rhs) const;
  CMatrix operator+(const CMatrix& rhs) const;
  CMatrix scaled(Complex factor) const;

  /// Conjugate transpose.
  CMatrix adjoint() const;

  /// Kronecker product (this ⊗ rhs).
  CMatrix kron(const CMatrix& rhs) const;

  /// Largest absolute entry of (this - rhs).
  double max_abs_diff(const CMatrix& rhs) const;

  /// Frobenius norm.
  double norm() const;

  bool is_unitary(double tol = 1e-9) const;

 private:
  int dim_ = 0;
  std::vector<Complex> data_;
};

/// Entrywise closeness.
bool approx_equal(const CMatrix& a, const CMatrix& b, double tol = 1e-9);

/// Closeness up to a global phase factor e^{i phi}.
bool approx_equal_up_to_phase(const CMatrix& a, const CMatrix& b,
                              double tol = 1e-9);

/// The unitary matrix of a gate kind (operand-local: 2x2, 4x4 or 8x8, with
/// qubit operand 0 as the most significant bit). Contract violation for
/// non-unitary kinds.
CMatrix gate_matrix(const Gate& g);

}  // namespace qfs::circuit
