// Gate dependency DAG.
//
// Gate j depends on gate i when they share a qubit and i precedes j in
// program order (barriers create dependencies on every listed qubit). The
// DAG drives the scheduler and exposes ASAP layering for depth analyses.
#pragma once

#include <vector>

#include "circuit/circuit.h"

namespace qfs::circuit {

class DependencyDag {
 public:
  explicit DependencyDag(const Circuit& circuit);

  int num_gates() const { return static_cast<int>(preds_.size()); }

  /// Direct predecessors of gate `i` (indices into circuit.gates()).
  const std::vector<int>& predecessors(int i) const {
    return preds_[static_cast<std::size_t>(i)];
  }
  const std::vector<int>& successors(int i) const {
    return succs_[static_cast<std::size_t>(i)];
  }

  /// ASAP layer per gate (layer 0 has no predecessors). Barriers occupy a
  /// layer slot but callers can filter them out via the circuit.
  const std::vector<int>& asap_layer() const { return asap_layer_; }

  /// 1 + max ASAP layer over non-barrier gates; 0 for empty circuits.
  int depth() const { return depth_; }

  /// Gates grouped by ASAP layer, program order preserved inside a layer.
  std::vector<std::vector<int>> layers() const;

  /// Topological order (program order is already one; returned for
  /// completeness and verification in tests).
  std::vector<int> topological_order() const;

 private:
  std::vector<std::vector<int>> preds_;
  std::vector<std::vector<int>> succs_;
  std::vector<int> asap_layer_;
  int depth_ = 0;
};

}  // namespace qfs::circuit
