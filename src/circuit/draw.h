// ASCII circuit rendering for terminals, logs and examples.
//
//   q0: ─H──●─────●──
//           │     │
//   q1: ────X──●──┼──
//              │  │
//   q2: ───────X──Z──
#pragma once

#include <string>

#include "circuit/circuit.h"

namespace qfs::circuit {

struct DrawOptions {
  /// Maximum rendered layers; longer circuits are truncated with an
  /// ellipsis column (keeps quickstart output readable).
  int max_layers = 40;
  /// Print angle parameters inside gate labels (rx(1.57) vs rx).
  bool show_params = false;
};

/// Render the circuit as monospace art, one row per qubit plus connector
/// rows. Gates are placed into greedy ASAP layers (same rule as depth()).
std::string draw(const Circuit& circuit, const DrawOptions& options = {});

}  // namespace qfs::circuit
