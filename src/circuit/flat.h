// Flat POD instruction array: the compile hot-path mirror of Circuit.
//
// The pointer-heavy IR (Gate with two std::vectors per instruction) is the
// right interface for passes that build or rewrite circuits, but the
// router/scheduler inner loops only *read* kind + operands, millions of
// times, and every Gate access costs two potential cache misses. FlatCircuit
// packs the same program into three contiguous buffers:
//   - instrs:  one fixed-size Instr (op byte + operand slots) per gate,
//   - params:  all angle parameters, exact doubles, pooled in gate order,
//   - overflow: qubit operands of variable-arity gates (barriers) that do
//     not fit the fixed slots.
//
// Conversion happens at pipeline boundaries only (see mapper/routing.cpp):
// a pass converts once, scans the flat array in its loops, and emits its
// result from the *original* Gate objects, so downstream output stays
// byte-identical to the legacy path — params are never re-encoded, and
// Instr keeps the source gate index for that purpose.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"

namespace qfs::circuit {

/// GateKind packed into one byte. Enumerator order mirrors GateKind exactly
/// (pinned by flat_ir_test's exhaustive mirror check), so conversion is a
/// static_cast in both directions.
enum class Op : std::uint8_t {
  kI,
  kX,
  kY,
  kZ,
  kH,
  kS,
  kSdg,
  kT,
  kTdg,
  kSx,
  kSxdg,
  kRx,
  kRy,
  kRz,
  kPhase,
  kU3,
  kCx,
  kCy,
  kCz,
  kCphase,
  kSwap,
  kCcx,
  kCcz,
  kCswap,
  kMeasure,
  kReset,
  kBarrier,
};

inline constexpr int kNumOps = static_cast<int>(Op::kBarrier) + 1;
static_assert(kNumOps == kNumGateKinds,
              "Op must mirror GateKind enumerator-for-enumerator");

inline Op to_op(GateKind kind) { return static_cast<Op>(kind); }
inline GateKind to_gate_kind(Op op) { return static_cast<GateKind>(op); }

/// One flat instruction: 24 bytes, no indirection for <= 3 operands.
struct Instr {
  /// Fixed operand slots (covers every fixed-arity kind; three-qubit gates
  /// are the widest). Unused slots hold -1.
  static constexpr int kMaxInlineQubits = 3;

  Op op = Op::kI;
  /// Operand count actually used. For arity <= 3 the operands live in
  /// `q[0..num_qubits)`; wider gates (variable-arity barriers) spill every
  /// operand to FlatCircuit::overflow at `overflow_offset`.
  std::uint8_t num_qubits = 0;
  std::uint8_t num_params = 0;
  std::int32_t q[kMaxInlineQubits] = {-1, -1, -1};
  /// Offset of this gate's params in FlatCircuit::params.
  std::uint32_t param_offset = 0;
  /// Offset in FlatCircuit::overflow when the operands spill (else 0).
  std::uint32_t overflow_offset = 0;

  bool spilled() const { return num_qubits > kMaxInlineQubits; }
};

/// A circuit flattened for read-only scanning. Gate i of the source circuit
/// is instrs[i]; the source object stays the emission authority.
struct FlatCircuit {
  int num_qubits = 0;
  std::vector<Instr> instrs;
  std::vector<double> params;
  std::vector<std::int32_t> overflow;

  std::size_t size() const { return instrs.size(); }

  /// Operand pointer + count for instruction i, inline or spilled.
  const std::int32_t* qubits_of(std::size_t i, int* count) const {
    const Instr& ins = instrs[i];
    *count = ins.num_qubits;
    return ins.spilled() ? overflow.data() + ins.overflow_offset : ins.q;
  }

  const double* params_of(std::size_t i) const {
    return params.data() + instrs[i].param_offset;
  }
};

/// Flatten `circuit`. Exact: every operand and parameter is preserved
/// bit-for-bit (params are copied as doubles, never narrowed).
FlatCircuit flatten(const Circuit& circuit);

/// Rebuild a Circuit (named `name`) from the flat form. Round-trips
/// byte-identically: unflatten(flatten(c), c.name()) == c.
Circuit unflatten(const FlatCircuit& flat, const std::string& name = "");

/// Which IR the hot-path passes scan. The QFS_IR environment variable
/// ("flat" default, "legacy" for the pointer-chasing seed path) selects it
/// process-wide; it is read once, deliberately NOT a MappingOptions field,
/// so cache fingerprints (canonical_options_text) and compiled artifacts
/// are identical whichever path runs — the equivalence ctest pins that.
enum class IrMode { kFlat, kLegacy };
IrMode ir_mode();

/// Test-only override of the process-wide mode (flat_ir_test flips it to
/// pin flat/legacy equivalence in one process). Not thread-safe: call only
/// while no compile is in flight.
void set_ir_mode_for_testing(IrMode mode);

}  // namespace qfs::circuit
