// Gate model: the instruction vocabulary of the qfs IR.
//
// The set covers the common algorithm-level gates (H, T, Toffoli, ...), the
// parametrised rotations used by variational workloads, the primitive sets
// of the modelled devices (CZ + rotations for surface-code superconducting
// chips; CX + SX/RZ for IBM-style chips), and non-unitary operations
// (measure, reset) plus scheduling barriers.
#pragma once

#include <string>
#include <vector>

#include "support/assert.h"

namespace qfs::circuit {

enum class GateKind {
  // single-qubit, parameter-free
  kI,
  kX,
  kY,
  kZ,
  kH,
  kS,
  kSdg,
  kT,
  kTdg,
  kSx,
  kSxdg,
  // single-qubit, parametrised
  kRx,     // params: theta
  kRy,     // params: theta
  kRz,     // params: theta
  kPhase,  // params: lambda (diag(1, e^{i lambda}))
  kU3,     // params: theta, phi, lambda (generic SU(2) up to phase)
  // two-qubit
  kCx,
  kCy,
  kCz,
  kCphase,  // params: lambda
  kSwap,
  // three-qubit
  kCcx,
  kCcz,
  kCswap,
  // non-unitary / structural
  kMeasure,
  kReset,
  kBarrier,
};

/// Number of distinct GateKind values (for iteration in tests/tables).
inline constexpr int kNumGateKinds = static_cast<int>(GateKind::kBarrier) + 1;

/// Lower-case mnemonic ("h", "cx", "rz", ...), matching OpenQASM where the
/// gate exists there.
const char* gate_name(GateKind kind);

/// Number of qubit operands; 0 means variable arity (barrier only).
int gate_arity(GateKind kind);

/// Number of angle parameters the kind carries.
int gate_param_count(GateKind kind);

/// True for gates with a unitary matrix (everything except measure, reset,
/// barrier).
bool is_unitary(GateKind kind);

/// True for two-qubit unitary gates (what an interaction graph records).
bool is_two_qubit(GateKind kind);

/// One instruction: a kind, its qubit operands, and its angle parameters.
struct Gate {
  GateKind kind = GateKind::kI;
  std::vector<int> qubits;
  std::vector<double> params;

  bool operator==(const Gate& other) const = default;
};

/// Validated constructor: checks arity, parameter count, and operand
/// distinctness.
Gate make_gate(GateKind kind, std::vector<int> qubits,
               std::vector<double> params = {});

/// The exact inverse of a unitary gate (e.g. s -> sdg, rx(t) -> rx(-t)).
/// Calling this on a non-unitary gate is a contract violation.
Gate inverse_gate(const Gate& g);

/// Render "cx q[0],q[1]" style text for logs and golden tests.
std::string gate_to_string(const Gate& g);

}  // namespace qfs::circuit
