#include "circuit/dag.h"

#include <algorithm>
#include <numeric>

namespace qfs::circuit {

DependencyDag::DependencyDag(const Circuit& circuit) {
  const auto& gates = circuit.gates();
  const auto n = gates.size();
  preds_.resize(n);
  succs_.resize(n);
  asap_layer_.assign(n, 0);

  // Last gate seen on each qubit.
  std::vector<int> last(static_cast<std::size_t>(circuit.num_qubits()), -1);
  for (std::size_t i = 0; i < n; ++i) {
    for (int q : gates[i].qubits) {
      int p = last[static_cast<std::size_t>(q)];
      if (p >= 0) {
        // Avoid duplicate edges when two gates share several qubits.
        if (preds_[i].empty() || preds_[i].back() != p) {
          if (std::find(preds_[i].begin(), preds_[i].end(), p) == preds_[i].end()) {
            preds_[i].push_back(p);
            succs_[static_cast<std::size_t>(p)].push_back(static_cast<int>(i));
          }
        }
      }
      last[static_cast<std::size_t>(q)] = static_cast<int>(i);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    int layer = 0;
    for (int p : preds_[i]) {
      int pl = asap_layer_[static_cast<std::size_t>(p)];
      // Barriers are transparent: they force ordering but occupy no cycle.
      int occupied = (gates[static_cast<std::size_t>(p)].kind == GateKind::kBarrier) ? 0 : 1;
      layer = std::max(layer, pl + occupied);
    }
    asap_layer_[i] = layer;
    if (gates[i].kind != GateKind::kBarrier) {
      depth_ = std::max(depth_, layer + 1);
    }
  }
}

std::vector<std::vector<int>> DependencyDag::layers() const {
  std::vector<std::vector<int>> out;
  for (std::size_t i = 0; i < asap_layer_.size(); ++i) {
    auto layer = static_cast<std::size_t>(asap_layer_[i]);
    if (layer >= out.size()) out.resize(layer + 1);
    out[layer].push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> DependencyDag::topological_order() const {
  std::vector<int> order(preds_.size());
  std::iota(order.begin(), order.end(), 0);
  return order;  // program order is topological by construction
}

}  // namespace qfs::circuit
