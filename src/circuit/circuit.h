// Circuit IR: a named, fixed-width sequence of gates with the counting and
// structural queries the compilation stack needs.
//
// Circuits are value types: passes take a Circuit and return a new one.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/gate.h"

namespace qfs::circuit {

class Circuit {
 public:
  Circuit() = default;
  Circuit(int num_qubits, std::string name = "");

  int num_qubits() const { return num_qubits_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Gate>& gates() const { return gates_; }
  std::size_t size() const { return gates_.size(); }
  bool empty() const { return gates_.empty(); }

  /// Append a gate; validates kind/operand contract and qubit range.
  void add(Gate g);
  void add(GateKind kind, std::vector<int> qubits,
           std::vector<double> params = {});

  // Fluent single-gate builders (return *this for chaining).
  Circuit& i(int q) { return chain(GateKind::kI, {q}); }
  Circuit& x(int q) { return chain(GateKind::kX, {q}); }
  Circuit& y(int q) { return chain(GateKind::kY, {q}); }
  Circuit& z(int q) { return chain(GateKind::kZ, {q}); }
  Circuit& h(int q) { return chain(GateKind::kH, {q}); }
  Circuit& s(int q) { return chain(GateKind::kS, {q}); }
  Circuit& sdg(int q) { return chain(GateKind::kSdg, {q}); }
  Circuit& t(int q) { return chain(GateKind::kT, {q}); }
  Circuit& tdg(int q) { return chain(GateKind::kTdg, {q}); }
  Circuit& sx(int q) { return chain(GateKind::kSx, {q}); }
  Circuit& sxdg(int q) { return chain(GateKind::kSxdg, {q}); }
  Circuit& rx(double theta, int q) { return chain(GateKind::kRx, {q}, {theta}); }
  Circuit& ry(double theta, int q) { return chain(GateKind::kRy, {q}, {theta}); }
  Circuit& rz(double theta, int q) { return chain(GateKind::kRz, {q}, {theta}); }
  Circuit& p(double lambda, int q) { return chain(GateKind::kPhase, {q}, {lambda}); }
  Circuit& u3(double theta, double phi, double lambda, int q) {
    return chain(GateKind::kU3, {q}, {theta, phi, lambda});
  }
  Circuit& cx(int c, int t) { return chain(GateKind::kCx, {c, t}); }
  Circuit& cy(int c, int t) { return chain(GateKind::kCy, {c, t}); }
  Circuit& cz(int a, int b) { return chain(GateKind::kCz, {a, b}); }
  Circuit& cp(double lambda, int a, int b) {
    return chain(GateKind::kCphase, {a, b}, {lambda});
  }
  Circuit& swap(int a, int b) { return chain(GateKind::kSwap, {a, b}); }
  Circuit& ccx(int c1, int c2, int t) { return chain(GateKind::kCcx, {c1, c2, t}); }
  Circuit& ccz(int a, int b, int c) { return chain(GateKind::kCcz, {a, b, c}); }
  Circuit& cswap(int c, int a, int b) { return chain(GateKind::kCswap, {c, a, b}); }
  Circuit& measure(int q) { return chain(GateKind::kMeasure, {q}); }
  Circuit& reset(int q) { return chain(GateKind::kReset, {q}); }
  Circuit& barrier(std::vector<int> qubits) {
    return chain(GateKind::kBarrier, std::move(qubits));
  }

  /// Append all gates of `other` (same or smaller width).
  void append(const Circuit& other);

  /// Reverse-order circuit of inverse gates; contract violation if any gate
  /// is non-unitary.
  Circuit inverse() const;

  // --- Counting queries (barriers are structural and never counted). ---

  /// Gates excluding barriers.
  int gate_count() const;

  /// Two-qubit unitary gates.
  int two_qubit_gate_count() const;

  /// two_qubit_gate_count / gate_count; 0 for empty circuits.
  double two_qubit_fraction() const;

  /// Histogram by kind (barriers included for structural introspection).
  std::map<GateKind, int> count_by_kind() const;

  /// Logical depth: gates on the same qubit serialise; a barrier serialises
  /// all listed qubits. Barriers themselves add no depth.
  int depth() const;

  /// Qubits touched by at least one non-barrier gate, ascending.
  std::vector<int> used_qubits() const;

  /// True when every multi-qubit unitary acts on adjacent qubits according
  /// to `adjacent(a, b)`.
  template <typename AdjacencyFn>
  bool satisfies_connectivity(AdjacencyFn adjacent) const {
    for (const Gate& g : gates_) {
      if (!is_unitary(g.kind) || g.qubits.size() < 2) continue;
      for (std::size_t i = 0; i < g.qubits.size(); ++i) {
        for (std::size_t j = i + 1; j < g.qubits.size(); ++j) {
          if (!adjacent(g.qubits[i], g.qubits[j])) return false;
        }
      }
    }
    return true;
  }

  bool operator==(const Circuit& other) const {
    return num_qubits_ == other.num_qubits_ && gates_ == other.gates_;
  }

  /// Multi-line text rendering for logs and golden tests.
  std::string to_string() const;

 private:
  Circuit& chain(GateKind kind, std::vector<int> qubits,
                 std::vector<double> params = {}) {
    add(kind, std::move(qubits), std::move(params));
    return *this;
  }

  int num_qubits_ = 0;
  std::string name_;
  std::vector<Gate> gates_;
};

}  // namespace qfs::circuit
