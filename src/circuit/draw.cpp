#include "circuit/draw.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "support/strings.h"

namespace qfs::circuit {

namespace {

/// Cell content for one (qubit row, layer) position.
struct Cell {
  std::string label;  ///< empty = wire only
  int span_id = -1;   ///< id of the multi-qubit gate whose vertical span
                      ///< covers this row here (-1: none)
  bool connector() const { return span_id >= 0; }
};

std::string gate_label(const Gate& g, int operand_index, bool show_params) {
  // Controls draw as a dot; targets carry the mnemonic.
  switch (g.kind) {
    case GateKind::kCx:
    case GateKind::kCy:
    case GateKind::kCphase:
      if (operand_index == 0) return "●";
      break;
    case GateKind::kCz:
      // Symmetric: both ends are dots.
      return "●";
    case GateKind::kCcx:
    case GateKind::kCcz:
      if (operand_index < 2) return "●";
      break;
    case GateKind::kCswap:
      if (operand_index == 0) return "●";
      return "x";
    case GateKind::kSwap:
      return "x";
    case GateKind::kMeasure:
      return "M";
    case GateKind::kReset:
      return "|0>";
    case GateKind::kBarrier:
      return "░";
    default:
      break;
  }
  std::string name = gate_name(g.kind);
  if (g.kind == GateKind::kCx) name = "X";
  if (g.kind == GateKind::kCy) name = "Y";
  if (g.kind == GateKind::kCcx) name = "X";
  if (g.kind == GateKind::kCcz) name = "Z";
  if (g.kind == GateKind::kCphase) name = "p";
  // Single-letter upper case for the common 1q set.
  if (name.size() == 1) {
    name[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(name[0])));
  }
  if (show_params && !g.params.empty()) {
    name += '(';
    for (std::size_t i = 0; i < g.params.size(); ++i) {
      if (i) name += ',';
      name += qfs::format_double(g.params[i], 2);
    }
    name += ')';
  }
  return name;
}

/// Visible width of a UTF-8 label (the dot/block glyphs are 3 bytes, one
/// column).
std::size_t visible_width(const std::string& s) {
  std::size_t w = 0;
  for (std::size_t i = 0; i < s.size();) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    i += (c >= 0xF0) ? 4 : (c >= 0xE0) ? 3 : (c >= 0xC0) ? 2 : 1;
    ++w;
  }
  return w;
}

}  // namespace

std::string draw(const Circuit& circuit, const DrawOptions& options) {
  QFS_ASSERT_MSG(options.max_layers >= 1, "need at least one layer");
  const int n = circuit.num_qubits();

  // Greedy layering (same as Circuit::depth, barriers occupy a layer here
  // so they render).
  std::vector<int> level(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<const Gate*>> layers;
  for (const Gate& g : circuit.gates()) {
    int start = 0;
    for (int q : g.qubits) start = std::max(start, level[static_cast<std::size_t>(q)]);
    for (int q : g.qubits) level[static_cast<std::size_t>(q)] = start + 1;
    if (static_cast<std::size_t>(start) >= layers.size()) layers.resize(static_cast<std::size_t>(start) + 1);
    layers[static_cast<std::size_t>(start)].push_back(&g);
  }
  bool truncated = static_cast<int>(layers.size()) > options.max_layers;
  if (truncated) layers.resize(static_cast<std::size_t>(options.max_layers));

  // Fill the cell grid.
  std::vector<std::vector<Cell>> grid(
      static_cast<std::size_t>(n), std::vector<Cell>(layers.size()));
  int gate_id = 0;
  for (std::size_t col = 0; col < layers.size(); ++col) {
    for (const Gate* g : layers[col]) {
      int lo = *std::min_element(g->qubits.begin(), g->qubits.end());
      int hi = *std::max_element(g->qubits.begin(), g->qubits.end());
      if (hi > lo) {
        for (int q = lo; q <= hi; ++q) {
          grid[static_cast<std::size_t>(q)][col].span_id = gate_id;
        }
      }
      for (std::size_t i = 0; i < g->qubits.size(); ++i) {
        grid[static_cast<std::size_t>(g->qubits[i])][col].label =
            gate_label(*g, static_cast<int>(i), options.show_params);
      }
      ++gate_id;
    }
  }

  // Column widths.
  std::vector<std::size_t> width(layers.size(), 1);
  for (int q = 0; q < n; ++q) {
    for (std::size_t col = 0; col < layers.size(); ++col) {
      width[col] = std::max(width[col],
                            visible_width(grid[static_cast<std::size_t>(q)][col].label));
    }
  }

  std::ostringstream os;
  std::size_t name_width = std::to_string(n - 1).size();
  for (int q = 0; q < n; ++q) {
    // Wire row.
    std::string qlabel = std::to_string(q);
    os << 'q' << qlabel << std::string(name_width - qlabel.size(), ' ') << ": ";
    for (std::size_t col = 0; col < layers.size(); ++col) {
      const Cell& cell = grid[static_cast<std::size_t>(q)][col];
      os << "─";
      if (cell.label.empty()) {
        // Plain wire, or a crossing where a multi-qubit gate passes through.
        os << (cell.connector() ? "┼" : "─");
        for (std::size_t i = 1; i < width[col]; ++i) os << "─";
      } else {
        os << cell.label;
        for (std::size_t i = visible_width(cell.label); i < width[col]; ++i) {
          os << "─";
        }
      }
      os << "─";
    }
    if (truncated) os << "…";
    os << '\n';
    // Connector row (between qubit rows).
    if (q + 1 < n) {
      os << std::string(name_width + 3, ' ');
      for (std::size_t col = 0; col < layers.size(); ++col) {
        const Cell& here = grid[static_cast<std::size_t>(q)][col];
        const Cell& below = grid[static_cast<std::size_t>(q + 1)][col];
        bool bridge = here.span_id >= 0 && here.span_id == below.span_id;
        os << ' ';
        os << (bridge ? "│" : " ");
        for (std::size_t i = 1; i < width[col]; ++i) os << ' ';
        os << ' ';
      }
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace qfs::circuit
