#include "circuit/circuit.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace qfs::circuit {

Circuit::Circuit(int num_qubits, std::string name)
    : num_qubits_(num_qubits), name_(std::move(name)) {
  QFS_ASSERT_MSG(num_qubits >= 0, "negative qubit count");
}

void Circuit::add(Gate g) {
  for (int q : g.qubits) {
    QFS_ASSERT_MSG(q < num_qubits_, "gate operand exceeds circuit width");
  }
  // Re-validate through make_gate so raw Gate{} literals obey the contract.
  gates_.push_back(make_gate(g.kind, std::move(g.qubits), std::move(g.params)));
}

void Circuit::add(GateKind kind, std::vector<int> qubits,
                  std::vector<double> params) {
  add(Gate{kind, std::move(qubits), std::move(params)});
}

void Circuit::append(const Circuit& other) {
  QFS_ASSERT_MSG(other.num_qubits_ <= num_qubits_,
                 "appended circuit is wider than target");
  for (const Gate& g : other.gates_) add(g);
}

Circuit Circuit::inverse() const {
  Circuit inv(num_qubits_, name_.empty() ? "" : name_ + "_inv");
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
    QFS_ASSERT_MSG(is_unitary(it->kind), "inverse of non-unitary circuit");
    inv.add(inverse_gate(*it));
  }
  return inv;
}

int Circuit::gate_count() const {
  int n = 0;
  for (const Gate& g : gates_) {
    if (g.kind != GateKind::kBarrier) ++n;
  }
  return n;
}

int Circuit::two_qubit_gate_count() const {
  int n = 0;
  for (const Gate& g : gates_) {
    if (is_two_qubit(g.kind)) ++n;
  }
  return n;
}

double Circuit::two_qubit_fraction() const {
  int total = gate_count();
  return total == 0 ? 0.0 : static_cast<double>(two_qubit_gate_count()) / total;
}

std::map<GateKind, int> Circuit::count_by_kind() const {
  std::map<GateKind, int> counts;
  for (const Gate& g : gates_) ++counts[g.kind];
  return counts;
}

int Circuit::depth() const {
  std::vector<int> level(static_cast<std::size_t>(num_qubits_), 0);
  int depth = 0;
  for (const Gate& g : gates_) {
    int start = 0;
    for (int q : g.qubits) start = std::max(start, level[static_cast<std::size_t>(q)]);
    int end = (g.kind == GateKind::kBarrier) ? start : start + 1;
    for (int q : g.qubits) level[static_cast<std::size_t>(q)] = end;
    depth = std::max(depth, end);
  }
  return depth;
}

std::vector<int> Circuit::used_qubits() const {
  std::set<int> used;
  for (const Gate& g : gates_) {
    if (g.kind == GateKind::kBarrier) continue;
    used.insert(g.qubits.begin(), g.qubits.end());
  }
  return {used.begin(), used.end()};
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  os << "circuit " << (name_.empty() ? "<anonymous>" : name_) << " ("
     << num_qubits_ << " qubits, " << gate_count() << " gates)\n";
  for (const Gate& g : gates_) os << "  " << gate_to_string(g) << '\n';
  return os.str();
}

}  // namespace qfs::circuit
