#include "circuit/matrix.h"

#include <cmath>

namespace qfs::circuit {

namespace {
constexpr Complex kI1(0.0, 1.0);
}

CMatrix::CMatrix(int dim, std::vector<Complex> data)
    : dim_(dim), data_(std::move(data)) {
  QFS_ASSERT_MSG(data_.size() == static_cast<std::size_t>(dim) * dim,
                 "matrix data size mismatch");
}

CMatrix CMatrix::identity(int dim) {
  CMatrix m(dim);
  for (int i = 0; i < dim; ++i) m.at(i, i) = 1.0;
  return m;
}

CMatrix CMatrix::operator*(const CMatrix& rhs) const {
  QFS_ASSERT_MSG(dim_ == rhs.dim_, "matrix dimension mismatch");
  CMatrix out(dim_);
  for (int r = 0; r < dim_; ++r) {
    for (int k = 0; k < dim_; ++k) {
      Complex a = at(r, k);
      if (a == Complex{}) continue;
      for (int c = 0; c < dim_; ++c) out.at(r, c) += a * rhs.at(k, c);
    }
  }
  return out;
}

CMatrix CMatrix::operator+(const CMatrix& rhs) const {
  QFS_ASSERT_MSG(dim_ == rhs.dim_, "matrix dimension mismatch");
  CMatrix out(dim_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + rhs.data_[i];
  return out;
}

CMatrix CMatrix::scaled(Complex factor) const {
  CMatrix out = *this;
  for (auto& v : out.data_) v *= factor;
  return out;
}

CMatrix CMatrix::adjoint() const {
  CMatrix out(dim_);
  for (int r = 0; r < dim_; ++r) {
    for (int c = 0; c < dim_; ++c) out.at(c, r) = std::conj(at(r, c));
  }
  return out;
}

CMatrix CMatrix::kron(const CMatrix& rhs) const {
  CMatrix out(dim_ * rhs.dim_);
  for (int r1 = 0; r1 < dim_; ++r1) {
    for (int c1 = 0; c1 < dim_; ++c1) {
      Complex a = at(r1, c1);
      if (a == Complex{}) continue;
      for (int r2 = 0; r2 < rhs.dim_; ++r2) {
        for (int c2 = 0; c2 < rhs.dim_; ++c2) {
          out.at(r1 * rhs.dim_ + r2, c1 * rhs.dim_ + c2) = a * rhs.at(r2, c2);
        }
      }
    }
  }
  return out;
}

double CMatrix::max_abs_diff(const CMatrix& rhs) const {
  QFS_ASSERT_MSG(dim_ == rhs.dim_, "matrix dimension mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - rhs.data_[i]));
  }
  return worst;
}

double CMatrix::norm() const {
  double acc = 0.0;
  for (const auto& v : data_) acc += std::norm(v);
  return std::sqrt(acc);
}

bool CMatrix::is_unitary(double tol) const {
  CMatrix prod = (*this) * adjoint();
  return prod.max_abs_diff(CMatrix::identity(dim_)) <= tol;
}

bool approx_equal(const CMatrix& a, const CMatrix& b, double tol) {
  if (a.dim() != b.dim()) return false;
  return a.max_abs_diff(b) <= tol;
}

bool approx_equal_up_to_phase(const CMatrix& a, const CMatrix& b, double tol) {
  if (a.dim() != b.dim()) return false;
  // Find the largest entry of b to estimate the phase robustly.
  int br = 0, bc = 0;
  double best = -1.0;
  for (int r = 0; r < b.dim(); ++r) {
    for (int c = 0; c < b.dim(); ++c) {
      if (std::abs(b.at(r, c)) > best) {
        best = std::abs(b.at(r, c));
        br = r;
        bc = c;
      }
    }
  }
  if (best <= tol) return approx_equal(a, b, tol);
  if (std::abs(a.at(br, bc)) <= tol) return false;
  Complex phase = a.at(br, bc) / b.at(br, bc);
  double mag = std::abs(phase);
  if (std::abs(mag - 1.0) > tol) return false;
  return approx_equal(a, b.scaled(phase), tol);
}

namespace {

CMatrix mat2(Complex a, Complex b, Complex c, Complex d) {
  return CMatrix(2, {a, b, c, d});
}

CMatrix u3_matrix(double theta, double phi, double lambda) {
  double ct = std::cos(theta / 2.0);
  double st = std::sin(theta / 2.0);
  return mat2(ct, -std::exp(kI1 * lambda) * st,
              std::exp(kI1 * phi) * st, std::exp(kI1 * (phi + lambda)) * ct);
}

/// Two-qubit controlled-U with qubit operand 0 (MSB) as control.
CMatrix controlled(const CMatrix& u) {
  QFS_ASSERT(u.dim() == 2);
  CMatrix m = CMatrix::identity(4);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) m.at(2 + r, 2 + c) = u.at(r, c);
  }
  m.at(2, 2) = u.at(0, 0);
  m.at(2, 3) = u.at(0, 1);
  m.at(3, 2) = u.at(1, 0);
  m.at(3, 3) = u.at(1, 1);
  return m;
}

/// Three-qubit gate controlled on operands 0,1 (the two MSBs).
CMatrix doubly_controlled(const CMatrix& u) {
  QFS_ASSERT(u.dim() == 2);
  CMatrix m = CMatrix::identity(8);
  m.at(6, 6) = u.at(0, 0);
  m.at(6, 7) = u.at(0, 1);
  m.at(7, 6) = u.at(1, 0);
  m.at(7, 7) = u.at(1, 1);
  return m;
}

}  // namespace

CMatrix gate_matrix(const Gate& g) {
  QFS_ASSERT_MSG(is_unitary(g.kind), "matrix of non-unitary gate");
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  switch (g.kind) {
    case GateKind::kI:
      return CMatrix::identity(2);
    case GateKind::kX:
      return mat2(0, 1, 1, 0);
    case GateKind::kY:
      return mat2(0, -kI1, kI1, 0);
    case GateKind::kZ:
      return mat2(1, 0, 0, -1);
    case GateKind::kH:
      return mat2(inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2);
    case GateKind::kS:
      return mat2(1, 0, 0, kI1);
    case GateKind::kSdg:
      return mat2(1, 0, 0, -kI1);
    case GateKind::kT:
      return mat2(1, 0, 0, std::exp(kI1 * (M_PI / 4.0)));
    case GateKind::kTdg:
      return mat2(1, 0, 0, std::exp(-kI1 * (M_PI / 4.0)));
    case GateKind::kSx:
      return mat2(Complex(0.5, 0.5), Complex(0.5, -0.5),
                  Complex(0.5, -0.5), Complex(0.5, 0.5));
    case GateKind::kSxdg:
      return mat2(Complex(0.5, -0.5), Complex(0.5, 0.5),
                  Complex(0.5, 0.5), Complex(0.5, -0.5));
    case GateKind::kRx: {
      double t = g.params[0];
      return mat2(std::cos(t / 2), -kI1 * std::sin(t / 2),
                  -kI1 * std::sin(t / 2), std::cos(t / 2));
    }
    case GateKind::kRy: {
      double t = g.params[0];
      return mat2(std::cos(t / 2), -std::sin(t / 2),
                  std::sin(t / 2), std::cos(t / 2));
    }
    case GateKind::kRz: {
      double t = g.params[0];
      return mat2(std::exp(-kI1 * (t / 2)), 0, 0, std::exp(kI1 * (t / 2)));
    }
    case GateKind::kPhase:
      return mat2(1, 0, 0, std::exp(kI1 * g.params[0]));
    case GateKind::kU3:
      return u3_matrix(g.params[0], g.params[1], g.params[2]);
    case GateKind::kCx:
      return controlled(mat2(0, 1, 1, 0));
    case GateKind::kCy:
      return controlled(mat2(0, -kI1, kI1, 0));
    case GateKind::kCz:
      return controlled(mat2(1, 0, 0, -1));
    case GateKind::kCphase:
      return controlled(mat2(1, 0, 0, std::exp(kI1 * g.params[0])));
    case GateKind::kSwap: {
      CMatrix m(4);
      m.at(0, 0) = 1;
      m.at(1, 2) = 1;
      m.at(2, 1) = 1;
      m.at(3, 3) = 1;
      return m;
    }
    case GateKind::kCcx:
      return doubly_controlled(mat2(0, 1, 1, 0));
    case GateKind::kCcz:
      return doubly_controlled(mat2(1, 0, 0, -1));
    case GateKind::kCswap: {
      CMatrix m = CMatrix::identity(8);
      // Control is operand 0 (MSB); swap the two LSB qubits when it is 1.
      m.at(5, 5) = 0;
      m.at(6, 6) = 0;
      m.at(5, 6) = 1;
      m.at(6, 5) = 1;
      return m;
    }
    default:
      QFS_ASSERT_MSG(false, "unreachable: non-unitary kind");
  }
  return CMatrix();
}

}  // namespace qfs::circuit
