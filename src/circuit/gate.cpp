#include "circuit/gate.h"

#include <set>
#include <sstream>

#include "support/strings.h"

namespace qfs::circuit {

const char* gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::kI: return "id";
    case GateKind::kX: return "x";
    case GateKind::kY: return "y";
    case GateKind::kZ: return "z";
    case GateKind::kH: return "h";
    case GateKind::kS: return "s";
    case GateKind::kSdg: return "sdg";
    case GateKind::kT: return "t";
    case GateKind::kTdg: return "tdg";
    case GateKind::kSx: return "sx";
    case GateKind::kSxdg: return "sxdg";
    case GateKind::kRx: return "rx";
    case GateKind::kRy: return "ry";
    case GateKind::kRz: return "rz";
    case GateKind::kPhase: return "p";
    case GateKind::kU3: return "u3";
    case GateKind::kCx: return "cx";
    case GateKind::kCy: return "cy";
    case GateKind::kCz: return "cz";
    case GateKind::kCphase: return "cp";
    case GateKind::kSwap: return "swap";
    case GateKind::kCcx: return "ccx";
    case GateKind::kCcz: return "ccz";
    case GateKind::kCswap: return "cswap";
    case GateKind::kMeasure: return "measure";
    case GateKind::kReset: return "reset";
    case GateKind::kBarrier: return "barrier";
  }
  return "?";
}

int gate_arity(GateKind kind) {
  switch (kind) {
    case GateKind::kI:
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kSx:
    case GateKind::kSxdg:
    case GateKind::kRx:
    case GateKind::kRy:
    case GateKind::kRz:
    case GateKind::kPhase:
    case GateKind::kU3:
    case GateKind::kMeasure:
    case GateKind::kReset:
      return 1;
    case GateKind::kCx:
    case GateKind::kCy:
    case GateKind::kCz:
    case GateKind::kCphase:
    case GateKind::kSwap:
      return 2;
    case GateKind::kCcx:
    case GateKind::kCcz:
    case GateKind::kCswap:
      return 3;
    case GateKind::kBarrier:
      return 0;  // variable
  }
  return 0;
}

int gate_param_count(GateKind kind) {
  switch (kind) {
    case GateKind::kRx:
    case GateKind::kRy:
    case GateKind::kRz:
    case GateKind::kPhase:
    case GateKind::kCphase:
      return 1;
    case GateKind::kU3:
      return 3;
    default:
      return 0;
  }
}

bool is_unitary(GateKind kind) {
  switch (kind) {
    case GateKind::kMeasure:
    case GateKind::kReset:
    case GateKind::kBarrier:
      return false;
    default:
      return true;
  }
}

bool is_two_qubit(GateKind kind) {
  return is_unitary(kind) && gate_arity(kind) == 2;
}

Gate make_gate(GateKind kind, std::vector<int> qubits,
               std::vector<double> params) {
  const int arity = gate_arity(kind);
  if (arity != 0) {
    QFS_ASSERT_MSG(static_cast<int>(qubits.size()) == arity,
                   std::string("wrong operand count for ") + gate_name(kind));
  } else {
    QFS_ASSERT_MSG(!qubits.empty(), "barrier needs at least one qubit");
  }
  QFS_ASSERT_MSG(static_cast<int>(params.size()) == gate_param_count(kind),
                 std::string("wrong parameter count for ") + gate_name(kind));
  std::set<int> distinct(qubits.begin(), qubits.end());
  QFS_ASSERT_MSG(distinct.size() == qubits.size(),
                 "repeated qubit operand in gate");
  for (int q : qubits) QFS_ASSERT_MSG(q >= 0, "negative qubit index");
  return Gate{kind, std::move(qubits), std::move(params)};
}

Gate inverse_gate(const Gate& g) {
  QFS_ASSERT_MSG(is_unitary(g.kind), "inverse of non-unitary gate");
  switch (g.kind) {
    case GateKind::kS:
      return Gate{GateKind::kSdg, g.qubits, {}};
    case GateKind::kSdg:
      return Gate{GateKind::kS, g.qubits, {}};
    case GateKind::kT:
      return Gate{GateKind::kTdg, g.qubits, {}};
    case GateKind::kTdg:
      return Gate{GateKind::kT, g.qubits, {}};
    case GateKind::kSx:
      return Gate{GateKind::kSxdg, g.qubits, {}};
    case GateKind::kSxdg:
      return Gate{GateKind::kSx, g.qubits, {}};
    case GateKind::kRx:
    case GateKind::kRy:
    case GateKind::kRz:
    case GateKind::kPhase:
    case GateKind::kCphase:
      return Gate{g.kind, g.qubits, {-g.params[0]}};
    case GateKind::kU3:
      // (U3(t, p, l))^-1 = U3(-t, -l, -p)
      return Gate{g.kind, g.qubits, {-g.params[0], -g.params[2], -g.params[1]}};
    default:
      return g;  // self-inverse kinds
  }
}

std::string gate_to_string(const Gate& g) {
  std::ostringstream os;
  os << gate_name(g.kind);
  if (!g.params.empty()) {
    os << '(';
    for (std::size_t i = 0; i < g.params.size(); ++i) {
      if (i) os << ',';
      os << qfs::format_double(g.params[i], 6);
    }
    os << ')';
  }
  os << ' ';
  for (std::size_t i = 0; i < g.qubits.size(); ++i) {
    if (i) os << ',';
    os << "q[" << g.qubits[i] << ']';
  }
  return os.str();
}

}  // namespace qfs::circuit
