// Density-matrix simulation: exact evolution under the depolarizing
// channel the Monte-Carlo simulator samples. Used to triangulate all three
// fidelity estimates (analytic product, MC trajectories, exact channel) on
// small circuits.
#pragma once

#include "circuit/circuit.h"
#include "circuit/matrix.h"
#include "device/error_model.h"
#include "sim/statevector.h"

namespace qfs::sim {

class DensityMatrix {
 public:
  /// |0...0><0...0| on n qubits (n <= 8 by contract: 4^n entries).
  explicit DensityMatrix(int num_qubits);

  static DensityMatrix from_pure(const StateVector& state);

  int num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return static_cast<std::size_t>(rho_.dim()); }
  const circuit::CMatrix& matrix() const { return rho_; }

  /// rho -> U rho U^dagger for a unitary gate.
  void apply_gate(const circuit::Gate& g);

  /// k-qubit depolarizing channel on `qubits` with error probability p:
  /// rho -> (1-p) rho + p/(4^k - 1) * sum_{P != I} P rho P^dagger.
  void apply_depolarizing(const std::vector<int>& qubits, double p);

  /// <psi| rho |psi>.
  double fidelity_with(const StateVector& pure) const;

  /// Tr(rho) — 1 up to numerical error for valid states.
  double trace() const;

  /// Tr(rho^2) — 1 for pure states, 1/2^n for the maximally mixed state.
  double purity() const;

 private:
  int num_qubits_ = 0;
  circuit::CMatrix rho_;
};

/// Exact fidelity of running `circuit` under the error model's
/// depolarizing channel (the quantity MC trajectories estimate): evolves
/// the density matrix gate by gate and returns overlap with the ideal
/// output. Circuit width <= 8 by contract.
double exact_noisy_fidelity(const circuit::Circuit& circuit,
                            const device::ErrorModel& em);

}  // namespace qfs::sim
