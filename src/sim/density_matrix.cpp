#include "sim/density_matrix.h"

namespace qfs::sim {

using circuit::CMatrix;
using circuit::Complex;
using circuit::Gate;
using circuit::GateKind;

DensityMatrix::DensityMatrix(int num_qubits) : num_qubits_(num_qubits) {
  QFS_ASSERT_MSG(0 <= num_qubits && num_qubits <= 8,
                 "density matrix limited to 8 qubits");
  rho_ = CMatrix(1 << num_qubits);
  rho_.at(0, 0) = 1.0;
}

DensityMatrix DensityMatrix::from_pure(const StateVector& state) {
  DensityMatrix dm(state.num_qubits());
  const auto n = static_cast<int>(state.dim());
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      dm.rho_.at(r, c) = state.amplitude(static_cast<std::size_t>(r)) *
                         std::conj(state.amplitude(static_cast<std::size_t>(c)));
    }
  }
  return dm;
}

void DensityMatrix::apply_gate(const Gate& g) {
  if (g.kind == GateKind::kBarrier) return;
  QFS_ASSERT_MSG(circuit::is_unitary(g.kind),
                 "density-matrix unitary application needs a unitary gate");
  const int dim = rho_.dim();
  // U rho: apply the gate to every column viewed as a state vector.
  CMatrix next(dim);
  for (int col = 0; col < dim; ++col) {
    std::vector<Complex> amps(static_cast<std::size_t>(dim));
    for (int row = 0; row < dim; ++row) {
      amps[static_cast<std::size_t>(row)] = rho_.at(row, col);
    }
    StateVector sv = StateVector::from_amplitudes(std::move(amps));
    sv.apply_gate(g);
    for (int row = 0; row < dim; ++row) {
      next.at(row, col) = sv.amplitude(static_cast<std::size_t>(row));
    }
  }
  // (U rho) U^dagger == (U (U rho)^dagger)^dagger.
  CMatrix adj = next.adjoint();
  for (int col = 0; col < dim; ++col) {
    std::vector<Complex> amps(static_cast<std::size_t>(dim));
    for (int row = 0; row < dim; ++row) {
      amps[static_cast<std::size_t>(row)] = adj.at(row, col);
    }
    StateVector sv = StateVector::from_amplitudes(std::move(amps));
    sv.apply_gate(g);
    for (int row = 0; row < dim; ++row) {
      adj.at(row, col) = sv.amplitude(static_cast<std::size_t>(row));
    }
  }
  rho_ = adj.adjoint();
}

void DensityMatrix::apply_depolarizing(const std::vector<int>& qubits,
                                       double p) {
  QFS_ASSERT_MSG(0.0 <= p && p <= 1.0, "bad error probability");
  const int k = static_cast<int>(qubits.size());
  QFS_ASSERT_MSG(1 <= k && k <= 2, "depolarizing supports 1 or 2 qubits");
  if (p == 0.0) return;

  const int num_paulis = (k == 1) ? 4 : 16;  // including identity
  CMatrix mixed(rho_.dim());
  const GateKind paulis[4] = {GateKind::kI, GateKind::kX, GateKind::kY,
                              GateKind::kZ};
  for (int code = 1; code < num_paulis; ++code) {
    DensityMatrix term = *this;
    int c = code;
    for (int i = 0; i < k; ++i) {
      GateKind pk = paulis[c % 4];
      c /= 4;
      if (pk != GateKind::kI) {
        term.apply_gate(circuit::make_gate(pk, {qubits[static_cast<std::size_t>(i)]}));
      }
    }
    mixed = mixed + term.rho_;
  }
  double share = p / static_cast<double>(num_paulis - 1);
  rho_ = rho_.scaled(Complex(1.0 - p, 0.0)) + mixed.scaled(Complex(share, 0.0));
}

double DensityMatrix::fidelity_with(const StateVector& pure) const {
  QFS_ASSERT_MSG(pure.dim() == dim(), "dimension mismatch");
  Complex acc{};
  const int dim_i = rho_.dim();
  for (int r = 0; r < dim_i; ++r) {
    for (int c = 0; c < dim_i; ++c) {
      acc += std::conj(pure.amplitude(static_cast<std::size_t>(r))) *
             rho_.at(r, c) * pure.amplitude(static_cast<std::size_t>(c));
    }
  }
  return acc.real();
}

double DensityMatrix::trace() const {
  Complex acc{};
  for (int i = 0; i < rho_.dim(); ++i) acc += rho_.at(i, i);
  return acc.real();
}

double DensityMatrix::purity() const {
  // Tr(rho^2) = sum_ij rho_ij * rho_ji = sum_ij |rho_ij|^2 (hermitian).
  double acc = 0.0;
  for (int r = 0; r < rho_.dim(); ++r) {
    for (int c = 0; c < rho_.dim(); ++c) {
      acc += std::norm(rho_.at(r, c));
    }
  }
  return acc;
}

double exact_noisy_fidelity(const circuit::Circuit& circuit,
                            const device::ErrorModel& em) {
  QFS_ASSERT_MSG(circuit.num_qubits() <= 8,
                 "exact noisy fidelity limited to 8 qubits");
  StateVector ideal(circuit.num_qubits());
  DensityMatrix rho(circuit.num_qubits());
  for (const auto& g : circuit.gates()) {
    if (!circuit::is_unitary(g.kind)) continue;
    ideal.apply_gate(g);
    rho.apply_gate(g);
    rho.apply_depolarizing(g.qubits, 1.0 - em.gate_fidelity(g));
  }
  return rho.fidelity_with(ideal);
}

}  // namespace qfs::sim
