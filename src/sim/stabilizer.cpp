#include "sim/stabilizer.h"

#include <algorithm>

namespace qfs::sim {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

bool is_clifford_gate(GateKind kind) {
  switch (kind) {
    case GateKind::kI:
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kSx:
    case GateKind::kSxdg:
    case GateKind::kCx:
    case GateKind::kCy:
    case GateKind::kCz:
    case GateKind::kSwap:
    case GateKind::kBarrier:
      return true;
    default:
      return false;
  }
}

namespace {

/// Quarter-turn index k in [0, 4) when angle ~= k*pi/2; -1 otherwise.
int quarter_turns(double angle) {
  double turns = angle / (M_PI / 2.0);
  double rounded = std::round(turns);
  if (std::abs(turns - rounded) > 1e-9) return -1;
  int k = static_cast<int>(std::llround(rounded)) % 4;
  return k < 0 ? k + 4 : k;
}

bool is_rotation_kind(GateKind kind) {
  return kind == GateKind::kRx || kind == GateKind::kRy ||
         kind == GateKind::kRz || kind == GateKind::kPhase;
}

}  // namespace

bool is_clifford_gate(const Gate& g) {
  if (is_clifford_gate(g.kind)) return true;
  if (is_rotation_kind(g.kind)) return quarter_turns(g.params[0]) >= 0;
  return false;
}

bool is_clifford_circuit(const Circuit& circuit) {
  for (const Gate& g : circuit.gates()) {
    if (!circuit::is_unitary(g.kind) && g.kind != GateKind::kBarrier) {
      return false;
    }
    if (!is_clifford_gate(g)) return false;
  }
  return true;
}

StabilizerState::StabilizerState(int num_qubits) : n_(num_qubits) {
  QFS_ASSERT_MSG(num_qubits >= 1, "need at least one qubit");
  const auto rows = static_cast<std::size_t>(2 * n_);
  x_.assign(rows, std::vector<std::uint8_t>(static_cast<std::size_t>(n_), 0));
  z_.assign(rows, std::vector<std::uint8_t>(static_cast<std::size_t>(n_), 0));
  sign_.assign(rows, 0);
  for (int i = 0; i < n_; ++i) {
    x_[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1;       // destabilizer X_i
    z_[static_cast<std::size_t>(n_ + i)][static_cast<std::size_t>(i)] = 1;  // stabilizer Z_i
  }
}

namespace {

/// Phase exponent contribution (mod 4) of multiplying Pauli (x1,z1) by
/// (x2,z2) on one qubit (Aaronson-Gottesman's g function).
int pauli_phase(int x1, int z1, int x2, int z2) {
  if (x1 == 0 && z1 == 0) return 0;
  if (x1 == 1 && z1 == 1) return z2 - x2;            // Y
  if (x1 == 1 && z1 == 0) return z2 * (2 * x2 - 1);  // X
  return x2 * (1 - 2 * z2);                          // Z
}

}  // namespace

int StabilizerState::row_phase(int target, int source) const {
  int exponent = 2 * sign_[static_cast<std::size_t>(target)] +
                 2 * sign_[static_cast<std::size_t>(source)];
  for (int q = 0; q < n_; ++q) {
    exponent += pauli_phase(
        x_[static_cast<std::size_t>(source)][static_cast<std::size_t>(q)],
        z_[static_cast<std::size_t>(source)][static_cast<std::size_t>(q)],
        x_[static_cast<std::size_t>(target)][static_cast<std::size_t>(q)],
        z_[static_cast<std::size_t>(target)][static_cast<std::size_t>(q)]);
  }
  exponent %= 4;
  if (exponent < 0) exponent += 4;
  QFS_ASSERT_MSG(exponent == 0 || exponent == 2,
                 "stabilizer phase must stay real");
  return exponent / 2;
}

void StabilizerState::row_mult(int target, int source) {
  sign_[static_cast<std::size_t>(target)] =
      static_cast<std::uint8_t>(row_phase(target, source));
  for (int q = 0; q < n_; ++q) {
    x_[static_cast<std::size_t>(target)][static_cast<std::size_t>(q)] ^=
        x_[static_cast<std::size_t>(source)][static_cast<std::size_t>(q)];
    z_[static_cast<std::size_t>(target)][static_cast<std::size_t>(q)] ^=
        z_[static_cast<std::size_t>(source)][static_cast<std::size_t>(q)];
  }
}

void StabilizerState::apply_gate(const Gate& g) {
  if (g.kind == GateKind::kBarrier) return;
  QFS_ASSERT_MSG(is_clifford_gate(g),
                 std::string("non-Clifford gate in stabilizer simulation: ") +
                     circuit::gate_name(g.kind));
  for (int q : g.qubits) {
    QFS_ASSERT_MSG(0 <= q && q < n_, "qubit out of range");
  }

  // Quarter-turn rotations reduce to named Cliffords (global phase
  // irrelevant on stabilizer states).
  if (is_rotation_kind(g.kind)) {
    int k = quarter_turns(g.params[0]);
    QFS_ASSERT(k >= 0);
    if (k == 0) return;
    int q = g.qubits[0];
    if (g.kind == GateKind::kRz || g.kind == GateKind::kPhase) {
      static const GateKind z_like[4] = {GateKind::kI, GateKind::kS,
                                         GateKind::kZ, GateKind::kSdg};
      apply_gate(circuit::make_gate(z_like[k], {q}));
      return;
    }
    if (g.kind == GateKind::kRx) {
      static const GateKind x_like[4] = {GateKind::kI, GateKind::kSx,
                                         GateKind::kX, GateKind::kSxdg};
      apply_gate(circuit::make_gate(x_like[k], {q}));
      return;
    }
    // Ry(theta) = S Rx(theta) Sdg (matrix order) => circuit order:
    // Sdg, Rx-equivalent, S.
    apply_gate(circuit::make_gate(GateKind::kSdg, {q}));
    apply_gate(circuit::make_gate(GateKind::kRx, {q}, {g.params[0]}));
    apply_gate(circuit::make_gate(GateKind::kS, {q}));
    return;
  }
  const auto rows = static_cast<std::size_t>(2 * n_);

  auto apply_h = [this, rows](int q) {
    auto qi = static_cast<std::size_t>(q);
    for (std::size_t r = 0; r < rows; ++r) {
      sign_[r] ^= x_[r][qi] & z_[r][qi];
      std::swap(x_[r][qi], z_[r][qi]);
    }
  };
  auto apply_s = [this, rows](int q) {
    auto qi = static_cast<std::size_t>(q);
    for (std::size_t r = 0; r < rows; ++r) {
      sign_[r] ^= x_[r][qi] & z_[r][qi];
      z_[r][qi] ^= x_[r][qi];
    }
  };
  auto apply_x = [this, rows](int q) {
    auto qi = static_cast<std::size_t>(q);
    for (std::size_t r = 0; r < rows; ++r) sign_[r] ^= z_[r][qi];
  };
  auto apply_z = [this, rows](int q) {
    auto qi = static_cast<std::size_t>(q);
    for (std::size_t r = 0; r < rows; ++r) sign_[r] ^= x_[r][qi];
  };
  auto apply_cx = [this, rows](int c, int t) {
    auto ci = static_cast<std::size_t>(c);
    auto ti = static_cast<std::size_t>(t);
    for (std::size_t r = 0; r < rows; ++r) {
      sign_[r] ^= static_cast<std::uint8_t>(x_[r][ci] & z_[r][ti] &
                                            (x_[r][ti] ^ z_[r][ci] ^ 1));
      x_[r][ti] ^= x_[r][ci];
      z_[r][ci] ^= z_[r][ti];
    }
  };

  switch (g.kind) {
    case GateKind::kI:
      return;
    case GateKind::kH:
      apply_h(g.qubits[0]);
      return;
    case GateKind::kS:
      apply_s(g.qubits[0]);
      return;
    case GateKind::kSdg:
      apply_s(g.qubits[0]);
      apply_s(g.qubits[0]);
      apply_s(g.qubits[0]);
      return;
    case GateKind::kX:
      apply_x(g.qubits[0]);
      return;
    case GateKind::kZ:
      apply_z(g.qubits[0]);
      return;
    case GateKind::kY:
      apply_z(g.qubits[0]);
      apply_x(g.qubits[0]);
      return;
    case GateKind::kSx:
      // sqrt(X) = H S H up to global phase.
      apply_h(g.qubits[0]);
      apply_s(g.qubits[0]);
      apply_h(g.qubits[0]);
      return;
    case GateKind::kSxdg:
      apply_h(g.qubits[0]);
      apply_s(g.qubits[0]);
      apply_s(g.qubits[0]);
      apply_s(g.qubits[0]);
      apply_h(g.qubits[0]);
      return;
    case GateKind::kCx:
      apply_cx(g.qubits[0], g.qubits[1]);
      return;
    case GateKind::kCz:
      apply_h(g.qubits[1]);
      apply_cx(g.qubits[0], g.qubits[1]);
      apply_h(g.qubits[1]);
      return;
    case GateKind::kCy:
      // cy = sdg(t) cx s(t)
      apply_s(g.qubits[1]);
      apply_s(g.qubits[1]);
      apply_s(g.qubits[1]);
      apply_cx(g.qubits[0], g.qubits[1]);
      apply_s(g.qubits[1]);
      return;
    case GateKind::kSwap:
      apply_cx(g.qubits[0], g.qubits[1]);
      apply_cx(g.qubits[1], g.qubits[0]);
      apply_cx(g.qubits[0], g.qubits[1]);
      return;
    default:
      QFS_ASSERT_MSG(false, "unhandled Clifford gate");
  }
}

void StabilizerState::apply_circuit(const Circuit& circuit) {
  QFS_ASSERT_MSG(circuit.num_qubits() <= n_, "circuit wider than state");
  for (const Gate& g : circuit.gates()) {
    QFS_ASSERT_MSG(circuit::is_unitary(g.kind) || g.kind == GateKind::kBarrier,
                   "measure/reset need explicit measure() calls");
    apply_gate(g);
  }
}

bool StabilizerState::is_deterministic(int q) const {
  QFS_ASSERT_MSG(0 <= q && q < n_, "qubit out of range");
  for (int p = n_; p < 2 * n_; ++p) {
    if (x_[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)]) {
      return false;
    }
  }
  return true;
}

bool StabilizerState::measure(int q, qfs::Rng& rng) {
  QFS_ASSERT_MSG(0 <= q && q < n_, "qubit out of range");
  auto qi = static_cast<std::size_t>(q);

  int p = -1;
  for (int row = n_; row < 2 * n_; ++row) {
    if (x_[static_cast<std::size_t>(row)][qi]) {
      p = row;
      break;
    }
  }
  if (p >= 0) {
    // Random outcome: update every other row that anticommutes with Z_q.
    for (int row = 0; row < 2 * n_; ++row) {
      if (row != p && x_[static_cast<std::size_t>(row)][qi]) {
        row_mult(row, p);
      }
    }
    // Destabilizer takes the old stabilizer row; stabilizer becomes +-Z_q.
    x_[static_cast<std::size_t>(p - n_)] = x_[static_cast<std::size_t>(p)];
    z_[static_cast<std::size_t>(p - n_)] = z_[static_cast<std::size_t>(p)];
    sign_[static_cast<std::size_t>(p - n_)] = sign_[static_cast<std::size_t>(p)];
    std::fill(x_[static_cast<std::size_t>(p)].begin(),
              x_[static_cast<std::size_t>(p)].end(), 0);
    std::fill(z_[static_cast<std::size_t>(p)].begin(),
              z_[static_cast<std::size_t>(p)].end(), 0);
    z_[static_cast<std::size_t>(p)][qi] = 1;
    bool outcome = rng.bernoulli(0.5);
    sign_[static_cast<std::size_t>(p)] = outcome ? 1 : 0;
    return outcome;
  }

  // Deterministic outcome: accumulate the product of stabilizers whose
  // destabilizer partner anticommutes with Z_q into a scratch row.
  std::vector<std::uint8_t> sx(static_cast<std::size_t>(n_), 0);
  std::vector<std::uint8_t> sz(static_cast<std::size_t>(n_), 0);
  int scratch_sign = 0;
  for (int i = 0; i < n_; ++i) {
    if (!x_[static_cast<std::size_t>(i)][qi]) continue;
    int src = n_ + i;
    int exponent = 2 * scratch_sign + 2 * sign_[static_cast<std::size_t>(src)];
    for (int col = 0; col < n_; ++col) {
      exponent += pauli_phase(
          x_[static_cast<std::size_t>(src)][static_cast<std::size_t>(col)],
          z_[static_cast<std::size_t>(src)][static_cast<std::size_t>(col)],
          sx[static_cast<std::size_t>(col)], sz[static_cast<std::size_t>(col)]);
    }
    exponent %= 4;
    if (exponent < 0) exponent += 4;
    scratch_sign = exponent / 2;
    for (int col = 0; col < n_; ++col) {
      sx[static_cast<std::size_t>(col)] ^=
          x_[static_cast<std::size_t>(src)][static_cast<std::size_t>(col)];
      sz[static_cast<std::size_t>(col)] ^=
          z_[static_cast<std::size_t>(src)][static_cast<std::size_t>(col)];
    }
  }
  return scratch_sign != 0;
}

std::string StabilizerState::stabilizer_string(int row) const {
  QFS_ASSERT_MSG(0 <= row && row < n_, "stabilizer row out of range");
  auto r = static_cast<std::size_t>(n_ + row);
  std::string out = sign_[r] ? "-" : "+";
  for (int q = 0; q < n_; ++q) {
    auto qi = static_cast<std::size_t>(q);
    int xq = x_[r][qi], zq = z_[r][qi];
    out += xq ? (zq ? 'Y' : 'X') : (zq ? 'Z' : 'I');
  }
  return out;
}

std::vector<std::string> StabilizerState::canonical_stabilizers() const {
  // Gaussian elimination on a copy of the stabilizer half.
  StabilizerState work = *this;
  int pivot_row = work.n_;  // rows n..2n-1 are stabilizers
  auto bit = [&work](int row, int col, bool is_z) -> std::uint8_t {
    return is_z ? work.z_[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)]
                : work.x_[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
  };
  auto swap_rows = [&work](int a, int b) {
    std::swap(work.x_[static_cast<std::size_t>(a)], work.x_[static_cast<std::size_t>(b)]);
    std::swap(work.z_[static_cast<std::size_t>(a)], work.z_[static_cast<std::size_t>(b)]);
    std::swap(work.sign_[static_cast<std::size_t>(a)], work.sign_[static_cast<std::size_t>(b)]);
  };
  for (int pass = 0; pass < 2; ++pass) {
    bool is_z = pass == 1;
    for (int col = 0; col < work.n_ && pivot_row < 2 * work.n_; ++col) {
      int found = -1;
      for (int row = pivot_row; row < 2 * work.n_; ++row) {
        if (bit(row, col, is_z)) {
          found = row;
          break;
        }
      }
      if (found < 0) continue;
      swap_rows(pivot_row, found);
      for (int row = work.n_; row < 2 * work.n_; ++row) {
        if (row != pivot_row && bit(row, col, is_z)) {
          work.row_mult(row, pivot_row);
        }
      }
      ++pivot_row;
    }
  }
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(work.n_));
  for (int row = 0; row < work.n_; ++row) {
    out.push_back(work.stabilizer_string(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool StabilizerState::same_state(const StabilizerState& a,
                                 const StabilizerState& b) {
  if (a.n_ != b.n_) return false;
  return a.canonical_stabilizers() == b.canonical_stabilizers();
}

bool clifford_mapping_preserves_state(const Circuit& original,
                                      const Circuit& mapped,
                                      const std::vector<int>& initial_layout,
                                      const std::vector<int>& final_layout) {
  QFS_ASSERT_MSG(is_clifford_circuit(original) && is_clifford_circuit(mapped),
                 "clifford verification needs Clifford circuits");
  QFS_ASSERT_MSG(initial_layout.size() ==
                         static_cast<std::size_t>(original.num_qubits()) &&
                     final_layout.size() == initial_layout.size(),
                 "layout sizes must match the original circuit");
  const int np = mapped.num_qubits();

  auto relabel = [np](const Circuit& c, const std::vector<int>& layout) {
    Circuit out(np, c.name());
    for (const Gate& g : c.gates()) {
      std::vector<int> mapped_qubits;
      for (int q : g.qubits) {
        mapped_qubits.push_back(layout[static_cast<std::size_t>(q)]);
      }
      out.add(g.kind, std::move(mapped_qubits), g.params);
    }
    return out;
  };

  // Phase 1: plain |0...0> input.
  {
    StabilizerState expected(np);
    expected.apply_circuit(relabel(original, final_layout));
    StabilizerState actual(np);
    actual.apply_circuit(mapped);
    if (!StabilizerState::same_state(expected, actual)) return false;
  }
  // Phase 2: |+...+> on the virtual register (H-prep layer), exercising
  // the initial layout.
  {
    StabilizerState expected(np);
    Circuit prep_virtual(original.num_qubits());
    for (int v = 0; v < original.num_qubits(); ++v) prep_virtual.h(v);
    prep_virtual.append(original);
    expected.apply_circuit(relabel(prep_virtual, final_layout));

    StabilizerState actual(np);
    Circuit prep_physical(np);
    for (int p : initial_layout) prep_physical.h(p);
    actual.apply_circuit(prep_physical);
    actual.apply_circuit(mapped);
    if (!StabilizerState::same_state(expected, actual)) return false;
  }
  return true;
}

}  // namespace qfs::sim
