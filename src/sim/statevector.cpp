#include "sim/statevector.h"

#include <cmath>

namespace qfs::sim {

namespace {
bool is_power_of_two(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  QFS_ASSERT_MSG(0 <= num_qubits && num_qubits <= 26,
                 "state vector limited to 26 qubits");
  amps_.assign(std::size_t{1} << num_qubits, Complex{});
  amps_[0] = 1.0;
}

StateVector StateVector::from_amplitudes(std::vector<Complex> amplitudes) {
  QFS_ASSERT_MSG(is_power_of_two(amplitudes.size()),
                 "amplitude count must be a power of two");
  int n = 0;
  while ((std::size_t{1} << n) < amplitudes.size()) ++n;
  StateVector sv(n);
  sv.amps_ = std::move(amplitudes);
  return sv;
}

StateVector StateVector::random(int num_qubits, qfs::Rng& rng) {
  StateVector sv(num_qubits);
  for (auto& a : sv.amps_) a = Complex(rng.normal(0, 1), rng.normal(0, 1));
  sv.normalize();
  return sv;
}

void StateVector::apply_gate(const circuit::Gate& g) {
  if (g.kind == circuit::GateKind::kBarrier) return;
  QFS_ASSERT_MSG(circuit::is_unitary(g.kind),
                 "state-vector simulation of non-unitary gate");
  for (int q : g.qubits) {
    QFS_ASSERT_MSG(0 <= q && q < num_qubits_, "gate qubit out of range");
  }
  const circuit::CMatrix u = circuit::gate_matrix(g);
  const int k = static_cast<int>(g.qubits.size());
  const int local_dim = 1 << k;

  // Bit masks per operand; operand 0 is the most significant local bit.
  std::vector<std::size_t> masks(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    masks[static_cast<std::size_t>(i)] = std::size_t{1} << g.qubits[static_cast<std::size_t>(i)];
  }
  std::size_t operand_union = 0;
  for (auto m : masks) operand_union |= m;

  std::vector<Complex> local(static_cast<std::size_t>(local_dim));
  const std::size_t dim = amps_.size();
  for (std::size_t base = 0; base < dim; ++base) {
    if ((base & operand_union) != 0) continue;  // enumerate operand-zero bases
    // Gather the 2^k amplitudes of this block.
    for (int l = 0; l < local_dim; ++l) {
      std::size_t idx = base;
      for (int i = 0; i < k; ++i) {
        if ((l >> (k - 1 - i)) & 1) idx |= masks[static_cast<std::size_t>(i)];
      }
      local[static_cast<std::size_t>(l)] = amps_[idx];
    }
    // Multiply and scatter back.
    for (int r = 0; r < local_dim; ++r) {
      Complex acc{};
      for (int c = 0; c < local_dim; ++c) {
        acc += u.at(r, c) * local[static_cast<std::size_t>(c)];
      }
      std::size_t idx = base;
      for (int i = 0; i < k; ++i) {
        if ((r >> (k - 1 - i)) & 1) idx |= masks[static_cast<std::size_t>(i)];
      }
      amps_[idx] = acc;
    }
  }
}

void StateVector::apply_circuit(const circuit::Circuit& circuit) {
  QFS_ASSERT_MSG(circuit.num_qubits() <= num_qubits_,
                 "circuit wider than state");
  for (const auto& g : circuit.gates()) apply_gate(g);
}

double StateVector::probability(std::size_t basis) const {
  QFS_ASSERT_MSG(basis < amps_.size(), "basis index out of range");
  return std::norm(amps_[basis]);
}

double StateVector::marginal_one_probability(int q) const {
  QFS_ASSERT_MSG(0 <= q && q < num_qubits_, "qubit out of range");
  const std::size_t mask = std::size_t{1} << q;
  double p = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (i & mask) p += std::norm(amps_[i]);
  }
  return p;
}

Complex StateVector::inner_product(const StateVector& other) const {
  QFS_ASSERT_MSG(amps_.size() == other.amps_.size(), "dimension mismatch");
  Complex acc{};
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    acc += std::conj(amps_[i]) * other.amps_[i];
  }
  return acc;
}

double StateVector::norm() const {
  double acc = 0.0;
  for (const auto& a : amps_) acc += std::norm(a);
  return std::sqrt(acc);
}

void StateVector::normalize() {
  double n = norm();
  QFS_ASSERT_MSG(n > 0.0, "cannot normalise the zero vector");
  for (auto& a : amps_) a /= n;
}

std::size_t StateVector::sample(qfs::Rng& rng) const {
  double r = rng.uniform_real(0.0, 1.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    acc += std::norm(amps_[i]);
    if (acc >= r) return i;
  }
  return amps_.size() - 1;
}

double state_fidelity(const StateVector& a, const StateVector& b) {
  return std::norm(a.inner_product(b));
}

bool approx_equal_up_to_phase(const StateVector& a, const StateVector& b,
                              double tol) {
  if (a.dim() != b.dim()) return false;
  return std::abs(state_fidelity(a, b) - 1.0) <= tol;
}

}  // namespace qfs::sim
