// Stabilizer (tableau) simulation — Aaronson-Gottesman style.
//
// Clifford circuits (H, S, X, Y, Z, CX, CZ, SWAP, ...) act on stabilizer
// states in polynomial time, which lets qfs verify routed circuits at the
// *full device scale* (e.g. a 97-qubit mapped GHZ) where state vectors are
// hopeless. The destabilizer rows are tracked so measurement outcomes are
// available too.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "support/rng.h"

namespace qfs::sim {

/// True when every gate of the kind is Clifford (simulable here),
/// independent of parameters.
bool is_clifford_gate(circuit::GateKind kind);

/// Parameter-aware check: additionally accepts rx/ry/rz/p gates whose
/// angle is a multiple of pi/2 (within tolerance) — these are Clifford and
/// appear in decomposed H/CX networks on rotation-based gate sets.
bool is_clifford_gate(const circuit::Gate& g);

/// True when all unitary gates of the circuit are Clifford (angle-aware).
bool is_clifford_circuit(const circuit::Circuit& circuit);

class StabilizerState {
 public:
  /// |0...0> on n qubits.
  explicit StabilizerState(int num_qubits);

  int num_qubits() const { return n_; }

  /// Apply a Clifford gate (contract violation otherwise; use
  /// is_clifford_gate to screen). Barriers are no-ops.
  void apply_gate(const circuit::Gate& g);

  /// Apply all gates of a Clifford circuit (measure/reset are a contract
  /// violation — use measure() explicitly).
  void apply_circuit(const circuit::Circuit& circuit);

  /// Measure qubit q in the Z basis; deterministic outcomes return their
  /// value, random outcomes consume `rng` and collapse the state.
  bool measure(int q, qfs::Rng& rng);

  /// The stabilizer row i as a Pauli string, e.g. "+XZI".
  std::string stabilizer_string(int row) const;

  /// Canonical form of the stabilizer group (row-reduced generators),
  /// usable for state-equality comparison.
  std::vector<std::string> canonical_stabilizers() const;

  /// True when both states stabilise the same group (same quantum state up
  /// to phase).
  static bool same_state(const StabilizerState& a, const StabilizerState& b);

  /// Expectation structure helper: is the outcome of measuring qubit q
  /// deterministic in this state?
  bool is_deterministic(int q) const;

 private:
  // Tableau rows 0..n-1: destabilizers, n..2n-1: stabilizers.
  // x_[r][q]/z_[r][q] are the Pauli-X/Z components, r_[r] the sign bit.
  int n_ = 0;
  std::vector<std::vector<std::uint8_t>> x_;
  std::vector<std::vector<std::uint8_t>> z_;
  std::vector<std::uint8_t> sign_;

  void row_mult(int target, int source);  ///< row_target *= row_source
  int row_phase(int target, int source) const;
};

/// Verify a mapped Clifford circuit at device scale: the analogue of
/// sim::mapping_preserves_semantics that works for ~100 qubits. Prepares
/// |0..0>, runs the original on virtual qubits and the mapped circuit on
/// physical qubits, then compares stabilizer groups after relabelling
/// through the final layout.
bool clifford_mapping_preserves_state(const circuit::Circuit& original,
                                      const circuit::Circuit& mapped,
                                      const std::vector<int>& initial_layout,
                                      const std::vector<int>& final_layout);

}  // namespace qfs::sim
