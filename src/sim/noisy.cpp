#include "sim/noisy.h"

namespace qfs::sim {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

namespace {

GateKind random_pauli(qfs::Rng& rng) {
  switch (rng.uniform_int(0, 2)) {
    case 0: return GateKind::kX;
    case 1: return GateKind::kY;
    default: return GateKind::kZ;
  }
}

/// Apply a uniformly random non-identity Pauli string on `qubits`.
void inject_pauli_error(StateVector& sv, const std::vector<int>& qubits,
                        qfs::Rng& rng) {
  // Draw until at least one factor is non-identity (uniform over the 4^k-1
  // non-identity strings).
  while (true) {
    bool any = false;
    std::vector<GateKind> picks(qubits.size(), GateKind::kI);
    for (std::size_t i = 0; i < qubits.size(); ++i) {
      if (rng.uniform_int(0, 3) != 0) {  // 3/4 chance non-identity factor
        picks[i] = random_pauli(rng);
        any = true;
      }
    }
    if (!any) continue;
    for (std::size_t i = 0; i < qubits.size(); ++i) {
      if (picks[i] != GateKind::kI) {
        sv.apply_gate(circuit::make_gate(picks[i], {qubits[i]}));
      }
    }
    return;
  }
}

}  // namespace

NoisyRunResult run_noisy(const Circuit& circuit,
                         const device::ErrorModel& em, qfs::Rng& rng,
                         const NoisyRunOptions& options) {
  QFS_ASSERT_MSG(circuit.num_qubits() <= 16,
                 "noisy simulation limited to 16 qubits");
  QFS_ASSERT_MSG(options.shots > 0, "need at least one shot");

  // Ideal reference state.
  StateVector ideal(circuit.num_qubits());
  for (const Gate& g : circuit.gates()) {
    if (circuit::is_unitary(g.kind)) ideal.apply_gate(g);
  }

  NoisyRunResult result;
  result.shots = options.shots;
  double fidelity_sum = 0.0;
  int error_free = 0;
  long long total_errors = 0;

  for (int shot = 0; shot < options.shots; ++shot) {
    StateVector sv(circuit.num_qubits());
    int errors = 0;
    for (const Gate& g : circuit.gates()) {
      if (g.kind == GateKind::kBarrier) continue;
      if (!circuit::is_unitary(g.kind)) {
        if (options.include_measurement_errors &&
            rng.bernoulli(1.0 - em.gate_fidelity(g))) {
          ++errors;
        }
        continue;
      }
      sv.apply_gate(g);
      double p_error = 1.0 - em.gate_fidelity(g);
      if (rng.bernoulli(p_error)) {
        inject_pauli_error(sv, g.qubits, rng);
        ++errors;
      }
    }
    fidelity_sum += state_fidelity(ideal, sv);
    if (errors == 0) ++error_free;
    total_errors += errors;
  }

  result.mean_state_fidelity = fidelity_sum / options.shots;
  result.error_free_fraction =
      static_cast<double>(error_free) / options.shots;
  result.mean_errors_per_shot =
      static_cast<double>(total_errors) / options.shots;
  return result;
}

}  // namespace qfs::sim
