#include "sim/equivalence.h"

namespace qfs::sim {

using circuit::CMatrix;
using circuit::Circuit;

CMatrix circuit_unitary(const Circuit& circuit) {
  const int n = circuit.num_qubits();
  QFS_ASSERT_MSG(n <= 10, "circuit_unitary limited to 10 qubits");
  const std::size_t dim = std::size_t{1} << n;
  CMatrix u(static_cast<int>(dim));
  for (std::size_t col = 0; col < dim; ++col) {
    std::vector<Complex> amps(dim, Complex{});
    amps[col] = 1.0;
    StateVector sv = StateVector::from_amplitudes(std::move(amps));
    sv.apply_circuit(circuit);
    for (std::size_t row = 0; row < dim; ++row) {
      u.at(static_cast<int>(row), static_cast<int>(col)) = sv.amplitude(row);
    }
  }
  return u;
}

bool circuits_equivalent(const Circuit& a, const Circuit& b, double tol) {
  if (a.num_qubits() != b.num_qubits()) return false;
  return circuit::approx_equal_up_to_phase(circuit_unitary(a),
                                           circuit_unitary(b), tol);
}

StateVector embed_state(const StateVector& state, int num_physical_qubits,
                        const std::vector<int>& layout) {
  const int nv = state.num_qubits();
  QFS_ASSERT_MSG(static_cast<int>(layout.size()) == nv, "layout size mismatch");
  QFS_ASSERT_MSG(num_physical_qubits >= nv, "physical register too small");
  std::vector<bool> used(static_cast<std::size_t>(num_physical_qubits), false);
  for (int p : layout) {
    QFS_ASSERT_MSG(0 <= p && p < num_physical_qubits, "layout target range");
    QFS_ASSERT_MSG(!used[static_cast<std::size_t>(p)], "layout not injective");
    used[static_cast<std::size_t>(p)] = true;
  }

  std::vector<Complex> out(std::size_t{1} << num_physical_qubits, Complex{});
  for (std::size_t basis = 0; basis < state.dim(); ++basis) {
    std::size_t target = 0;
    for (int v = 0; v < nv; ++v) {
      if ((basis >> v) & 1) {
        target |= std::size_t{1} << layout[static_cast<std::size_t>(v)];
      }
    }
    out[target] = state.amplitude(basis);
  }
  return StateVector::from_amplitudes(std::move(out));
}

bool mapping_preserves_semantics(const Circuit& original,
                                 const Circuit& mapped,
                                 const std::vector<int>& initial_layout,
                                 const std::vector<int>& final_layout,
                                 qfs::Rng& rng, int trials, double tol) {
  const int np = mapped.num_qubits();
  for (int trial = 0; trial < trials; ++trial) {
    StateVector input = StateVector::random(original.num_qubits(), rng);

    StateVector expected_small = input;
    expected_small.apply_circuit(original);
    StateVector expected = embed_state(expected_small, np, final_layout);

    StateVector actual = embed_state(input, np, initial_layout);
    actual.apply_circuit(mapped);

    if (!approx_equal_up_to_phase(expected, actual, tol)) return false;
  }
  return true;
}

}  // namespace qfs::sim
