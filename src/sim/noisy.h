// Monte-Carlo noisy simulation (Pauli-twirled depolarizing channel).
//
// Purpose: validate the paper's analytic success-rate metric (product of
// gate fidelities, Fig. 3) against trajectory sampling. After every gate,
// each operand set suffers a uniformly random non-identity Pauli with
// probability (1 - gate fidelity). Per shot we track the exact state and
// report its overlap with the ideal output.
#pragma once

#include "circuit/circuit.h"
#include "device/error_model.h"
#include "sim/statevector.h"
#include "support/rng.h"

namespace qfs::sim {

struct NoisyRunResult {
  int shots = 0;
  /// Mean |<ideal|noisy>|^2 over shots.
  double mean_state_fidelity = 0.0;
  /// Fraction of shots in which no error fired (its expectation equals the
  /// analytic fidelity product exactly).
  double error_free_fraction = 0.0;
  /// Mean number of injected Pauli errors per shot.
  double mean_errors_per_shot = 0.0;
};

struct NoisyRunOptions {
  int shots = 200;
  /// Also count measurement/reset errors (using the model's measurement
  /// fidelity) as error events; they do not alter the tracked pure state.
  bool include_measurement_errors = false;
};

/// Simulate `circuit` (unitary gates only; measurements allowed and
/// skipped for state evolution) under the depolarizing model derived from
/// `em`. Gate fidelities are read per physical operand, so per-edge
/// overrides (noise-aware experiments) are honoured. Circuit width is
/// limited to 16 qubits by contract.
NoisyRunResult run_noisy(const circuit::Circuit& circuit,
                         const device::ErrorModel& em, qfs::Rng& rng,
                         const NoisyRunOptions& options = {});

}  // namespace qfs::sim
