// Dense state-vector simulator.
//
// Scope: unitary-circuit simulation for correctness checking (mapping
// equivalence, decomposition identities) on up to ~20 qubits. Measurement
// sampling is supported via explicit probability queries; mid-circuit
// collapse is intentionally out of scope for the compilation experiments.
//
// Bit convention: qubit q is bit q of the basis-state index (qubit 0 is the
// least-significant bit). Gate matrices use operand 0 as the most
// significant local bit (see circuit/matrix.h); apply_gate translates.
#pragma once

#include <complex>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/matrix.h"
#include "support/rng.h"

namespace qfs::sim {

using circuit::Complex;

class StateVector {
 public:
  /// |0...0> on `num_qubits` qubits.
  explicit StateVector(int num_qubits);

  /// State from explicit amplitudes (size must be a power of two).
  static StateVector from_amplitudes(std::vector<Complex> amplitudes);

  /// Haar-ish random state (normal components, normalised).
  static StateVector random(int num_qubits, qfs::Rng& rng);

  int num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return amps_.size(); }

  const Complex& amplitude(std::size_t basis) const { return amps_[basis]; }
  const std::vector<Complex>& amplitudes() const { return amps_; }

  /// Apply one unitary gate (contract violation for measure/reset; barriers
  /// are no-ops).
  void apply_gate(const circuit::Gate& g);

  /// Apply every unitary gate of a circuit in order (barriers skipped).
  /// Circuits containing measure/reset are a contract violation.
  void apply_circuit(const circuit::Circuit& circuit);

  /// Probability of measuring basis state `basis`.
  double probability(std::size_t basis) const;

  /// Marginal probability of qubit q being |1>.
  double marginal_one_probability(int q) const;

  /// <this|other>.
  Complex inner_product(const StateVector& other) const;

  double norm() const;
  void normalize();

  /// Sample a basis state index from the measurement distribution.
  std::size_t sample(qfs::Rng& rng) const;

 private:
  int num_qubits_ = 0;
  std::vector<Complex> amps_;
};

/// |<a|b>|^2 — state fidelity between pure states.
double state_fidelity(const StateVector& a, const StateVector& b);

/// True when a == e^{i phi} b for some phase.
bool approx_equal_up_to_phase(const StateVector& a, const StateVector& b,
                              double tol = 1e-9);

}  // namespace qfs::sim
