// Circuit equivalence checking.
//
// Two flavours:
//  * exact unitary comparison (small circuits, <= 10 qubits), and
//  * mapping-aware state checks: a routed circuit must act like the
//    original once initial/final qubit layouts are accounted for.
#pragma once

#include <vector>

#include "circuit/circuit.h"
#include "circuit/matrix.h"
#include "sim/statevector.h"
#include "support/rng.h"

namespace qfs::sim {

/// Full 2^n x 2^n unitary of a (unitary-only) circuit; n <= 10 by contract.
circuit::CMatrix circuit_unitary(const circuit::Circuit& circuit);

/// Unitary equality up to global phase.
bool circuits_equivalent(const circuit::Circuit& a, const circuit::Circuit& b,
                         double tol = 1e-9);

/// Embed an n_v-qubit state into n_p qubits, placing virtual qubit v on
/// physical qubit layout[v]; all other physical qubits are |0>.
StateVector embed_state(const StateVector& state, int num_physical_qubits,
                        const std::vector<int>& layout);

/// Verify that `mapped` (on the physical register) implements `original`
/// (on the virtual register) given the mapper's initial and final layouts
/// (virtual -> physical). Uses `trials` random input states.
bool mapping_preserves_semantics(const circuit::Circuit& original,
                                 const circuit::Circuit& mapped,
                                 const std::vector<int>& initial_layout,
                                 const std::vector<int>& final_layout,
                                 qfs::Rng& rng, int trials = 3,
                                 double tol = 1e-7);

}  // namespace qfs::sim
