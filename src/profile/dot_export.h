// Graphviz DOT export of weighted graphs — render interaction graphs and
// coupling graphs the way the paper's Figs. 2 and 4 draw them.
#pragma once

#include <string>

#include "graph/graph.h"

namespace qfs::profile {

struct DotOptions {
  std::string graph_name = "g";
  std::string node_prefix = "q";
  /// Scale pen width by edge weight (interaction graphs); off for coupling
  /// graphs where weights are structural.
  bool weight_styling = true;
};

/// Undirected DOT rendering with weight labels.
std::string to_dot(const graph::Graph& graph, const DotOptions& options = {});

}  // namespace qfs::profile
