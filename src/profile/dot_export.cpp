#include "profile/dot_export.h"

#include <algorithm>
#include <sstream>

#include "support/strings.h"

namespace qfs::profile {

std::string to_dot(const graph::Graph& graph, const DotOptions& options) {
  std::ostringstream os;
  os << "graph " << options.graph_name << " {\n";
  os << "  node [shape=circle];\n";
  double max_weight = 1.0;
  for (const auto& e : graph.edges()) max_weight = std::max(max_weight, e.weight);
  for (int v = 0; v < graph.num_nodes(); ++v) {
    os << "  " << options.node_prefix << v << ";\n";
  }
  for (const auto& e : graph.edges()) {
    os << "  " << options.node_prefix << e.u << " -- " << options.node_prefix
       << e.v;
    if (options.weight_styling) {
      double width = 1.0 + 4.0 * e.weight / max_weight;
      os << " [label=\"" << qfs::format_double(e.weight, 0)
         << "\", penwidth=" << qfs::format_double(width, 2) << "]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace qfs::profile
