// Circuit profiles: the common size parameters plus the interaction-graph
// metric set of Table I (and the auxiliary metrics the paper's Pearson
// analysis starts from).
#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "stats/correlation.h"

namespace qfs::profile {

struct CircuitProfile {
  std::string name;

  // Common circuit parameters ("the only parameters taken into account in
  // literature").
  int num_qubits = 0;        ///< active qubits (participating in any gate)
  int gate_count = 0;
  int two_qubit_gates = 0;
  double two_qubit_fraction = 0.0;
  int depth = 0;

  // Interaction-graph metrics (on the active interaction graph).
  int ig_nodes = 0;
  int ig_edges = 0;
  double avg_shortest_path = 0.0;   ///< hopcount (Table I)
  double avg_closeness = 0.0;       ///< closeness (Table I)
  int diameter = 0;
  int min_degree = 0;               ///< Table I
  int max_degree = 0;               ///< Table I
  double mean_degree = 0.0;
  double degree_stddev = 0.0;
  double density = 0.0;             ///< a.k.a. connectivity
  double clustering = 0.0;
  double edge_weight_mean = 0.0;
  double edge_weight_min = 0.0;
  double edge_weight_max = 0.0;
  double edge_weight_stddev = 0.0;
  double edge_weight_variance = 0.0;
  double adj_matrix_mean = 0.0;
  double adj_matrix_stddev = 0.0;   ///< Table I ("adjacency matrix std. dev.")
  double assortativity = 0.0;
  double avg_betweenness = 0.0;
  double max_betweenness = 0.0;
  int radius = 0;
  double algebraic_connectivity = 0.0;
};

/// Profile one circuit.
CircuitProfile profile_circuit(const circuit::Circuit& circuit);

/// The full hand-picked metric vector for Pearson reduction, in a fixed
/// order. Size parameters are excluded (they are not graph metrics).
std::vector<double> graph_metric_vector(const CircuitProfile& p);

/// Names matching graph_metric_vector entries.
const std::vector<std::string>& graph_metric_names();

/// Convert a set of profiles into named feature columns for
/// stats::correlation_matrix / stats::reduce_features.
std::vector<stats::Feature> profiles_to_features(
    const std::vector<CircuitProfile>& profiles);

}  // namespace qfs::profile
