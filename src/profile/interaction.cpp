#include "profile/interaction.h"

#include <algorithm>
#include <cmath>

namespace qfs::profile {

using circuit::Gate;

graph::Graph interaction_graph(const circuit::Circuit& circuit) {
  graph::Graph g(circuit.num_qubits());
  for (const Gate& gate : circuit.gates()) {
    if (!circuit::is_unitary(gate.kind) || gate.qubits.size() < 2) continue;
    for (std::size_t i = 0; i < gate.qubits.size(); ++i) {
      for (std::size_t j = i + 1; j < gate.qubits.size(); ++j) {
        g.add_edge(gate.qubits[i], gate.qubits[j], 1.0);
      }
    }
  }
  return g;
}

graph::Graph active_interaction_graph(const circuit::Circuit& circuit,
                                      std::vector<int>* qubit_of_node) {
  graph::Graph full = interaction_graph(circuit);
  std::vector<int> mapping(static_cast<std::size_t>(full.num_nodes()), -1);
  std::vector<int> active;
  for (int q = 0; q < full.num_nodes(); ++q) {
    if (full.degree(q) > 0) {
      mapping[static_cast<std::size_t>(q)] = static_cast<int>(active.size());
      active.push_back(q);
    }
  }
  graph::Graph compact(static_cast<int>(active.size()));
  for (const auto& e : full.edges()) {
    compact.add_edge(mapping[static_cast<std::size_t>(e.u)],
                     mapping[static_cast<std::size_t>(e.v)], e.weight);
  }
  if (qubit_of_node != nullptr) *qubit_of_node = std::move(active);
  return compact;
}

std::vector<graph::Graph> sliced_interaction_graphs(
    const circuit::Circuit& circuit, int slices) {
  QFS_ASSERT_MSG(slices >= 1, "need at least one slice");
  const auto& gates = circuit.gates();
  std::vector<graph::Graph> out;
  out.reserve(static_cast<std::size_t>(slices));
  const std::size_t total = gates.size();
  for (int s = 0; s < slices; ++s) {
    std::size_t begin = total * static_cast<std::size_t>(s) /
                        static_cast<std::size_t>(slices);
    std::size_t end = total * static_cast<std::size_t>(s + 1) /
                      static_cast<std::size_t>(slices);
    graph::Graph g(circuit.num_qubits());
    for (std::size_t i = begin; i < end; ++i) {
      const Gate& gate = gates[i];
      if (!circuit::is_unitary(gate.kind) || gate.qubits.size() < 2) continue;
      for (std::size_t a = 0; a < gate.qubits.size(); ++a) {
        for (std::size_t b = a + 1; b < gate.qubits.size(); ++b) {
          g.add_edge(gate.qubits[a], gate.qubits[b], 1.0);
        }
      }
    }
    out.push_back(std::move(g));
  }
  return out;
}

double interaction_drift(const circuit::Circuit& circuit, int slices) {
  QFS_ASSERT_MSG(slices >= 2, "drift needs at least two slices");
  auto windows = sliced_interaction_graphs(circuit, slices);
  double total_drift = 0.0;
  int measured = 0;
  for (std::size_t s = 0; s + 1 < windows.size(); ++s) {
    const graph::Graph& a = windows[s];
    const graph::Graph& b = windows[s + 1];
    // Normalised L1 distance over the union of edges.
    double diff = 0.0, norm = 0.0;
    auto accumulate = [&](const graph::Graph& g1, const graph::Graph& g2,
                          bool count_norm) {
      for (const auto& e : g1.edges()) {
        double w1 = e.weight;
        double w2 = g2.edge_weight(e.u, e.v);
        if (count_norm) {
          diff += std::abs(w1 - w2);
          norm += std::max(w1, w2);
        } else if (w2 == 0.0) {
          // edges only in g1 were already counted; edges only in g2:
          diff += w1;
          norm += w1;
        }
      }
    };
    accumulate(a, b, true);
    accumulate(b, a, false);
    if (norm > 0.0) {
      total_drift += diff / norm;
      ++measured;
    }
  }
  return measured == 0 ? 0.0 : total_drift / measured;
}

}  // namespace qfs::profile
