// Qubit interaction graphs (Sec. III/IV of the paper).
//
// The interaction graph of a circuit has a node per qubit and an edge per
// interacting qubit pair, weighted by how many two-qubit gates act on that
// pair. It captures "the core constraint that needs to be dealt with during
// the mapping process".
#pragma once

#include <vector>

#include "circuit/circuit.h"
#include "graph/graph.h"

namespace qfs::profile {

/// Interaction graph over the full circuit register (isolated nodes for
/// qubits without two-qubit gates). Multi-qubit gates beyond two qubits
/// contribute an edge per operand pair.
graph::Graph interaction_graph(const circuit::Circuit& circuit);

/// Interaction graph compacted to the qubits that participate in at least
/// one two-qubit interaction; `qubit_of_node[i]` maps node i back to the
/// original qubit index. Metrics are computed on this graph so that unused
/// register padding does not dilute averages.
graph::Graph active_interaction_graph(const circuit::Circuit& circuit,
                                      std::vector<int>* qubit_of_node = nullptr);

/// Temporal slicing: split the circuit's gate list into `slices`
/// consecutive windows of (near-)equal gate count and return each window's
/// interaction graph (over the full register). Captures how the
/// interaction pattern drifts over the course of the algorithm —
/// information a static interaction graph hides.
std::vector<graph::Graph> sliced_interaction_graphs(
    const circuit::Circuit& circuit, int slices);

/// Interaction drift: mean normalised L1 distance between the adjacency
/// matrices of consecutive slices. 0 = the interaction pattern is
/// stationary (e.g. a repeated VQE layer); 1 = consecutive windows share
/// no interactions at all.
double interaction_drift(const circuit::Circuit& circuit, int slices = 4);

}  // namespace qfs::profile
