#include "profile/circuit_profile.h"

#include "graph/algorithms.h"
#include "graph/metrics.h"
#include "profile/interaction.h"

namespace qfs::profile {

CircuitProfile profile_circuit(const circuit::Circuit& circuit) {
  CircuitProfile p;
  p.name = circuit.name();
  p.num_qubits = static_cast<int>(circuit.used_qubits().size());
  p.gate_count = circuit.gate_count();
  p.two_qubit_gates = circuit.two_qubit_gate_count();
  p.two_qubit_fraction = circuit.two_qubit_fraction();
  p.depth = circuit.depth();

  graph::Graph ig = active_interaction_graph(circuit);
  p.ig_nodes = ig.num_nodes();
  p.ig_edges = ig.num_edges();
  if (ig.num_nodes() == 0) return p;

  p.avg_shortest_path = graph::average_shortest_path(ig);
  p.avg_closeness = graph::average_closeness(ig);
  int diam = graph::diameter(ig);
  p.diameter = (diam == graph::kUnreachable) ? -1 : diam;

  auto deg = graph::degree_stats(ig);
  p.min_degree = deg.min;
  p.max_degree = deg.max;
  p.mean_degree = deg.mean;
  p.degree_stddev = deg.stddev;
  p.density = graph::density(ig);
  p.clustering = graph::average_clustering(ig);

  auto ew = graph::edge_weight_stats(ig);
  p.edge_weight_mean = ew.mean;
  p.edge_weight_min = ew.min;
  p.edge_weight_max = ew.max;
  p.edge_weight_stddev = ew.stddev;
  p.edge_weight_variance = ew.variance;

  auto adj = graph::adjacency_matrix_stats(ig);
  p.adj_matrix_mean = adj.mean;
  p.adj_matrix_stddev = adj.stddev;

  p.assortativity = graph::degree_assortativity(ig);

  auto betweenness = graph::betweenness_centrality(ig);
  double sum = 0.0, worst = 0.0;
  for (double b : betweenness) {
    sum += b;
    worst = std::max(worst, b);
  }
  p.avg_betweenness = sum / ig.num_nodes();
  p.max_betweenness = worst;
  p.radius = graph::radius(ig);
  p.algebraic_connectivity = graph::algebraic_connectivity(ig);
  return p;
}

const std::vector<std::string>& graph_metric_names() {
  static const std::vector<std::string> names = {
      // Ordered by mapping relevance: the paper's reduced set first, so the
      // greedy Pearson reduction keeps exactly these representatives.
      "avg_shortest_path",
      "max_degree",
      "min_degree",
      "adj_matrix_stddev",
      // Redundant companions (expected to be pruned on typical suites).
      "avg_closeness",
      "diameter",
      "mean_degree",
      "degree_stddev",
      "density",
      "clustering",
      "edge_weight_mean",
      "edge_weight_stddev",
      "edge_weight_variance",
      "adj_matrix_mean",
      "assortativity",
      "avg_betweenness",
      "max_betweenness",
      "radius",
      "algebraic_connectivity",
  };
  return names;
}

std::vector<double> graph_metric_vector(const CircuitProfile& p) {
  return {
      p.avg_shortest_path,
      static_cast<double>(p.max_degree),
      static_cast<double>(p.min_degree),
      p.adj_matrix_stddev,
      p.avg_closeness,
      static_cast<double>(p.diameter),
      p.mean_degree,
      p.degree_stddev,
      p.density,
      p.clustering,
      p.edge_weight_mean,
      p.edge_weight_stddev,
      p.edge_weight_variance,
      p.adj_matrix_mean,
      p.assortativity,
      p.avg_betweenness,
      p.max_betweenness,
      static_cast<double>(p.radius),
      p.algebraic_connectivity,
  };
}

std::vector<stats::Feature> profiles_to_features(
    const std::vector<CircuitProfile>& profiles) {
  const auto& names = graph_metric_names();
  std::vector<stats::Feature> features(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) features[i].name = names[i];
  for (const auto& p : profiles) {
    std::vector<double> v = graph_metric_vector(p);
    QFS_ASSERT(v.size() == names.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      features[i].values.push_back(v[i]);
    }
  }
  return features;
}

}  // namespace qfs::profile
