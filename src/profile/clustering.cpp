#include "profile/clustering.h"

#include "stats/descriptive.h"

namespace qfs::profile {

ClusteringResult cluster_profiles(const std::vector<CircuitProfile>& profiles,
                                  int k, qfs::Rng& rng, bool reduce_first,
                                  double pearson_threshold) {
  QFS_ASSERT_MSG(!profiles.empty(), "clustering needs at least one profile");
  auto features = profiles_to_features(profiles);

  ClusteringResult result;
  if (reduce_first) {
    auto reduction = stats::reduce_features(features, pearson_threshold);
    result.feature_indices = reduction.kept;
  } else {
    for (std::size_t i = 0; i < features.size(); ++i) {
      result.feature_indices.push_back(static_cast<int>(i));
    }
  }

  // z-score each kept column, then assemble sample rows.
  std::vector<std::vector<double>> columns;
  for (int idx : result.feature_indices) {
    columns.push_back(
        stats::standardize(features[static_cast<std::size_t>(idx)].values));
  }
  std::vector<std::vector<double>> samples(
      profiles.size(), std::vector<double>(columns.size(), 0.0));
  for (std::size_t c = 0; c < columns.size(); ++c) {
    for (std::size_t s = 0; s < profiles.size(); ++s) {
      samples[s][c] = columns[c][s];
    }
  }

  result.kmeans = stats::kmeans(samples, k, rng);
  result.cluster_of_circuit = result.kmeans.assignment;
  return result;
}

}  // namespace qfs::profile
