// Algorithm clustering (Sec. IV): group circuits by their interaction-graph
// feature vectors so that "quantum algorithms with similar properties show
// similar performance when run on specific chips".
#pragma once

#include <vector>

#include "profile/circuit_profile.h"
#include "stats/kmeans.h"

namespace qfs::profile {

struct ClusteringResult {
  std::vector<int> cluster_of_circuit;
  stats::KMeansResult kmeans;
  std::vector<int> feature_indices;  ///< which graph metrics were used
};

/// Cluster profiles with k-means on z-scored metric columns. When
/// `reduce_first` is set, the Pearson reduction (|rho| >= threshold) is run
/// first and only the kept metrics form the feature space — the paper's
/// pipeline.
ClusteringResult cluster_profiles(const std::vector<CircuitProfile>& profiles,
                                  int k, qfs::Rng& rng,
                                  bool reduce_first = true,
                                  double pearson_threshold = 0.85);

}  // namespace qfs::profile
