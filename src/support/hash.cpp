#include "support/hash.h"

#include <cstring>

namespace qfs {

namespace {

constexpr std::uint64_t kC1 = 0x87c37b91114253d5ULL;
constexpr std::uint64_t kC2 = 0x4cf5ad432745937fULL;

inline std::uint64_t rotl64(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

/// Little-endian 64-bit load, byte by byte: identical on every host.
inline std::uint64_t load_le64(const unsigned char* p) {
  return static_cast<std::uint64_t>(p[0]) |
         (static_cast<std::uint64_t>(p[1]) << 8) |
         (static_cast<std::uint64_t>(p[2]) << 16) |
         (static_cast<std::uint64_t>(p[3]) << 24) |
         (static_cast<std::uint64_t>(p[4]) << 32) |
         (static_cast<std::uint64_t>(p[5]) << 40) |
         (static_cast<std::uint64_t>(p[6]) << 48) |
         (static_cast<std::uint64_t>(p[7]) << 56);
}

inline std::uint64_t fmix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace

std::string Hash128::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    std::uint64_t word = i < 8 ? hi : lo;
    int shift = 56 - 8 * (i % 8);
    unsigned byte = static_cast<unsigned>((word >> shift) & 0xff);
    out[static_cast<std::size_t>(2 * i)] = digits[byte >> 4];
    out[static_cast<std::size_t>(2 * i + 1)] = digits[byte & 0xf];
  }
  return out;
}

Hasher::Hasher(std::uint64_t seed) : h1_(seed), h2_(seed) {
  std::memset(tail_, 0, sizeof(tail_));
}

void Hasher::mix_block(const unsigned char* block) {
  std::uint64_t k1 = load_le64(block);
  std::uint64_t k2 = load_le64(block + 8);

  k1 *= kC1;
  k1 = rotl64(k1, 31);
  k1 *= kC2;
  h1_ ^= k1;
  h1_ = rotl64(h1_, 27);
  h1_ += h2_;
  h1_ = h1_ * 5 + 0x52dce729;

  k2 *= kC2;
  k2 = rotl64(k2, 33);
  k2 *= kC1;
  h2_ ^= k2;
  h2_ = rotl64(h2_, 31);
  h2_ += h1_;
  h2_ = h2_ * 5 + 0x38495ab5;
}

void Hasher::update(const void* data, std::size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  total_len_ += len;

  // Top up a partial tail first.
  if (tail_len_ > 0) {
    std::size_t take = std::min(len, sizeof(tail_) - tail_len_);
    std::memcpy(tail_ + tail_len_, p, take);
    tail_len_ += take;
    p += take;
    len -= take;
    if (tail_len_ == sizeof(tail_)) {
      mix_block(tail_);
      tail_len_ = 0;
    }
  }

  while (len >= sizeof(tail_)) {
    mix_block(p);
    p += sizeof(tail_);
    len -= sizeof(tail_);
  }

  if (len > 0) {
    std::memcpy(tail_, p, len);
    tail_len_ = len;
  }
}

Hash128 Hasher::finish() const {
  std::uint64_t h1 = h1_;
  std::uint64_t h2 = h2_;

  std::uint64_t k1 = 0;
  std::uint64_t k2 = 0;
  for (std::size_t i = tail_len_; i > 8; --i) {
    k2 |= static_cast<std::uint64_t>(tail_[i - 1]) << (8 * (i - 9));
  }
  for (std::size_t i = std::min<std::size_t>(tail_len_, 8); i > 0; --i) {
    k1 |= static_cast<std::uint64_t>(tail_[i - 1]) << (8 * (i - 1));
  }
  if (tail_len_ > 8) {
    k2 *= kC2;
    k2 = rotl64(k2, 33);
    k2 *= kC1;
    h2 ^= k2;
  }
  if (tail_len_ > 0) {
    k1 *= kC1;
    k1 = rotl64(k1, 31);
    k1 *= kC2;
    h1 ^= k1;
  }

  h1 ^= total_len_;
  h2 ^= total_len_;
  h1 += h2;
  h2 += h1;
  h1 = fmix64(h1);
  h2 = fmix64(h2);
  h1 += h2;
  h2 += h1;
  return Hash128{h1, h2};
}

Hash128 hash128(std::string_view data, std::uint64_t seed) {
  Hasher h(seed);
  h.update(data);
  return h.finish();
}

}  // namespace qfs
