// Minimal CSV emission used by benches to dump figure series.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace qfs {

/// Escape one CSV field (quotes fields containing comma/quote/newline).
std::string csv_escape(const std::string& field);

/// Write one CSV row terminated by '\n'.
void write_csv_row(std::ostream& os, const std::vector<std::string>& fields);

/// Accumulates rows and streams them out; header written on first row.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void header(const std::vector<std::string>& names);
  void row(const std::vector<std::string>& fields);

 private:
  std::ostream& os_;
  std::size_t columns_ = 0;
  bool header_written_ = false;
};

}  // namespace qfs
