// Stable 128-bit non-cryptographic hashing (MurmurHash3 x64/128 variant).
//
// The compilation cache keys every artifact by a digest of canonical text,
// so the hash must be *stable*: the same bytes produce the same digest on
// every platform, compiler and architecture, forever. All block loads are
// explicit little-endian byte assemblies (no type punning, no dependence on
// host endianness or size_t width) and the golden digests are pinned by
// tests/hash_test.cpp. Changing this algorithm invalidates every on-disk
// cache entry — bump cache::kCacheVersionSalt if you ever must.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace qfs {

/// A 128-bit digest. Comparable and renderable as 32 lowercase hex chars.
struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Hash128&) const = default;

  /// 32 lowercase hex characters, hi word first.
  std::string hex() const;
};

/// Streaming hasher: feed bytes in any chunking; the digest depends only on
/// the concatenated byte sequence (pinned by HashTest.StreamingMatchesOneShot).
class Hasher {
 public:
  explicit Hasher(std::uint64_t seed = 0);

  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  /// Digest of everything fed so far. Non-destructive: more update() calls
  /// may follow and finish() may be called again.
  Hash128 finish() const;

 private:
  void mix_block(const unsigned char* block);

  std::uint64_t h1_;
  std::uint64_t h2_;
  unsigned char tail_[16];
  std::size_t tail_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot convenience over Hasher.
Hash128 hash128(std::string_view data, std::uint64_t seed = 0);

}  // namespace qfs
