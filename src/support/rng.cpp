#include "support/rng.h"

#include <numeric>

namespace qfs {

namespace {

/// SplitMix64 finaliser (Steele et al., "Fast splittable pseudorandom
/// number generators"): a bijective avalanche mix of the running state.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t state = seed;
  std::uint64_t mixed = splitmix64(state);
  state = mixed ^ stream;
  return splitmix64(state);
}

int Rng::uniform_int(int lo, int hi) {
  QFS_ASSERT_MSG(lo <= hi, "uniform_int: lo > hi");
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  QFS_ASSERT_MSG(n > 0, "uniform_index: n == 0");
  return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

Rng Rng::fork() { return Rng(engine_()); }

std::vector<int> Rng::sample_without_replacement(int n, int k) {
  QFS_ASSERT_MSG(0 <= k && k <= n, "sample_without_replacement: k out of range");
  std::vector<int> all(static_cast<std::size_t>(n));
  std::iota(all.begin(), all.end(), 0);
  // Partial Fisher-Yates: fix the first k positions.
  for (int i = 0; i < k; ++i) {
    int j = uniform_int(i, n - 1);
    std::swap(all[static_cast<std::size_t>(i)], all[static_cast<std::size_t>(j)]);
  }
  all.resize(static_cast<std::size_t>(k));
  return all;
}

}  // namespace qfs
