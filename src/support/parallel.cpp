#include "support/parallel.h"

#include <algorithm>
#include <iostream>

namespace qfs {

int recommended_jobs() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int resolve_jobs(int jobs) {
  if (jobs == 0) return recommended_jobs();
  return std::max(1, jobs);
}

ThreadPool::ThreadPool(int num_threads) {
  QFS_ASSERT_MSG(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  QFS_ASSERT_MSG(task != nullptr, "null task submitted");
  {
    std::lock_guard<std::mutex> lock(mu_);
    QFS_ASSERT_MSG(!stopping_, "submit after shutdown began");
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

namespace detail {

void FirstError::record(std::size_t index, std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!error_ || index < index_) {
    index_ = index;
    error_ = error;
  }
}

bool FirstError::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_ != nullptr;
}

void FirstError::rethrow_if_set() {
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mu_);
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace detail

ProgressReporter::ProgressReporter(int stride, std::ostream* out)
    : out_(out != nullptr ? out : &std::cerr), stride_(std::max(1, stride)) {}

void ProgressReporter::tick() {
  std::lock_guard<std::mutex> lock(mu_);
  if (++done_ % stride_ == 0) (*out_) << '.' << std::flush;
}

void ProgressReporter::finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  (*out_) << '\n';
}

}  // namespace qfs
