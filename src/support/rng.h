// Deterministic random number generation.
//
// Every stochastic component in qfs (workload generators, annealers, routing
// tie-breaks) takes an explicit Rng so that all experiments are reproducible
// from a single 64-bit seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "support/assert.h"

namespace qfs {

/// Statistically independent seed for substream `stream` of a master
/// `seed`: two rounds of SplitMix64 over the pair. Batch runners seed one
/// Rng per unit of work with derive_seed(seed, index) so that no unit's
/// randomness depends on how many draws any other unit consumed — the
/// determinism contract behind parallel_map (results are identical for any
/// job count, and adding a unit never perturbs the others).
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream);

/// Seeded pseudo-random generator with the sampling helpers qfs needs.
/// Wraps std::mt19937_64; copyable so a generator state can be forked.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Uniform 64-bit unsigned in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p);

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// A fresh independent generator derived from this one (for sub-tasks).
  Rng fork();

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    QFS_ASSERT_MSG(!items.empty(), "pick() from empty vector");
    return items[static_cast<std::size_t>(uniform_index(items.size()))];
  }

  /// k distinct indices drawn uniformly from [0, n). Requires k <= n.
  std::vector<int> sample_without_replacement(int n, int k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qfs
