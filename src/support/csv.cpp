#include "support/csv.h"

#include "support/assert.h"

namespace qfs {

std::string csv_escape(const std::string& field) {
  bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_csv_row(std::ostream& os, const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) os << ',';
    os << csv_escape(fields[i]);
  }
  os << '\n';
}

void CsvWriter::header(const std::vector<std::string>& names) {
  QFS_ASSERT_MSG(!header_written_, "CSV header written twice");
  columns_ = names.size();
  header_written_ = true;
  write_csv_row(os_, names);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  QFS_ASSERT_MSG(header_written_, "CSV row before header");
  QFS_ASSERT_MSG(fields.size() == columns_, "CSV row width mismatch");
  write_csv_row(os_, fields);
}

}  // namespace qfs
