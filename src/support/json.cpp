#include "support/json.h"

#include <cmath>
#include <cstdio>

#include "support/assert.h"

namespace qfs {

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::integer(long long value) {
  JsonValue v;
  v.kind_ = Kind::kInteger;
  v.integer_ = value;
  return v;
}

JsonValue JsonValue::string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::push_back(JsonValue value) {
  QFS_ASSERT_MSG(kind_ == Kind::kArray, "push_back on non-array JSON value");
  items_.push_back(std::move(value));
  return *this;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  QFS_ASSERT_MSG(kind_ == Kind::kObject, "set on non-object JSON value");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonValue::render(std::string& out, int indent, int depth) const {
  auto newline = [&out, indent, depth](int extra) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * (depth + extra)), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kInteger: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld", integer_);
      out += buf;
      return;
    }
    case Kind::kNumber: {
      QFS_ASSERT_MSG(std::isfinite(number_), "JSON cannot encode NaN/Inf");
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.12g", number_);
      out += buf;
      return;
    }
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        newline(1);
        items_[i].render(out, indent, depth + 1);
      }
      newline(0);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        newline(1);
        out += '"';
        out += json_escape(k);
        out += "\":";
        if (indent > 0) out += ' ';
        v.render(out, indent, depth + 1);
      }
      newline(0);
      out += '}';
      return;
    }
  }
}

std::string JsonValue::to_string() const {
  std::string out;
  render(out, 0, 0);
  return out;
}

std::string JsonValue::to_pretty_string(int indent) const {
  std::string out;
  render(out, indent, 0);
  return out;
}

}  // namespace qfs
