#include "support/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/assert.h"

namespace qfs {

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::integer(long long value) {
  JsonValue v;
  v.kind_ = Kind::kInteger;
  v.integer_ = value;
  return v;
}

JsonValue JsonValue::string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  QFS_ASSERT_MSG(kind_ == Kind::kBool, "as_bool on non-bool JSON value");
  return bool_;
}

double JsonValue::as_number() const {
  QFS_ASSERT_MSG(is_number(), "as_number on non-number JSON value");
  return kind_ == Kind::kInteger ? static_cast<double>(integer_) : number_;
}

long long JsonValue::as_integer() const {
  QFS_ASSERT_MSG(kind_ == Kind::kInteger,
                 "as_integer on non-integer JSON value");
  return integer_;
}

const std::string& JsonValue::as_string() const {
  QFS_ASSERT_MSG(kind_ == Kind::kString, "as_string on non-string JSON value");
  return string_;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  QFS_ASSERT_MSG(false, "size() on scalar JSON value");
  return 0;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  QFS_ASSERT_MSG(kind_ == Kind::kArray, "at() on non-array JSON value");
  QFS_ASSERT_MSG(index < items_.size(), "JSON array index out of range");
  return items_[index];
}

const JsonValue* JsonValue::find(const std::string& key) const {
  QFS_ASSERT_MSG(kind_ == Kind::kObject, "find() on non-object JSON value");
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  QFS_ASSERT_MSG(kind_ == Kind::kObject, "members() on non-object JSON value");
  return members_;
}

JsonValue& JsonValue::push_back(JsonValue value) {
  QFS_ASSERT_MSG(kind_ == Kind::kArray, "push_back on non-array JSON value");
  items_.push_back(std::move(value));
  return *this;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  QFS_ASSERT_MSG(kind_ == Kind::kObject, "set on non-object JSON value");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonValue::render(std::string& out, int indent, int depth) const {
  auto newline = [&out, indent, depth](int extra) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * (depth + extra)), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kInteger: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld", integer_);
      out += buf;
      return;
    }
    case Kind::kNumber: {
      QFS_ASSERT_MSG(std::isfinite(number_), "JSON cannot encode NaN/Inf");
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.12g", number_);
      out += buf;
      return;
    }
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        newline(1);
        items_[i].render(out, indent, depth + 1);
      }
      newline(0);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        newline(1);
        out += '"';
        out += json_escape(k);
        out += "\":";
        if (indent > 0) out += ' ';
        v.render(out, indent, depth + 1);
      }
      newline(0);
      out += '}';
      return;
    }
  }
}

namespace {

/// Recursive-descent JSON parser over a raw byte view. Errors carry the
/// byte offset so a malformed request can be pointed at exactly.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  qfs::StatusOr<JsonValue> parse_document() {
    auto value = parse_value(0);
    if (!value.is_ok()) return value.status();
    skip_whitespace();
    if (pos_ != text_.size()) {
      return error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  qfs::Status error(const std::string& what) const {
    return qfs::parse_error("json: " + what + " at byte " +
                            std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  qfs::StatusOr<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth) return error("nesting too deep");
    skip_whitespace();
    if (pos_ >= text_.size()) return error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        auto s = parse_string();
        if (!s.is_ok()) return s.status();
        return JsonValue::string(std::move(s).value());
      }
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        return error("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        return error("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::null();
        return error("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        return error(std::string("unexpected character '") + c + "'");
    }
  }

  qfs::StatusOr<JsonValue> parse_object(int depth) {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::object();
    skip_whitespace();
    if (consume('}')) return obj;
    while (true) {
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return error("expected object key string");
      }
      auto key = parse_string();
      if (!key.is_ok()) return key.status();
      skip_whitespace();
      if (!consume(':')) return error("expected ':' after object key");
      auto value = parse_value(depth + 1);
      if (!value.is_ok()) return value.status();
      if (obj.find(key.value()) != nullptr) {
        return error("duplicate object key \"" + key.value() + "\"");
      }
      obj.set(key.value(), std::move(value).value());
      skip_whitespace();
      if (consume(',')) continue;
      if (consume('}')) return obj;
      return error("expected ',' or '}' in object");
    }
  }

  qfs::StatusOr<JsonValue> parse_array(int depth) {
    ++pos_;  // '['
    JsonValue arr = JsonValue::array();
    skip_whitespace();
    if (consume(']')) return arr;
    while (true) {
      auto value = parse_value(depth + 1);
      if (!value.is_ok()) return value.status();
      arr.push_back(std::move(value).value());
      skip_whitespace();
      if (consume(',')) continue;
      if (consume(']')) return arr;
      return error("expected ',' or ']' in array");
    }
  }

  static void append_utf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code_point >> 18));
      out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  qfs::StatusOr<unsigned> parse_hex4() {
    if (pos_ + 4 > text_.size()) return error("truncated \\u escape");
    unsigned value = 0;
    for (int k = 0; k < 4; ++k) {
      char c = text_[pos_ + static_cast<std::size_t>(k)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return error("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return value;
  }

  qfs::StatusOr<std::string> parse_string() {
    ++pos_;  // opening '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return error("unterminated string");
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return error("truncated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          auto code = parse_hex4();
          if (!code.is_ok()) return code.status();
          unsigned code_point = code.value();
          // Surrogate pair: a high surrogate must be chased by \uDC00-DFFF.
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            if (!consume_literal("\\u")) return error("lone high surrogate");
            auto low = parse_hex4();
            if (!low.is_ok()) return low.status();
            if (low.value() < 0xDC00 || low.value() > 0xDFFF) {
              return error("bad low surrogate");
            }
            code_point = 0x10000 + ((code_point - 0xD800) << 10) +
                         (low.value() - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            return error("lone low surrogate");
          }
          append_utf8(out, code_point);
          break;
        }
        default: return error("unknown escape");
      }
    }
  }

  qfs::StatusOr<JsonValue> parse_number() {
    std::size_t start = pos_;
    bool is_integer = true;
    consume('-');
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return error("malformed number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (consume('.')) {
      is_integer = false;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return error("malformed number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_integer = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return error("malformed number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    if (is_integer) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return JsonValue::integer(v);
      }
      // Out-of-range integers fall through to double precision.
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return error("malformed number");
    if (!std::isfinite(d)) return error("number out of range");
    return JsonValue::number(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

qfs::StatusOr<JsonValue> JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

std::string JsonValue::to_string() const {
  std::string out;
  render(out, 0, 0);
  return out;
}

std::string JsonValue::to_pretty_string(int indent) const {
  std::string out;
  render(out, indent, 0);
  return out;
}

}  // namespace qfs
