#include "support/status.h"

namespace qfs {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kParseError: return "parse_error";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string s = status_code_name(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace qfs
