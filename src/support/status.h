// Lightweight Status / StatusOr<T> for recoverable errors (parsing, I/O).
//
// Contract violations use QFS_ASSERT (support/assert.h); Status is reserved
// for errors caused by external input that a caller can reasonably handle.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "support/assert.h"

namespace qfs {

enum class StatusCode {
  kOk,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kUnimplemented,
  kParseError,
  kIoError,
  kFailedPrecondition,
  kResourceExhausted,
};

/// Human-readable name of a status code ("ok", "parse_error", ...).
const char* status_code_name(StatusCode code);

/// Result of an operation that can fail without a value payload.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string to_string() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status not_found(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status out_of_range(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status parse_error(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
inline Status io_error(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
inline Status failed_precondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status resource_exhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}

/// Either a value or an error status. Accessing value() on an error is a
/// contract violation.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}            // NOLINT(implicit)
  StatusOr(Status status) : status_(std::move(status)) {     // NOLINT(implicit)
    QFS_ASSERT_MSG(!status_.is_ok(), "StatusOr built from OK status");
  }

  bool is_ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    QFS_ASSERT_MSG(is_ok(), "value() on error StatusOr: " + status_.to_string());
    return *value_;
  }
  T& value() & {
    QFS_ASSERT_MSG(is_ok(), "value() on error StatusOr: " + status_.to_string());
    return *value_;
  }
  T&& value() && {
    QFS_ASSERT_MSG(is_ok(), "value() on error StatusOr: " + status_.to_string());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  /// The value, or `fallback` when this holds an error.
  T value_or(T fallback) const& { return is_ok() ? *value_ : std::move(fallback); }
  T value_or(T fallback) && {
    return is_ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // kOk iff value_ holds a value
};

}  // namespace qfs
