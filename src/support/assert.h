// Contract checking for qfs.
//
// QFS_ASSERT is used for programming-contract violations (preconditions,
// invariants). It throws qfs::AssertionError so that unit tests can observe
// violated contracts without aborting the process, and so that library users
// get a catchable, message-bearing failure instead of UB.
#pragma once

#include <stdexcept>
#include <string>

namespace qfs {

/// Thrown when a QFS_ASSERT contract check fails.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& message);
}  // namespace detail

}  // namespace qfs

/// Check `cond`; on failure throw qfs::AssertionError with location info.
#define QFS_ASSERT(cond)                                                \
  do {                                                                  \
    if (!(cond)) ::qfs::detail::assert_fail(#cond, __FILE__, __LINE__, ""); \
  } while (0)

/// Like QFS_ASSERT but with an extra human-readable message.
#define QFS_ASSERT_MSG(cond, msg)                                       \
  do {                                                                  \
    if (!(cond))                                                        \
      ::qfs::detail::assert_fail(#cond, __FILE__, __LINE__, (msg));     \
  } while (0)
