#include "support/assert.h"

#include <sstream>

namespace qfs::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::ostringstream os;
  os << "assertion failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  throw AssertionError(os.str());
}

}  // namespace qfs::detail
