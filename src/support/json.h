// Minimal JSON document builder (output only) for machine-readable
// compilation reports. Covers the JSON value kinds qfs emits; no parsing.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace qfs {

class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue null();
  static JsonValue boolean(bool value);
  static JsonValue number(double value);
  static JsonValue integer(long long value);
  static JsonValue string(std::string value);
  static JsonValue array();
  static JsonValue object();

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Append to an array (contract violation on non-arrays).
  JsonValue& push_back(JsonValue value);

  /// Set an object member (contract violation on non-objects).
  JsonValue& set(const std::string& key, JsonValue value);

  /// Compact rendering ({"a":1,...}); keys in insertion order.
  std::string to_string() const;

  /// Indented rendering.
  std::string to_pretty_string(int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInteger, kString, kArray, kObject };

  void render(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  long long integer_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escape a string for embedding in JSON (quotes not included).
std::string json_escape(const std::string& s);

}  // namespace qfs
