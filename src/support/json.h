// Minimal JSON document model for machine-readable compilation reports and
// the compile-service wire protocol: a builder for everything qfs emits,
// plus a strict parser (JsonValue::parse) for what the service consumes.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace qfs {

class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue null();
  static JsonValue boolean(bool value);
  static JsonValue number(double value);
  static JsonValue integer(long long value);
  static JsonValue string(std::string value);
  static JsonValue array();
  static JsonValue object();

  /// Strict JSON parse of a complete document (trailing non-whitespace is a
  /// parse_error). Numbers without '.', 'e' or 'E' that fit a long long
  /// decode as integers, everything else as doubles. Nesting is capped (64
  /// levels) so adversarial input cannot blow the stack; input from an
  /// untrusted socket is the expected caller.
  static qfs::StatusOr<JsonValue> parse(std::string_view text);

  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  /// True for both floating-point and integer-kind numbers.
  bool is_number() const {
    return kind_ == Kind::kNumber || kind_ == Kind::kInteger;
  }
  bool is_integer() const { return kind_ == Kind::kInteger; }

  // Checked accessors: calling the wrong one is a contract violation, so
  // consumers validate kinds first (is_* above).
  bool as_bool() const;
  /// Numeric value of either number kind.
  double as_number() const;
  /// Integer-kind value only.
  long long as_integer() const;
  const std::string& as_string() const;

  /// Array element count / object member count (contract violation on
  /// scalar kinds).
  std::size_t size() const;

  /// Array element by index (contract violation when out of range).
  const JsonValue& at(std::size_t index) const;

  /// Object member by key, or nullptr when absent (contract violation on
  /// non-objects).
  const JsonValue* find(const std::string& key) const;

  /// Object members in insertion order (contract violation on non-objects);
  /// lets consumers reject unknown fields by name.
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Append to an array (contract violation on non-arrays).
  JsonValue& push_back(JsonValue value);

  /// Set an object member (contract violation on non-objects).
  JsonValue& set(const std::string& key, JsonValue value);

  /// Compact rendering ({"a":1,...}); keys in insertion order.
  std::string to_string() const;

  /// Indented rendering.
  std::string to_pretty_string(int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInteger, kString, kArray, kObject };

  void render(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  long long integer_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escape a string for embedding in JSON (quotes not included).
std::string json_escape(const std::string& s);

}  // namespace qfs
