// Monotonic timing for benches and load generators.
//
// Every wall-clock measurement in the repo goes through this header so the
// clock choice is made exactly once: std::chrono::steady_clock. It is the
// only standard clock guaranteed monotonic — system_clock (and, on common
// implementations, high_resolution_clock, which aliases it) jumps under NTP
// slew and manual adjustment, which would corrupt BENCH_*.json deltas that
// compare runs recorded days apart.
#pragma once

#include <chrono>

namespace qfs {

/// The one clock benches measure with. Monotonic by the standard.
using MonotonicClock = std::chrono::steady_clock;

/// Milliseconds elapsed since `start` (fractional).
inline double ms_since(MonotonicClock::time_point start) {
  return std::chrono::duration<double, std::milli>(MonotonicClock::now() -
                                                   start)
      .count();
}

/// Started-on-construction stopwatch for phase timings.
class StopWatch {
 public:
  StopWatch() : start_(MonotonicClock::now()) {}

  /// Elapsed milliseconds since construction or the last restart().
  double elapsed_ms() const { return ms_since(start_); }

  /// Elapsed seconds since construction or the last restart().
  double elapsed_seconds() const { return elapsed_ms() / 1000.0; }

  void restart() { start_ = MonotonicClock::now(); }

 private:
  MonotonicClock::time_point start_;
};

}  // namespace qfs
