#include "support/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace qfs {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && is_space(s[b])) ++b;
  std::size_t e = s.size();
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

bool parse_int(std::string_view s, int& out) {
  s = trim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is available in GCC 12.
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace qfs
