// Deterministic parallel execution primitives.
//
// The batch paths of qfs (suite compilation in the benches, qfsc --jobs,
// the degraded-device survival sweep) fan independent compilations out over
// a fixed-size thread pool. Determinism is a hard contract: parallel_map
// preserves input order and every unit of work derives its randomness from
// (seed, index) alone — see qfs::derive_seed — so results are byte-identical
// for any job count, including 1.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "support/assert.h"

namespace qfs {

/// One job per hardware thread; always >= 1 (hardware_concurrency may
/// report 0 on exotic platforms).
int recommended_jobs();

/// Normalise a user-facing --jobs value: 0 means "auto" (one per hardware
/// thread); anything else is clamped to >= 1.
int resolve_jobs(int jobs);

/// Fixed-size pool of worker threads draining a FIFO task queue.
/// Destruction waits for every submitted task to finish.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task. Tasks must not throw out of the pool: wrap work that
  /// can fail (parallel_map does this and re-throws on the caller thread).
  void submit(std::function<void()> task);

  /// Block until the queue is empty and no worker is mid-task.
  void wait_idle();

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool stopping_ = false;
};

namespace detail {

/// First-by-index exception capture: when several workers throw, the caller
/// sees the exception of the lowest input index, which is exactly what a
/// serial loop would have thrown first.
class FirstError {
 public:
  void record(std::size_t index, std::exception_ptr error);
  bool armed() const;
  void rethrow_if_set();

 private:
  mutable std::mutex mu_;
  std::size_t index_ = 0;
  std::exception_ptr error_;
};

}  // namespace detail

/// Apply `fn(i)` for every i in [0, count) using up to `jobs` worker
/// threads (0 = auto) and return the results in input order. Any exception
/// is re-thrown on the calling thread — the one a serial loop would have
/// hit first — and pending work is abandoned. `fn` must be safe to call
/// concurrently from multiple threads. jobs <= 1 runs the plain serial
/// loop on the calling thread.
template <typename Fn>
auto parallel_map(int jobs, std::size_t count, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{}))> {
  using Result = decltype(fn(std::size_t{}));
  jobs = resolve_jobs(jobs);
  std::vector<std::optional<Result>> slots(count);
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) slots[i].emplace(fn(i));
  } else {
    detail::FirstError error;
    {
      ThreadPool pool(std::min<int>(jobs, static_cast<int>(count)));
      for (std::size_t i = 0; i < count; ++i) {
        pool.submit([i, &fn, &error, &slots] {
          if (error.armed()) return;  // a lower or earlier index failed
          try {
            slots[i].emplace(fn(i));
          } catch (...) {
            error.record(i, std::current_exception());
          }
        });
      }
      pool.wait_idle();
    }
    error.rethrow_if_set();
  }
  std::vector<Result> out;
  out.reserve(count);
  for (auto& slot : slots) {
    QFS_ASSERT_MSG(slot.has_value(), "parallel_map slot never produced");
    out.push_back(std::move(*slot));
  }
  return out;
}

/// parallel_map for side-effect-only bodies.
template <typename Fn>
void parallel_for(int jobs, std::size_t count, Fn&& fn) {
  parallel_map(jobs, count, [&fn](std::size_t i) {
    fn(i);
    return 0;
  });
}

/// Mutex-guarded progress dots: prints '.' to `out` every `stride`
/// completions and a final newline, from any thread (benches run
/// interactively and want a heartbeat regardless of --jobs).
class ProgressReporter {
 public:
  explicit ProgressReporter(int stride = 20, std::ostream* out = nullptr);

  /// Record one completed unit of work; may print a dot.
  void tick();

  /// Terminate the dot line (idempotent).
  void finish();

 private:
  std::mutex mu_;
  std::ostream* out_;  // never null after construction (defaults to cerr)
  int stride_;
  long long done_ = 0;
  bool finished_ = false;
};

}  // namespace qfs
