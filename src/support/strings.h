// Small string utilities shared across qfs (no std::format in GCC 12).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qfs {

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on runs of ASCII whitespace; drops empty fields.
std::vector<std::string> split_whitespace(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

std::string to_lower(std::string_view s);

/// Fixed-precision decimal rendering of a double (printf %.*f).
std::string format_double(double value, int precision);

/// Parse helpers returning false on malformed input instead of throwing.
bool parse_int(std::string_view s, int& out);
bool parse_double(std::string_view s, double& out);

}  // namespace qfs
