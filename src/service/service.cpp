#include "service/service.h"

#include <chrono>
#include <exception>
#include <fstream>
#include <sstream>
#include <utility>

#include "analysis/checkers.h"
#include "analysis/equiv.h"
#include "backends/registry.h"
#include "cache/artifact.h"
#include "cache/fingerprint.h"
#include "cache/memo.h"
#include "compiler/schedule.h"
#include "device/calibration.h"
#include "device/faults.h"
#include "isa/timed_program.h"
#include "mapper/placement.h"
#include "mapper/recommend.h"
#include "mapper/routing.h"
#include "profile/circuit_profile.h"
#include "qasm/cqasm_writer.h"
#include "qasm/parser.h"
#include "qasm/writer.h"
#include "service/flags.h"
#include "support/hash.h"
#include "support/rng.h"
#include "support/strings.h"
#include "support/timer.h"

namespace qfs::service {

namespace {

// Measurement timing goes through the shared monotonic helper
// (support/timer.h) — one implementation for every latency figure.
using Clock = qfs::MonotonicClock;
using qfs::ms_since;

CompileResponse fail(CompileResponse response, ErrorCode code,
                     std::string message) {
  response.code = code;
  response.error_message = std::move(message);
  return response;
}

/// Resolve the request's circuit source text. In-process circuit pointers
/// skip this entirely (handled by the caller).
qfs::Status resolve_source(const CompileRequest& request,
                           std::size_t max_bytes, std::string& source,
                           std::string& source_name) {
  if (!request.qasm.empty() && !request.qasm_path.empty()) {
    return qfs::invalid_argument(
        "request sets both 'qasm' and 'qasm_path'; pick one");
  }
  if (!request.qasm.empty()) {
    source = request.qasm;
    source_name = "<request>";
  } else if (!request.qasm_path.empty()) {
    std::ifstream in(request.qasm_path);
    if (!in) {
      return qfs::invalid_argument("cannot open '" + request.qasm_path + "'");
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
    source_name = request.qasm_path;
  } else {
    return qfs::invalid_argument(
        "request carries no circuit: set 'qasm' or 'qasm_path'");
  }
  if (!request.source_name.empty()) source_name = request.source_name;
  if (source.size() > max_bytes) {
    return qfs::resource_exhausted(
        "source is " + std::to_string(source.size()) +
        " bytes; the service accepts at most " + std::to_string(max_bytes));
  }
  return qfs::Status::ok();
}

/// Build the request's device: named spec or in-process override, then
/// calibration and fault-injection overlays. On success `fault_note`
/// carries the degradation summary qfsc prints as "fault injection: ...".
qfs::Status resolve_device(const CompileRequest& request, device::Device& dev,
                           std::string& fault_note, ErrorCode& code) {
  code = ErrorCode::kInvalidRequest;
  if (request.device_obj != nullptr) {
    dev = *request.device_obj;
  } else {
    std::string error;
    if (!CompileService::parse_device(request.device, dev, error)) {
      return qfs::invalid_argument(error);
    }
  }
  if (!request.calibration.empty() || !request.calibration_path.empty()) {
    std::string text = request.calibration;
    if (text.empty()) {
      std::ifstream cal(request.calibration_path);
      if (!cal) {
        return qfs::invalid_argument("cannot open calibration '" +
                                     request.calibration_path + "'");
      }
      std::stringstream buffer;
      buffer << cal.rdbuf();
      text = buffer.str();
    }
    auto model = device::parse_calibration(text, dev.num_qubits());
    if (!model.is_ok()) {
      // qfsc has always rendered nested parse failures with their status
      // prefix ("parse_error: ..."); keep the wire message byte-identical.
      return qfs::invalid_argument(model.status().to_string());
    }
    dev.mutable_error_model() = model.value();
  }
  if (!request.fault_spec.empty()) {
    auto spec = device::parse_fault_spec(request.fault_spec);
    if (!spec.is_ok()) {
      return qfs::invalid_argument(spec.status().to_string());
    }
    device::FaultInjector injector(std::move(spec).value());
    auto degraded = injector.apply(dev);
    if (!degraded.is_ok()) {
      return qfs::invalid_argument("fault injection: " +
                                   degraded.status().to_string());
    }
    fault_note = degraded.value().summary();
    dev = std::move(degraded).value().device;
  }
  return qfs::Status::ok();
}

/// Lint / verify the request without compiling it (qfsc --lint/--verify).
/// Parse failures become lint diagnostics (the QFS100 contract), never a
/// kParseError response.
CompileResponse run_lint(const CompileRequest& request,
                         const std::string& source,
                         const circuit::Circuit* parsed_circuit,
                         CompileResponse response) {
  analysis::CheckOptions opts;
  device::Device dev;
  if (request.mode == RequestMode::kVerify) {
    std::string fault_note;
    ErrorCode code = ErrorCode::kInvalidRequest;
    qfs::Status status = resolve_device(request, dev, fault_note, code);
    if (!status.is_ok()) {
      return fail(std::move(response), code, status.message());
    }
    response.fault_note = fault_note;
    response.device_name = dev.name();
    opts.device = &dev;
    opts.physical = true;
  }

  circuit::Circuit local;
  const circuit::Circuit* circuit = parsed_circuit;
  if (circuit == nullptr) {
    auto parsed = qasm::parse(source);
    if (!parsed.is_ok()) {
      response.diagnostics = analysis::lint_source(source, opts);
      response.code = analysis::has_errors(response.diagnostics)
                          ? ErrorCode::kLintError
                          : ErrorCode::kOk;
      return response;
    }
    local = std::move(parsed).value();
    circuit = &local;
  }
  response.diagnostics = analysis::analyze_circuit(*circuit, opts);
  if (request.mode == RequestMode::kVerify &&
      !analysis::has_errors(response.diagnostics) &&
      circuit->num_qubits() <= dev.num_qubits()) {
    compiler::ScheduleOptions sched;
    sched.avoid_crosstalk = request.crosstalk_safe;
    auto schedule = compiler::asap_schedule(*circuit, dev, sched);
    auto program = isa::lower_to_timed_program(*circuit, schedule);
    auto timed = analysis::analyze_timed_program(program, dev);
    response.diagnostics.insert(response.diagnostics.end(), timed.begin(),
                                timed.end());
  }
  response.code = analysis::has_errors(response.diagnostics)
                      ? ErrorCode::kLintError
                      : ErrorCode::kOk;
  return response;
}

CompileResponse execute_impl(const ServiceConfig& config,
                             const CompileRequest& request) {
  Clock::time_point start = Clock::now();
  CompileResponse response;
  response.id = request.id;

  // deadline_ms == 0 means "already expired": the admission-to-dispatch
  // budget is enforced by the server, but a zero budget is decidable here,
  // which keeps the deadline path testable without a daemon.
  if (request.deadline_ms == 0.0) {
    return fail(std::move(response), ErrorCode::kDeadlineExceeded,
                "deadline expired before compilation started");
  }

  // Chaos directives are intercepted by chaos-enabled supervised workers
  // (`qfsd --worker --enable-chaos`) before the service sees them; a
  // directive that reaches this layer was sent to a deployment that does
  // not fault-inject, and silently compiling it would mask the mistake.
  if (!request.chaos.empty()) {
    return fail(std::move(response), ErrorCode::kInvalidRequest,
                "chaos injection requires a chaos-enabled supervised daemon "
                "(qfsd --worker-procs N --enable-chaos)");
  }

  // --- Source resolution + parse ---------------------------------------
  std::string source;
  std::string source_name = "<request>";
  const circuit::Circuit* circuit = request.circuit;
  if (circuit == nullptr) {
    qfs::Status status = resolve_source(request, config.max_source_bytes,
                                        source, source_name);
    if (!status.is_ok()) {
      ErrorCode code = status.code() == qfs::StatusCode::kResourceExhausted
                           ? ErrorCode::kResourceExhausted
                           : ErrorCode::kInvalidRequest;
      return fail(std::move(response), code, status.message());
    }
  } else if (!request.source_name.empty()) {
    source_name = request.source_name;
  }

  if (request.mode != RequestMode::kCompile) {
    response = run_lint(request, source, circuit, std::move(response));
    response.timing.total_ms = ms_since(start);
    return response;
  }

  circuit::Circuit local;
  if (circuit == nullptr) {
    auto parsed = qasm::parse(source);
    if (!parsed.is_ok()) {
      return fail(std::move(response), ErrorCode::kParseError,
                  parsed.status().to_string());
    }
    local = std::move(parsed).value();
    circuit = &local;
  }

  // --- Device + options ------------------------------------------------
  device::Device dev;
  ErrorCode device_code = ErrorCode::kInvalidRequest;
  qfs::Status status =
      resolve_device(request, dev, response.fault_note, device_code);
  if (!status.is_ok()) {
    return fail(std::move(response), device_code, status.message());
  }
  response.device_name = dev.name();

  mapper::MappingOptions options = request.options;
  if (request.recommend) {
    auto rec = mapper::recommend_mapping(profile::profile_circuit(*circuit));
    std::vector<int> keep_layout = std::move(options.initial_layout);
    bool keep_latency = options.compute_latency;
    int keep_sabre = options.sabre_refinement_rounds;
    options = rec.options;
    options.initial_layout = std::move(keep_layout);
    options.compute_latency = keep_latency;
    options.sabre_refinement_rounds = keep_sabre;
    response.recommend_note = "placer=" + options.placer +
                              " router=" + options.router + " (" +
                              rec.rationale + ")";
  }
  // The resilient pipeline deliberately accepts unknown strategies: its
  // fallback ladder catches the mapper's contract violation and climbs to a
  // configuration that works, which is the long-standing qfsc behaviour.
  // Only the direct pipeline, which runs exactly one attempt, rejects them
  // up front.
  if (request.pipeline == "direct") {
    if (!mapper::is_known_placer(options.placer)) {
      std::string message = "unknown placer '" + options.placer + "'";
      std::string suggestion =
          suggest_flag(options.placer, mapper::known_placer_names());
      if (!suggestion.empty()) {
        message += " (did you mean '" + suggestion + "'?)";
      }
      return fail(std::move(response), ErrorCode::kInvalidRequest, message);
    }
    if (!mapper::is_known_router(options.router)) {
      std::string message = "unknown router '" + options.router + "'";
      std::string suggestion =
          suggest_flag(options.router, mapper::known_router_names());
      if (!suggestion.empty()) {
        message += " (did you mean '" + suggestion + "'?)";
      }
      return fail(std::move(response), ErrorCode::kInvalidRequest, message);
    }
  }
  if (!options.initial_layout.empty() &&
      static_cast<int>(options.initial_layout.size()) !=
          circuit->num_qubits()) {
    return fail(std::move(response), ErrorCode::kInvalidRequest,
                "initial_layout has " +
                    std::to_string(options.initial_layout.size()) +
                    " entries for a " +
                    std::to_string(circuit->num_qubits()) +
                    "-qubit circuit");
  }

  response.timing.parse_ms = ms_since(start);
  Clock::time_point compile_start = Clock::now();

  cache::CompileCache* cache =
      request.cache_policy == CachePolicy::kBypass ? nullptr : config.cache;

  // --- Pipelines --------------------------------------------------------
  if (request.pipeline == "direct") {
    // The suite benches' exact semantics: one map_circuit attempt from a
    // fresh Rng(seed) stream, with an optional whole-result cache keyed by
    // the canonical compile fingerprint. Byte-identical to bench::run_suite.
    if (circuit->num_qubits() > dev.num_qubits()) {
      return fail(std::move(response), ErrorCode::kCompileFailed,
                  "circuit needs " + std::to_string(circuit->num_qubits()) +
                      " qubits but " + dev.name() + " has only " +
                      std::to_string(dev.num_qubits()) + " healthy");
    }
    cache::Fingerprint key;
    if (cache != nullptr) {
      key = cache::compile_fingerprint(qasm::to_qasm(*circuit), dev, options,
                                       request.seed);
      if (auto hit = cache::load_mapping(*cache, key)) {
        response.mapping = std::move(*hit);
        response.cache_hit = true;
      }
    }
    if (!response.cache_hit) {
      qfs::Rng rng(request.seed);
      response.mapping = mapper::map_circuit(*circuit, dev, options, rng);
      if (cache != nullptr) {
        cache::store_mapping(*cache, key, response.mapping);
      }
    }
    response.has_mapping = true;
    response.placer_used = options.placer;
    response.router_used = options.router;
    response.seed_used = request.seed;
  } else if (request.pipeline == "resilient") {
    mapper::ResilientOptions resilient;
    resilient.base = options;
    resilient.max_attempts = request.max_attempts;
    resilient.seed = request.seed;
    // Per-request hit accounting: wrap the memo lookup rather than diffing
    // the cache's global counters, which other in-flight requests mutate
    // concurrently.
    mapper::AttemptMemo memo;
    bool memo_hit = false;
    if (cache != nullptr) {
      cache::Fingerprint base = cache::compile_fingerprint(
          qasm::to_qasm(*circuit), dev, options, request.seed);
      // Hits are revalidated against the source circuit: a semantically
      // corrupted artifact counts as a corrupt payload + miss and the rung
      // recompiles fresh.
      cache::MemoValidation validation;
      validation.source = circuit;
      validation.device = &dev;
      mapper::AttemptMemo inner =
          cache::make_attempt_memo(*cache, base, validation);
      memo.lookup = [&memo_hit, lookup = std::move(inner.lookup)](
                        const std::string& key, mapper::MappingResult* out) {
        bool hit = lookup(key, out);
        memo_hit = memo_hit || hit;
        return hit;
      };
      memo.store = std::move(inner.store);
      resilient.memo = &memo;
    }
    mapper::CompileAttemptLog attempt_log;
    auto compiled =
        mapper::compile_resilient(*circuit, dev, resilient, &attempt_log);
    if (!compiled.is_ok()) {
      response.attempt_log = mapper::attempt_log_to_string(attempt_log);
      return fail(std::move(response), ErrorCode::kCompileFailed,
                  compiled.status().to_string());
    }
    if (attempt_log.size() > 1) {
      response.attempt_log = mapper::attempt_log_to_string(attempt_log);
    }
    mapper::ResilientResult result = std::move(compiled).value();
    response.mapping = std::move(result.mapping);
    response.has_mapping = true;
    response.placer_used = result.options_used.placer;
    response.router_used = result.options_used.router;
    response.seed_used = result.seed_used;
    response.cache_hit = memo_hit;
  } else {
    return fail(std::move(response), ErrorCode::kInvalidRequest,
                "unknown pipeline '" + request.pipeline +
                    "' (resilient | direct)");
  }

  response.timing.compile_ms = ms_since(compile_start);

  // --- Artifacts ---------------------------------------------------------
  if (request.want_digest) {
    response.mapped_digest =
        qfs::hash128(qasm::to_qasm(response.mapping.mapped)).hex();
  }
  if (request.emit_qasm) {
    response.mapped_qasm = qasm::to_qasm(response.mapping.mapped);
  }
  if (request.emit_cqasm) {
    response.mapped_cqasm = qasm::to_cqasm(response.mapping.mapped);
  }
  isa::TimedProgram timed;
  bool have_timed = false;
  if (request.emit_timed) {
    compiler::ScheduleOptions sched;
    sched.avoid_crosstalk = request.crosstalk_safe;
    auto schedule =
        compiler::asap_schedule(response.mapping.mapped, dev, sched);
    timed = isa::lower_to_timed_program(response.mapping.mapped, schedule);
    have_timed = true;
    response.timed_text = timed.to_text();
  }

  // --- Output verification (qfsc --verify-output / "verify_artifact") ----
  // Independent proof that what we are about to hand out still computes the
  // request's circuit: the permutation-tracking translation validator over
  // the mapping (and the emitted timed program, when there is one). A
  // failure here is by definition a compiler bug, not a bad request.
  if (request.verify_artifact) {
    analysis::TranslationArtifact artifact;
    artifact.mapped = &response.mapping.mapped;
    artifact.initial_layout = response.mapping.initial_layout;
    artifact.final_layout = response.mapping.final_layout;
    artifact.swaps_inserted = response.mapping.swaps_inserted;
    if (have_timed) artifact.timed = &timed;
    std::vector<analysis::Diagnostic> findings =
        analysis::validate_translation(*circuit, dev, artifact);
    if (analysis::has_errors(findings)) {
      response.diagnostics = std::move(findings);
      return fail(std::move(response), ErrorCode::kInternal,
                  "compiled artifact failed translation validation");
    }
  }
  response.timing.total_ms = ms_since(start);
  return response;
}

}  // namespace

bool CompileService::parse_device(const std::string& spec,
                                  device::Device& out, std::string& error) {
  // Legacy colon forms (line:N, grid:RxC, full:N) and file: topologies keep
  // their historical spellings and error messages; everything else resolves
  // through the backend registry ("name" or "name(params)" specs).
  if (starts_with(spec, "line:")) {
    int n = 0;
    if (!parse_int(spec.substr(5), n) || n < 1) {
      error = "bad line size in '" + spec + "'";
      return false;
    }
    out = device::line_device(n);
  } else if (starts_with(spec, "full:")) {
    int n = 0;
    if (!parse_int(spec.substr(5), n) || n < 1) {
      error = "bad size in '" + spec + "'";
      return false;
    }
    out = device::fully_connected_device(n);
  } else if (starts_with(spec, "file:")) {
    std::ifstream in(std::string(spec.substr(5)));
    if (!in) {
      error = "cannot open topology file '" + spec.substr(5) + "'";
      return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto topo = device::parse_topology(buffer.str());
    if (!topo.is_ok()) {
      error = topo.status().to_string();
      return false;
    }
    std::string name = topo.value().name();
    out = device::Device(name, std::move(topo).value(),
                         device::surface_code_gateset(), device::ErrorModel());
  } else if (starts_with(spec, "grid:")) {
    auto dims = split(spec.substr(5), 'x');
    int r = 0, c = 0;
    if (dims.size() != 2 || !parse_int(dims[0], r) || !parse_int(dims[1], c) ||
        r < 1 || c < 1) {
      error = "bad grid spec in '" + spec + "' (expected grid:RxC)";
      return false;
    }
    out = device::grid_device(r, c);
  } else {
    auto made = backends::make_device(spec);
    if (!made.is_ok()) {
      error = made.status().message();
      return false;
    }
    out = std::move(made).value();
  }
  return true;
}

CompileResponse CompileService::execute(const CompileRequest& request) const {
  try {
    return execute_impl(config_, request);
  } catch (const std::exception& e) {
    CompileResponse response;
    response.id = request.id;
    return fail(std::move(response), ErrorCode::kInternal,
                std::string("unexpected exception: ") + e.what());
  } catch (...) {
    CompileResponse response;
    response.id = request.id;
    return fail(std::move(response), ErrorCode::kInternal,
                "unexpected non-standard exception");
  }
}

}  // namespace qfs::service
