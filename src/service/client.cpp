#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "support/rng.h"
#include "support/strings.h"
#include "support/timer.h"

namespace qfs::service {

namespace {

// Measurement timing goes through the shared monotonic helper
// (support/timer.h) — one implementation for every latency figure.
using Clock = qfs::MonotonicClock;
using qfs::ms_since;

}  // namespace

// ---------------------------------------------------------------------------
// Low-level plumbing.
// ---------------------------------------------------------------------------

int connect_endpoint(const std::string& spec, std::string& error) {
  if (qfs::starts_with(spec, "unix:")) {
    std::string path = spec.substr(5);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
      error = "bad unix socket path '" + path + "'";
      return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
      error = std::string("connect '") + path + "': " + std::strerror(errno);
      if (fd >= 0) ::close(fd);
      return -1;
    }
    return fd;
  }
  if (qfs::starts_with(spec, "tcp:")) {
    // Accept both "tcp:<port>" and "tcp:127.0.0.1:<port>" (the form a
    // daemon prints as its endpoint).
    std::string rest = spec.substr(4);
    std::string host = "127.0.0.1";
    std::size_t colon = rest.rfind(':');
    if (colon != std::string::npos) {
      host = rest.substr(0, colon);
      rest = rest.substr(colon + 1);
    }
    int port = 0;
    if (!qfs::parse_int(rest, port) || port < 1 || port > 65535) {
      error = "bad tcp port in '" + spec + "'";
      return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      error = "bad tcp host in '" + spec + "'";
      return -1;
    }
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
      error = "connect '" + spec + "': " + std::strerror(errno);
      if (fd >= 0) ::close(fd);
      return -1;
    }
    return fd;
  }
  error = "bad endpoint '" + spec + "' (expected unix:<path> or tcp:<port>)";
  return -1;
}

bool send_all(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    ssize_t n =
        ::send(fd, text.data() + sent, text.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool LineReader::next(std::string& line) {
  for (;;) {
    std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    char chunk[64 * 1024];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool spawn_daemon(const std::string& qfsd_path,
                  const std::vector<std::string>& extra_args,
                  SpawnedDaemon& out, std::string& error) {
  static unsigned spawn_counter = 0;
  std::string socket_path = "/tmp/qfsd-client-" + std::to_string(::getpid()) +
                            "-" + std::to_string(++spawn_counter) + ".sock";
  out.endpoint = "unix:" + socket_path;

  std::vector<std::string> args;
  args.push_back(qfsd_path);
  args.push_back("--listen");
  args.push_back(out.endpoint);
  args.insert(args.end(), extra_args.begin(), extra_args.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& arg : args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  pid_t pid = ::fork();
  if (pid < 0) {
    error = std::string("fork: ") + std::strerror(errno);
    return false;
  }
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  out.pid = pid;
  // The daemon is up once it answers a ping on its socket.
  for (int attempt = 0; attempt < 400; ++attempt) {
    std::string connect_error;
    int fd = connect_endpoint(out.endpoint, connect_error);
    if (fd >= 0) {
      bool ok = send_all(fd, "{\"op\":\"ping\"}\n");
      std::string line;
      LineReader reader(fd);
      ok = ok && reader.next(line) && line.find("\"ok\"") != std::string::npos;
      ::close(fd);
      if (ok) return true;
    }
    int wait_status = 0;
    if (::waitpid(pid, &wait_status, WNOHANG) == pid) {
      out.pid = -1;
      error = "daemon exited before accepting connections";
      return false;
    }
    ::usleep(25 * 1000);
  }
  error = "daemon never answered ping on " + out.endpoint;
  return false;
}

int stop_daemon(const SpawnedDaemon& daemon) {
  if (daemon.pid <= 0) return 128;
  std::string error;
  int fd = connect_endpoint(daemon.endpoint, error);
  if (fd >= 0) {
    send_all(fd, "{\"op\":\"shutdown\"}\n");
    std::string line;
    LineReader(fd).next(line);  // wait for the ack so the drain has begun
    ::close(fd);
  } else {
    ::kill(daemon.pid, SIGTERM);
  }
  int wait_status = 0;
  ::waitpid(daemon.pid, &wait_status, 0);
  return WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : 128;
}

// ---------------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------------

Client::Client(std::string endpoint, RetryPolicy policy)
    : endpoint_(std::move(endpoint)), policy_(policy) {}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

bool Client::ensure_connected(std::string& error) {
  if (fd_ >= 0) return true;
  fd_ = connect_endpoint(endpoint_, error);
  return fd_ >= 0;
}

bool Client::read_line(std::string& line) {
  for (;;) {
    std::size_t nl = inbuf_.find('\n');
    if (nl != std::string::npos) {
      line = inbuf_.substr(0, nl);
      inbuf_.erase(0, nl + 1);
      return true;
    }
    char chunk[64 * 1024];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    inbuf_.append(chunk, static_cast<std::size_t>(n));
  }
}

namespace {

CompileResponse synthesized(const CompileRequest& request, ErrorCode code,
                            std::string message) {
  CompileResponse response;
  response.id = request.id;
  response.code = code;
  response.error_message = std::move(message);
  return response;
}

bool retryable_code(ErrorCode code) {
  // `internal` = a worker crashed under the request (idempotent: safe);
  // `resource_exhausted` = admission bounce or supervisor brownout
  // (transient by construction). Everything else is either deterministic
  // (would fail identically) or a spent deadline.
  return code == ErrorCode::kInternal || code == ErrorCode::kResourceExhausted;
}

}  // namespace

CompileResponse Client::call(CompileRequest request, RetryStats* stats) {
  RetryStats local;
  RetryStats& s = stats != nullptr ? *stats : local;
  s = RetryStats{};
  last_line_.clear();

  const Clock::time_point start = Clock::now();
  const double budget_ms = request.deadline_ms;  // overall, from first send
  CompileResponse last_failure =
      synthesized(request, ErrorCode::kInternal, "no attempt was made");

  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    double remaining_ms = budget_ms >= 0.0 ? budget_ms - ms_since(start) : -1.0;
    if (budget_ms >= 0.0 && remaining_ms <= 0.0) {
      s.gave_up = true;
      return synthesized(request, ErrorCode::kDeadlineExceeded,
                         "request deadline expired after " +
                             std::to_string(s.attempts) + " attempt(s)");
    }

    ++s.attempts;
    s.retries = s.attempts - 1;
    request.attempt = attempt;
    if (budget_ms >= 0.0) request.deadline_ms = remaining_ms;

    std::string error;
    if (!ensure_connected(error)) {
      ++s.connect_failures;
      last_failure = synthesized(request, ErrorCode::kInternal,
                                 "connect failed: " + error);
    } else {
      std::string line = request_to_json(request).to_string();
      line.push_back('\n');
      std::string response_line;
      bool got = send_all(fd_, line) && read_line(response_line);
      if (!got) {
        ++s.dropped_connections;
        disconnect();
        last_failure =
            synthesized(request, ErrorCode::kInternal,
                        "connection dropped before a response arrived");
      } else {
        auto json = JsonValue::parse(response_line);
        auto decoded = json.is_ok()
                           ? response_from_json(json.value())
                           : qfs::StatusOr<CompileResponse>(json.status());
        if (!decoded.is_ok()) {
          // A peer that breaks framing cannot be trusted to stay in sync:
          // drop the connection and retry fresh.
          ++s.dropped_connections;
          disconnect();
          last_failure = synthesized(
              request, ErrorCode::kInternal,
              "malformed response: " + decoded.status().message());
        } else {
          CompileResponse response = std::move(decoded).value();
          if (!retryable_code(response.code)) {
            last_line_ = response_line;
            return response;
          }
          ++s.retryable_responses;
          last_failure = std::move(response);
          last_line_ = response_line;
        }
      }
    }

    if (attempt + 1 >= policy_.max_attempts) break;
    double delay_ms =
        backoff_delay_ms(policy_.backoff, attempt,
                         qfs::derive_seed(policy_.seed,
                                          static_cast<std::uint64_t>(attempt)));
    if (budget_ms >= 0.0) {
      remaining_ms = budget_ms - ms_since(start);
      if (remaining_ms <= 0.0) {
        s.gave_up = true;
        return synthesized(request, ErrorCode::kDeadlineExceeded,
                           "request deadline expired after " +
                               std::to_string(s.attempts) + " attempt(s)");
      }
      delay_ms = std::min(delay_ms, remaining_ms);
    }
    s.backoff_ms += delay_ms;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }

  s.gave_up = true;
  return last_failure;
}

qfs::StatusOr<JsonValue> Client::op(const std::string& name) {
  std::string error;
  if (!ensure_connected(error)) return qfs::io_error(error);
  if (!send_all(fd_, "{\"op\":\"" + name + "\"}\n")) {
    disconnect();
    return qfs::io_error("send failed for op '" + name + "'");
  }
  std::string response_line;
  if (!read_line(response_line)) {
    disconnect();
    return qfs::io_error("connection dropped during op '" + name + "'");
  }
  return JsonValue::parse(response_line);
}

}  // namespace qfs::service
