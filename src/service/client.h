// Deadline-aware qfsd wire client with idempotent retry.
//
// Compilation is deterministic and idempotent (same request, same bytes —
// the PR 5/PR 6 byte-identity contract), so retrying a failed request can
// never produce a different answer, only a later one. That makes the retry
// policy purely a question of *which failures are worth retrying*:
//
//   retryable:      connect failure, connection dropped mid-call, typed
//                   `internal` (a worker crashed under the request), typed
//                   `resource_exhausted` (admission bounce or supervisor
//                   brownout — backoff gives the window time to clear);
//   not retryable:  `deadline_exceeded` (the budget is gone by definition),
//                   `invalid_request`/`parse_error`/`compile_failed`/
//                   `lint_error` (deterministic: the retry would fail the
//                   same way).
//
// Retries never extend the deadline: the request's `deadline_ms` is an
// overall budget measured from the first attempt, each attempt is sent
// with the *remaining* budget, and backoff sleeps are clamped to it.
//
// The low-level pieces (connect_endpoint, send_all, LineReader, private
// daemon spawn) are exposed too: qfsd_loadgen, qfsd_chaos and the tests
// all speak the same wire through this one translation unit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/api.h"
#include "service/supervisor.h"  // BackoffPolicy / backoff_delay_ms
#include "support/json.h"
#include "support/status.h"

namespace qfs::service {

// ---------------------------------------------------------------------------
// Low-level wire plumbing (shared by every qfsd client tool).
// ---------------------------------------------------------------------------

/// Connect to "unix:<path>", "tcp:<port>" or "tcp:<host>:<port>" (loopback).
/// Returns the socket fd, or -1 with `error` filled in.
int connect_endpoint(const std::string& spec, std::string& error);

/// Write all of `text` (MSG_NOSIGNAL; a dead peer is a false return, not a
/// process-killing SIGPIPE).
bool send_all(int fd, const std::string& text);

/// Buffered '\n'-framed line reader over a socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Next line without its newline; false on EOF/error.
  bool next(std::string& line);

 private:
  int fd_;
  std::string buffer_;
};

/// A private daemon forked for the duration of a test/tool run.
struct SpawnedDaemon {
  pid_t pid = -1;
  std::string endpoint;  ///< "unix:<scratch path>"
};

/// Fork/exec `qfsd_path` on a scratch Unix socket with `extra_args`
/// appended after --listen, and wait until it answers ping. False (with
/// `error`) when it never comes up.
bool spawn_daemon(const std::string& qfsd_path,
                  const std::vector<std::string>& extra_args,
                  SpawnedDaemon& out, std::string& error);

/// Ask a spawned daemon to shut down (wire op, SIGTERM fallback) and reap
/// it. Returns its exit code (128 on abnormal exit).
int stop_daemon(const SpawnedDaemon& daemon);

// ---------------------------------------------------------------------------
// Retrying client.
// ---------------------------------------------------------------------------

struct RetryPolicy {
  /// Total tries including the first (1 = no retry).
  int max_attempts = 4;

  /// Backoff between attempts (same schedule the supervisor uses).
  BackoffPolicy backoff{/*initial_ms=*/10.0, /*multiplier=*/2.0,
                        /*max_ms=*/500.0, /*jitter=*/0.25};

  /// Seed for the deterministic backoff jitter.
  std::uint64_t seed = 2022;
};

/// What one call() actually did, for load reports and tests.
struct RetryStats {
  int attempts = 0;             ///< sends tried (>= 1 unless pre-expired)
  int retries = 0;              ///< attempts beyond the first
  int connect_failures = 0;     ///< could not even connect
  int dropped_connections = 0;  ///< connection died after the send
  int retryable_responses = 0;  ///< typed internal/resource_exhausted seen
  double backoff_ms = 0.0;      ///< total time spent sleeping
  bool gave_up = false;         ///< retry budget or deadline exhausted
};

/// One persistent connection to a qfsd endpoint, reconnecting and retrying
/// per RetryPolicy. Not thread-safe: one Client per client thread.
class Client {
 public:
  explicit Client(std::string endpoint, RetryPolicy policy = RetryPolicy{});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Run one request to completion. Always returns a typed response:
  /// transport failures that outlive the retry budget synthesize an
  /// `internal` response, an expired overall deadline synthesizes
  /// `deadline_exceeded`. `stats` (optional) reports the attempt history.
  CompileResponse call(CompileRequest request, RetryStats* stats = nullptr);

  /// Raw wire line of the last response that came off the socket ("" when
  /// the last call() synthesized its response locally). `--once` prints
  /// the metrics out of this verbatim, preserving the byte-identity
  /// contract with `qfsc --emit-json`.
  const std::string& last_response_line() const { return last_line_; }

  /// Send a control op ({"op":"ping"} / {"op":"stats"}) and decode the
  /// reply. No retry: ops are cheap probes, failure is an answer too.
  qfs::StatusOr<JsonValue> op(const std::string& name);

  /// Drop the persistent connection (the next call reconnects).
  void disconnect();

 private:
  bool ensure_connected(std::string& error);
  bool read_line(std::string& line);

  std::string endpoint_;
  RetryPolicy policy_;
  int fd_ = -1;
  std::string inbuf_;
  std::string last_line_;
};

}  // namespace qfs::service
