#include "service/flags.h"

#include <algorithm>

#include "support/strings.h"

namespace qfs::service {

const std::vector<std::string>& shared_request_flags() {
  static const std::vector<std::string> flags = {
      "--jobs", "--cache-dir", "--seed", "--placer", "--router", "--device"};
  return flags;
}

FlagParse consume_request_flag(int argc, char** argv, int& i,
                               RequestFlagValues& out, std::string& error) {
  const std::string arg = argv[i];
  auto is_shared = [&arg] {
    const auto& flags = shared_request_flags();
    return std::find(flags.begin(), flags.end(), arg) != flags.end();
  };
  if (!is_shared()) return FlagParse::kNotMine;
  if (i + 1 >= argc) {
    error = "missing value for " + arg;
    return FlagParse::kError;
  }
  const std::string value = argv[++i];
  auto bad_value = [&]() {
    error = "bad " + arg + " value '" + value + "'";
    return FlagParse::kError;
  };
  if (arg == "--jobs") {
    if (!qfs::parse_int(value, out.jobs) || out.jobs < 0) return bad_value();
    out.jobs_set = true;
  } else if (arg == "--cache-dir") {
    out.cache_dir = value;
    out.cache_dir_set = true;
  } else if (arg == "--seed") {
    int seed = 0;
    if (!qfs::parse_int(value, seed) || seed < 0) return bad_value();
    out.seed = static_cast<std::uint64_t>(seed);
    out.seed_set = true;
  } else if (arg == "--placer") {
    out.placer = value;
    out.placer_set = true;
  } else if (arg == "--router") {
    out.router = value;
    out.router_set = true;
  } else {  // --device
    out.device = value;
    out.device_set = true;
  }
  return FlagParse::kConsumed;
}

qfs::Status parse_request_flags(int argc, char** argv,
                                RequestFlagValues& out) {
  for (int i = 1; i < argc; ++i) {
    std::string error;
    if (consume_request_flag(argc, argv, i, out, error) == FlagParse::kError) {
      return qfs::invalid_argument(error);
    }
  }
  return qfs::Status::ok();
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      std::size_t next = std::min({row[j] + 1, row[j - 1] + 1,
                                   diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

std::string suggest_flag(std::string_view arg,
                         const std::vector<std::string>& candidates) {
  std::size_t best = 4;  // only suggest reasonably close matches
  std::string suggestion;
  for (const std::string& candidate : candidates) {
    std::size_t d = edit_distance(arg, candidate);
    if (d < best) {
      best = d;
      suggestion = candidate;
    }
  }
  return suggestion;
}

}  // namespace qfs::service
