#include "service/api.h"

#include <limits>
#include <utility>

#include "qasm/writer.h"
#include "service/flags.h"
#include "support/assert.h"

namespace qfs::service {

namespace {

struct ErrorCodeName {
  ErrorCode code;
  const char* name;
};

constexpr ErrorCodeName kErrorCodeNames[] = {
    {ErrorCode::kOk, "ok"},
    {ErrorCode::kInvalidRequest, "invalid_request"},
    {ErrorCode::kParseError, "parse_error"},
    {ErrorCode::kCompileFailed, "compile_failed"},
    {ErrorCode::kLintError, "lint_error"},
    {ErrorCode::kDeadlineExceeded, "deadline_exceeded"},
    {ErrorCode::kResourceExhausted, "resource_exhausted"},
    {ErrorCode::kInternal, "internal"},
};

}  // namespace

const char* error_code_name(ErrorCode code) {
  for (const auto& entry : kErrorCodeNames) {
    if (entry.code == code) return entry.name;
  }
  return "internal";
}

bool error_code_from_name(std::string_view name, ErrorCode& out) {
  for (const auto& entry : kErrorCodeNames) {
    if (name == entry.name) {
      out = entry.code;
      return true;
    }
  }
  return false;
}

int exit_code_for(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return 0;
    case ErrorCode::kInvalidRequest: return 1;
    case ErrorCode::kParseError: return 1;
    case ErrorCode::kCompileFailed: return 2;
    case ErrorCode::kLintError: return 3;
    case ErrorCode::kDeadlineExceeded: return 4;
    case ErrorCode::kResourceExhausted: return 5;
    case ErrorCode::kInternal: return 6;
  }
  return 6;
}

const char* request_mode_name(RequestMode mode) {
  switch (mode) {
    case RequestMode::kCompile: return "compile";
    case RequestMode::kLint: return "lint";
    case RequestMode::kVerify: return "verify";
  }
  return "compile";
}

bool request_mode_from_name(std::string_view name, RequestMode& out) {
  if (name == "compile") {
    out = RequestMode::kCompile;
  } else if (name == "lint") {
    out = RequestMode::kLint;
  } else if (name == "verify") {
    out = RequestMode::kVerify;
  } else {
    return false;
  }
  return true;
}

const char* cache_policy_name(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kDefault: return "default";
    case CachePolicy::kBypass: return "bypass";
  }
  return "default";
}

bool cache_policy_from_name(std::string_view name, CachePolicy& out) {
  if (name == "default") {
    out = CachePolicy::kDefault;
  } else if (name == "bypass") {
    out = CachePolicy::kBypass;
  } else {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Request encoding
// ---------------------------------------------------------------------------

namespace {

/// Every member a wire request may carry, for unknown-field did-you-mean.
const std::vector<std::string>& known_request_fields() {
  static const std::vector<std::string> fields = {
      "id",          "mode",           "qasm",
      "qasm_path",   "source_name",    "device",
      "calibration", "calibration_path", "inject_faults",
      "placer",      "router",         "sabre",
      "initial_layout", "compute_latency", "pipeline",
      "seed",        "max_attempts",   "recommend",
      "crosstalk_safe", "emit_qasm",   "emit_cqasm",
      "emit_timed",  "digest",         "cache",
      "deadline_ms", "attempt",        "chaos",
      "verify_artifact",
  };
  return fields;
}

}  // namespace

JsonValue request_to_json(const CompileRequest& request) {
  QFS_ASSERT_MSG(request.device_obj == nullptr,
                 "an in-process device object cannot be serialized");
  JsonValue doc = JsonValue::object();
  if (!request.id.empty()) doc.set("id", JsonValue::string(request.id));
  doc.set("mode", JsonValue::string(request_mode_name(request.mode)));
  if (request.circuit != nullptr) {
    doc.set("qasm", JsonValue::string(qasm::to_qasm(*request.circuit)));
  } else if (!request.qasm.empty()) {
    doc.set("qasm", JsonValue::string(request.qasm));
  } else if (!request.qasm_path.empty()) {
    doc.set("qasm_path", JsonValue::string(request.qasm_path));
  }
  if (!request.source_name.empty()) {
    doc.set("source_name", JsonValue::string(request.source_name));
  }
  doc.set("device", JsonValue::string(request.device));
  if (!request.calibration.empty()) {
    doc.set("calibration", JsonValue::string(request.calibration));
  }
  if (!request.calibration_path.empty()) {
    doc.set("calibration_path", JsonValue::string(request.calibration_path));
  }
  if (!request.fault_spec.empty()) {
    doc.set("inject_faults", JsonValue::string(request.fault_spec));
  }
  doc.set("placer", JsonValue::string(request.options.placer));
  doc.set("router", JsonValue::string(request.options.router));
  if (request.options.sabre_refinement_rounds != 0) {
    doc.set("sabre",
            JsonValue::integer(request.options.sabre_refinement_rounds));
  }
  if (!request.options.initial_layout.empty()) {
    JsonValue layout = JsonValue::array();
    for (int p : request.options.initial_layout) {
      layout.push_back(JsonValue::integer(p));
    }
    doc.set("initial_layout", std::move(layout));
  }
  if (request.options.compute_latency) {
    doc.set("compute_latency", JsonValue::boolean(true));
  }
  doc.set("pipeline", JsonValue::string(request.pipeline));
  doc.set("seed", JsonValue::integer(
                      static_cast<long long>(request.seed)));
  if (request.max_attempts != 4) {
    doc.set("max_attempts", JsonValue::integer(request.max_attempts));
  }
  if (request.recommend) doc.set("recommend", JsonValue::boolean(true));
  if (request.crosstalk_safe) {
    doc.set("crosstalk_safe", JsonValue::boolean(true));
  }
  if (request.emit_qasm) doc.set("emit_qasm", JsonValue::boolean(true));
  if (request.emit_cqasm) doc.set("emit_cqasm", JsonValue::boolean(true));
  if (request.emit_timed) doc.set("emit_timed", JsonValue::boolean(true));
  if (!request.want_digest) doc.set("digest", JsonValue::boolean(false));
  if (request.verify_artifact) {
    doc.set("verify_artifact", JsonValue::boolean(true));
  }
  if (request.cache_policy != CachePolicy::kDefault) {
    doc.set("cache", JsonValue::string(cache_policy_name(
                         request.cache_policy)));
  }
  if (request.deadline_ms >= 0) {
    doc.set("deadline_ms", JsonValue::number(request.deadline_ms));
  }
  if (request.attempt != 0) {
    doc.set("attempt", JsonValue::integer(request.attempt));
  }
  if (!request.chaos.empty()) {
    doc.set("chaos", JsonValue::string(request.chaos));
  }
  return doc;
}

namespace {

qfs::Status field_error(const std::string& field, const std::string& what) {
  return qfs::invalid_argument("request field '" + field + "': " + what);
}

qfs::Status read_string(const JsonValue& value, const std::string& field,
                        std::string& out) {
  if (!value.is_string()) return field_error(field, "expected a string");
  out = value.as_string();
  return qfs::Status::ok();
}

qfs::Status read_bool(const JsonValue& value, const std::string& field,
                      bool& out) {
  if (!value.is_bool()) return field_error(field, "expected a boolean");
  out = value.as_bool();
  return qfs::Status::ok();
}

qfs::Status read_int(const JsonValue& value, const std::string& field,
                     long long min, long long max, long long& out) {
  if (!value.is_integer()) return field_error(field, "expected an integer");
  long long v = value.as_integer();
  if (v < min || v > max) {
    return field_error(field, "value " + std::to_string(v) +
                                  " out of range [" + std::to_string(min) +
                                  ", " + std::to_string(max) + "]");
  }
  out = v;
  return qfs::Status::ok();
}

}  // namespace

qfs::StatusOr<CompileRequest> request_from_json(const JsonValue& json) {
  if (!json.is_object()) {
    return qfs::invalid_argument("request must be a JSON object");
  }
  CompileRequest request;
  for (const auto& [field, value] : json.members()) {
    qfs::Status status = qfs::Status::ok();
    if (field == "id") {
      if (value.is_integer()) {
        request.id = std::to_string(value.as_integer());
      } else {
        status = read_string(value, field, request.id);
      }
    } else if (field == "mode") {
      std::string name;
      status = read_string(value, field, name);
      if (status.is_ok() && !request_mode_from_name(name, request.mode)) {
        status = field_error(field, "unknown mode '" + name +
                                        "' (compile | lint | verify)");
      }
    } else if (field == "qasm") {
      status = read_string(value, field, request.qasm);
    } else if (field == "qasm_path") {
      status = read_string(value, field, request.qasm_path);
    } else if (field == "source_name") {
      status = read_string(value, field, request.source_name);
    } else if (field == "device") {
      status = read_string(value, field, request.device);
    } else if (field == "calibration") {
      status = read_string(value, field, request.calibration);
    } else if (field == "calibration_path") {
      status = read_string(value, field, request.calibration_path);
    } else if (field == "inject_faults") {
      status = read_string(value, field, request.fault_spec);
    } else if (field == "placer") {
      status = read_string(value, field, request.options.placer);
    } else if (field == "router") {
      status = read_string(value, field, request.options.router);
    } else if (field == "sabre") {
      long long v = 0;
      status = read_int(value, field, 0, 1000, v);
      request.options.sabre_refinement_rounds = static_cast<int>(v);
    } else if (field == "initial_layout") {
      if (!value.is_array()) {
        status = field_error(field, "expected an array of integers");
      } else {
        for (std::size_t i = 0; status.is_ok() && i < value.size(); ++i) {
          long long v = 0;
          status = read_int(value.at(i), field, 0, 1 << 20, v);
          if (status.is_ok()) {
            request.options.initial_layout.push_back(static_cast<int>(v));
          }
        }
      }
    } else if (field == "compute_latency") {
      status = read_bool(value, field, request.options.compute_latency);
    } else if (field == "pipeline") {
      status = read_string(value, field, request.pipeline);
    } else if (field == "seed") {
      long long v = 0;
      status = read_int(value, field, 0,
                        std::numeric_limits<long long>::max(), v);
      request.seed = static_cast<std::uint64_t>(v);
    } else if (field == "max_attempts") {
      long long v = 0;
      status = read_int(value, field, 1, 1000, v);
      request.max_attempts = static_cast<int>(v);
    } else if (field == "recommend") {
      status = read_bool(value, field, request.recommend);
    } else if (field == "crosstalk_safe") {
      status = read_bool(value, field, request.crosstalk_safe);
    } else if (field == "emit_qasm") {
      status = read_bool(value, field, request.emit_qasm);
    } else if (field == "emit_cqasm") {
      status = read_bool(value, field, request.emit_cqasm);
    } else if (field == "emit_timed") {
      status = read_bool(value, field, request.emit_timed);
    } else if (field == "digest") {
      status = read_bool(value, field, request.want_digest);
    } else if (field == "verify_artifact") {
      status = read_bool(value, field, request.verify_artifact);
    } else if (field == "cache") {
      std::string name;
      status = read_string(value, field, name);
      if (status.is_ok() &&
          !cache_policy_from_name(name, request.cache_policy)) {
        status = field_error(field, "unknown cache policy '" + name +
                                        "' (default | bypass)");
      }
    } else if (field == "deadline_ms") {
      if (!value.is_number()) {
        status = field_error(field, "expected a number");
      } else {
        request.deadline_ms = value.as_number();
        if (request.deadline_ms < 0) {
          status = field_error(field, "must be >= 0");
        }
      }
    } else if (field == "attempt") {
      long long v = 0;
      status = read_int(value, field, 0, 1000, v);
      request.attempt = static_cast<int>(v);
    } else if (field == "chaos") {
      status = read_string(value, field, request.chaos);
      if (status.is_ok() && !request.chaos.empty() &&
          request.chaos != "hang" && request.chaos != "crash" &&
          request.chaos != "exit") {
        status = field_error(field, "unknown chaos directive '" +
                                        request.chaos +
                                        "' (hang | crash | exit)");
      }
    } else {
      std::string message = "unknown request field '" + field + "'";
      std::string suggestion = suggest_flag(field, known_request_fields());
      if (!suggestion.empty()) {
        message += " (did you mean '" + suggestion + "'?)";
      }
      return qfs::invalid_argument(message);
    }
    if (!status.is_ok()) return status;
  }
  if (request.qasm.empty() && request.qasm_path.empty()) {
    return qfs::invalid_argument(
        "request carries no circuit: set 'qasm' or 'qasm_path'");
  }
  if (!request.qasm.empty() && !request.qasm_path.empty()) {
    return qfs::invalid_argument(
        "request sets both 'qasm' and 'qasm_path'; pick one");
  }
  return request;
}

qfs::StatusOr<CompileRequest> parse_request_line(std::string_view line) {
  auto json = JsonValue::parse(line);
  if (!json.is_ok()) return json.status();
  return request_from_json(json.value());
}

// ---------------------------------------------------------------------------
// Response encoding
// ---------------------------------------------------------------------------

JsonValue mapping_metrics_json(const CompileResponse& response) {
  const mapper::MappingResult& result = response.mapping;
  JsonValue layouts = JsonValue::object();
  JsonValue init = JsonValue::array();
  for (int p : result.initial_layout) init.push_back(JsonValue::integer(p));
  JsonValue fin = JsonValue::array();
  for (int p : result.final_layout) fin.push_back(JsonValue::integer(p));
  layouts.set("initial", std::move(init)).set("final", std::move(fin));

  JsonValue doc = JsonValue::object();
  doc.set("device", JsonValue::string(response.device_name))
      .set("placer", JsonValue::string(response.placer_used))
      .set("router", JsonValue::string(response.router_used))
      .set("gates_before", JsonValue::integer(result.gates_before))
      .set("gates_after", JsonValue::integer(result.gates_after))
      .set("swaps_inserted", JsonValue::integer(result.swaps_inserted))
      .set("gate_overhead_pct", JsonValue::number(result.gate_overhead_pct))
      .set("depth_before", JsonValue::integer(result.depth_before))
      .set("depth_after", JsonValue::integer(result.depth_after))
      .set("fidelity_before", JsonValue::number(result.fidelity_before))
      .set("fidelity_after", JsonValue::number(result.fidelity_after))
      .set("fidelity_decrease_pct",
           JsonValue::number(result.fidelity_decrease_pct))
      .set("latency_before_ns", JsonValue::number(result.latency_before_ns))
      .set("latency_after_ns", JsonValue::number(result.latency_after_ns));
  if (!response.mapped_digest.empty()) {
    doc.set("mapped_digest", JsonValue::string(response.mapped_digest));
  }
  doc.set("layouts", std::move(layouts));
  return doc;
}

JsonValue response_to_json(const CompileResponse& response) {
  JsonValue doc = JsonValue::object();
  if (!response.id.empty()) doc.set("id", JsonValue::string(response.id));
  doc.set("ok", JsonValue::boolean(response.ok()));
  doc.set("code", JsonValue::string(error_code_name(response.code)));
  if (!response.error_message.empty()) {
    doc.set("error", JsonValue::string(response.error_message));
  }
  if (response.has_mapping) {
    doc.set("metrics", mapping_metrics_json(response));
    doc.set("seed_used", JsonValue::integer(
                             static_cast<long long>(response.seed_used)));
  }
  if (!response.diagnostics.empty()) {
    doc.set("diagnostics", analysis::diagnostics_to_json(
                               response.diagnostics));
  }
  if (!response.fault_note.empty() || !response.recommend_note.empty() ||
      !response.attempt_log.empty()) {
    JsonValue notes = JsonValue::object();
    if (!response.fault_note.empty()) {
      notes.set("fault", JsonValue::string(response.fault_note));
    }
    if (!response.recommend_note.empty()) {
      notes.set("recommendation", JsonValue::string(response.recommend_note));
    }
    if (!response.attempt_log.empty()) {
      notes.set("attempt_log", JsonValue::string(response.attempt_log));
    }
    doc.set("notes", std::move(notes));
  }
  doc.set("cache_hit", JsonValue::boolean(response.cache_hit));
  JsonValue timing = JsonValue::object();
  timing.set("queue_ms", JsonValue::number(response.timing.queue_ms))
      .set("parse_ms", JsonValue::number(response.timing.parse_ms))
      .set("compile_ms", JsonValue::number(response.timing.compile_ms))
      .set("total_ms", JsonValue::number(response.timing.total_ms));
  doc.set("timing", std::move(timing));
  if (!response.mapped_qasm.empty()) {
    doc.set("mapped_qasm", JsonValue::string(response.mapped_qasm));
  }
  if (!response.mapped_cqasm.empty()) {
    doc.set("mapped_cqasm", JsonValue::string(response.mapped_cqasm));
  }
  if (!response.timed_text.empty()) {
    doc.set("timed_text", JsonValue::string(response.timed_text));
  }
  return doc;
}

namespace {

qfs::Status decode_metrics(const JsonValue& metrics, CompileResponse& out) {
  if (!metrics.is_object()) {
    return qfs::parse_error("response 'metrics' is not an object");
  }
  auto str = [&metrics](const char* key, std::string& field) {
    const JsonValue* v = metrics.find(key);
    if (v != nullptr && v->is_string()) field = v->as_string();
  };
  auto integer = [&metrics](const char* key, int& field) {
    const JsonValue* v = metrics.find(key);
    if (v != nullptr && v->is_integer()) {
      field = static_cast<int>(v->as_integer());
    }
  };
  auto number = [&metrics](const char* key, double& field) {
    const JsonValue* v = metrics.find(key);
    if (v != nullptr && v->is_number()) field = v->as_number();
  };
  str("device", out.device_name);
  str("placer", out.placer_used);
  str("router", out.router_used);
  str("mapped_digest", out.mapped_digest);
  mapper::MappingResult& m = out.mapping;
  integer("gates_before", m.gates_before);
  integer("gates_after", m.gates_after);
  integer("swaps_inserted", m.swaps_inserted);
  number("gate_overhead_pct", m.gate_overhead_pct);
  integer("depth_before", m.depth_before);
  integer("depth_after", m.depth_after);
  number("fidelity_before", m.fidelity_before);
  number("fidelity_after", m.fidelity_after);
  number("fidelity_decrease_pct", m.fidelity_decrease_pct);
  number("latency_before_ns", m.latency_before_ns);
  number("latency_after_ns", m.latency_after_ns);
  const JsonValue* layouts = metrics.find("layouts");
  if (layouts != nullptr && layouts->is_object()) {
    auto layout = [&layouts](const char* key, std::vector<int>& field) {
      const JsonValue* arr = layouts->find(key);
      if (arr == nullptr || !arr->is_array()) return;
      for (std::size_t i = 0; i < arr->size(); ++i) {
        if (arr->at(i).is_integer()) {
          field.push_back(static_cast<int>(arr->at(i).as_integer()));
        }
      }
    };
    layout("initial", m.initial_layout);
    layout("final", m.final_layout);
  }
  out.has_mapping = true;
  return qfs::Status::ok();
}

}  // namespace

qfs::StatusOr<CompileResponse> response_from_json(const JsonValue& json) {
  if (!json.is_object()) {
    return qfs::parse_error("response must be a JSON object");
  }
  CompileResponse response;
  const JsonValue* id = json.find("id");
  if (id != nullptr && id->is_string()) response.id = id->as_string();
  const JsonValue* code = json.find("code");
  if (code == nullptr || !code->is_string() ||
      !error_code_from_name(code->as_string(), response.code)) {
    return qfs::parse_error("response carries no valid 'code'");
  }
  const JsonValue* error = json.find("error");
  if (error != nullptr && error->is_string()) {
    response.error_message = error->as_string();
  }
  const JsonValue* metrics = json.find("metrics");
  if (metrics != nullptr) {
    qfs::Status status = decode_metrics(*metrics, response);
    if (!status.is_ok()) return status;
  }
  const JsonValue* seed_used = json.find("seed_used");
  if (seed_used != nullptr && seed_used->is_integer()) {
    response.seed_used = static_cast<std::uint64_t>(seed_used->as_integer());
  }
  const JsonValue* diagnostics = json.find("diagnostics");
  if (diagnostics != nullptr) {
    auto decoded = analysis::diagnostics_from_json(*diagnostics);
    if (!decoded.is_ok()) return decoded.status();
    response.diagnostics = std::move(decoded).value();
  }
  const JsonValue* notes = json.find("notes");
  if (notes != nullptr && notes->is_object()) {
    auto note = [&notes](const char* key, std::string& field) {
      const JsonValue* v = notes->find(key);
      if (v != nullptr && v->is_string()) field = v->as_string();
    };
    note("fault", response.fault_note);
    note("recommendation", response.recommend_note);
    note("attempt_log", response.attempt_log);
  }
  const JsonValue* cache_hit = json.find("cache_hit");
  if (cache_hit != nullptr && cache_hit->is_bool()) {
    response.cache_hit = cache_hit->as_bool();
  }
  const JsonValue* timing = json.find("timing");
  if (timing != nullptr && timing->is_object()) {
    auto number = [&timing](const char* key, double& field) {
      const JsonValue* v = timing->find(key);
      if (v != nullptr && v->is_number()) field = v->as_number();
    };
    number("queue_ms", response.timing.queue_ms);
    number("parse_ms", response.timing.parse_ms);
    number("compile_ms", response.timing.compile_ms);
    number("total_ms", response.timing.total_ms);
  }
  auto text = [&json](const char* key, std::string& field) {
    const JsonValue* v = json.find(key);
    if (v != nullptr && v->is_string()) field = v->as_string();
  };
  text("mapped_qasm", response.mapped_qasm);
  text("mapped_cqasm", response.mapped_cqasm);
  text("timed_text", response.timed_text);
  return response;
}

JsonValue error_response_json(ErrorCode code, const std::string& message,
                              const std::string& id) {
  CompileResponse response;
  response.id = id;
  response.code = code;
  response.error_message = message;
  return response_to_json(response);
}

}  // namespace qfs::service
