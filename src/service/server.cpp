#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "backends/registry.h"
#include "report/cache_summary.h"
#include "support/json.h"
#include "support/strings.h"
#include "support/timer.h"

namespace qfs::service {

namespace {

// Measurement timing goes through the shared monotonic helper
// (support/timer.h) — one implementation for every latency figure.
using Clock = qfs::MonotonicClock;
using qfs::ms_since;

}  // namespace

// One accepted socket: the reader thread and every worker task holding a
// response for it share ownership; the fd closes when the last one lets go,
// so a response never races a close.
struct Server::Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  /// Serialize `text` + '\n' onto the socket. Returns false when the peer
  /// is gone; the error is not fatal to the server.
  bool write_line(const std::string& text) {
    std::lock_guard<std::mutex> lock(write_mu);
    std::string framed = text;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
      ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  const int fd;
  std::mutex write_mu;
};

Server::Server(ServerConfig config) : config_(std::move(config)) {
  service_ = CompileService(config_.service);
}

Server::~Server() {
  shutdown();
  wait();
}

qfs::Status Server::start() {
  const std::string& spec = config_.listen;
  if (starts_with(spec, "unix:")) {
    is_unix_ = true;
    unix_path_ = spec.substr(5);
    if (unix_path_.empty()) {
      return qfs::invalid_argument("empty unix socket path in '" + spec +
                                   "'");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (unix_path_.size() >= sizeof(addr.sun_path)) {
      return qfs::invalid_argument("unix socket path too long: " +
                                   unix_path_);
    }
    std::memcpy(addr.sun_path, unix_path_.c_str(), unix_path_.size() + 1);
    // CLOEXEC everywhere: supervised worker children must not inherit the
    // listener or any connection fd (an inherited fd would keep a "closed"
    // client connection alive and mask its EOF).
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return qfs::io_error(std::string("socket: ") + std::strerror(errno));
    }
    // A stale socket file from a crashed daemon would make bind fail;
    // removing it first is the conventional unix-daemon behaviour.
    ::unlink(unix_path_.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      qfs::Status status = qfs::io_error("bind '" + unix_path_ +
                                         "': " + std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    endpoint_ = "unix:" + unix_path_;
  } else if (starts_with(spec, "tcp:")) {
    int port = 0;
    if (!parse_int(spec.substr(4), port) || port < 0 || port > 65535) {
      return qfs::invalid_argument("bad tcp port in '" + spec + "'");
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return qfs::io_error(std::string("socket: ") + std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      qfs::Status status = qfs::io_error("bind tcp:" + std::to_string(port) +
                                         ": " + std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    endpoint_ =
        "tcp:127.0.0.1:" + std::to_string(ntohs(bound.sin_port));
  } else {
    return qfs::invalid_argument(
        "bad listen spec '" + spec + "' (expected unix:<path> or tcp:<port>)");
  }

  if (::listen(listen_fd_, 128) != 0) {
    qfs::Status status =
        qfs::io_error(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (!config_.supervisor.command.empty()) {
    supervisor_ = std::make_unique<Supervisor>(config_.supervisor);
    qfs::Status status = supervisor_->start();
    if (!status.is_ok()) {
      supervisor_.reset();
      ::close(listen_fd_);
      listen_fd_ = -1;
      if (is_unix_ && !unix_path_.empty()) ::unlink(unix_path_.c_str());
      return status;
    }
  }
  pool_ = std::make_unique<qfs::ThreadPool>(
      qfs::resolve_jobs(config_.workers));
  accept_thread_ = std::thread([this] { accept_loop(); });
  return qfs::Status::ok();
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listening socket shut down (signal or "op":"shutdown")
    }
    auto conn = std::make_shared<Connection>(fd);
    // A connection accepted while another thread starts the shutdown could
    // miss its half-close sweep; re-check after registration below.
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      // Modest reaping so a long-lived daemon doesn't accumulate slots.
      std::erase_if(conns_, [](const std::weak_ptr<Connection>& w) {
        return w.expired();
      });
      conns_.push_back(conn);
    }
    if (stopping_.load()) continue;  // dropped: fd closes with the last ref
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.connections;
    }
    {
      std::lock_guard<std::mutex> lock(readers_mu_);
      ++active_readers_;
    }
    std::thread([this, conn = std::move(conn)]() mutable {
      serve_connection(std::move(conn));
      std::lock_guard<std::mutex> lock(readers_mu_);
      --active_readers_;
      readers_done_.notify_all();
    }).detach();
  }
  shutdown();
}

void Server::serve_connection(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[64 * 1024];
  for (;;) {
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      handle_line(conn, buffer.substr(start, nl - start));
      start = nl + 1;
    }
    buffer.erase(0, start);
    if (buffer.size() > config_.max_line_bytes) {
      conn->write_line(
          error_response_json(
              ErrorCode::kResourceExhausted,
              "request line exceeds " +
                  std::to_string(config_.max_line_bytes) + " bytes")
              .to_string());
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.rejected;
      // Framing can't be trusted past an overlong line: hang up without
      // falling through to the trailing-line handler below.
      return;
    }
  }
  // A trailing request without a final newline still deserves an answer.
  if (!buffer.empty() &&
      buffer.find_first_not_of(" \t\r") != std::string::npos) {
    handle_line(conn, buffer);
  }
}

void Server::handle_line(const std::shared_ptr<Connection>& conn,
                         std::string line) {
  if (line.find_first_not_of(" \t\r") == std::string::npos) return;

  auto json = JsonValue::parse(line);
  if (!json.is_ok()) {
    conn->write_line(error_response_json(ErrorCode::kInvalidRequest,
                                         json.status().message())
                         .to_string());
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.failed;
    return;
  }

  // Echo the client's id even when the request itself is rejected.
  std::string id;
  if (json.value().is_object()) {
    const JsonValue* id_field = json.value().find("id");
    if (id_field != nullptr && id_field->is_string()) {
      id = id_field->as_string();
    } else if (id_field != nullptr && id_field->is_integer()) {
      id = std::to_string(id_field->as_integer());
    }
  }

  if (json.value().is_object()) {
    const JsonValue* op = json.value().find("op");
    if (op != nullptr) {
      if (!op->is_string() || !handle_op(conn, op->as_string(), id)) {
        conn->write_line(
            error_response_json(
                ErrorCode::kInvalidRequest,
                "unknown op (ping | stats | devices | shutdown)", id)
                .to_string());
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.failed;
      }
      return;
    }
  }

  auto request = request_from_json(json.value());
  if (!request.is_ok()) {
    conn->write_line(error_response_json(ErrorCode::kInvalidRequest,
                                         request.status().message(), id)
                         .to_string());
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.failed;
    return;
  }
  dispatch(conn, std::move(request).value());
}

bool Server::handle_op(const std::shared_ptr<Connection>& conn,
                       const std::string& op, const std::string& id) {
  JsonValue doc = JsonValue::object();
  if (!id.empty()) doc.set("id", JsonValue::string(id));
  doc.set("ok", JsonValue::boolean(true)).set("op", JsonValue::string(op));
  if (op == "ping") {
    conn->write_line(doc.to_string());
    return true;
  }
  if (op == "stats") {
    ServerCounters c = counters();
    JsonValue server = JsonValue::object();
    server
        .set("connections",
             JsonValue::integer(static_cast<long long>(c.connections)))
        .set("requests",
             JsonValue::integer(static_cast<long long>(c.requests)))
        .set("ok", JsonValue::integer(static_cast<long long>(c.ok)))
        .set("failed", JsonValue::integer(static_cast<long long>(c.failed)))
        .set("rejected",
             JsonValue::integer(static_cast<long long>(c.rejected)))
        .set("deadline_expired",
             JsonValue::integer(static_cast<long long>(c.deadline_expired)))
        .set("cache_hits",
             JsonValue::integer(static_cast<long long>(c.cache_hits)))
        .set("retries_observed",
             JsonValue::integer(static_cast<long long>(c.retries_observed)))
        .set("inflight", JsonValue::integer(inflight_.load()))
        .set("workers", JsonValue::integer(pool_ ? pool_->size() : 0));
    doc.set("server", std::move(server));
    if (supervisor_ != nullptr) {
      SupervisorCounters sc = supervisor_->counters();
      JsonValue sup = JsonValue::object();
      sup.set("requests",
              JsonValue::integer(static_cast<long long>(sc.requests)))
          .set("spawns", JsonValue::integer(static_cast<long long>(sc.spawns)))
          .set("restarts",
               JsonValue::integer(static_cast<long long>(sc.restarts)))
          .set("crashes",
               JsonValue::integer(static_cast<long long>(sc.crashes)))
          .set("hung_killed",
               JsonValue::integer(static_cast<long long>(sc.hung_killed)))
          .set("breaker_trips",
               JsonValue::integer(static_cast<long long>(sc.breaker_trips)))
          .set("shed", JsonValue::integer(static_cast<long long>(sc.shed)))
          .set("breaker_open",
               JsonValue::boolean(supervisor_->breaker_open()));
      JsonValue pids = JsonValue::array();
      for (int pid : supervisor_->worker_pids()) {
        pids.push_back(JsonValue::integer(pid));
      }
      sup.set("worker_pids", std::move(pids));
      doc.set("supervisor", std::move(sup));
    }
    if (service_.cache() != nullptr) {
      doc.set("cache", report::cache_stats_to_json(service_.cache()->stats()));
    }
    conn->write_line(doc.to_string());
    return true;
  }
  if (op == "devices") {
    // Registry enumeration for remote clients: the same entries and
    // parameter ranges `qfsc --list-devices` prints locally.
    JsonValue devices = JsonValue::array();
    for (const auto& info : backends::BackendRegistry::global().entries()) {
      JsonValue entry = JsonValue::object();
      entry.set("name", JsonValue::string(info.name))
          .set("summary", JsonValue::string(info.summary));
      JsonValue params = JsonValue::array();
      for (const auto& p : info.params) {
        JsonValue param = JsonValue::object();
        param.set("name", JsonValue::string(p.name))
            .set("min", JsonValue::number(p.min_value))
            .set("max", JsonValue::number(p.max_value))
            .set("default", JsonValue::number(p.default_value))
            .set("integer", JsonValue::boolean(p.integer))
            .set("doc", JsonValue::string(p.doc));
        params.push_back(std::move(param));
      }
      entry.set("params", std::move(params));
      devices.push_back(std::move(entry));
    }
    doc.set("devices", std::move(devices));
    conn->write_line(doc.to_string());
    return true;
  }
  if (op == "shutdown") {
    conn->write_line(doc.to_string());
    // Kick the accept loop; it runs the actual graceful drain. Doing the
    // drain here would deadlock: shutdown() waits for this reader thread.
    ::shutdown(listen_fd_, SHUT_RDWR);
    return true;
  }
  return false;
}

void Server::dispatch(const std::shared_ptr<Connection>& conn,
                      CompileRequest request) {
  // The chaos field is a test-only fault-injection directive: only a
  // supervised daemon started with --enable-chaos honours it, everywhere
  // else it is a client error (never silently compiled — see service.cpp).
  if (!request.chaos.empty() &&
      (supervisor_ == nullptr || !config_.enable_chaos)) {
    conn->write_line(
        error_response_json(ErrorCode::kInvalidRequest,
                            "chaos injection is disabled on this daemon "
                            "(start with --worker-procs N --enable-chaos)",
                            request.id)
            .to_string());
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.failed;
    return;
  }
  if (stopping_.load() || pool_ == nullptr) {
    conn->write_line(error_response_json(ErrorCode::kResourceExhausted,
                                         "server is shutting down",
                                         request.id)
                         .to_string());
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.rejected;
    return;
  }
  // Bounded admission: count this request in, bounce if the daemon is full.
  if (inflight_.fetch_add(1) >= config_.max_queue) {
    inflight_.fetch_sub(1);
    conn->write_line(
        error_response_json(
            ErrorCode::kResourceExhausted,
            "admission queue full (" + std::to_string(config_.max_queue) +
                " requests in flight)",
            request.id)
            .to_string());
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.rejected;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.requests;
    if (request.attempt > 0) ++counters_.retries_observed;
  }
  if (request.deadline_ms < 0) request.deadline_ms = config_.default_deadline_ms;
  Clock::time_point admitted = Clock::now();
  pool_->submit([this, conn, request = std::move(request), admitted] {
    double queue_ms = ms_since(admitted);
    CompileResponse response;
    if (request.deadline_ms >= 0 && queue_ms >= request.deadline_ms) {
      response.id = request.id;
      response.code = ErrorCode::kDeadlineExceeded;
      response.error_message =
          "deadline of " + std::to_string(request.deadline_ms) +
          " ms expired in the admission queue";
    } else if (supervisor_ != nullptr) {
      // Crash-isolated path: hand the request to a child worker with the
      // budget that remains after its queue wait.
      double budget_ms = request.deadline_ms >= 0
                             ? request.deadline_ms - queue_ms
                             : -1.0;
      response = supervisor_->execute(request, budget_ms);
    } else {
      response = service_.execute(request);
    }
    response.timing.queue_ms = queue_ms;
    conn->write_line(response_to_json(response).to_string());
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      if (response.ok()) {
        ++counters_.ok;
      } else {
        ++counters_.failed;
      }
      if (response.code == ErrorCode::kDeadlineExceeded) {
        ++counters_.deadline_expired;
      }
      if (response.cache_hit) ++counters_.cache_hits;
    }
    inflight_.fetch_sub(1);
  });
}

void Server::shutdown() {
  if (stopping_.exchange(true)) {
    return;  // another thread is already driving (or has finished) the stop
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // Half-close every connection: readers see EOF and stop admitting, but
  // in-flight responses still flush through the write side.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& weak : conns_) {
      if (auto conn = weak.lock()) ::shutdown(conn->fd, SHUT_RD);
    }
  }
  {
    std::unique_lock<std::mutex> lock(readers_mu_);
    readers_done_.wait(lock, [this] { return active_readers_ == 0; });
  }
  if (pool_) {
    pool_->wait_idle();
    pool_.reset();  // joins the workers
  }
  // Only after the pool is gone is no execute() in flight, so the worker
  // fleet can be torn down safely.
  if (supervisor_) supervisor_->shutdown();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (is_unix_ && !unix_path_.empty()) ::unlink(unix_path_.c_str());
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mu_);
    stopped_cv_.wait(lock, [this] { return stopped_; });
  }
  if (accept_thread_.joinable() &&
      accept_thread_.get_id() != std::this_thread::get_id()) {
    accept_thread_.join();
  }
}

ServerCounters Server::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

}  // namespace qfs::service
