#include "service/supervisor.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "support/json.h"
#include "support/rng.h"

namespace qfs::service {

// ---------------------------------------------------------------------------
// Backoff schedule.
// ---------------------------------------------------------------------------

double backoff_delay_ms(const BackoffPolicy& policy, int attempt,
                        std::uint64_t seed) {
  double base = policy.initial_ms;
  for (int i = 0; i < attempt && base < policy.max_ms; ++i) {
    base *= policy.multiplier;
  }
  base = std::min(base, policy.max_ms);
  if (policy.jitter <= 0.0) return base;
  // derive_seed gives a statistically independent 64-bit stream per
  // (seed, attempt); fold it into [0, 1) the usual 53-bit way.
  std::uint64_t bits =
      qfs::derive_seed(seed, static_cast<std::uint64_t>(attempt));
  double unit = static_cast<double>(bits >> 11) * 0x1.0p-53;
  return base * (1.0 + policy.jitter * (2.0 * unit - 1.0));
}

// ---------------------------------------------------------------------------
// Circuit breaker.
// ---------------------------------------------------------------------------

void CircuitBreaker::prune(double now_ms) {
  while (!restarts_.empty() && restarts_.front() < now_ms - config_.window_ms) {
    restarts_.pop_front();
  }
}

void CircuitBreaker::record_restart(double now_ms) {
  restarts_.push_back(now_ms);
  prune(now_ms);
  if (static_cast<int>(restarts_.size()) > config_.max_restarts) {
    if (!tripped_) ++trips_;
    tripped_ = true;
    // Restarts while open keep extending the quiet period.
    open_until_ms_ = now_ms + config_.cooldown_ms;
  }
}

bool CircuitBreaker::open(double now_ms) {
  if (!tripped_) return false;
  if (now_ms < open_until_ms_) return true;
  prune(now_ms);
  if (static_cast<int>(restarts_.size()) > config_.max_restarts) {
    return true;  // the window is still saturated: stay open
  }
  tripped_ = false;  // cooldown elapsed and the window drained: recover
  return false;
}

int CircuitBreaker::restarts_in_window(double now_ms) {
  prune(now_ms);
  return static_cast<int>(restarts_.size());
}

// ---------------------------------------------------------------------------
// Supervisor.
// ---------------------------------------------------------------------------

namespace {

CompileResponse typed_response(const CompileRequest& request, ErrorCode code,
                               std::string message) {
  CompileResponse response;
  response.id = request.id;
  response.code = code;
  response.error_message = std::move(message);
  return response;
}

}  // namespace

Supervisor::Supervisor(SupervisorConfig config)
    : config_(std::move(config)),
      breaker_(config_.breaker),
      epoch_(std::chrono::steady_clock::now()) {}

Supervisor::~Supervisor() { shutdown(); }

double Supervisor::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

qfs::Status Supervisor::start() {
  if (config_.command.empty()) {
    return qfs::invalid_argument("supervisor has no worker command");
  }
  if (config_.workers < 1) {
    return qfs::invalid_argument("supervisor needs at least one worker");
  }
  std::lock_guard<std::mutex> lock(mu_);
  workers_.resize(static_cast<std::size_t>(config_.workers));
  double now = now_ms();
  for (Worker& worker : workers_) {
    if (!spawn_worker_locked(worker, now)) {
      // fork/socketpair failure at startup is a configuration-grade error;
      // a worker that execs and then dies is handled by the monitor.
      return qfs::io_error(std::string("spawn worker: ") +
                           std::strerror(errno));
    }
  }
  started_ = true;
  monitor_ = std::thread([this] { monitor_loop(); });
  return qfs::Status::ok();
}

bool Supervisor::spawn_worker_locked(Worker& worker, double now) {
  int sp[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sp) != 0) {
    return false;
  }
  // Build argv before fork: only async-signal-safe calls may run between
  // fork and exec in a multi-threaded parent.
  std::vector<char*> argv;
  argv.reserve(config_.command.size() + 1);
  for (const std::string& arg : config_.command) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sp[0]);
    ::close(sp[1]);
    return false;
  }
  if (pid == 0) {
    // Child: the worker speaks the line protocol on stdin/stdout (both
    // ends of one bidirectional socketpair fd). Everything else we own is
    // CLOEXEC, so exec drops it.
    ::dup2(sp[1], STDIN_FILENO);
    ::dup2(sp[1], STDOUT_FILENO);
    ::close(sp[1]);
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  ::close(sp[1]);
  worker.pid = pid;
  worker.fd = sp[0];
  worker.alive = true;
  worker.busy = false;
  worker.inbuf.clear();
  worker.restart_at_ms = now;
  ++spawn_seq_;
  ++counters_.spawns;
  return true;
}

void Supervisor::mark_dead_locked(Worker& worker, double now, bool hung) {
  if (!worker.alive) return;
  worker.alive = false;
  worker.busy = false;
  if (worker.fd >= 0) {
    ::close(worker.fd);
    worker.fd = -1;
  }
  if (worker.pid > 0) zombies_.push_back(worker.pid);
  worker.pid = -1;
  worker.inbuf.clear();
  ++worker.consecutive_failures;
  if (hung) {
    ++counters_.hung_killed;
  } else {
    ++counters_.crashes;
  }
  breaker_.record_restart(now);
  counters_.breaker_trips = breaker_.trips();
  worker.restart_at_ms =
      now + backoff_delay_ms(config_.backoff, worker.consecutive_failures - 1,
                             qfs::derive_seed(config_.seed, spawn_seq_));
  monitor_wake_.notify_all();
}

CompileResponse Supervisor::execute(const CompileRequest& request,
                                    double budget_ms) {
  const double start = now_ms();
  // The watchdog budget: the request's own deadline when it has one, the
  // hang-timeout backstop otherwise (< 0 = unbounded).
  const double watchdog_ms =
      budget_ms >= 0.0 ? budget_ms : config_.hang_timeout_ms;

  Worker* worker = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      double now = now_ms();
      if (stopping_) {
        return typed_response(request, ErrorCode::kResourceExhausted,
                              "supervisor is shutting down");
      }
      if (breaker_.open(now)) {
        ++counters_.shed;
        return typed_response(
            request, ErrorCode::kResourceExhausted,
            "worker restart storm: circuit breaker open (brownout), "
            "retry after the restart window clears");
      }
      for (Worker& candidate : workers_) {
        if (candidate.alive && !candidate.busy) {
          worker = &candidate;
          break;
        }
      }
      if (worker != nullptr) break;
      double elapsed = now - start;
      if (watchdog_ms >= 0.0 && elapsed >= watchdog_ms) {
        return typed_response(
            request,
            budget_ms >= 0.0 ? ErrorCode::kDeadlineExceeded
                             : ErrorCode::kResourceExhausted,
            budget_ms >= 0.0
                ? "deadline expired waiting for a free compile worker"
                : "no live compile worker within the hang timeout");
      }
      // Wake periodically: a respawn or breaker recovery can free a slot
      // without signalling this exact waiter.
      worker_free_.wait_for(lock, std::chrono::milliseconds(20));
    }
    worker->busy = true;
    ++counters_.requests;
  }

  // Forward with the *remaining* budget so the worker's own deadline
  // accounting matches the caller's.
  CompileRequest forwarded = request;
  if (budget_ms >= 0.0) {
    forwarded.deadline_ms = std::max(0.0, budget_ms - (now_ms() - start));
  }
  std::string line = request_to_json(forwarded).to_string();
  line.push_back('\n');

  const int fd = worker->fd;
  const pid_t pid = worker->pid;
  bool write_ok = true;
  std::size_t sent = 0;
  while (sent < line.size()) {
    ssize_t n =
        ::send(fd, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      write_ok = false;
      break;
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string response_line;
  bool hung = false;
  bool dead = !write_ok;
  while (!dead && !hung) {
    std::size_t nl = worker->inbuf.find('\n');
    if (nl != std::string::npos) {
      response_line = worker->inbuf.substr(0, nl);
      worker->inbuf.erase(0, nl + 1);
      break;
    }
    double remaining_ms =
        watchdog_ms >= 0.0 ? watchdog_ms - (now_ms() - start) : -1.0;
    if (watchdog_ms >= 0.0 && remaining_ms <= 0.0) {
      hung = true;
      break;
    }
    pollfd pfd{fd, POLLIN, 0};
    int timeout = remaining_ms < 0.0
                      ? -1
                      : static_cast<int>(std::min(remaining_ms + 1.0, 1e9));
    int rc = ::poll(&pfd, 1, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      dead = true;
      break;
    }
    if (rc == 0) {
      hung = true;
      break;
    }
    char chunk[64 * 1024];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      dead = true;  // EOF: the worker exited or was killed mid-request
      break;
    }
    worker->inbuf.append(chunk, static_cast<std::size_t>(n));
  }

  std::lock_guard<std::mutex> lock(mu_);
  double now = now_ms();
  if (hung) {
    // The watchdog fired: the worker is wedged (or just too slow, which is
    // indistinguishable). SIGKILL is the only reliable remedy; the monitor
    // reaps it and schedules the restart.
    if (pid > 0) ::kill(pid, SIGKILL);
    mark_dead_locked(*worker, now, /*hung=*/true);
    return typed_response(
        request, ErrorCode::kDeadlineExceeded,
        "compile worker killed by the deadline watchdog after " +
            std::to_string(watchdog_ms) + " ms");
  }
  if (dead) {
    mark_dead_locked(*worker, now, /*hung=*/false);
    return typed_response(
        request, ErrorCode::kInternal,
        "compile worker died mid-request; the compile is deterministic and "
        "idempotent, so retrying is safe");
  }

  auto json = JsonValue::parse(response_line);
  auto decoded = json.is_ok() ? response_from_json(json.value())
                              : qfs::StatusOr<CompileResponse>(json.status());
  if (!decoded.is_ok()) {
    // A worker that breaks the wire protocol can no longer be trusted:
    // treat it like a crash.
    if (pid > 0) ::kill(pid, SIGKILL);
    mark_dead_locked(*worker, now, /*hung=*/false);
    return typed_response(request, ErrorCode::kInternal,
                          "compile worker returned a malformed response: " +
                              decoded.status().message());
  }
  worker->busy = false;
  worker->consecutive_failures = 0;
  worker_free_.notify_one();
  CompileResponse response = std::move(decoded).value();
  response.id = request.id;  // the channel is 1:1; trust it over the echo
  return response;
}

void Supervisor::monitor_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    double now = now_ms();

    // Reap zombies handed over by execute() (crashed or watchdog-killed
    // workers) without blocking: a SIGKILLed child can take a tick to
    // become reapable.
    for (std::size_t i = 0; i < zombies_.size();) {
      int status = 0;
      if (::waitpid(zombies_[i], &status, WNOHANG) == zombies_[i]) {
        zombies_.erase(zombies_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }

    // Spontaneous deaths of idle workers (a chaos SIGKILL, an OOM kill):
    // a busy worker's death is the executing thread's to detect via EOF.
    for (Worker& worker : workers_) {
      if (worker.alive && !worker.busy) {
        int status = 0;
        pid_t reaped = ::waitpid(worker.pid, &status, WNOHANG);
        if (reaped == worker.pid) {
          worker.pid = -1;  // already reaped: don't re-queue as a zombie
          mark_dead_locked(worker, now, /*hung=*/false);
        }
      }
    }

    // Restart dead workers whose backoff delay has elapsed — unless the
    // breaker is open, in which case the fleet stays down (brownout) until
    // the restart window clears.
    if (!breaker_.open(now)) {
      for (Worker& worker : workers_) {
        if (!worker.alive && now >= worker.restart_at_ms) {
          if (spawn_worker_locked(worker, now)) {
            ++counters_.restarts;
            worker_free_.notify_all();
          } else {
            ++worker.consecutive_failures;
            worker.restart_at_ms =
                now + backoff_delay_ms(config_.backoff,
                                       worker.consecutive_failures - 1,
                                       qfs::derive_seed(config_.seed,
                                                        spawn_seq_));
          }
        }
      }
    }

    monitor_wake_.wait_for(lock, std::chrono::milliseconds(10));
  }
}

void Supervisor::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  monitor_wake_.notify_all();
  worker_free_.notify_all();
  if (monitor_.joinable()) monitor_.join();

  std::lock_guard<std::mutex> lock(mu_);
  // Close the pipes: a healthy worker exits on stdin EOF.
  for (Worker& worker : workers_) {
    if (worker.fd >= 0) {
      ::close(worker.fd);
      worker.fd = -1;
    }
  }
  // Grace period, then SIGKILL the stragglers (hung workers ignore EOF).
  std::vector<pid_t> pending;
  for (Worker& worker : workers_) {
    if (worker.alive && worker.pid > 0) pending.push_back(worker.pid);
    worker.alive = false;
    worker.pid = -1;
  }
  for (pid_t pid : zombies_) pending.push_back(pid);
  zombies_.clear();
  for (int attempt = 0; attempt < 40 && !pending.empty(); ++attempt) {
    for (std::size_t i = 0; i < pending.size();) {
      int status = 0;
      if (::waitpid(pending[i], &status, WNOHANG) == pending[i]) {
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    if (pending.empty()) break;
    if (attempt == 19) {
      for (pid_t pid : pending) ::kill(pid, SIGKILL);
    }
    ::usleep(5 * 1000);
  }
  for (pid_t pid : pending) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
}

SupervisorCounters Supervisor::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::vector<int> Supervisor::worker_pids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> pids;
  for (const Worker& worker : workers_) {
    if (worker.alive && worker.pid > 0) {
      pids.push_back(static_cast<int>(worker.pid));
    }
  }
  return pids;
}

bool Supervisor::breaker_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  // CircuitBreaker::open prunes its window (logically const, physically
  // not); the mutex makes the mutation safe here.
  auto& self = const_cast<Supervisor&>(*this);
  return self.breaker_.open(self.now_ms());
}

}  // namespace qfs::service
