// Crash-isolated worker supervision for the qfsd service tier.
//
// A Supervisor owns a fleet of child worker processes (fork/exec of
// `qfsd --worker`, each speaking the existing line-delimited CompileRequest/
// CompileResponse JSON over a socketpair) and runs every compilation inside
// one of them. A compiler crash — segfault, OOM kill, runaway assert — then
// takes down one worker, not the daemon and every in-flight request sharing
// its address space:
//
//   - a worker that dies mid-request surfaces as a typed `internal`
//     response ("retry is safe": compilation is deterministic and
//     idempotent, so the retrying client gets byte-identical results);
//   - a worker that hangs past the request deadline is SIGKILLed by the
//     per-request watchdog and the request fails fast with
//     `deadline_exceeded` instead of wedging a slot forever;
//   - dead workers are restarted with jittered exponential backoff, and a
//     restart storm (too many restarts inside a sliding window) trips a
//     circuit breaker: the supervisor stops respawning and sheds incoming
//     requests with typed `resource_exhausted` until the window clears,
//     then recovers on its own.
//
// The backoff schedule and the breaker state machine are deliberately pure
// (explicit clock parameters, seeded jitter) so the unit tests can walk
// them deterministically without sleeping.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/api.h"
#include "support/status.h"

namespace qfs::service {

// ---------------------------------------------------------------------------
// Backoff schedule (pure).
// ---------------------------------------------------------------------------
struct BackoffPolicy {
  double initial_ms = 25.0;   ///< delay before the first restart
  double multiplier = 2.0;    ///< growth per consecutive failure
  double max_ms = 2000.0;     ///< exponential growth clamps here
  double jitter = 0.25;       ///< +-fraction of the base delay
};

/// Delay before restart `attempt` (0-based consecutive-failure count):
/// min(max_ms, initial_ms * multiplier^attempt), scaled by a deterministic
/// jitter factor in [1 - jitter, 1 + jitter) derived from (seed, attempt).
/// Pure: same inputs, same delay — the unit tests pin the whole schedule.
double backoff_delay_ms(const BackoffPolicy& policy, int attempt,
                        std::uint64_t seed);

// ---------------------------------------------------------------------------
// Restart-storm circuit breaker (pure state machine, injected clock).
// ---------------------------------------------------------------------------
struct BreakerConfig {
  /// Restarts tolerated inside the sliding window; one more trips the
  /// breaker.
  int max_restarts = 8;
  double window_ms = 10'000.0;   ///< sliding restart-counting window
  double cooldown_ms = 1'000.0;  ///< minimum open time once tripped
};

/// Sliding-window circuit breaker over worker restarts. All methods take an
/// explicit monotonic timestamp, so tests drive it with a fake clock. Not
/// internally synchronized; the Supervisor calls it under its own mutex.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config) : config_(config) {}

  /// Record one worker restart (called when a worker dies).
  void record_restart(double now_ms);

  /// True while the breaker is open (brownout): shed requests, don't
  /// respawn. Recovers automatically once the cooldown has elapsed AND the
  /// sliding window has drained back under the limit.
  bool open(double now_ms);

  /// Restarts currently inside the sliding window.
  int restarts_in_window(double now_ms);

  std::uint64_t trips() const { return trips_; }

 private:
  void prune(double now_ms);

  BreakerConfig config_;
  std::deque<double> restarts_;
  bool tripped_ = false;
  double open_until_ms_ = 0.0;
  std::uint64_t trips_ = 0;
};

// ---------------------------------------------------------------------------
// Supervisor.
// ---------------------------------------------------------------------------
struct SupervisorConfig {
  /// Full argv of the worker process, e.g. {"/path/qfsd", "--worker",
  /// "--cache-dir", "/var/qfs"}. The tests substitute /bin/sh fakes.
  std::vector<std::string> command;

  /// Worker processes (compile concurrency of the supervised daemon).
  int workers = 2;

  BackoffPolicy backoff;
  BreakerConfig breaker;

  /// Watchdog for requests that carry no deadline of their own: a worker
  /// silent for this long is presumed hung and killed (< 0 disables the
  /// backstop — then only per-request deadlines bound a hang).
  double hang_timeout_ms = 30'000.0;

  /// Seed for the deterministic backoff jitter.
  std::uint64_t seed = 2022;
};

/// Monotonic counters, readable while the supervisor runs.
struct SupervisorCounters {
  std::uint64_t spawns = 0;         ///< fork/exec attempts (initial fleet too)
  std::uint64_t restarts = 0;       ///< respawns after a death
  std::uint64_t crashes = 0;        ///< workers that died (EOF / exit / signal)
  std::uint64_t hung_killed = 0;    ///< workers SIGKILLed by the watchdog
  std::uint64_t breaker_trips = 0;  ///< times the restart storm opened it
  std::uint64_t shed = 0;           ///< requests shed while the breaker is open
  std::uint64_t requests = 0;       ///< requests handed to a worker
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorConfig config);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawn the initial worker fleet and the monitor thread. A worker that
  /// dies instantly is not a start() error — the monitor restarts it and
  /// the breaker handles the pathological case — but an empty command or a
  /// failed socketpair/fork is.
  qfs::Status start();

  /// Run one request in a worker. `budget_ms` is the remaining wall-clock
  /// deadline (admission time already subtracted by the caller); < 0 means
  /// no deadline, bounded only by the hang-timeout backstop. Every outcome
  /// is a typed response: `internal` for a crashed worker,
  /// `deadline_exceeded` for a hung-then-killed one or an expired wait,
  /// `resource_exhausted` while the breaker sheds.
  CompileResponse execute(const CompileRequest& request, double budget_ms);

  /// Close every worker's pipe (they exit on EOF), reap them — SIGKILL
  /// after a short grace for the hung ones — and join the monitor.
  /// Idempotent. The caller must have drained execute() callers first.
  void shutdown();

  SupervisorCounters counters() const;

  /// PIDs of the currently-live workers (the chaos harness SIGKILLs these).
  std::vector<int> worker_pids() const;

  /// True while shedding (the brownout state, for the stats op).
  bool breaker_open() const;

 private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1;  ///< parent end of the socketpair (-1 = not running)
    bool alive = false;
    bool busy = false;
    int consecutive_failures = 0;
    double restart_at_ms = 0.0;  ///< earliest respawn time (monotonic ms)
    std::string inbuf;           ///< partial response line
  };

  double now_ms() const;
  bool spawn_worker_locked(Worker& worker, double now);
  void mark_dead_locked(Worker& worker, double now, bool hung);
  void monitor_loop();

  SupervisorConfig config_;

  mutable std::mutex mu_;
  std::condition_variable worker_free_;
  std::condition_variable monitor_wake_;
  std::vector<Worker> workers_;
  std::deque<pid_t> zombies_;  ///< dead pids awaiting waitpid by the monitor
  CircuitBreaker breaker_;
  SupervisorCounters counters_;
  std::uint64_t spawn_seq_ = 0;  ///< jitter substream per respawn
  bool stopping_ = false;
  bool started_ = false;

  std::thread monitor_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace qfs::service
