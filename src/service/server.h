// The qfsd network engine: line-delimited CompileRequest JSON over a Unix
// or loopback TCP socket, dispatched through a shared worker pool.
//
// One Server owns one listening socket, one accept thread, one
// support/parallel ThreadPool, and (via ServiceConfig) the process-wide
// compile cache every client shares. Each connection gets a cheap reader
// thread that frames lines and performs admission control; actual
// compilation runs on the pool. Admission is bounded: when `max_queue`
// requests are already in flight, new ones are rejected immediately with a
// typed kResourceExhausted response instead of queueing without limit.
// Per-request deadlines are re-checked when a worker dequeues the request,
// so a request that waited out its budget in the queue fails fast with
// kDeadlineExceeded rather than compiling dead work.
//
// Wire protocol (one JSON document per '\n'-terminated line, responses in
// completion order, matched to requests by the echoed "id"):
//   {"id":"1","qasm":"OPENQASM 2.0; ...","device":"surface17"}   -> compile
//   {"op":"ping"}      -> {"ok":true,"op":"ping"}
//   {"op":"stats"}     -> server + cache counters
//   {"op":"shutdown"}  -> ack, then graceful drain and exit
// A malformed line never kills the daemon: it produces one error response
// with the stable taxonomy code and the connection keeps serving.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"
#include "service/supervisor.h"
#include "support/parallel.h"
#include "support/status.h"

namespace qfs::service {

struct ServerConfig {
  /// "unix:<path>" or "tcp:<port>" (loopback only; port 0 = ephemeral,
  /// resolved port available from endpoint()).
  std::string listen = "unix:/tmp/qfsd.sock";

  /// Worker threads compiling requests (0 = one per hardware thread).
  int workers = 0;

  /// Bounded admission: max requests in flight (queued + compiling) before
  /// new ones are rejected with kResourceExhausted.
  int max_queue = 64;

  /// Deadline applied to requests that do not carry their own (< 0: none).
  double default_deadline_ms = -1.0;

  /// A wire line longer than this is answered with kResourceExhausted and
  /// the connection is closed (framing cannot be trusted past this point).
  std::size_t max_line_bytes = 16u << 20;

  ServiceConfig service;

  /// Crash isolation: when `supervisor.command` is non-empty, compilations
  /// run in supervised child worker processes (`qfsd --worker`) instead of
  /// in-process pool threads — a compiler crash then costs one worker, not
  /// the daemon. The pool threads become cheap forwarders, so `workers`
  /// should be >= supervisor.workers to keep the fleet busy.
  SupervisorConfig supervisor;

  /// Honour the test-only `chaos` request field (supervised mode only).
  /// Off by default: a production daemon must never fault-inject itself.
  bool enable_chaos = false;
};

/// Monotonic counters, readable while the server runs ("op":"stats").
struct ServerCounters {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;       ///< admitted compile/lint requests
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;         ///< typed error responses (any code)
  std::uint64_t rejected = 0;       ///< bounced at admission (queue full)
  std::uint64_t deadline_expired = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t retries_observed = 0;  ///< requests carrying attempt > 0
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and start the accept thread + worker pool. On error the
  /// server is left stopped and may not be restarted.
  qfs::Status start();

  /// Block until shutdown() completes (from the wire op, a signal, or
  /// another thread).
  void wait();

  /// Graceful stop: stop accepting, half-close every connection so pending
  /// responses still flush, drain the pool, join the threads. Idempotent;
  /// safe from any thread (NOT from a signal handler — see listen_fd()).
  void shutdown();

  /// The listening socket. ::shutdown(listen_fd(), SHUT_RDWR) is
  /// async-signal-safe and makes the accept loop initiate a graceful stop,
  /// which is exactly what a SIGINT/SIGTERM handler needs.
  int listen_fd() const { return listen_fd_; }

  /// Resolved listen address ("unix:/path" or "tcp:127.0.0.1:<port>" with
  /// the actual port when 0 was requested). Valid after start().
  const std::string& endpoint() const { return endpoint_; }

  ServerCounters counters() const;

  /// The worker supervisor, or nullptr when compiling in-process. Valid
  /// after start(); the chaos tests read worker pids through it.
  Supervisor* supervisor() { return supervisor_.get(); }

 private:
  struct Connection;

  void accept_loop();
  void serve_connection(std::shared_ptr<Connection> conn);
  void handle_line(const std::shared_ptr<Connection>& conn,
                   std::string line);
  void dispatch(const std::shared_ptr<Connection>& conn, CompileRequest req);
  bool handle_op(const std::shared_ptr<Connection>& conn,
                 const std::string& op, const std::string& id);

  ServerConfig config_;
  CompileService service_;

  int listen_fd_ = -1;
  bool is_unix_ = false;
  std::string unix_path_;  ///< unlinked on shutdown when we created it
  std::string endpoint_;

  std::thread accept_thread_;
  std::unique_ptr<qfs::ThreadPool> pool_;
  std::unique_ptr<Supervisor> supervisor_;

  std::atomic<bool> stopping_{false};
  std::atomic<int> inflight_{0};

  mutable std::mutex conns_mu_;
  std::vector<std::weak_ptr<Connection>> conns_;

  std::mutex readers_mu_;
  std::condition_variable readers_done_;
  int active_readers_ = 0;

  mutable std::mutex counters_mu_;
  ServerCounters counters_;

  std::mutex stop_mu_;
  std::condition_variable stopped_cv_;
  bool stopped_ = false;
};

}  // namespace qfs::service
