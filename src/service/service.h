// CompileService — the one execution engine behind every qfs entrypoint.
//
// execute() takes a validated CompileRequest and runs it end to end:
// source resolution, QASM parsing, device construction (calibration and
// fault-injection overrides included), lint/verify static analysis, the
// resilient or direct mapping pipeline, the shared compile cache, and
// artifact emission. Nothing in here prints or exits: every outcome —
// including malformed input that used to kill the process — comes back as
// a typed CompileResponse, so the daemon can serve hostile clients and
// qfsc can render byte-identical output to the pre-service tool.
//
// Thread safety: execute() is const and touches only request-local state
// plus the shared CompileCache, which is internally synchronized. One
// CompileService instance serves every daemon worker concurrently.
#pragma once

#include <cstddef>

#include "cache/cache.h"
#include "service/api.h"

namespace qfs::service {

struct ServiceConfig {
  /// Shared process-wide compile cache (borrowed, not owned; may be null).
  /// One cache instance stays hot across every client of the daemon.
  cache::CompileCache* cache = nullptr;

  /// Requests whose QASM source exceeds this are rejected with
  /// kResourceExhausted before parsing (wire-facing bound; in-process
  /// circuit pointers are exempt).
  std::size_t max_source_bytes = 8u << 20;
};

class CompileService {
 public:
  CompileService() = default;
  explicit CompileService(ServiceConfig config) : config_(config) {}

  /// Run one request to completion. Never throws, never exits, never
  /// asserts on request content; programming errors surface as kInternal.
  CompileResponse execute(const CompileRequest& request) const;

  cache::CompileCache* cache() const { return config_.cache; }
  const ServiceConfig& config() const { return config_; }

  /// Parse a device spec ("surface17", "line:20", "grid:4x5", "full:9",
  /// "file:topology.txt"). Shared with qfsc's --device handling.
  static bool parse_device(const std::string& spec, device::Device& out,
                           std::string& error);

 private:
  ServiceConfig config_;
};

}  // namespace qfs::service
