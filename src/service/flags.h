// Shared command-line handling for everything that constructs a
// CompileRequest: qfsc, the suite benches, qfsd and qfsd_loadgen.
//
// Before the service layer existed, --jobs/--cache-dir/--seed/--placer/
// --router were parsed three times (qfsc's flag loop, bench::parse_jobs,
// bench::parse_cache_dir) with three divergent error messages. This header
// is the single implementation: a per-argument consumer for strict parsers
// that enumerate every flag (qfsc), a whole-argv scanner for lenient ones
// that only pick out the shared set (benches), and the Levenshtein
// did-you-mean helper the strict parsers use to reject near-miss flags.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace qfs::service {

/// Values of the request flags every qfs entrypoint understands.
struct RequestFlagValues {
  int jobs = 1;  ///< worker threads (0 = one per hardware thread)
  std::string cache_dir;
  std::uint64_t seed = 2022;
  std::string placer = "trivial";
  std::string router = "trivial";
  std::string device = "surface17";

  // Which of the above were given explicitly (callers with different
  // defaults apply only what the user actually set).
  bool jobs_set = false;
  bool cache_dir_set = false;
  bool seed_set = false;
  bool placer_set = false;
  bool router_set = false;
  bool device_set = false;
};

/// The flag spellings consume_request_flag recognises.
const std::vector<std::string>& shared_request_flags();

enum class FlagParse {
  kNotMine,   ///< argv[i] is not a shared request flag; untouched
  kConsumed,  ///< consumed argv[i] (and its value; i advanced past both)
  kError,     ///< a shared flag with a missing or malformed value
};

/// Try to consume argv[i] as one of the shared request flags. On kConsumed,
/// `i` is left on the last argument consumed (the caller's `++i` moves on);
/// on kError, `error` describes the problem ("bad --jobs value '-3'").
FlagParse consume_request_flag(int argc, char** argv, int& i,
                               RequestFlagValues& out, std::string& error);

/// Lenient whole-argv scan: consume every shared request flag, ignore
/// everything else (positional arguments, tool-specific flags). The suite
/// benches call this once instead of hand-rolling their own loops. The only
/// error is a malformed value for a recognised flag.
qfs::Status parse_request_flags(int argc, char** argv, RequestFlagValues& out);

/// Classic dynamic-programming edit distance (small inputs only).
std::size_t edit_distance(std::string_view a, std::string_view b);

/// The candidate closest to `arg` within edit distance 3, or "" when
/// nothing is close enough to suggest.
std::string suggest_flag(std::string_view arg,
                         const std::vector<std::string>& candidates);

}  // namespace qfs::service
