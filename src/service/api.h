// The unified compile API: one request/response contract for every qfs
// entrypoint (qfsc, the suite benches, the qfsd daemon and its clients).
//
// A CompileRequest says everything a compilation depends on — circuit,
// device + calibration/fault overrides, pipeline, mapping options, seed,
// cache policy, deadline — and a CompileResponse carries the typed outcome:
// a stable wire error taxonomy (ErrorCode) mapped onto the qfsc exit-code
// contract, the MappingResult metrics, lint diagnostics, cache hit/miss,
// and a timing breakdown. Both have canonical JSON forms; the daemon speaks
// them line-delimited over a socket, and offline tools construct the same
// structs in memory, so "the daemon returns exactly what qfsc prints" is a
// testable byte-level contract (see tools/service_contract_test.cmake).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.h"
#include "circuit/circuit.h"
#include "device/device.h"
#include "mapper/pipeline.h"
#include "support/json.h"
#include "support/status.h"

namespace qfs::service {

// ---------------------------------------------------------------------------
// Wire error taxonomy.
//
// One enum shared by daemon JSON responses and qfsc exit codes. The first
// four non-ok codes are the frozen PR 2/PR 4 contract (exit 1 = unusable
// input or configuration, 2 = compilation failed, 3 = lint/verify errors);
// the service-only codes extend the sequence without disturbing it. Names
// are part of the wire format: never reuse or renumber.
// ---------------------------------------------------------------------------
enum class ErrorCode {
  kOk = 0,
  kInvalidRequest,     ///< bad envelope, option, device or calibration
  kParseError,         ///< the QASM source did not parse
  kCompileFailed,      ///< every mapping attempt failed / circuit too wide
  kLintError,          ///< error-severity diagnostics in lint/verify mode
  kDeadlineExceeded,   ///< the request's deadline expired before completion
  kResourceExhausted,  ///< admission queue full or request over size limits
  kInternal,           ///< a bug: anything that escaped the layers above
};

/// Stable wire name ("ok", "invalid_request", ...).
const char* error_code_name(ErrorCode code);

/// Inverse of error_code_name; false on an unknown name.
bool error_code_from_name(std::string_view name, ErrorCode& out);

/// The qfsc exit code for a response code: 0 ok, 1 invalid_request |
/// parse_error, 2 compile_failed, 3 lint_error (the frozen PR 2/PR 4
/// contract), then 4 deadline_exceeded, 5 resource_exhausted, 6 internal.
int exit_code_for(ErrorCode code);

/// What the service should do with the request's circuit.
enum class RequestMode {
  kCompile,  ///< full pipeline; metrics + artifacts in the response
  kLint,     ///< device-independent static checks only
  kVerify,   ///< physical-stage checks against the request's device
};

const char* request_mode_name(RequestMode mode);
bool request_mode_from_name(std::string_view name, RequestMode& out);

/// Cache behaviour for one request.
enum class CachePolicy {
  kDefault,  ///< read and write the service's shared cache (if any)
  kBypass,   ///< compile fresh; neither read nor write
};

const char* cache_policy_name(CachePolicy policy);
bool cache_policy_from_name(std::string_view name, CachePolicy& out);

// ---------------------------------------------------------------------------
// CompileRequest
// ---------------------------------------------------------------------------
struct CompileRequest {
  /// Opaque client token echoed in the response ("" = none).
  std::string id;

  RequestMode mode = RequestMode::kCompile;

  /// The circuit, exactly one of: inline QASM text, a server-readable path,
  /// or (in-process callers only; never on the wire) a pre-parsed circuit.
  std::string qasm;
  std::string qasm_path;
  const circuit::Circuit* circuit = nullptr;  ///< borrowed, not owned

  /// Name used in rendered diagnostics ("" = derived from qasm_path or
  /// "<request>").
  std::string source_name;

  /// Device spec ("surface17", "line:20", "file:topo.txt", ...), or an
  /// in-process device object that overrides it (borrowed, not owned).
  std::string device = "surface17";
  const device::Device* device_obj = nullptr;

  /// Calibration overrides: inline file text, or a server-readable path.
  std::string calibration;
  std::string calibration_path;

  /// Fault-injection spec (device/faults.h), "" = none.
  std::string fault_spec;

  /// Mapping pipeline configuration (placer, router, SABRE rounds, latency).
  mapper::MappingOptions options;

  /// "resilient" (fallback ladder, qfsc's default) or "direct" (single
  /// map_circuit attempt, the suite benches' path).
  std::string pipeline = "resilient";

  std::uint64_t seed = 2022;
  int max_attempts = 4;  ///< resilient-ladder length

  /// Replace placer/router with the profile-based recommendation.
  bool recommend = false;

  /// Schedule emitted timed programs with crosstalk exclusion.
  bool crosstalk_safe = false;

  // Which artifacts to include in the response (metrics always come back).
  bool emit_qasm = false;
  bool emit_cqasm = false;
  bool emit_timed = false;
  /// Compute the canonical digest of the mapped circuit (on by default; the
  /// suite benches switch it off to keep the hot loop lean).
  bool want_digest = true;

  /// Run the translation validator (analysis/equiv.h) over the compiled
  /// artifact before responding: a compile whose output fails QFS101-QFS110
  /// comes back as an internal error with the findings attached instead of
  /// an invalid mapping. qfsc exposes this as --verify-output; qfsd honors
  /// it on every wire request.
  bool verify_artifact = false;

  CachePolicy cache_policy = CachePolicy::kDefault;

  /// Wall-clock budget in milliseconds from admission. Negative = none;
  /// 0 = already expired (useful for testing the deadline path).
  double deadline_ms = -1.0;

  /// Retry generation: 0 for the first send, incremented by the retrying
  /// Client so the daemon can count retries observed server-side. Encoded
  /// on the wire only when non-zero.
  int attempt = 0;

  /// Chaos-injection directive for fault-tolerance testing: "" (none,
  /// the only value the service accepts), or "hang" | "crash" | "exit",
  /// honoured exclusively by chaos-enabled supervised workers
  /// (`qfsd --worker-procs N --enable-chaos`). Anything else, or any
  /// non-empty value on an unsupervised daemon, is an invalid_request.
  std::string chaos;
};

// ---------------------------------------------------------------------------
// CompileResponse
// ---------------------------------------------------------------------------
struct TimingBreakdown {
  double queue_ms = 0.0;    ///< admission -> dispatch (daemon only)
  double parse_ms = 0.0;    ///< QASM parse + device/calibration setup
  double compile_ms = 0.0;  ///< mapping pipeline (or cache hit) time
  double total_ms = 0.0;    ///< service-side wall clock for the request
};

struct CompileResponse {
  std::string id;  ///< echoed from the request

  ErrorCode code = ErrorCode::kOk;
  /// Human-readable failure detail; rendered by qfsc as "qfsc: <message>".
  std::string error_message;

  bool ok() const { return code == ErrorCode::kOk; }

  /// Compile-mode result (has_mapping false in lint/verify mode or on
  /// failure).
  bool has_mapping = false;
  mapper::MappingResult mapping;

  /// Name of the device actually compiled for (post fault injection).
  std::string device_name;
  std::string placer_used;
  std::string router_used;
  std::uint64_t seed_used = 0;

  /// Lint/verify findings (also populated on lint-mode parse errors, per
  /// the QFS100 contract).
  std::vector<analysis::Diagnostic> diagnostics;

  /// Side-channel notes qfsc renders on stderr, byte-compatible with the
  /// pre-service output: "surface-97-degraded ..." fault summaries,
  /// "placer=... router=... (...)" recommendation rationale, and the
  /// multi-line resilient attempt log.
  std::string fault_note;
  std::string recommend_note;
  std::string attempt_log;

  /// True when the mapping was served from the shared cache (memo hits in
  /// the resilient pipeline count too).
  bool cache_hit = false;

  TimingBreakdown timing;

  /// Requested artifacts ("" when not requested).
  std::string mapped_qasm;
  std::string mapped_cqasm;
  std::string timed_text;

  /// hash128 of the canonical QASM of the mapped circuit (32 hex chars);
  /// the cross-entrypoint byte-identity anchor.
  std::string mapped_digest;
};

// ---------------------------------------------------------------------------
// Canonical JSON (de)serialization.
// ---------------------------------------------------------------------------

/// Encode a request for the wire. In-process borrowed pointers (circuit,
/// device_obj) cannot travel: circuits are rendered to canonical QASM;
/// encoding a device_obj request is a contract violation.
JsonValue request_to_json(const CompileRequest& request);

/// Decode and validate a request object. Unknown fields are rejected with
/// a did-you-mean suggestion; so are wrong field types and out-of-range
/// values. The error message is safe to echo to untrusted clients.
qfs::StatusOr<CompileRequest> request_from_json(const JsonValue& json);

/// Parse one line-delimited wire request (JSON text -> validated request).
qfs::StatusOr<CompileRequest> parse_request_line(std::string_view line);

JsonValue response_to_json(const CompileResponse& response);

/// Decode a response (loadgen, tests). Fields the encoder omits for brevity
/// come back as their defaults; every encoded field round-trips exactly.
qfs::StatusOr<CompileResponse> response_from_json(const JsonValue& json);

/// The mapping-metrics document qfsc has always printed for --emit-json
/// (device, placer/router, gate/depth/fidelity/latency metrics, layouts),
/// plus the mapped-circuit digest. Shared verbatim by the daemon response
/// ("metrics" member) so offline and service output are byte-identical.
JsonValue mapping_metrics_json(const CompileResponse& response);

/// Error payload for a malformed wire line that never became a request.
JsonValue error_response_json(ErrorCode code, const std::string& message,
                              const std::string& id = "");

}  // namespace qfs::service
