#include "qasm/writer.h"

#include <sstream>

#include "support/strings.h"

namespace qfs::qasm {

using circuit::Gate;
using circuit::GateKind;

namespace {

std::string angle(double value) {
  // 12 significant decimals round-trips doubles well enough for angles.
  return qfs::format_double(value, 12);
}

void emit_operands(std::ostringstream& os, const Gate& g) {
  for (std::size_t i = 0; i < g.qubits.size(); ++i) {
    if (i) os << ',';
    os << "q[" << g.qubits[i] << ']';
  }
  os << ";\n";
}

void emit_gate(std::ostringstream& os, const Gate& g) {
  switch (g.kind) {
    case GateKind::kMeasure:
      os << "measure q[" << g.qubits[0] << "] -> c[" << g.qubits[0] << "];\n";
      return;
    case GateKind::kReset:
      os << "reset q[" << g.qubits[0] << "];\n";
      return;
    case GateKind::kBarrier:
      os << "barrier ";
      emit_operands(os, g);
      return;
    case GateKind::kPhase:
      // qelib1 calls the phase gate u1.
      os << "u1(" << angle(g.params[0]) << ") ";
      emit_operands(os, g);
      return;
    case GateKind::kCphase:
      os << "cu1(" << angle(g.params[0]) << ") ";
      emit_operands(os, g);
      return;
    case GateKind::kCcz: {
      // qelib1 has no ccz; emit the standard h-ccx-h conjugation.
      int t = g.qubits[2];
      os << "h q[" << t << "];\n";
      os << "ccx q[" << g.qubits[0] << "],q[" << g.qubits[1] << "],q[" << t
         << "];\n";
      os << "h q[" << t << "];\n";
      return;
    }
    default:
      break;
  }
  os << circuit::gate_name(g.kind);
  if (!g.params.empty()) {
    os << '(';
    for (std::size_t i = 0; i < g.params.size(); ++i) {
      if (i) os << ',';
      os << angle(g.params[i]);
    }
    os << ')';
  }
  os << ' ';
  emit_operands(os, g);
}

}  // namespace

std::string to_qasm(const circuit::Circuit& circuit) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  if (!circuit.name().empty()) os << "// circuit: " << circuit.name() << '\n';
  os << "qreg q[" << circuit.num_qubits() << "];\n";
  os << "creg c[" << circuit.num_qubits() << "];\n";
  for (const Gate& g : circuit.gates()) emit_gate(os, g);
  return os.str();
}

}  // namespace qfs::qasm
