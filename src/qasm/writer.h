// OpenQASM 2.0 emission for qfs circuits.
//
// Every gate kind in the qfs vocabulary maps to a qelib1 gate (or to the
// sxdg/ccz compositions emitted inline), so the output is consumable by
// other toolchains.
#pragma once

#include <string>

#include "circuit/circuit.h"

namespace qfs::qasm {

/// Render a full OpenQASM 2.0 program (header, qreg/creg, body).
std::string to_qasm(const circuit::Circuit& circuit);

}  // namespace qfs::qasm
