#include "qasm/cqasm_writer.h"

#include <sstream>

#include "support/strings.h"

namespace qfs::qasm {

using circuit::Gate;
using circuit::GateKind;

namespace {

/// cQASM 1.0 mnemonics; empty string means "decompose before emitting".
const char* cqasm_name(GateKind kind) {
  switch (kind) {
    case GateKind::kI: return "i";
    case GateKind::kX: return "x";
    case GateKind::kY: return "y";
    case GateKind::kZ: return "z";
    case GateKind::kH: return "h";
    case GateKind::kS: return "s";
    case GateKind::kSdg: return "sdag";
    case GateKind::kT: return "t";
    case GateKind::kTdg: return "tdag";
    case GateKind::kSx: return "x90";
    case GateKind::kSxdg: return "mx90";
    case GateKind::kRx: return "rx";
    case GateKind::kRy: return "ry";
    case GateKind::kRz: return "rz";
    case GateKind::kCx: return "cnot";
    case GateKind::kCz: return "cz";
    case GateKind::kCphase: return "cr";
    case GateKind::kSwap: return "swap";
    case GateKind::kCcx: return "toffoli";
    case GateKind::kMeasure: return "measure_z";
    case GateKind::kReset: return "prep_z";
    default: return "";
  }
}

/// One instruction body: "cnot q[0],q[1]" or "rx q[0],1.5708".
/// cQASM puts angle parameters after the operands.
void emit_instruction(std::ostringstream& os, GateKind kind,
                      const std::vector<int>& qubits,
                      const std::vector<double>& params) {
  const char* name = cqasm_name(kind);
  QFS_ASSERT_MSG(name[0] != '\0',
                 std::string("gate has no cQASM spelling: ") +
                     circuit::gate_name(kind) + " (decompose first)");
  os << name << ' ';
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    if (i) os << ',';
    os << "q[" << qubits[i] << ']';
  }
  for (double p : params) os << ',' << qfs::format_double(p, 6);
}

}  // namespace

std::string to_cqasm(const circuit::Circuit& circuit) {
  std::ostringstream os;
  os << "version 1.0\n";
  if (!circuit.name().empty()) os << "# circuit: " << circuit.name() << '\n';
  os << "qubits " << circuit.num_qubits() << "\n\n";
  os << "." << (circuit.name().empty() ? "kernel" : circuit.name()) << '\n';
  for (const Gate& g : circuit.gates()) {
    if (g.kind == GateKind::kBarrier) continue;  // structural only
    os << "    ";
    emit_instruction(os, g.kind, g.qubits, g.params);
    os << '\n';
  }
  return os.str();
}

std::string to_cqasm(const isa::TimedProgram& program) {
  std::ostringstream os;
  os << "version 1.0\n";
  if (!program.name().empty()) os << "# program: " << program.name() << '\n';
  os << "# cycle time: " << qfs::format_double(program.cycle_time_ns(), 1)
     << " ns\n";
  os << "qubits " << program.num_qubits() << "\n\n";
  os << "." << (program.name().empty() ? "kernel" : program.name()) << '\n';
  int cursor = 0;
  for (const auto& bundle : program.bundles()) {
    if (bundle.start_cycle > cursor) {
      os << "    wait " << (bundle.start_cycle - cursor) << '\n';
    }
    os << "    ";
    if (bundle.instructions.size() > 1) os << "{ ";
    for (std::size_t i = 0; i < bundle.instructions.size(); ++i) {
      const auto& ins = bundle.instructions[i];
      if (i) os << " | ";
      emit_instruction(os, ins.kind, ins.qubits, ins.params);
    }
    if (bundle.instructions.size() > 1) os << " }";
    os << '\n';
    // The next implicit issue point is one cycle after this bundle starts
    // (cQASM bundles advance the schedule by one cycle; longer durations
    // are covered by explicit waits).
    cursor = bundle.start_cycle + 1;
  }
  return os.str();
}

}  // namespace qfs::qasm
