// OpenQASM 2.0 parser.
//
// Supported: the OPENQASM/include headers, one qreg and one creg, the
// qelib1 gate names that map onto the qfs vocabulary (id x y z h s sdg t tdg
// sx sxdg rx ry rz p/u1 u3/u cx cy cz cp/cu1 swap ccx cswap), measure,
// reset, barrier, comments, angle expressions over + - * / ( ) pi and
// decimal literals, **user gate definitions** (`gate name(p) a,b { ... }`,
// expanded at invocation with parameter substitution, nested definitions
// allowed), and **register broadcast** (`h q;`, `measure q -> c;`,
// `cx q[0],q;`-style element-wise application).
//
// Unsupported constructs (if, opaque, multiple registers) produce a parse
// error that names the offending line.
#pragma once

#include <string>

#include "circuit/circuit.h"
#include "support/status.h"

namespace qfs::qasm {

/// Parse a full OpenQASM 2.0 program into a Circuit.
qfs::StatusOr<circuit::Circuit> parse(const std::string& source);

/// Evaluate a constant angle expression ("pi/2", "-3*pi/4", "0.25").
/// Exposed for direct testing.
qfs::StatusOr<double> evaluate_angle_expression(const std::string& expr);

}  // namespace qfs::qasm
