// cQASM 1.0 emission — the native format of the OpenQL toolchain the
// paper's experiments used. Supports plain circuits and timed programs
// (bundle notation with '|').
#pragma once

#include <string>

#include "circuit/circuit.h"
#include "isa/timed_program.h"

namespace qfs::qasm {

/// Render a circuit as a cQASM 1.0 program.
std::string to_cqasm(const circuit::Circuit& circuit);

/// Render a timed program: bundles become "{ a | b }" lines preceded by
/// explicit "wait" instructions covering idle gaps.
std::string to_cqasm(const isa::TimedProgram& program);

}  // namespace qfs::qasm
