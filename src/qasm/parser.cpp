#include "qasm/parser.h"

#include <cctype>
#include <cmath>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "support/strings.h"

namespace qfs::qasm {

using circuit::Circuit;
using circuit::GateKind;

namespace {

// ---- Angle expression evaluation (recursive descent) -----------------------

/// Optional binding environment: formal parameter name -> value.
using ParamEnv = std::map<std::string, double>;

class ExprParser {
 public:
  ExprParser(std::string_view text, const ParamEnv* env)
      : text_(text), env_(env) {}

  qfs::StatusOr<double> parse() {
    auto v = parse_sum();
    if (!v.is_ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) {
      return qfs::parse_error("trailing characters in expression: " +
                              std::string(text_));
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  qfs::StatusOr<double> parse_sum() {
    auto lhs = parse_product();
    if (!lhs.is_ok()) return lhs;
    double acc = lhs.value();
    while (true) {
      if (consume('+')) {
        auto rhs = parse_product();
        if (!rhs.is_ok()) return rhs;
        acc += rhs.value();
      } else if (consume('-')) {
        auto rhs = parse_product();
        if (!rhs.is_ok()) return rhs;
        acc -= rhs.value();
      } else {
        return acc;
      }
    }
  }

  qfs::StatusOr<double> parse_product() {
    auto lhs = parse_unary();
    if (!lhs.is_ok()) return lhs;
    double acc = lhs.value();
    while (true) {
      if (consume('*')) {
        auto rhs = parse_unary();
        if (!rhs.is_ok()) return rhs;
        acc *= rhs.value();
      } else if (consume('/')) {
        auto rhs = parse_unary();
        if (!rhs.is_ok()) return rhs;
        if (rhs.value() == 0.0) return qfs::parse_error("division by zero");
        acc /= rhs.value();
      } else {
        return acc;
      }
    }
  }

  qfs::StatusOr<double> parse_unary() {
    if (consume('-')) {
      auto v = parse_unary();
      if (!v.is_ok()) return v;
      return -v.value();
    }
    if (consume('+')) return parse_unary();
    return parse_atom();
  }

  qfs::StatusOr<double> parse_atom() {
    skip_ws();
    if (consume('(')) {
      auto v = parse_sum();
      if (!v.is_ok()) return v;
      if (!consume(')')) return qfs::parse_error("missing ')'");
      return v;
    }
    // Identifier: "pi" or a bound formal parameter.
    if (pos_ < text_.size() &&
        (std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
         text_[pos_] == '_')) {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      std::string name(text_.substr(start, pos_ - start));
      if (name == "pi") return M_PI;
      if (env_ != nullptr) {
        auto it = env_->find(name);
        if (it != env_->end()) return it->second;
      }
      return qfs::parse_error("unknown identifier '" + name +
                              "' in expression");
    }
    // Decimal literal.
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    if (pos_ == start) {
      return qfs::parse_error("expected number, 'pi' or parameter in: " +
                              std::string(text_));
    }
    double value = 0.0;
    if (!qfs::parse_double(text_.substr(start, pos_ - start), value)) {
      return qfs::parse_error("bad numeric literal in expression: " +
                              std::string(text_.substr(start, pos_ - start)));
    }
    return value;
  }

  std::string_view text_;
  const ParamEnv* env_;
  std::size_t pos_ = 0;
};

// ---- Statement parsing ------------------------------------------------------

const std::map<std::string, GateKind>& gate_table() {
  static const std::map<std::string, GateKind> table = {
      {"id", GateKind::kI},       {"x", GateKind::kX},
      {"y", GateKind::kY},        {"z", GateKind::kZ},
      {"h", GateKind::kH},        {"s", GateKind::kS},
      {"sdg", GateKind::kSdg},    {"t", GateKind::kT},
      {"tdg", GateKind::kTdg},    {"sx", GateKind::kSx},
      {"sxdg", GateKind::kSxdg},  {"rx", GateKind::kRx},
      {"ry", GateKind::kRy},      {"rz", GateKind::kRz},
      {"p", GateKind::kPhase},    {"u1", GateKind::kPhase},
      {"u3", GateKind::kU3},      {"u", GateKind::kU3},
      {"cx", GateKind::kCx},      {"cy", GateKind::kCy},
      {"cz", GateKind::kCz},      {"cp", GateKind::kCphase},
      {"cu1", GateKind::kCphase}, {"swap", GateKind::kSwap},
      {"ccx", GateKind::kCcx},    {"ccz", GateKind::kCcz},
      {"cswap", GateKind::kCswap},
  };
  return table;
}

// ---- QASMBench macro gates --------------------------------------------------
//
// Gates that appear in QASMBench-style circuits but have no dedicated
// GateKind. Each expands inline to its standard qelib1 network, so the rest
// of the stack (profiling, mapping, simulation) only ever sees core kinds.

struct MacroSignature {
  int params;
  int qubits;
};

const std::map<std::string, MacroSignature>& macro_table() {
  static const std::map<std::string, MacroSignature> table = {
      {"u2", {2, 1}},  {"rzz", {1, 2}}, {"rxx", {1, 2}},
      {"crz", {1, 2}}, {"cu3", {3, 2}}, {"ch", {0, 2}},
  };
  return table;
}

/// A user-defined gate (OPENQASM `gate` block).
struct GateDef {
  std::string name;
  std::vector<std::string> param_names;
  std::vector<std::string> qubit_names;
  std::vector<std::string> body;  ///< statements without trailing ';'
};

/// One declared quantum register: qubits [offset, offset + size) of the
/// flat circuit index space. Registers concatenate in declaration order.
struct QuantumReg {
  std::string name;
  int offset = 0;
  int size = 0;
};

struct ParserState {
  std::vector<QuantumReg> qregs;
  int total_qubits = 0;
  std::vector<std::string> creg_names;
  int total_clbits = 0;
  std::map<std::string, GateDef> gate_defs;
  std::vector<circuit::Gate> gates;

  const QuantumReg* find_qreg(std::string_view name) const {
    for (const auto& r : qregs) {
      if (r.name == name) return &r;
    }
    return nullptr;
  }
};

/// Expand one instance of a QASMBench macro gate (see macro_table) into the
/// standard qelib1 network over core GateKinds.
void emit_macro(const std::string& name, const std::vector<double>& p,
                const std::vector<int>& q, ParserState& state) {
  auto add = [&state](GateKind kind, std::vector<int> qubits,
                      std::vector<double> params = {}) {
    state.gates.push_back(
        circuit::make_gate(kind, std::move(qubits), std::move(params)));
  };
  if (name == "u2") {
    // u2(phi, lambda) = u3(pi/2, phi, lambda).
    add(GateKind::kU3, {q[0]}, {M_PI / 2.0, p[0], p[1]});
  } else if (name == "rzz") {
    add(GateKind::kCx, {q[0], q[1]});
    add(GateKind::kRz, {q[1]}, {p[0]});
    add(GateKind::kCx, {q[0], q[1]});
  } else if (name == "rxx") {
    // Conjugate rzz by Hadamards on both qubits.
    add(GateKind::kH, {q[0]});
    add(GateKind::kH, {q[1]});
    add(GateKind::kCx, {q[0], q[1]});
    add(GateKind::kRz, {q[1]}, {p[0]});
    add(GateKind::kCx, {q[0], q[1]});
    add(GateKind::kH, {q[0]});
    add(GateKind::kH, {q[1]});
  } else if (name == "crz") {
    add(GateKind::kRz, {q[1]}, {p[0] / 2.0});
    add(GateKind::kCx, {q[0], q[1]});
    add(GateKind::kRz, {q[1]}, {-p[0] / 2.0});
    add(GateKind::kCx, {q[0], q[1]});
  } else if (name == "cu3") {
    // cu3(theta, phi, lambda) c, t — qelib1's controlled-U decomposition.
    const double theta = p[0], phi = p[1], lambda = p[2];
    add(GateKind::kPhase, {q[0]}, {(lambda + phi) / 2.0});
    add(GateKind::kPhase, {q[1]}, {(lambda - phi) / 2.0});
    add(GateKind::kCx, {q[0], q[1]});
    add(GateKind::kU3, {q[1]}, {-theta / 2.0, 0.0, -(phi + lambda) / 2.0});
    add(GateKind::kCx, {q[0], q[1]});
    add(GateKind::kU3, {q[1]}, {theta / 2.0, phi, 0.0});
  } else if (name == "ch") {
    // qelib1: gate ch a,b { h b; sdg b; cx a,b; h b; t b; cx a,b;
    //                       t b; h b; s b; x b; s a; }
    add(GateKind::kH, {q[1]});
    add(GateKind::kSdg, {q[1]});
    add(GateKind::kCx, {q[0], q[1]});
    add(GateKind::kH, {q[1]});
    add(GateKind::kT, {q[1]});
    add(GateKind::kCx, {q[0], q[1]});
    add(GateKind::kT, {q[1]});
    add(GateKind::kH, {q[1]});
    add(GateKind::kS, {q[1]});
    add(GateKind::kX, {q[1]});
    add(GateKind::kS, {q[0]});
  } else {
    QFS_ASSERT_MSG(false, "emit_macro: unknown macro '" + name + "'");
  }
}

/// Qubit binding environment inside a gate-definition body: formal qubit
/// name -> concrete physical index.
using QubitEnv = std::map<std::string, int>;

qfs::Status error_at(int line_no, const std::string& message) {
  std::ostringstream os;
  os << "line " << line_no << ": " << message;
  return qfs::parse_error(os.str());
}

/// Parse an operand token into one or more qubit indices.
/// Outside a body: "q[3]" (one qubit) or bare "q" (broadcast over the
/// register). Inside a body (env != nullptr): a formal qubit name.
qfs::StatusOr<std::vector<int>> parse_operand(std::string_view token,
                                              const ParserState& state,
                                              const QubitEnv* env,
                                              int line_no) {
  token = trim(token);
  if (env != nullptr) {
    auto it = env->find(std::string(token));
    if (it == env->end()) {
      return error_at(line_no, "unknown qubit '" + std::string(token) +
                                   "' in gate body");
    }
    return std::vector<int>{it->second};
  }
  auto open = token.find('[');
  if (open == std::string_view::npos) {
    // Broadcast: the whole register.
    std::string name(trim(token));
    const QuantumReg* reg = state.find_qreg(name);
    if (reg == nullptr) {
      return error_at(line_no, "unknown quantum register '" + name + "'");
    }
    std::vector<int> all;
    for (int q = 0; q < reg->size; ++q) all.push_back(reg->offset + q);
    return all;
  }
  auto close = token.find(']');
  if (close == std::string_view::npos || close < open) {
    return error_at(line_no, "malformed operand '" + std::string(token) + "'");
  }
  std::string name(trim(token.substr(0, open)));
  const QuantumReg* reg = state.find_qreg(name);
  if (reg == nullptr) {
    return error_at(line_no, "unknown quantum register '" + name + "'");
  }
  int index = 0;
  if (!qfs::parse_int(token.substr(open + 1, close - open - 1), index)) {
    return error_at(line_no, "bad qubit index in '" + std::string(token) + "'");
  }
  if (index < 0 || index >= reg->size) {
    return error_at(line_no, "qubit index out of range");
  }
  return std::vector<int>{reg->offset + index};
}

/// Parse a comma-separated operand list. Each element is a vector to allow
/// register broadcast; broadcast elements must agree in length.
qfs::StatusOr<std::vector<std::vector<int>>> parse_operand_list(
    std::string_view text, const ParserState& state, const QubitEnv* env,
    int line_no) {
  std::vector<std::vector<int>> operands;
  for (const std::string& tok : qfs::split(text, ',')) {
    auto q = parse_operand(trim(tok), state, env, line_no);
    if (!q.is_ok()) return q.status();
    operands.push_back(q.value());
  }
  return operands;
}

/// Broadcast width of an operand list: all multi-element operands must
/// share one length; single-element operands repeat.
qfs::StatusOr<int> broadcast_width(const std::vector<std::vector<int>>& ops,
                                   int line_no) {
  int width = 1;
  for (const auto& op : ops) {
    if (static_cast<int>(op.size()) == 1) continue;
    if (width == 1) {
      width = static_cast<int>(op.size());
    } else if (width != static_cast<int>(op.size())) {
      return error_at(line_no, "mismatched register broadcast widths");
    }
  }
  return width;
}

qfs::Status emit_broadcast(GateKind kind, const std::vector<std::vector<int>>& ops,
                           std::vector<double> params, ParserState& state,
                           int line_no) {
  auto width = broadcast_width(ops, line_no);
  if (!width.is_ok()) return width.status();
  for (int i = 0; i < width.value(); ++i) {
    std::vector<int> qubits;
    for (const auto& op : ops) {
      qubits.push_back(op.size() == 1 ? op[0] : op[static_cast<std::size_t>(i)]);
    }
    std::vector<bool> seen(static_cast<std::size_t>(state.total_qubits), false);
    for (int q : qubits) {
      if (seen[static_cast<std::size_t>(q)]) {
        return error_at(line_no, "repeated qubit operand");
      }
      seen[static_cast<std::size_t>(q)] = true;
    }
    if (static_cast<int>(qubits.size()) != circuit::gate_arity(kind)) {
      return error_at(line_no, std::string("wrong operand count for ") +
                                   circuit::gate_name(kind));
    }
    state.gates.push_back(circuit::make_gate(kind, std::move(qubits), params));
  }
  return qfs::Status::ok();
}

constexpr int kMaxGateExpansionDepth = 32;

qfs::Status parse_statement(std::string_view stmt, ParserState& state,
                            int line_no, const ParamEnv* param_env,
                            const QubitEnv* qubit_env, int depth);

/// Expand one invocation of a user-defined gate.
qfs::Status expand_custom_gate(const GateDef& def,
                               const std::vector<double>& params,
                               const std::vector<int>& qubits,
                               ParserState& state, int line_no, int depth) {
  if (depth > kMaxGateExpansionDepth) {
    return error_at(line_no, "gate expansion too deep (recursive definition?)");
  }
  QFS_ASSERT(params.size() == def.param_names.size());
  QFS_ASSERT(qubits.size() == def.qubit_names.size());
  ParamEnv env;
  for (std::size_t i = 0; i < params.size(); ++i) {
    env[def.param_names[i]] = params[i];
  }
  QubitEnv qenv;
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    qenv[def.qubit_names[i]] = qubits[static_cast<std::size_t>(i)];
  }
  for (const std::string& body_stmt : def.body) {
    auto status =
        parse_statement(body_stmt, state, line_no, &env, &qenv, depth + 1);
    if (!status.is_ok()) return status;
  }
  return qfs::Status::ok();
}

qfs::Status parse_statement(std::string_view stmt, ParserState& state,
                            int line_no, const ParamEnv* param_env,
                            const QubitEnv* qubit_env, int depth) {
  stmt = trim(stmt);
  if (stmt.empty()) return qfs::Status::ok();
  const bool in_body = qubit_env != nullptr;

  if (!in_body &&
      (starts_with(stmt, "OPENQASM") || starts_with(stmt, "include"))) {
    return qfs::Status::ok();
  }

  if (!in_body && (starts_with(stmt, "qreg") || starts_with(stmt, "creg"))) {
    bool quantum = starts_with(stmt, "qreg");
    auto rest = trim(stmt.substr(4));
    auto open = rest.find('[');
    auto close = rest.find(']');
    if (open == std::string_view::npos || close == std::string_view::npos) {
      return error_at(line_no, "malformed register declaration");
    }
    std::string name(trim(rest.substr(0, open)));
    int size = 0;
    if (!qfs::parse_int(rest.substr(open + 1, close - open - 1), size) ||
        size <= 0) {
      return error_at(line_no, "bad register size");
    }
    if (quantum) {
      if (state.find_qreg(name) != nullptr) {
        return error_at(line_no, "duplicate quantum register '" + name + "'");
      }
      state.qregs.push_back({name, state.total_qubits, size});
      state.total_qubits += size;
    } else {
      for (const auto& existing : state.creg_names) {
        if (existing == name) {
          return error_at(line_no,
                          "duplicate classical register '" + name + "'");
        }
      }
      state.creg_names.push_back(name);
      state.total_clbits += size;
    }
    return qfs::Status::ok();
  }

  if (state.qregs.empty()) {
    return error_at(line_no, "gate statement before qreg declaration");
  }

  if (!in_body && starts_with(stmt, "measure")) {
    auto arrow = stmt.find("->");
    if (arrow == std::string_view::npos) {
      return error_at(line_no, "measure without '->'");
    }
    auto q = parse_operand(trim(stmt.substr(7, arrow - 7)), state, nullptr,
                           line_no);
    if (!q.is_ok()) return q.status();
    for (int qubit : q.value()) {
      state.gates.push_back(circuit::make_gate(GateKind::kMeasure, {qubit}));
    }
    return qfs::Status::ok();
  }

  if (!in_body && starts_with(stmt, "reset")) {
    auto q = parse_operand(trim(stmt.substr(5)), state, nullptr, line_no);
    if (!q.is_ok()) return q.status();
    for (int qubit : q.value()) {
      state.gates.push_back(circuit::make_gate(GateKind::kReset, {qubit}));
    }
    return qfs::Status::ok();
  }

  if (starts_with(stmt, "barrier")) {
    auto ops = parse_operand_list(trim(stmt.substr(7)), state, qubit_env,
                                  line_no);
    if (!ops.is_ok()) return ops.status();
    std::vector<int> qubits;
    for (const auto& op : ops.value()) {
      qubits.insert(qubits.end(), op.begin(), op.end());
    }
    state.gates.push_back(circuit::make_gate(GateKind::kBarrier, qubits));
    return qfs::Status::ok();
  }

  // Generic gate: name[(params)] operands
  std::size_t name_end = 0;
  while (name_end < stmt.size() &&
         (std::isalnum(static_cast<unsigned char>(stmt[name_end])) ||
          stmt[name_end] == '_')) {
    ++name_end;
  }
  std::string name = to_lower(stmt.substr(0, name_end));

  std::string_view rest = trim(stmt.substr(name_end));
  std::vector<double> params;
  if (!rest.empty() && rest.front() == '(') {
    auto close = rest.find(')');
    if (close == std::string_view::npos) {
      return error_at(line_no, "missing ')' in gate parameters");
    }
    for (const std::string& p : qfs::split(rest.substr(1, close - 1), ',')) {
      auto v = ExprParser(trim(p), param_env).parse();
      if (!v.is_ok()) return error_at(line_no, v.status().message());
      params.push_back(v.value());
    }
    rest = trim(rest.substr(close + 1));
  }

  auto ops = parse_operand_list(rest, state, qubit_env, line_no);
  if (!ops.is_ok()) return ops.status();

  auto builtin = gate_table().find(name);
  if (builtin != gate_table().end()) {
    GateKind kind = builtin->second;
    if (static_cast<int>(params.size()) != circuit::gate_param_count(kind)) {
      return error_at(line_no, "wrong parameter count for gate '" + name + "'");
    }
    return emit_broadcast(kind, ops.value(), std::move(params), state, line_no);
  }

  auto macro = macro_table().find(name);
  if (macro != macro_table().end()) {
    if (static_cast<int>(params.size()) != macro->second.params) {
      return error_at(line_no, "wrong parameter count for gate '" + name + "'");
    }
    if (static_cast<int>(ops.value().size()) != macro->second.qubits) {
      return error_at(line_no, "wrong operand count for gate '" + name + "'");
    }
    auto width = broadcast_width(ops.value(), line_no);
    if (!width.is_ok()) return width.status();
    for (int i = 0; i < width.value(); ++i) {
      std::vector<int> qubits;
      for (const auto& op : ops.value()) {
        qubits.push_back(op.size() == 1 ? op[0]
                                        : op[static_cast<std::size_t>(i)]);
      }
      std::vector<bool> seen(static_cast<std::size_t>(state.total_qubits),
                             false);
      for (int q : qubits) {
        if (seen[static_cast<std::size_t>(q)]) {
          return error_at(line_no, "repeated qubit operand");
        }
        seen[static_cast<std::size_t>(q)] = true;
      }
      emit_macro(name, params, qubits, state);
    }
    return qfs::Status::ok();
  }

  auto custom = state.gate_defs.find(name);
  if (custom == state.gate_defs.end()) {
    return error_at(line_no, "unsupported statement or gate '" + name + "'");
  }
  const GateDef& def = custom->second;
  if (params.size() != def.param_names.size()) {
    return error_at(line_no, "wrong parameter count for gate '" + name + "'");
  }
  if (ops.value().size() != def.qubit_names.size()) {
    return error_at(line_no, "wrong operand count for gate '" + name + "'");
  }
  auto width = broadcast_width(ops.value(), line_no);
  if (!width.is_ok()) return width.status();
  for (int i = 0; i < width.value(); ++i) {
    std::vector<int> qubits;
    for (const auto& op : ops.value()) {
      qubits.push_back(op.size() == 1 ? op[0] : op[static_cast<std::size_t>(i)]);
    }
    auto status = expand_custom_gate(def, params, qubits, state, line_no, depth);
    if (!status.is_ok()) return status;
  }
  return qfs::Status::ok();
}

/// Parse a full "gate NAME(params) qubits { body }" definition.
qfs::Status parse_gate_definition(std::string_view text, ParserState& state,
                                  int line_no) {
  // Strip the leading "gate".
  auto rest = trim(text.substr(4));
  auto brace = rest.find('{');
  if (brace == std::string_view::npos) {
    return error_at(line_no, "gate definition without '{'");
  }
  auto header = trim(rest.substr(0, brace));
  auto body_text = rest.substr(brace + 1);
  auto close = body_text.rfind('}');
  if (close == std::string_view::npos) {
    return error_at(line_no, "gate definition without '}'");
  }
  body_text = body_text.substr(0, close);

  GateDef def;
  // Header: NAME [(p1, p2)] q1, q2.
  std::size_t name_end = 0;
  while (name_end < header.size() &&
         (std::isalnum(static_cast<unsigned char>(header[name_end])) ||
          header[name_end] == '_')) {
    ++name_end;
  }
  def.name = to_lower(header.substr(0, name_end));
  if (def.name.empty()) return error_at(line_no, "gate definition needs a name");
  if (gate_table().count(def.name) || macro_table().count(def.name) ||
      state.gate_defs.count(def.name)) {
    return error_at(line_no, "gate '" + def.name + "' is already defined");
  }
  auto header_rest = trim(header.substr(name_end));
  if (!header_rest.empty() && header_rest.front() == '(') {
    auto pclose = header_rest.find(')');
    if (pclose == std::string_view::npos) {
      return error_at(line_no, "missing ')' in gate definition parameters");
    }
    for (const std::string& p :
         qfs::split(header_rest.substr(1, pclose - 1), ',')) {
      std::string pname(trim(p));
      if (pname.empty()) return error_at(line_no, "empty parameter name");
      def.param_names.push_back(pname);
    }
    header_rest = trim(header_rest.substr(pclose + 1));
  }
  for (const std::string& q : qfs::split(header_rest, ',')) {
    std::string qname(trim(q));
    if (qname.empty()) return error_at(line_no, "empty qubit name in gate def");
    def.qubit_names.push_back(qname);
  }
  if (def.qubit_names.empty()) {
    return error_at(line_no, "gate definition needs at least one qubit");
  }

  for (const std::string& s : qfs::split(body_text, ';')) {
    std::string body_stmt(trim(s));
    if (!body_stmt.empty()) def.body.push_back(body_stmt);
  }
  state.gate_defs[def.name] = std::move(def);
  return qfs::Status::ok();
}

}  // namespace

qfs::StatusOr<double> evaluate_angle_expression(const std::string& expr) {
  return ExprParser(expr, nullptr).parse();
}

qfs::StatusOr<Circuit> parse(const std::string& source) {
  ParserState state;
  int line_no = 0;
  std::istringstream in(source);
  std::string line;
  std::string pending;  // statements may span lines until ';' (or '}' for
                        // gate definitions)
  auto flush = [&state, &pending, &line_no]() -> qfs::Status {
    while (true) {
      std::string_view trimmed = trim(pending);
      if (trimmed.empty()) {
        pending.clear();
        return qfs::Status::ok();
      }
      if (starts_with(trimmed, "gate ") || trimmed == "gate") {
        auto brace_close = pending.find('}');
        if (brace_close == std::string::npos) return qfs::Status::ok();
        auto status = parse_gate_definition(
            trim(pending.substr(0, brace_close + 1)), state, line_no);
        if (!status.is_ok()) return status;
        pending = pending.substr(brace_close + 1);
        continue;
      }
      auto semi = pending.find(';');
      if (semi == std::string::npos) return qfs::Status::ok();
      auto status = parse_statement(pending.substr(0, semi), state, line_no,
                                    nullptr, nullptr, 0);
      if (!status.is_ok()) return status;
      pending = pending.substr(semi + 1);
    }
  };

  std::string circuit_name;
  while (std::getline(in, line)) {
    ++line_no;
    auto comment = line.find("//");
    if (comment != std::string::npos) {
      // The writer records the circuit name as "// circuit: <name>";
      // recover it so print->parse->print is a fixed point (first wins).
      std::string_view text = trim(std::string_view(line).substr(comment + 2));
      if (starts_with(text, "circuit:") && circuit_name.empty()) {
        circuit_name = std::string(trim(text.substr(8)));
      }
      line = line.substr(0, comment);
    }
    pending += line;
    pending += '\n';
    auto status = flush();
    if (!status.is_ok()) return status;
  }
  if (!trim(pending).empty()) {
    return error_at(line_no, "unterminated statement at end of input");
  }
  if (state.qregs.empty()) {
    return qfs::parse_error("no qreg declaration found");
  }
  Circuit circuit(state.total_qubits, std::move(circuit_name));
  for (auto& g : state.gates) circuit.add(std::move(g));
  return circuit;
}

}  // namespace qfs::qasm
