// Translation validation: prove, without simulation, that a compiled
// artifact still computes its source circuit.
//
// The validator symbolically tracks the logical->physical qubit permutation
// through the initial layout and every SWAP the router inserted, and checks
// that each physical gate realizes exactly one source gate (in dependency-
// respecting per-qubit order, with decomposition-aware matching for gates
// lowered by compiler/decompose), that every gate is native and every
// two-qubit gate lands on a live coupler, that an optional timed program
// respects per-qubit order and durations, and that the final/measurement
// remapping equals the accumulated permutation.
//
// Violations surface as stable diagnostics QFS101-QFS110 (see checkers.h
// for the registry) through the ordinary Diagnostic renderers, so qfsc,
// qfsd and the tests all print them the same way.
#pragma once

#include <vector>

#include "analysis/diagnostic.h"
#include "circuit/circuit.h"
#include "device/device.h"
#include "isa/timed_program.h"

namespace qfs::analysis {

/// Borrowed view of one compiled artifact. Deliberately built from primitive
/// fields rather than mapper::MappingResult so this library never depends on
/// the mapper (which itself links the analysis library for per-attempt
/// validation); callers copy the four fields out of their result type.
struct TranslationArtifact {
  /// The final physical circuit (required; borrowed, not owned).
  const circuit::Circuit* mapped = nullptr;

  /// Virtual -> physical maps over the source circuit's qubits.
  std::vector<int> initial_layout;
  std::vector<int> final_layout;

  /// Router-reported SWAP count; negative skips the QFS109 cross-check.
  int swaps_inserted = -1;

  /// Optional scheduled form of `mapped` (borrowed); enables QFS108.
  const isa::TimedProgram* timed = nullptr;
};

struct EquivOptions {
  /// Stop after this many findings (a broken artifact tends to cascade).
  int max_diagnostics = 8;
};

/// Validate that `artifact` is a faithful translation of `source` for
/// `device`. Returns an empty vector when the artifact checks out; findings
/// come back ordered by mapped-gate index where that is meaningful. Never
/// asserts on malformed artifacts — every defect becomes a diagnostic.
std::vector<Diagnostic> validate_translation(
    const circuit::Circuit& source, const device::Device& device,
    const TranslationArtifact& artifact, const EquivOptions& options = {});

/// True when validate_translation reports no error-severity findings.
bool translation_is_valid(const circuit::Circuit& source,
                          const device::Device& device,
                          const TranslationArtifact& artifact,
                          const EquivOptions& options = {});

}  // namespace qfs::analysis
