#include "analysis/diagnostic.h"

#include <sstream>

namespace qfs::analysis {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

bool severity_from_name(const std::string& name, Severity& out) {
  if (name == "note") {
    out = Severity::kNote;
  } else if (name == "warning") {
    out = Severity::kWarning;
  } else if (name == "error") {
    out = Severity::kError;
  } else {
    return false;
  }
  return true;
}

std::string diagnostic_to_string(const Diagnostic& d,
                                 const std::string& source) {
  std::ostringstream os;
  if (!source.empty()) os << source << ": ";
  if (d.location.line >= 0) {
    os << "line " << d.location.line << ": ";
  } else if (d.location.gate_index >= 0) {
    os << "gate " << d.location.gate_index << ": ";
  }
  os << severity_name(d.severity) << '[' << d.code << "]: " << d.message;
  return os.str();
}

std::string render_diagnostics(const std::vector<Diagnostic>& diags,
                               const std::string& source) {
  std::ostringstream os;
  for (const Diagnostic& d : diags) {
    os << diagnostic_to_string(d, source) << '\n';
  }
  return os.str();
}

JsonValue diagnostics_to_json(const std::vector<Diagnostic>& diags) {
  JsonValue arr = JsonValue::array();
  for (const Diagnostic& d : diags) {
    JsonValue obj = JsonValue::object();
    obj.set("code", JsonValue::string(d.code))
        .set("severity", JsonValue::string(severity_name(d.severity)))
        .set("message", JsonValue::string(d.message));
    if (d.location.line >= 0) {
      obj.set("line", JsonValue::integer(d.location.line));
    }
    if (d.location.gate_index >= 0) {
      obj.set("gate", JsonValue::integer(d.location.gate_index));
    }
    if (d.location.qubit >= 0) {
      obj.set("qubit", JsonValue::integer(d.location.qubit));
    }
    arr.push_back(std::move(obj));
  }
  return arr;
}

qfs::StatusOr<std::vector<Diagnostic>> diagnostics_from_json(
    const JsonValue& json) {
  if (!json.is_array()) {
    return qfs::parse_error("diagnostics: expected a JSON array");
  }
  std::vector<Diagnostic> out;
  out.reserve(json.size());
  for (std::size_t i = 0; i < json.size(); ++i) {
    const JsonValue& obj = json.at(i);
    if (!obj.is_object()) {
      return qfs::parse_error("diagnostics: entry " + std::to_string(i) +
                              " is not an object");
    }
    Diagnostic d;
    const JsonValue* code = obj.find("code");
    const JsonValue* severity = obj.find("severity");
    const JsonValue* message = obj.find("message");
    if (code == nullptr || !code->is_string() || severity == nullptr ||
        !severity->is_string() || message == nullptr ||
        !message->is_string()) {
      return qfs::parse_error("diagnostics: entry " + std::to_string(i) +
                              " missing code/severity/message strings");
    }
    d.code = code->as_string();
    d.message = message->as_string();
    if (!severity_from_name(severity->as_string(), d.severity)) {
      return qfs::parse_error("diagnostics: unknown severity \"" +
                              severity->as_string() + "\"");
    }
    auto read_location = [&obj](const char* key, int& field) -> bool {
      const JsonValue* v = obj.find(key);
      if (v == nullptr) return true;
      if (!v->is_integer()) return false;
      field = static_cast<int>(v->as_integer());
      return true;
    };
    if (!read_location("line", d.location.line) ||
        !read_location("gate", d.location.gate_index) ||
        !read_location("qubit", d.location.qubit)) {
      return qfs::parse_error("diagnostics: non-integer location field");
    }
    out.push_back(std::move(d));
  }
  return out;
}

int count_errors(const std::vector<Diagnostic>& diags) {
  int n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

int count_warnings(const std::vector<Diagnostic>& diags) {
  int n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kWarning) ++n;
  }
  return n;
}

std::string diagnostic_summary(const std::vector<Diagnostic>& diags) {
  int errors = count_errors(diags);
  int warnings = count_warnings(diags);
  std::ostringstream os;
  os << errors << (errors == 1 ? " error, " : " errors, ") << warnings
     << (warnings == 1 ? " warning" : " warnings");
  return os.str();
}

}  // namespace qfs::analysis
