#include "analysis/equiv.h"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <sstream>
#include <vector>

#include "compiler/decompose.h"

namespace qfs::analysis {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using device::Device;

namespace {

Diagnostic make_diag(const char* code, std::string message,
                     SourceLocation loc = {}) {
  Diagnostic d;
  d.code = code;
  d.severity = Severity::kError;
  d.message = std::move(message);
  d.location = loc;
  return d;
}

/// Minimal physical<->virtual permutation tracker, mirroring
/// mapper::Layout::from_partial / apply_swap exactly (reimplemented here so
/// the analysis library does not depend on the mapper). Padding virtual ids
/// (>= the source width) fill the free physical qubits in ascending order;
/// which padding id sits where never affects validation, only the >= width
/// test does.
struct Perm {
  std::vector<int> v2p;
  std::vector<int> p2v;

  static Perm from_partial(const std::vector<int>& virtual_to_physical,
                           int num_physical) {
    Perm p;
    p.v2p.assign(static_cast<std::size_t>(num_physical), -1);
    p.p2v.assign(static_cast<std::size_t>(num_physical), -1);
    for (std::size_t v = 0; v < virtual_to_physical.size(); ++v) {
      int phys = virtual_to_physical[v];
      p.v2p[v] = phys;
      p.p2v[static_cast<std::size_t>(phys)] = static_cast<int>(v);
    }
    int next_virtual = static_cast<int>(virtual_to_physical.size());
    for (int phys = 0; phys < num_physical; ++phys) {
      if (p.p2v[static_cast<std::size_t>(phys)] == -1) {
        p.p2v[static_cast<std::size_t>(phys)] = next_virtual;
        p.v2p[static_cast<std::size_t>(next_virtual)] = phys;
        ++next_virtual;
      }
    }
    return p;
  }

  void apply_swap(int pa, int pb) {
    int va = p2v[static_cast<std::size_t>(pa)];
    int vb = p2v[static_cast<std::size_t>(pb)];
    std::swap(p2v[static_cast<std::size_t>(pa)],
              p2v[static_cast<std::size_t>(pb)]);
    v2p[static_cast<std::size_t>(va)] = pb;
    v2p[static_cast<std::size_t>(vb)] = pa;
  }
};

std::string gate_text(const Gate& g) { return circuit::gate_to_string(g); }

/// Structural sanity of the artifact itself (QFS101). Matching is
/// meaningless when these fail, so the caller bails out early.
void check_structure(const Circuit& source, const Device& device,
                     const TranslationArtifact& artifact,
                     std::vector<Diagnostic>& out) {
  const int np = device.num_qubits();
  const int nv = source.num_qubits();
  if (nv > np) {
    std::ostringstream os;
    os << "source circuit uses " << nv << " qubits but device '"
       << device.name() << "' has only " << np;
    out.push_back(make_diag("QFS101", os.str()));
    return;
  }
  if (artifact.mapped->num_qubits() > np) {
    std::ostringstream os;
    os << "mapped circuit declares " << artifact.mapped->num_qubits()
       << " qubits but device '" << device.name() << "' has only " << np;
    out.push_back(make_diag("QFS101", os.str()));
    return;
  }
  auto check_layout = [&](const char* label, const std::vector<int>& layout) {
    if (static_cast<int>(layout.size()) != nv) {
      std::ostringstream os;
      os << label << " has " << layout.size() << " entries for a " << nv
         << "-qubit source circuit";
      out.push_back(make_diag("QFS101", os.str()));
      return;
    }
    std::vector<bool> taken(static_cast<std::size_t>(np), false);
    for (int v = 0; v < nv; ++v) {
      int p = layout[static_cast<std::size_t>(v)];
      if (p < 0 || p >= np) {
        std::ostringstream os;
        os << label << " maps virtual qubit " << v << " to physical " << p
           << ", outside device '" << device.name() << "'";
        out.push_back(make_diag("QFS101", os.str(), SourceLocation{-1, -1, v}));
        return;
      }
      if (taken[static_cast<std::size_t>(p)]) {
        std::ostringstream os;
        os << label << " maps two virtual qubits to physical " << p;
        out.push_back(make_diag("QFS101", os.str(), SourceLocation{-1, -1, v}));
        return;
      }
      taken[static_cast<std::size_t>(p)] = true;
    }
  };
  check_layout("initial layout", artifact.initial_layout);
  check_layout("final layout", artifact.final_layout);
}

/// QFS105/QFS106: every gate native, every multi-qubit unitary on a live
/// coupler. Independent of the matching walk so a corrupted permutation
/// cannot mask a dead-coupler gate.
void check_physical_legality(const Device& device, const Circuit& mapped,
                             std::vector<Diagnostic>& out, int budget) {
  const auto& topo = device.topology();
  const auto& gateset = device.gateset();
  for (int i = 0; i < static_cast<int>(mapped.gates().size()); ++i) {
    if (static_cast<int>(out.size()) >= budget) return;
    const Gate& g = mapped.gates()[static_cast<std::size_t>(i)];
    if (!gateset.supports(g.kind)) {
      std::ostringstream os;
      os << "mapped gate " << i << " '" << circuit::gate_name(g.kind)
         << "' is not native to gate set '" << gateset.name() << "'";
      out.push_back(make_diag("QFS106", os.str(), SourceLocation{-1, i, -1}));
    }
    if (!circuit::is_unitary(g.kind) || g.qubits.size() < 2) continue;
    for (std::size_t a = 0; a < g.qubits.size(); ++a) {
      for (std::size_t b = a + 1; b < g.qubits.size(); ++b) {
        if (topo.adjacent(g.qubits[a], g.qubits[b])) continue;
        std::ostringstream os;
        os << "mapped gate " << i << " '" << gate_text(g)
           << "' couples physical qubits " << g.qubits[a] << " and "
           << g.qubits[b] << ", which share no live coupler on device '"
           << device.name() << "'";
        out.push_back(
            make_diag("QFS105", os.str(), SourceLocation{-1, i, g.qubits[a]}));
      }
    }
  }
}

/// The matching engine: reference stream + per-qubit FIFO cursors + the
/// tracked permutation.
class Matcher {
 public:
  Matcher(const Circuit& source, const Device& device,
          const TranslationArtifact& artifact)
      : device_(device),
        mapped_(*artifact.mapped),
        num_virtual_(source.num_qubits()),
        reference_(
            compiler::decompose_to_gateset(source, device.gateset())),
        perm_(Perm::from_partial(artifact.initial_layout,
                                 device.num_qubits())) {
    queues_.resize(static_cast<std::size_t>(num_virtual_));
    heads_.assign(static_cast<std::size_t>(num_virtual_), 0);
    const auto& gates = reference_.gates();
    for (int i = 0; i < static_cast<int>(gates.size()); ++i) {
      for (int q : gates[static_cast<std::size_t>(i)].qubits) {
        queues_[static_cast<std::size_t>(q)].push_back(i);
      }
    }
    if (!device_.gateset().supports(GateKind::kCx) &&
        !device_.gateset().supports(GateKind::kRy) &&
        device_.num_qubits() >= 2) {
      // Probe template for the generic CZ-only swap detection: the lowered
      // gate kinds/params are the same for any qubit pair.
      Circuit probe(device_.num_qubits());
      probe.swap(0, 1);
      swap_probe_ = lower(probe);
    }
  }

  /// Walk the mapped circuit, consuming reference gates and swap/bridge
  /// templates; emits QFS102/103/104/107/109/110 findings.
  void run(const TranslationArtifact& artifact, const EquivOptions& options,
           std::vector<Diagnostic>& out) {
    const auto& gates = mapped_.gates();
    int swaps_seen = 0;
    int i = 0;
    while (i < static_cast<int>(gates.size())) {
      if (static_cast<int>(out.size()) >= options.max_diagnostics) return;

      // Zero-operand gates (an operand-less barrier) are structural no-ops
      // on both sides of the translation.
      if (gates[static_cast<std::size_t>(i)].qubits.empty()) {
        ++i;
        continue;
      }

      // Inserted SWAP? A router SWAP expands to a fixed template
      // (cx a,b; cx b,a; cx a,b — further lowered on CZ-only targets) that
      // is always contiguous in the mapped circuit, because expansion
      // happens after routing.
      if (auto tmpl = swap_template_at(i)) {
        // Disambiguate against a *source* swap: the source gate lowers to
        // the identical window but consumes a reference gate and leaves the
        // permutation alone (its state exchange is the program's own).
        if (auto ri = ready_reference_swap(tmpl->pa, tmpl->pb)) {
          consume(*ri, heads_);
          i += tmpl->length;
          continue;
        }
        // ... or against the source genuinely containing the whole expanded
        // pattern gate for gate (e.g. three alternating CXs): prefer the
        // reference reading, which keeps the queues and permutation in sync.
        if (!window_matches_references(i, tmpl->length)) {
          perm_.apply_swap(tmpl->pa, tmpl->pb);
          ++swaps_seen;
          i += tmpl->length;
          continue;
        }
      }

      // Ordinary gate: one mapped gate realizes one reference gate.
      if (auto ri = match_reference_at(gates[static_cast<std::size_t>(i)],
                                       heads_)) {
        consume(*ri, heads_);
        ++i;
        continue;
      }

      // Bridge? BridgeRouter realizes a distance-2 CX/CZ as a 4-CX bridge
      // (CZ conjugated by H on the target) without touching the layout.
      if (auto bridge = bridge_at(i)) {
        consume(bridge->reference_index, heads_);
        i += bridge->length;
        continue;
      }

      diagnose_mismatch(i, out);
      return;  // alignment is lost; later findings would be noise
    }

    // Every reference gate must have been realized.
    report_unconsumed(options, out);
    if (static_cast<int>(out.size()) >= options.max_diagnostics) return;

    // The accumulated permutation must equal the reported final layout.
    for (int v = 0; v < num_virtual_; ++v) {
      if (static_cast<int>(out.size()) >= options.max_diagnostics) return;
      int expected = perm_.v2p[static_cast<std::size_t>(v)];
      int reported = artifact.final_layout[static_cast<std::size_t>(v)];
      if (expected == reported) continue;
      std::ostringstream os;
      os << "final layout maps virtual qubit " << v << " to physical "
         << reported << ", but the tracked permutation ends at physical "
         << expected;
      out.push_back(make_diag("QFS107", os.str(), SourceLocation{-1, -1, v}));
    }

    // Router-reported swap count vs what the walk actually saw.
    if (artifact.swaps_inserted >= 0 && swaps_seen != artifact.swaps_inserted &&
        static_cast<int>(out.size()) < options.max_diagnostics) {
      std::ostringstream os;
      os << "artifact metadata reports " << artifact.swaps_inserted
         << " inserted swap(s) but the mapped circuit contains " << swaps_seen
         << " swap expansion(s)";
      out.push_back(make_diag("QFS109", os.str()));
    }
  }

 private:
  struct SwapWindow {
    int pa = 0, pb = 0;
    int length = 0;
  };
  struct BridgeWindow {
    int reference_index = 0;
    int length = 0;
  };

  /// Reference index ready for consumption matching `g` (kind, params, and
  /// operand order under the current permutation), or nullopt.
  std::optional<int> match_reference_at(const Gate& g,
                                        const std::vector<int>& heads) const {
    if (g.qubits.empty()) return std::nullopt;
    std::vector<int> virt;
    virt.reserve(g.qubits.size());
    for (int p : g.qubits) {
      int v = perm_.p2v[static_cast<std::size_t>(p)];
      if (v >= num_virtual_) return std::nullopt;  // padding qubit
      virt.push_back(v);
    }
    auto q0 = static_cast<std::size_t>(virt[0]);
    if (heads[q0] >= static_cast<int>(queues_[q0].size())) return std::nullopt;
    int ri = queues_[q0][static_cast<std::size_t>(heads[q0])];
    const Gate& ref = reference_.gates()[static_cast<std::size_t>(ri)];
    if (ref.kind != g.kind || ref.qubits != virt || ref.params != g.params) {
      return std::nullopt;
    }
    if (!ready(ri, heads)) return std::nullopt;
    return ri;
  }

  bool ready(int ri, const std::vector<int>& heads) const {
    const Gate& ref = reference_.gates()[static_cast<std::size_t>(ri)];
    for (int q : ref.qubits) {
      auto idx = static_cast<std::size_t>(q);
      if (heads[idx] >= static_cast<int>(queues_[idx].size())) return false;
      if (queues_[idx][static_cast<std::size_t>(heads[idx])] != ri) {
        return false;
      }
    }
    return true;
  }

  void consume(int ri, std::vector<int>& heads) const {
    for (int q : reference_.gates()[static_cast<std::size_t>(ri)].qubits) {
      ++heads[static_cast<std::size_t>(q)];
    }
  }

  /// Lowered template of one gate sequence under the device gate set,
  /// exactly as the pipeline would emit it.
  std::vector<Gate> lower(const Circuit& c) const {
    return compiler::decompose_to_gateset(compiler::expand_swaps(c),
                                          device_.gateset())
        .gates();
  }

  bool window_equals(int start, const std::vector<Gate>& tmpl) const {
    const auto& gates = mapped_.gates();
    if (start + static_cast<int>(tmpl.size()) >
        static_cast<int>(gates.size())) {
      return false;
    }
    for (std::size_t k = 0; k < tmpl.size(); ++k) {
      if (!(gates[static_cast<std::size_t>(start) + k] == tmpl[k])) {
        return false;
      }
    }
    return true;
  }

  /// Full swap-expansion window starting at mapped gate `start`, if any.
  /// The candidate physical pair is read off the window itself: on a
  /// CX-target the first gate is cx(a,b); on a CZ-target with native Ry the
  /// template opens with ry(-pi/2) on b followed by cz(a,b). CZ-only bases
  /// without Ry (sycamore's {rz,sx,x,cz}) lower the conjugating Ry further,
  /// so the pair is read off the window's first cz instead and both swap
  /// orientations are checked against the fully lowered template.
  std::optional<SwapWindow> swap_template_at(int start) const {
    const auto& gates = mapped_.gates();
    const Gate& g = gates[static_cast<std::size_t>(start)];
    int pa = -1, pb = -1;
    if (device_.gateset().supports(GateKind::kCx)) {
      if (g.kind != GateKind::kCx) return std::nullopt;
      pa = g.qubits[0];
      pb = g.qubits[1];
    } else if (device_.gateset().supports(GateKind::kRy)) {
      if (g.kind != GateKind::kRy ||
          start + 1 >= static_cast<int>(gates.size())) {
        return std::nullopt;
      }
      const Gate& next = gates[static_cast<std::size_t>(start) + 1];
      if (next.kind != GateKind::kCz || next.qubits[1] != g.qubits[0]) {
        return std::nullopt;
      }
      pa = next.qubits[0];
      pb = next.qubits[1];
    } else {
      // Generic CZ-only path. The lowered template's gate kinds/params are
      // position-independent, so the cached probe's first gate is a cheap
      // pre-filter before the window scan.
      if (swap_probe_.empty() || g.kind != swap_probe_[0].kind ||
          g.params != swap_probe_[0].params) {
        return std::nullopt;
      }
      const int horizon =
          std::min(static_cast<int>(swap_probe_.size()),
                   static_cast<int>(gates.size()) - start);
      for (int k = 0; k < horizon; ++k) {
        const Gate& w = gates[static_cast<std::size_t>(start + k)];
        if (w.kind == GateKind::kCz) {
          pa = w.qubits[0];
          pb = w.qubits[1];
          break;
        }
      }
      if (pa < 0) return std::nullopt;
      for (int flip = 0; flip < 2; ++flip) {
        Circuit c(device_.num_qubits());
        c.swap(flip ? pb : pa, flip ? pa : pb);
        std::vector<Gate> tmpl = lower(c);
        if (window_equals(start, tmpl)) {
          return SwapWindow{flip ? pb : pa, flip ? pa : pb,
                            static_cast<int>(tmpl.size())};
        }
      }
      return std::nullopt;
    }
    Circuit c(device_.num_qubits());
    c.swap(pa, pb);
    std::vector<Gate> tmpl = lower(c);
    if (!window_equals(start, tmpl)) return std::nullopt;
    return SwapWindow{pa, pb, static_cast<int>(tmpl.size())};
  }

  /// Ready reference kSwap whose remapped expansion produced this window
  /// (only reachable on gate sets where the source's own swaps survive
  /// step-1 decomposition and are expanded after routing).
  std::optional<int> ready_reference_swap(int pa, int pb) const {
    int va = perm_.p2v[static_cast<std::size_t>(pa)];
    int vb = perm_.p2v[static_cast<std::size_t>(pb)];
    if (va >= num_virtual_ || vb >= num_virtual_) return std::nullopt;
    auto qa = static_cast<std::size_t>(va);
    if (heads_[qa] >= static_cast<int>(queues_[qa].size())) {
      return std::nullopt;
    }
    int ri = queues_[qa][static_cast<std::size_t>(heads_[qa])];
    const Gate& ref = reference_.gates()[static_cast<std::size_t>(ri)];
    if (ref.kind != GateKind::kSwap || ref.qubits != std::vector<int>{va, vb}) {
      return std::nullopt;
    }
    if (!ready(ri, heads_)) return std::nullopt;
    return ri;
  }

  /// True when the whole window [start, start+length) can be consumed as
  /// plain reference gates (tried on scratch cursors; the permutation is
  /// never touched by 1:1 matches).
  bool window_matches_references(int start, int length) const {
    std::vector<int> scratch = heads_;
    const auto& gates = mapped_.gates();
    for (int k = 0; k < length; ++k) {
      auto ri =
          match_reference_at(gates[static_cast<std::size_t>(start + k)],
                             scratch);
      if (!ri) return false;
      consume(*ri, scratch);
    }
    return true;
  }

  /// Bridge window starting at `start`: some ready reference CX/CZ whose
  /// operand pair sits at hop distance 2 and whose BridgeRouter emission
  /// (4-CX bridge, CZ conjugated by H on the target, then lowered) equals
  /// the window. Only tried after plain matching fails, so the quadratic
  /// candidate scan stays off the hot path.
  std::optional<BridgeWindow> bridge_at(int start) const {
    const auto& topo = device_.topology();
    for (int v = 0; v < num_virtual_; ++v) {
      auto idx = static_cast<std::size_t>(v);
      if (heads_[idx] >= static_cast<int>(queues_[idx].size())) continue;
      int ri = queues_[idx][static_cast<std::size_t>(heads_[idx])];
      const Gate& ref = reference_.gates()[static_cast<std::size_t>(ri)];
      if (ref.qubits.empty() || ref.qubits[0] != v) continue;  // once per ref
      if (ref.kind != GateKind::kCx && ref.kind != GateKind::kCz) continue;
      if (!ready(ri, heads_)) continue;
      int pa = perm_.v2p[static_cast<std::size_t>(ref.qubits[0])];
      int pb = perm_.v2p[static_cast<std::size_t>(ref.qubits[1])];
      if (topo.distance(pa, pb) != 2) continue;
      auto path = topo.shortest_path(pa, pb);
      if (path.size() != 3) continue;
      int pm = path[1];
      Circuit c(device_.num_qubits());
      if (ref.kind == GateKind::kCz) c.h(pb);
      c.cx(pa, pm).cx(pm, pb).cx(pa, pm).cx(pm, pb);
      if (ref.kind == GateKind::kCz) c.h(pb);
      std::vector<Gate> tmpl = lower(c);
      if (window_equals(start, tmpl)) {
        return BridgeWindow{ri, static_cast<int>(tmpl.size())};
      }
    }
    return std::nullopt;
  }

  /// The window at `start` matched nothing: attribute the failure to the
  /// most specific cause (QFS110 swapped operands, QFS104 wrong parameters,
  /// QFS102 anything else).
  void diagnose_mismatch(int i, std::vector<Diagnostic>& out) const {
    const Gate& g = mapped_.gates()[static_cast<std::size_t>(i)];
    std::vector<int> virt;
    bool padding = false;
    for (int p : g.qubits) {
      int v = perm_.p2v[static_cast<std::size_t>(p)];
      padding = padding || v >= num_virtual_;
      virt.push_back(v);
    }
    if (!padding && !virt.empty()) {
      auto q0 = static_cast<std::size_t>(virt[0]);
      if (heads_[q0] < static_cast<int>(queues_[q0].size())) {
        int ri = queues_[q0][static_cast<std::size_t>(heads_[q0])];
        const Gate& ref = reference_.gates()[static_cast<std::size_t>(ri)];
        if (ref.kind == g.kind && ready(ri, heads_)) {
          std::vector<int> reversed(virt.rbegin(), virt.rend());
          if (ref.qubits == reversed && ref.params == g.params &&
              virt.size() == 2) {
            std::ostringstream os;
            os << "mapped gate " << i << " '" << gate_text(g)
               << "' reverses the operand order of source gate " << ri
               << " (expected virtual (" << ref.qubits[0] << ","
               << ref.qubits[1] << "), got (" << virt[0] << "," << virt[1]
               << "))";
            out.push_back(
                make_diag("QFS110", os.str(), SourceLocation{-1, i, -1}));
            return;
          }
          if (ref.qubits == virt && ref.params != g.params) {
            std::ostringstream os;
            os << "mapped gate " << i << " '" << gate_text(g)
               << "' realizes source gate " << ri
               << " with mismatched parameters";
            out.push_back(
                make_diag("QFS104", os.str(), SourceLocation{-1, i, -1}));
            return;
          }
        }
      }
    }
    std::ostringstream os;
    os << "mapped gate " << i << " '" << gate_text(g) << "'";
    if (!virt.empty()) {
      os << " (virtual";
      for (int v : virt) {
        if (v >= num_virtual_) {
          os << " <pad>";
        } else {
          os << ' ' << v;
        }
      }
      os << ")";
    }
    os << " matches no pending source gate under the tracked permutation";
    out.push_back(make_diag("QFS102", os.str(), SourceLocation{-1, i, -1}));
  }

  void report_unconsumed(const EquivOptions& options,
                         std::vector<Diagnostic>& out) const {
    int missing = 0;
    int first = -1;
    std::vector<bool> reported(reference_.gates().size(), false);
    for (int q = 0; q < num_virtual_; ++q) {
      auto idx = static_cast<std::size_t>(q);
      for (int h = heads_[idx]; h < static_cast<int>(queues_[idx].size());
           ++h) {
        int ri = queues_[idx][static_cast<std::size_t>(h)];
        if (reported[static_cast<std::size_t>(ri)]) continue;
        reported[static_cast<std::size_t>(ri)] = true;
        ++missing;
        if (first < 0 || ri < first) first = ri;
      }
    }
    if (missing == 0 || static_cast<int>(out.size()) >= options.max_diagnostics)
      return;
    const Gate& ref = reference_.gates()[static_cast<std::size_t>(first)];
    std::ostringstream os;
    os << "source gate " << first << " '" << gate_text(ref)
       << "' (decomposed form) was never realized in the mapped circuit ("
       << missing << " source gate(s) unmatched)";
    out.push_back(make_diag("QFS103", os.str(), SourceLocation{-1, first, -1}));
  }

  const Device& device_;
  const Circuit& mapped_;
  int num_virtual_;
  Circuit reference_;
  Perm perm_;
  std::vector<std::vector<int>> queues_;  ///< per-virtual-qubit ref indices
  std::vector<int> heads_;                ///< per-qubit cursor into queues_
  std::vector<Gate> swap_probe_;  ///< lowered swap shape for CZ-only bases
};

/// QFS108: the timed program must carry exactly the mapped circuit's gates
/// in per-qubit program order, with positive durations and no double
/// booking. (Bundle-level overlap against control groups stays QFS007 /
/// analyze_timed_program; this check is about fidelity to the artifact.)
void check_timed_program(const Circuit& mapped, const isa::TimedProgram& timed,
                         std::vector<Diagnostic>& out, int budget) {
  struct Slot {
    int start = 0, end = 0, instr = 0;
    const isa::Instruction* ins = nullptr;
  };
  std::vector<std::vector<Slot>> per_qubit(
      static_cast<std::size_t>(std::max(timed.num_qubits(), 0)));
  int instr_index = 0;
  for (const isa::Bundle& b : timed.bundles()) {
    for (const isa::Instruction& ins : b.instructions) {
      if (ins.duration_cycles < 1) {
        if (static_cast<int>(out.size()) >= budget) return;
        std::ostringstream os;
        os << "timed instruction " << instr_index << " '"
           << circuit::gate_name(ins.kind) << "' at cycle " << b.start_cycle
           << " has non-positive duration " << ins.duration_cycles;
        out.push_back(
            make_diag("QFS108", os.str(), SourceLocation{-1, instr_index, -1}));
      }
      for (int q : ins.qubits) {
        if (q < 0 || q >= timed.num_qubits()) {
          if (static_cast<int>(out.size()) >= budget) return;
          std::ostringstream os;
          os << "timed instruction " << instr_index << " operand " << q
             << " is out of range for a " << timed.num_qubits()
             << "-qubit program";
          out.push_back(make_diag("QFS108", os.str(),
                                  SourceLocation{-1, instr_index, q}));
          continue;
        }
        per_qubit[static_cast<std::size_t>(q)].push_back(
            Slot{b.start_cycle,
                 b.start_cycle + std::max(ins.duration_cycles, 1), instr_index,
                 &ins});
      }
      ++instr_index;
    }
  }

  // Overlap: a qubit executes one instruction at a time.
  for (int q = 0; q < timed.num_qubits(); ++q) {
    const auto& slots = per_qubit[static_cast<std::size_t>(q)];
    for (std::size_t a = 0; a < slots.size(); ++a) {
      for (std::size_t b = a + 1; b < slots.size(); ++b) {
        if (slots[a].start < slots[b].end && slots[b].start < slots[a].end) {
          if (static_cast<int>(out.size()) >= budget) return;
          std::ostringstream os;
          os << "qubit " << q << " is double-booked: timed instructions "
             << slots[a].instr << " and " << slots[b].instr
             << " overlap in cycles ["
             << std::max(slots[a].start, slots[b].start) << ", "
             << std::min(slots[a].end, slots[b].end) << ")";
          out.push_back(make_diag("QFS108", os.str(),
                                  SourceLocation{-1, slots[b].instr, q}));
        }
      }
    }
  }

  // Per-qubit order and content must equal the mapped circuit's (barriers
  // are structural and never lowered into timed programs).
  for (int q = 0; q < timed.num_qubits(); ++q) {
    std::vector<Slot> slots = per_qubit[static_cast<std::size_t>(q)];
    std::stable_sort(slots.begin(), slots.end(),
                     [](const Slot& a, const Slot& b) {
                       return a.start < b.start;
                     });
    std::vector<const Gate*> expected;
    for (const Gate& g : mapped.gates()) {
      if (g.kind == GateKind::kBarrier) continue;
      for (int gq : g.qubits) {
        if (gq == q) expected.push_back(&g);
      }
    }
    bool mismatch = slots.size() != expected.size();
    for (std::size_t k = 0; !mismatch && k < slots.size(); ++k) {
      const isa::Instruction& ins = *slots[k].ins;
      const Gate& g = *expected[k];
      mismatch = ins.kind != g.kind || ins.qubits != g.qubits ||
                 ins.params != g.params;
    }
    if (!mismatch) continue;
    if (static_cast<int>(out.size()) >= budget) return;
    std::ostringstream os;
    os << "timed program does not replay the mapped circuit on qubit " << q
       << " (" << slots.size() << " instruction(s) vs " << expected.size()
       << " gate(s), or order/content differ)";
    out.push_back(make_diag("QFS108", os.str(), SourceLocation{-1, -1, q}));
  }
}

}  // namespace

std::vector<Diagnostic> validate_translation(const Circuit& source,
                                             const Device& device,
                                             const TranslationArtifact& artifact,
                                             const EquivOptions& options) {
  std::vector<Diagnostic> out;
  if (artifact.mapped == nullptr) {
    out.push_back(make_diag("QFS101", "artifact carries no mapped circuit"));
    return out;
  }
  check_structure(source, device, artifact, out);
  if (!out.empty()) return out;  // matching needs a well-formed skeleton

  check_physical_legality(device, *artifact.mapped, out,
                          options.max_diagnostics);
  if (static_cast<int>(out.size()) < options.max_diagnostics) {
    Matcher matcher(source, device, artifact);
    matcher.run(artifact, options, out);
  }
  if (artifact.timed != nullptr &&
      static_cast<int>(out.size()) < options.max_diagnostics) {
    check_timed_program(*artifact.mapped, *artifact.timed, out,
                        options.max_diagnostics);
  }
  if (static_cast<int>(out.size()) > options.max_diagnostics) {
    out.resize(static_cast<std::size_t>(options.max_diagnostics));
  }
  return out;
}

bool translation_is_valid(const Circuit& source, const Device& device,
                          const TranslationArtifact& artifact,
                          const EquivOptions& options) {
  for (const Diagnostic& d :
       validate_translation(source, device, artifact, options)) {
    if (d.severity == Severity::kError) return false;
  }
  return true;
}

}  // namespace qfs::analysis
