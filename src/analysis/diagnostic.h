// Diagnostics: the currency of the static-analysis layer.
//
// Every finding a checker produces is a Diagnostic with a stable code
// ("QFS001", ...), a severity, a message, and whatever source location is
// known (QASM line, gate index, qubit). Codes are part of the public
// contract: tests and downstream tooling key on them, so a code is never
// reused or renumbered (see the table in checkers.h / DESIGN.md §9).
#pragma once

#include <string>
#include <vector>

#include "support/json.h"
#include "support/status.h"

namespace qfs::analysis {

enum class Severity {
  kNote,
  kWarning,
  kError,
};

/// "note", "warning" or "error".
const char* severity_name(Severity severity);

/// Inverse of severity_name; false on an unknown name.
bool severity_from_name(const std::string& name, Severity& out);

/// Where a finding points. Fields default to -1 (unknown); renderers print
/// only what is known. `line` is a 1-based QASM source line, `gate_index`
/// an index into Circuit::gates() (or a running instruction index for
/// timed programs), `qubit` the offending operand.
struct SourceLocation {
  int line = -1;
  int gate_index = -1;
  int qubit = -1;

  bool operator==(const SourceLocation&) const = default;
};

/// One static-analysis finding.
struct Diagnostic {
  std::string code;  ///< stable "QFSnnn" identifier
  Severity severity = Severity::kError;
  std::string message;
  SourceLocation location;

  bool operator==(const Diagnostic&) const = default;
};

/// "<source>:<line>: error[QFS001]: <message>" — the line segment falls
/// back to "gate <i>" when only a gate index is known, and is omitted
/// entirely for whole-circuit findings. `source` ("" = omit) is typically
/// the input file name.
std::string diagnostic_to_string(const Diagnostic& d,
                                 const std::string& source = "");

/// One rendered diagnostic per line, in the given order.
std::string render_diagnostics(const std::vector<Diagnostic>& diags,
                               const std::string& source = "");

/// JSON array of {code, severity, message, line?, gate?, qubit?} objects
/// (unknown location fields are omitted), for machine consumers.
JsonValue diagnostics_to_json(const std::vector<Diagnostic>& diags);

/// Inverse of diagnostics_to_json, for wire consumers (the compile-service
/// response decoder): exact round-trip of every encoded field. Structural
/// violations come back as parse_error, never an assertion.
qfs::StatusOr<std::vector<Diagnostic>> diagnostics_from_json(
    const JsonValue& json);

int count_errors(const std::vector<Diagnostic>& diags);
int count_warnings(const std::vector<Diagnostic>& diags);
inline bool has_errors(const std::vector<Diagnostic>& diags) {
  return count_errors(diags) > 0;
}

/// "3 errors, 1 warning" summary (count-correct singular/plural).
std::string diagnostic_summary(const std::vector<Diagnostic>& diags);

}  // namespace qfs::analysis
