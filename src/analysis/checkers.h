// Static circuit checkers: machine-checked validity without simulation.
//
// The registry runs over circuits (logical or mapped-physical), raw gate
// lists, timed ISA programs, and QASM sources, and reports findings as
// Diagnostics (diagnostic.h). Nothing here asserts on bad input — the
// whole point is to diagnose-and-explain what the constructive APIs would
// reject by crashing.
//
// Diagnostic code table (stable; never renumber):
//   QFS001 error    qubit operand out of range
//   QFS002 error    duplicate qubit operands on one gate
//   QFS003 warning  gate acts on an already-measured qubit
//   QFS004 warning  declared qubit is never used
//   QFS005 error    gate not in the device's primitive gate set
//   QFS006 error    two-qubit gate on a non-adjacent physical pair
//   QFS007 error    timed-program overlap (qubit double-booked, or mixed
//                   gate kinds overlapping within one control group)
//   QFS008 warning  unreachable operations after measure-all
//   QFS009 error    circuit register wider than the device
//   QFS100 error    QASM source does not parse
//   QFS101 error    compiled artifact is structurally invalid
//   QFS102 error    physical gate matches no pending source gate
//   QFS103 error    source gate never realized in the mapped circuit
//   QFS104 error    physical gate realizes a source gate with wrong params
//   QFS105 error    two-qubit gate on a pair with no live coupler
//   QFS106 error    mapped circuit contains a non-native gate
//   QFS107 error    final layout differs from the accumulated permutation
//   QFS108 error    timed program violates per-qubit order/durations
//   QFS109 error    swap metadata disagrees with the mapped circuit
//   QFS110 error    physical gate reverses its source operand order
//
// QFS001-004 and QFS008 are device-independent ("lint" stage); QFS005,
// QFS006, QFS007 and QFS009 need a device and only make sense for mapped
// physical circuits ("verify" stage). QFS101-QFS110 are produced by the
// translation validator (analysis/equiv.h), which checks a compiled
// artifact against its source circuit.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "circuit/circuit.h"
#include "compiler/pass_manager.h"
#include "device/device.h"
#include "isa/timed_program.h"

namespace qfs::analysis {

/// What a checker applies to. Lint checks hold for any circuit; verify
/// checks treat the circuit as physical (qubit ids = device qubits).
enum class Stage {
  kLint,
  kVerify,
  kBoth,
};

struct CheckOptions {
  /// Device for the verify-stage checks; ignored unless `physical`.
  const device::Device* device = nullptr;
  /// Treat the circuit as mapped/physical: enable QFS005/006/009 (needs
  /// `device`) and disable lint-only checks that are meaningless after
  /// mapping (QFS004 — most physical qubits are legitimately idle).
  bool physical = false;
};

/// Registry row: one entry per diagnostic code, for docs, --help output
/// and table-driven tests.
struct CheckerInfo {
  const char* code;
  Severity severity;
  const char* name;     ///< short kebab-case identifier
  const char* summary;  ///< one-line description
  Stage stage;
};

/// All diagnostic codes, ascending (includes QFS007/QFS100, which are
/// produced by analyze_timed_program / lint_source rather than the
/// circuit-level walk).
const std::vector<CheckerInfo>& checker_registry();

/// Registry row for `code`, or nullptr for unknown codes.
const CheckerInfo* find_checker(const std::string& code);

/// Run every applicable checker over a raw gate list. This is the
/// un-asserting entry point: the gates may violate any invariant
/// (out-of-range operands, duplicates, ...) and every violation becomes a
/// diagnostic instead of a crash. Diagnostics come back ordered by gate
/// index (whole-circuit findings last).
std::vector<Diagnostic> analyze_gates(int num_qubits,
                                      const std::vector<circuit::Gate>& gates,
                                      const CheckOptions& options = {});

/// analyze_gates over a constructed Circuit (which already guarantees
/// QFS001/QFS002 hold; the remaining checkers still apply).
std::vector<Diagnostic> analyze_circuit(const circuit::Circuit& circuit,
                                        const CheckOptions& options = {});

/// Validate a timed ISA program against a device: operand ranges (QFS001),
/// coupling-graph adjacency (QFS006), qubit double-booking and control-
/// group kind mixing (QFS007). The diagnostic-producing twin of
/// isa::program_is_valid.
std::vector<Diagnostic> analyze_timed_program(const isa::TimedProgram& program,
                                              const device::Device& device);

/// Lint a QASM source end to end: parse errors surface as QFS001/QFS002
/// (the two violations the parser itself polices, with their source line)
/// or QFS100 for anything else; a parseable source is then analyzed with
/// `options`.
std::vector<Diagnostic> lint_source(const std::string& qasm_source,
                                    const CheckOptions& options = {});

/// Adapter for PassManager::enable_verification: returns a check function
/// that reports error-severity findings (warnings don't fail a pipeline).
compiler::PassCheckFn make_pass_check(CheckOptions options);

}  // namespace qfs::analysis
