#include "analysis/checkers.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "qasm/parser.h"
#include "support/strings.h"

namespace qfs::analysis {

using circuit::Gate;
using circuit::GateKind;

namespace {

std::string gate_label(const Gate& g) {
  return std::string(circuit::gate_name(g.kind));
}

Diagnostic make_diag(const char* code, Severity severity, std::string message,
                     SourceLocation loc = {}) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.location = loc;
  return d;
}

/// QFS009: register wider than the device.
void check_register_width(int num_qubits, const CheckOptions& options,
                          std::vector<Diagnostic>& out) {
  if (options.device == nullptr) return;
  if (num_qubits <= options.device->num_qubits()) return;
  std::ostringstream os;
  os << "circuit uses " << num_qubits << " qubits but device '"
     << options.device->name() << "' has only "
     << options.device->num_qubits();
  out.push_back(make_diag("QFS009", Severity::kError, os.str()));
}

/// QFS004: declared-but-never-used qubits (lint stage only — on a mapped
/// physical circuit most of the chip is legitimately idle).
void check_idle_qubits(int num_qubits, const std::vector<Gate>& gates,
                       std::vector<Diagnostic>& out) {
  std::vector<bool> used(static_cast<std::size_t>(num_qubits), false);
  for (const Gate& g : gates) {
    if (g.kind == GateKind::kBarrier) continue;
    for (int q : g.qubits) {
      if (q >= 0 && q < num_qubits) used[static_cast<std::size_t>(q)] = true;
    }
  }
  for (int q = 0; q < num_qubits; ++q) {
    if (used[static_cast<std::size_t>(q)]) continue;
    std::ostringstream os;
    os << "qubit " << q << " is declared but never used";
    out.push_back(make_diag("QFS004", Severity::kWarning, os.str(),
                            SourceLocation{-1, -1, q}));
  }
}

}  // namespace

const std::vector<CheckerInfo>& checker_registry() {
  static const std::vector<CheckerInfo> registry = {
      {"QFS001", Severity::kError, "qubit-range",
       "qubit operand out of range", Stage::kBoth},
      {"QFS002", Severity::kError, "duplicate-operand",
       "duplicate qubit operands on one gate", Stage::kBoth},
      {"QFS003", Severity::kWarning, "gate-after-measure",
       "gate acts on an already-measured qubit", Stage::kBoth},
      {"QFS004", Severity::kWarning, "idle-qubit",
       "declared qubit is never used", Stage::kLint},
      {"QFS005", Severity::kError, "non-native-gate",
       "gate not in the device's primitive gate set", Stage::kVerify},
      {"QFS006", Severity::kError, "non-adjacent-pair",
       "two-qubit gate on a non-adjacent physical pair", Stage::kVerify},
      {"QFS007", Severity::kError, "timing-overlap",
       "timed-program overlap on a qubit or within a control group",
       Stage::kVerify},
      {"QFS008", Severity::kWarning, "unreachable-after-measure-all",
       "operations after every used qubit has been measured", Stage::kLint},
      {"QFS009", Severity::kError, "oversized-register",
       "circuit register wider than the device", Stage::kVerify},
      {"QFS100", Severity::kError, "parse-error",
       "QASM source does not parse", Stage::kBoth},
      // Translation validation (analysis/equiv.h): artifact-vs-source
      // findings from the permutation-tracking matcher.
      {"QFS101", Severity::kError, "artifact-structure",
       "compiled artifact is structurally invalid (layout size, range or "
       "injectivity, register width)",
       Stage::kVerify},
      {"QFS102", Severity::kError, "unmatched-physical-gate",
       "physical gate matches no pending source gate under the tracked "
       "permutation",
       Stage::kVerify},
      {"QFS103", Severity::kError, "missing-source-gate",
       "source gate was never realized in the mapped circuit",
       Stage::kVerify},
      {"QFS104", Severity::kError, "parameter-mismatch",
       "physical gate realizes a source gate with mismatched parameters",
       Stage::kVerify},
      {"QFS105", Severity::kError, "dead-or-distant-coupler",
       "two-qubit gate on a physical pair with no live coupler",
       Stage::kVerify},
      {"QFS106", Severity::kError, "non-native-translation",
       "mapped circuit contains a gate outside the device's native set",
       Stage::kVerify},
      {"QFS107", Severity::kError, "final-layout-mismatch",
       "reported final layout differs from the accumulated permutation",
       Stage::kVerify},
      {"QFS108", Severity::kError, "schedule-order-violation",
       "timed program violates per-qubit order, durations or booking",
       Stage::kVerify},
      {"QFS109", Severity::kError, "swap-count-mismatch",
       "artifact swap metadata disagrees with the mapped circuit",
       Stage::kVerify},
      {"QFS110", Severity::kError, "operand-order-mismatch",
       "physical gate reverses the operand order of its source gate",
       Stage::kVerify},
  };
  return registry;
}

const CheckerInfo* find_checker(const std::string& code) {
  for (const CheckerInfo& info : checker_registry()) {
    if (code == info.code) return &info;
  }
  return nullptr;
}

std::vector<Diagnostic> analyze_gates(int num_qubits,
                                      const std::vector<Gate>& gates,
                                      const CheckOptions& options) {
  std::vector<Diagnostic> out;
  const device::Device* dev = options.physical ? options.device : nullptr;
  if (options.physical) check_register_width(num_qubits, options, out);

  // Which qubits carry a collapsed (measured, not-yet-reset) state, and
  // which are ever used — the inputs to QFS003/QFS008.
  std::vector<bool> measured(static_cast<std::size_t>(num_qubits), false);
  std::set<int> used_qubits;
  for (const Gate& g : gates) {
    if (g.kind == GateKind::kBarrier) continue;
    for (int q : g.qubits) {
      if (q >= 0 && q < num_qubits) used_qubits.insert(q);
    }
  }
  bool measure_all_reported = false;
  int measured_used_count = 0;

  for (int i = 0; i < static_cast<int>(gates.size()); ++i) {
    const Gate& g = gates[static_cast<std::size_t>(i)];

    // QFS001: operand range.
    bool in_range = true;
    for (int q : g.qubits) {
      if (q >= 0 && q < num_qubits) continue;
      in_range = false;
      std::ostringstream os;
      os << "qubit operand " << q << " of gate '" << gate_label(g)
         << "' is out of range for a circuit of width " << num_qubits;
      out.push_back(make_diag("QFS001", Severity::kError, os.str(),
                              SourceLocation{-1, i, q}));
    }

    // QFS002: duplicate operands.
    std::set<int> seen;
    for (int q : g.qubits) {
      if (!seen.insert(q).second) {
        std::ostringstream os;
        os << "gate '" << gate_label(g) << "' lists qubit " << q
           << " more than once";
        out.push_back(make_diag("QFS002", Severity::kError, os.str(),
                                SourceLocation{-1, i, q}));
      }
    }

    if (g.kind == GateKind::kBarrier) continue;

    // QFS008: anything after measure-all is unreachable (reported once).
    if (!measure_all_reported && !used_qubits.empty() &&
        measured_used_count == static_cast<int>(used_qubits.size())) {
      std::ostringstream os;
      os << "operation '" << gate_label(g)
         << "' is unreachable: every used qubit has already been measured";
      out.push_back(make_diag("QFS008", Severity::kWarning, os.str(),
                              SourceLocation{-1, i, -1}));
      measure_all_reported = true;
    }

    // QFS003 and the measured-state bookkeeping.
    for (int q : g.qubits) {
      if (q < 0 || q >= num_qubits) continue;
      auto idx = static_cast<std::size_t>(q);
      if (g.kind == GateKind::kMeasure) {
        if (!measured[idx] && used_qubits.count(q)) ++measured_used_count;
        measured[idx] = true;
      } else if (g.kind == GateKind::kReset) {
        if (measured[idx] && used_qubits.count(q)) --measured_used_count;
        measured[idx] = false;
      } else if (measured[idx]) {
        std::ostringstream os;
        os << "gate '" << gate_label(g) << "' acts on qubit " << q
           << " after it was measured (no reset in between)";
        out.push_back(make_diag("QFS003", Severity::kWarning, os.str(),
                                SourceLocation{-1, i, q}));
      }
    }

    // QFS005: primitive-gate-set conformance (verify stage).
    if (dev != nullptr && !dev->gateset().supports(g.kind)) {
      std::ostringstream os;
      os << "gate '" << gate_label(g) << "' is not in device '"
         << dev->name() << "' gate set '" << dev->gateset().name() << "'";
      out.push_back(make_diag("QFS005", Severity::kError, os.str(),
                              SourceLocation{-1, i, -1}));
    }

    // QFS006: coupling-graph adjacency (verify stage).
    if (dev != nullptr && in_range && circuit::is_unitary(g.kind) &&
        g.qubits.size() >= 2 &&
        g.qubits.size() <= static_cast<std::size_t>(dev->num_qubits())) {
      for (std::size_t a = 0; a < g.qubits.size(); ++a) {
        for (std::size_t b = a + 1; b < g.qubits.size(); ++b) {
          if (g.qubits[a] == g.qubits[b]) continue;
          if (g.qubits[a] >= dev->num_qubits() ||
              g.qubits[b] >= dev->num_qubits()) {
            continue;  // already QFS009 territory
          }
          if (dev->topology().adjacent(g.qubits[a], g.qubits[b])) continue;
          std::ostringstream os;
          os << "gate '" << gate_label(g) << "' couples qubits "
             << g.qubits[a] << " and " << g.qubits[b]
             << ", which are not adjacent on device '" << dev->name() << "'";
          out.push_back(make_diag("QFS006", Severity::kError, os.str(),
                                  SourceLocation{-1, i, g.qubits[a]}));
        }
      }
    }
  }

  if (!options.physical) check_idle_qubits(num_qubits, gates, out);
  return out;
}

std::vector<Diagnostic> analyze_circuit(const circuit::Circuit& circuit,
                                        const CheckOptions& options) {
  return analyze_gates(circuit.num_qubits(), circuit.gates(), options);
}

std::vector<Diagnostic> analyze_timed_program(const isa::TimedProgram& program,
                                              const device::Device& device) {
  std::vector<Diagnostic> out;
  if (program.num_qubits() > device.num_qubits()) {
    std::ostringstream os;
    os << "program uses " << program.num_qubits() << " qubits but device '"
       << device.name() << "' has only " << device.num_qubits();
    out.push_back(make_diag("QFS009", Severity::kError, os.str()));
  }

  struct Span {
    int start, end, instr;
    GateKind kind;
  };
  std::vector<std::vector<Span>> busy(
      static_cast<std::size_t>(std::max(program.num_qubits(), 0)));
  std::map<int, std::vector<Span>> group_spans;

  int instr_index = 0;
  for (const isa::Bundle& b : program.bundles()) {
    for (const isa::Instruction& ins : b.instructions) {
      const int end = b.start_cycle + std::max(ins.duration_cycles, 1);
      if (ins.duration_cycles <= 0) {
        std::ostringstream os;
        os << "instruction '" << circuit::gate_name(ins.kind) << "' at cycle "
           << b.start_cycle << " has non-positive duration "
           << ins.duration_cycles;
        out.push_back(make_diag("QFS007", Severity::kError, os.str(),
                                SourceLocation{-1, instr_index, -1}));
      }
      bool in_range = true;
      for (int q : ins.qubits) {
        if (q >= 0 && q < program.num_qubits()) continue;
        in_range = false;
        std::ostringstream os;
        os << "operand " << q << " of instruction '"
           << circuit::gate_name(ins.kind) << "' at cycle " << b.start_cycle
           << " is out of range for a " << program.num_qubits()
           << "-qubit program";
        out.push_back(make_diag("QFS001", Severity::kError, os.str(),
                                SourceLocation{-1, instr_index, q}));
      }
      if (in_range) {
        for (int q : ins.qubits) {
          auto idx = static_cast<std::size_t>(q);
          for (const Span& s : busy[idx]) {
            if (b.start_cycle < s.end && s.start < end) {
              std::ostringstream os;
              os << "qubit " << q << " is double-booked: instructions "
                 << s.instr << " and " << instr_index
                 << " overlap in cycles [" << std::max(s.start, b.start_cycle)
                 << ", " << std::min(s.end, end) << ")";
              out.push_back(make_diag("QFS007", Severity::kError, os.str(),
                                      SourceLocation{-1, instr_index, q}));
            }
          }
          busy[idx].push_back(Span{b.start_cycle, end, instr_index, ins.kind});
          if (device.has_control_groups() && q < device.num_qubits()) {
            group_spans[device.control_group(q)].push_back(
                Span{b.start_cycle, end, instr_index, ins.kind});
          }
        }
      }
      if (in_range && circuit::is_two_qubit(ins.kind) &&
          ins.qubits.size() == 2 && ins.qubits[0] < device.num_qubits() &&
          ins.qubits[1] < device.num_qubits() &&
          !device.topology().adjacent(ins.qubits[0], ins.qubits[1])) {
        std::ostringstream os;
        os << "instruction '" << circuit::gate_name(ins.kind)
           << "' couples qubits " << ins.qubits[0] << " and " << ins.qubits[1]
           << ", which are not adjacent on device '" << device.name() << "'";
        out.push_back(make_diag("QFS006", Severity::kError, os.str(),
                                SourceLocation{-1, instr_index, ins.qubits[0]}));
      }
      ++instr_index;
    }
  }

  // Control groups: overlapping instructions within one group must share a
  // gate kind (shared analog electronics broadcast one waveform).
  for (const auto& [group, spans] : group_spans) {
    for (std::size_t i = 0; i < spans.size(); ++i) {
      for (std::size_t j = i + 1; j < spans.size(); ++j) {
        if (spans[i].kind == spans[j].kind) continue;
        if (spans[i].instr == spans[j].instr) continue;
        if (spans[i].start < spans[j].end && spans[j].start < spans[i].end) {
          std::ostringstream os;
          os << "control group " << group << " runs '"
             << circuit::gate_name(spans[i].kind) << "' and '"
             << circuit::gate_name(spans[j].kind)
             << "' in overlapping cycles (instructions " << spans[i].instr
             << " and " << spans[j].instr << ")";
          out.push_back(make_diag("QFS007", Severity::kError, os.str(),
                                  SourceLocation{-1, spans[j].instr, -1}));
        }
      }
    }
  }
  return out;
}

std::vector<Diagnostic> lint_source(const std::string& qasm_source,
                                    const CheckOptions& options) {
  auto parsed = qasm::parse(qasm_source);
  if (!parsed.is_ok()) {
    // The parser polices two of our invariants itself; surface those under
    // their own codes (with the source line), everything else as QFS100.
    std::string msg = parsed.status().message();
    SourceLocation loc;
    if (starts_with(msg, "line ")) {
      int line = 0;
      auto colon = msg.find(':');
      if (colon != std::string::npos &&
          parse_int(std::string_view(msg).substr(5, colon - 5), line)) {
        loc.line = line;
        // The renderer prints the location itself; drop the textual prefix.
        msg = std::string(trim(std::string_view(msg).substr(colon + 1)));
      }
    }
    const char* code = "QFS100";
    if (msg.find("qubit index out of range") != std::string::npos) {
      code = "QFS001";
    } else if (msg.find("repeated qubit operand") != std::string::npos) {
      code = "QFS002";
    }
    return {make_diag(code, Severity::kError, std::move(msg), loc)};
  }
  return analyze_circuit(parsed.value(), options);
}

compiler::PassCheckFn make_pass_check(CheckOptions options) {
  return [options](const circuit::Circuit& c) {
    std::vector<compiler::PassCheckFinding> findings;
    for (const Diagnostic& d : analyze_circuit(c, options)) {
      if (d.severity != Severity::kError) continue;
      std::string message = d.message;
      if (d.location.gate_index >= 0) {
        message =
            "gate " + std::to_string(d.location.gate_index) + ": " + message;
      }
      findings.push_back(compiler::PassCheckFinding{d.code, std::move(message)});
    }
    return findings;
  };
}

}  // namespace qfs::analysis
