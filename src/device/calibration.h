// Calibration data ingestion: the mechanism by which measured hardware
// parameters flow bottom-up into the compiler (the paper's grey arrows in
// Fig. 1).
//
// Format: CSV-like lines, '#' comments allowed.
//   defaults,<f1>,<f2>,<fmeas>
//   qubit,<id>,<fidelity>
//   edge,<a>,<b>,<fidelity>
//   durations_ns,<single>,<two>,<measure>
//   coherence_ns,<t1>,<t2>          (optional; model defaults when absent)
#pragma once

#include <string>

#include "device/error_model.h"
#include "device/topology.h"
#include "support/status.h"

namespace qfs::device {

/// Parse calibration text into an error model. Unknown record types,
/// non-finite numbers, fidelities outside (0, 1], non-positive durations and
/// duplicate qubit/edge records are errors naming the offending line
/// (calibration files must not silently lose or corrupt information).
/// When `num_qubits` >= 0, qubit and edge ids must be < num_qubits.
qfs::StatusOr<ErrorModel> parse_calibration(const std::string& text,
                                            int num_qubits = -1);

/// Render an error model (with explicit per-qubit/per-edge rows for the
/// given counts/edges) back into calibration text. Round-trips through
/// parse_calibration.
std::string calibration_to_text(
    const ErrorModel& model, int num_qubits,
    const std::vector<std::pair<int, int>>& edges);

/// Parse a topology description:
///   name,<label>        (optional; defaults to "custom")
///   qubits,<n>
///   edge,<a>,<b>        (one per coupling)
/// '#' comments allowed. The graph must be connected (the mapper's routing
/// contract) — disconnected descriptions are rejected.
qfs::StatusOr<Topology> parse_topology(const std::string& text);

/// Render a topology back into the description format.
std::string topology_to_text(const Topology& topology);

}  // namespace qfs::device
