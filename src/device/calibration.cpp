#include "device/calibration.h"

#include <cmath>
#include <set>
#include <sstream>

#include "graph/algorithms.h"
#include "support/strings.h"

namespace qfs::device {

namespace {

qfs::Status line_error(int line_no, const std::string& message) {
  std::ostringstream os;
  os << "calibration line " << line_no << ": " << message;
  return qfs::parse_error(os.str());
}

bool valid_fidelity(double f) {
  return std::isfinite(f) && 0.0 < f && f <= 1.0;
}

bool valid_duration(double d) { return std::isfinite(d) && d > 0.0; }

std::pair<int, int> ordered(int a, int b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

qfs::StatusOr<ErrorModel> parse_calibration(const std::string& text,
                                            int num_qubits) {
  double f1 = 0.999, f2 = 0.99, fm = 0.997;
  struct QubitRow {
    int id;
    double f;
  };
  struct EdgeRow {
    int a, b;
    double f;
  };
  std::vector<QubitRow> qubits;
  std::vector<EdgeRow> edges;
  std::set<int> seen_qubits;
  std::set<std::pair<int, int>> seen_edges;
  double dur1 = 20.0, dur2 = 40.0, durm = 600.0;
  double t1 = 0.0, t2 = 0.0;
  bool have_coherence = false;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::string_view trimmed = qfs::trim(line);
    if (trimmed.empty()) continue;
    auto fields = qfs::split(trimmed, ',');
    for (auto& f : fields) f = std::string(qfs::trim(f));
    const std::string& kind = fields[0];

    if (kind == "defaults") {
      if (fields.size() != 4) return line_error(line_no, "defaults needs 3 values");
      if (!qfs::parse_double(fields[1], f1) || !qfs::parse_double(fields[2], f2) ||
          !qfs::parse_double(fields[3], fm)) {
        return line_error(line_no, "bad number in defaults");
      }
      if (!valid_fidelity(f1) || !valid_fidelity(f2) || !valid_fidelity(fm)) {
        return line_error(line_no, "fidelities must be in (0, 1]");
      }
    } else if (kind == "qubit") {
      if (fields.size() != 3) return line_error(line_no, "qubit needs id and fidelity");
      QubitRow row{};
      if (!qfs::parse_int(fields[1], row.id) || row.id < 0) {
        return line_error(line_no, "bad qubit id");
      }
      if (num_qubits >= 0 && row.id >= num_qubits) {
        return line_error(line_no, "qubit id " + std::to_string(row.id) +
                                       " out of range (device has " +
                                       std::to_string(num_qubits) + " qubits)");
      }
      if (!seen_qubits.insert(row.id).second) {
        return line_error(line_no,
                          "duplicate qubit id " + std::to_string(row.id));
      }
      if (!qfs::parse_double(fields[2], row.f) || !valid_fidelity(row.f)) {
        return line_error(line_no, "bad qubit fidelity");
      }
      qubits.push_back(row);
    } else if (kind == "edge") {
      if (fields.size() != 4) return line_error(line_no, "edge needs a, b, fidelity");
      EdgeRow row{};
      if (!qfs::parse_int(fields[1], row.a) || !qfs::parse_int(fields[2], row.b) ||
          row.a < 0 || row.b < 0 || row.a == row.b) {
        return line_error(line_no, "bad edge endpoints");
      }
      if (num_qubits >= 0 && (row.a >= num_qubits || row.b >= num_qubits)) {
        return line_error(line_no, "edge endpoint out of range (device has " +
                                       std::to_string(num_qubits) + " qubits)");
      }
      if (!seen_edges.insert(ordered(row.a, row.b)).second) {
        return line_error(line_no, "duplicate edge " + std::to_string(row.a) +
                                       "," + std::to_string(row.b));
      }
      if (!qfs::parse_double(fields[3], row.f) || !valid_fidelity(row.f)) {
        return line_error(line_no, "bad edge fidelity");
      }
      edges.push_back(row);
    } else if (kind == "durations_ns") {
      if (fields.size() != 4) return line_error(line_no, "durations_ns needs 3 values");
      if (!qfs::parse_double(fields[1], dur1) ||
          !qfs::parse_double(fields[2], dur2) ||
          !qfs::parse_double(fields[3], durm) || !valid_duration(dur1) ||
          !valid_duration(dur2) || !valid_duration(durm)) {
        return line_error(line_no, "bad duration");
      }
    } else if (kind == "coherence_ns") {
      if (fields.size() != 3) return line_error(line_no, "coherence_ns needs 2 values");
      if (!qfs::parse_double(fields[1], t1) || !qfs::parse_double(fields[2], t2) ||
          !valid_duration(t1) || !valid_duration(t2)) {
        return line_error(line_no, "bad coherence time");
      }
      have_coherence = true;
    } else {
      return line_error(line_no, "unknown record type '" + kind + "'");
    }
  }

  ErrorModel model(f1, f2, fm);
  model.set_durations_ns(dur1, dur2, durm);
  if (have_coherence) model.set_coherence_times_ns(t1, t2);
  for (const auto& q : qubits) model.set_qubit_fidelity(q.id, q.f);
  for (const auto& e : edges) model.set_edge_fidelity(e.a, e.b, e.f);
  return model;
}

std::string calibration_to_text(
    const ErrorModel& model, int num_qubits,
    const std::vector<std::pair<int, int>>& edges) {
  std::ostringstream os;
  os << "# qfs calibration\n";
  os << "defaults," << qfs::format_double(model.single_qubit_fidelity(), 6)
     << ',' << qfs::format_double(model.two_qubit_fidelity(), 6) << ','
     << qfs::format_double(model.measurement_fidelity(), 6) << '\n';
  os << "durations_ns," << qfs::format_double(model.single_qubit_duration_ns(), 1)
     << ',' << qfs::format_double(model.two_qubit_duration_ns(), 1) << ','
     << qfs::format_double(model.measurement_duration_ns(), 1) << '\n';
  os << "coherence_ns," << qfs::format_double(model.t1_ns(), 1) << ','
     << qfs::format_double(model.t2_ns(), 1) << '\n';
  for (int q = 0; q < num_qubits; ++q) {
    os << "qubit," << q << ','
       << qfs::format_double(model.qubit_fidelity(q), 6) << '\n';
  }
  for (const auto& [a, b] : edges) {
    os << "edge," << a << ',' << b << ','
       << qfs::format_double(model.edge_fidelity(a, b), 6) << '\n';
  }
  return os.str();
}

qfs::StatusOr<Topology> parse_topology(const std::string& text) {
  std::string name = "custom";
  int num_qubits = -1;
  std::vector<std::pair<int, int>> edges;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::string_view trimmed = qfs::trim(line);
    if (trimmed.empty()) continue;
    auto fields = qfs::split(trimmed, ',');
    for (auto& f : fields) f = std::string(qfs::trim(f));
    const std::string& kind = fields[0];
    if (kind == "name") {
      if (fields.size() != 2 || fields[1].empty()) {
        return line_error(line_no, "name needs one value");
      }
      name = fields[1];
    } else if (kind == "qubits") {
      if (fields.size() != 2 || !qfs::parse_int(fields[1], num_qubits) ||
          num_qubits < 1) {
        return line_error(line_no, "bad qubit count");
      }
    } else if (kind == "edge") {
      int a = 0, b = 0;
      if (fields.size() != 3 || !qfs::parse_int(fields[1], a) ||
          !qfs::parse_int(fields[2], b) || a < 0 || b < 0 || a == b) {
        return line_error(line_no, "bad edge");
      }
      if (num_qubits >= 1 && (a >= num_qubits || b >= num_qubits)) {
        return line_error(line_no, "edge endpoint out of range (topology has " +
                                       std::to_string(num_qubits) + " qubits)");
      }
      if (num_qubits < 1) {
        return line_error(line_no, "edge before the qubits record");
      }
      edges.emplace_back(a, b);
    } else {
      return line_error(line_no, "unknown record type '" + kind + "'");
    }
  }
  if (num_qubits < 1) return qfs::parse_error("topology has no qubits record");
  graph::Graph g(num_qubits);
  for (const auto& [a, b] : edges) {
    if (!g.has_edge(a, b)) g.add_edge(a, b);
  }
  if (num_qubits > 1 && !graph::is_connected(g)) {
    return qfs::parse_error("topology is disconnected");
  }
  return Topology(name, std::move(g));
}

std::string topology_to_text(const Topology& topology) {
  std::ostringstream os;
  os << "# qfs topology\n";
  os << "name," << topology.name() << '\n';
  os << "qubits," << topology.num_qubits() << '\n';
  for (const auto& [a, b] : topology.edge_list()) {
    os << "edge," << a << ',' << b << '\n';
  }
  return os.str();
}

}  // namespace qfs::device
