#include "device/topology.h"

#include <algorithm>
#include <sstream>

#include "graph/algorithms.h"
#include "graph/generators.h"

namespace qfs::device {

namespace {

std::shared_ptr<const TopologyTables> build_tables(const graph::Graph& g) {
  auto tables = std::make_shared<TopologyTables>();
  const int n = g.num_nodes();
  tables->n = n;
  // BFS rows land directly in the row-major buffer; no nested vectors.
  tables->dist = graph::flat_all_pairs_hop_distances(g);
  tables->connected =
      std::none_of(tables->dist.begin(), tables->dist.end(),
                   [](int d) { return d == graph::kUnreachable; });
  // Lexicographic edge list (the order graph::Graph::edges() reports and
  // canonical_device_text fingerprints), plus the SoA mirror.
  for (const auto& e : g.edges()) {
    tables->edges.emplace_back(e.u, e.v);
    tables->edge_a.push_back(e.u);
    tables->edge_b.push_back(e.v);
  }
  // CSR neighbour arrays (ascending per qubit: Graph stores neighbours in
  // an ordered map).
  tables->nbr_offsets.reserve(static_cast<std::size_t>(n) + 1);
  tables->nbr_offsets.push_back(0);
  for (int q = 0; q < n; ++q) {
    for (const auto& [v, w] : g.neighbors(q)) {
      (void)w;
      tables->nbr.push_back(v);
    }
    tables->nbr_offsets.push_back(static_cast<int>(tables->nbr.size()));
  }
  return tables;
}

}  // namespace

Topology::Topology(std::string name, graph::Graph coupling)
    : name_(std::move(name)), coupling_(std::move(coupling)) {
  tables_ = build_tables(coupling_);
}

int Topology::distance(int a, int b) const {
  QFS_ASSERT_MSG(0 <= a && a < num_qubits(), "qubit out of range");
  QFS_ASSERT_MSG(0 <= b && b < num_qubits(), "qubit out of range");
  int d = distance_unchecked(a, b);
  QFS_ASSERT_MSG(d != graph::kUnreachable, "disconnected topology");
  return d;
}

bool Topology::reachable(int a, int b) const {
  QFS_ASSERT_MSG(0 <= a && a < num_qubits(), "qubit out of range");
  QFS_ASSERT_MSG(0 <= b && b < num_qubits(), "qubit out of range");
  return distance_unchecked(a, b) != graph::kUnreachable;
}

std::vector<int> Topology::shortest_path(int a, int b) const {
  return graph::shortest_path(coupling_, a, b);
}

const std::vector<std::pair<int, int>>& Topology::edge_list() const {
  static const std::vector<std::pair<int, int>> kEmpty;
  return tables_ == nullptr ? kEmpty : tables_->edges;
}

namespace {

SubTopology make_subtopology(const Topology& parent, std::vector<int> keep,
                             const std::string& name) {
  std::sort(keep.begin(), keep.end());
  graph::Graph sub = graph::induced_subgraph(parent.coupling(), keep);
  SubTopology out;
  std::string sub_name =
      name.empty() ? parent.name() + "-sub" + std::to_string(keep.size())
                   : name;
  out.topology = Topology(sub_name, std::move(sub));
  out.from_parent.assign(static_cast<std::size_t>(parent.num_qubits()), -1);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    out.from_parent[static_cast<std::size_t>(keep[i])] = static_cast<int>(i);
  }
  out.to_parent = std::move(keep);
  return out;
}

}  // namespace

SubTopology induced_subtopology(const Topology& parent,
                                const std::vector<int>& keep,
                                const std::string& name) {
  return make_subtopology(parent, keep, name);
}

SubTopology largest_connected_component(const Topology& parent,
                                        const std::string& name) {
  return make_subtopology(
      parent, graph::largest_component_nodes(parent.coupling()), name);
}

Topology surface_lattice(int narrow_width, int num_rows) {
  QFS_ASSERT_MSG(narrow_width >= 1, "narrow width must be >= 1");
  QFS_ASSERT_MSG(num_rows >= 3 && num_rows % 2 == 1,
                 "surface lattice needs an odd row count >= 3");
  // Row widths: narrow, narrow+1, narrow, ... (odd rows are wide).
  std::vector<int> row_start;
  std::vector<int> row_width;
  int total = 0;
  for (int r = 0; r < num_rows; ++r) {
    int w = (r % 2 == 0) ? narrow_width : narrow_width + 1;
    row_start.push_back(total);
    row_width.push_back(w);
    total += w;
  }
  graph::Graph g(total);
  for (int r = 0; r + 1 < num_rows; ++r) {
    int narrow = (r % 2 == 0) ? r : r + 1;  // the narrow row of the pair
    int wide = (r % 2 == 0) ? r + 1 : r;
    for (int j = 0; j < row_width[static_cast<std::size_t>(narrow)]; ++j) {
      int nq = row_start[static_cast<std::size_t>(narrow)] + j;
      g.add_edge(nq, row_start[static_cast<std::size_t>(wide)] + j);
      g.add_edge(nq, row_start[static_cast<std::size_t>(wide)] + j + 1);
    }
  }
  std::ostringstream name;
  name << "surface-" << total;
  return Topology(name.str(), std::move(g));
}

Topology surface7() {
  graph::Graph g(7);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 3);
  g.add_edge(1, 4);
  g.add_edge(2, 5);
  g.add_edge(3, 5);
  g.add_edge(3, 6);
  g.add_edge(4, 6);
  return Topology("surface-7", std::move(g));
}

Topology surface17() { return surface_lattice(2, 7); }

Topology surface97() { return surface_lattice(6, 15); }

Topology line_topology(int n) {
  std::ostringstream name;
  name << "line-" << n;
  return Topology(name.str(), graph::path_graph(n));
}

Topology ring_topology(int n) {
  std::ostringstream name;
  name << "ring-" << n;
  return Topology(name.str(), graph::cycle_graph(n));
}

Topology grid_topology(int rows, int cols) {
  std::ostringstream name;
  name << "grid-" << rows << "x" << cols;
  return Topology(name.str(), graph::grid_graph(rows, cols));
}

Topology star_topology(int n) {
  std::ostringstream name;
  name << "star-" << n;
  return Topology(name.str(), graph::star_graph(n));
}

Topology fully_connected_topology(int n) {
  std::ostringstream name;
  name << "full-" << n;
  return Topology(name.str(), graph::complete_graph(n));
}

Topology sycamore_topology(int rows, int cols) {
  QFS_ASSERT_MSG(rows >= 2 && cols >= 2, "sycamore grid needs rows, cols >= 2");
  graph::Graph g = graph::grid_graph(rows, cols);
  auto at = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r + 1 < rows; ++r) {
    for (int c = 0; c + 1 < cols; ++c) {
      if ((r + c) % 2 == 0) {
        g.add_edge(at(r, c), at(r + 1, c + 1));
      } else {
        g.add_edge(at(r + 1, c), at(r, c + 1));
      }
    }
  }
  std::ostringstream name;
  name << "sycamore-" << rows << "x" << cols;
  return Topology(name.str(), std::move(g));
}

Topology neutral_atom_topology(int rows, int cols, double radius) {
  QFS_ASSERT_MSG(rows >= 1 && cols >= 1, "need at least one atom");
  QFS_ASSERT_MSG(radius >= 1.0,
                 "interaction radius < 1 disconnects the lattice");
  const int n = rows * cols;
  graph::Graph g(n);
  // Small tolerance so radius = sqrt(2) written as 1.414... still couples
  // exact diagonals.
  const double r2 = radius * radius + 1e-9;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const double dr = a / cols - b / cols;
      const double dc = a % cols - b % cols;
      if (dr * dr + dc * dc <= r2) g.add_edge(a, b);
    }
  }
  std::ostringstream name;
  name << "neutral-atom-" << rows << "x" << cols;
  return Topology(name.str(), std::move(g));
}

Topology heavy_hex_lattice(int rows, int cols) {
  QFS_ASSERT_MSG(rows >= 1, "need at least one row");
  QFS_ASSERT_MSG(cols >= 3 && cols % 4 == 1,
                 "heavy-hex needs cols >= 3 with cols % 4 == 1");
  // Row qubits first (row-major), then bridge qubits appended.
  graph::Graph g(rows * cols);
  auto row_qubit = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c + 1 < cols; ++c) {
      g.add_edge(row_qubit(r, c), row_qubit(r, c + 1));
    }
  }
  int next = rows * cols;
  for (int r = 0; r + 1 < rows; ++r) {
    int phase = (r % 2 == 0) ? 0 : 2;
    for (int c = phase; c < cols; c += 4) {
      g.ensure_nodes(next + 1);
      g.add_edge(row_qubit(r, c), next);
      g.add_edge(next, row_qubit(r + 1, c));
      ++next;
    }
  }
  std::ostringstream name;
  name << "heavy-hex-" << g.num_nodes();
  return Topology(name.str(), std::move(g));
}

Topology heavy_hex27() {
  graph::Graph g(27);
  const int edges[][2] = {
      {0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},   {5, 8},
      {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12}, {11, 14}, {12, 13},
      {12, 15}, {13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18}, {18, 21},
      {19, 20}, {19, 22}, {21, 23}, {22, 25}, {23, 24}, {24, 25}, {25, 26}};
  for (const auto& e : edges) g.add_edge(e[0], e[1]);
  return Topology("heavy-hex-27", std::move(g));
}

}  // namespace qfs::device
