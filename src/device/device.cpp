#include "device/device.h"

namespace qfs::device {

Device::Device(std::string name, Topology topology, GateSet gateset,
               ErrorModel error_model)
    : name_(std::move(name)),
      topology_(std::move(topology)),
      gateset_(std::move(gateset)),
      error_model_(error_model) {}

void Device::set_control_groups(std::vector<int> group_of_qubit) {
  QFS_ASSERT_MSG(static_cast<int>(group_of_qubit.size()) == num_qubits(),
                 "control group vector size mismatch");
  for (int g : group_of_qubit) QFS_ASSERT_MSG(g >= 0, "negative group id");
  control_group_ = std::move(group_of_qubit);
}

int Device::control_group(int qubit) const {
  QFS_ASSERT_MSG(has_control_groups(), "device has no control groups");
  QFS_ASSERT_MSG(0 <= qubit && qubit < num_qubits(), "qubit out of range");
  return control_group_[static_cast<std::size_t>(qubit)];
}

namespace {

/// Cyclic 3-group assignment per lattice row, mirroring the three flux
/// frequency groups of the Versluis et al. control scheme. Row structure is
/// recovered from the alternating-width construction.
std::vector<int> surface_control_groups(int narrow_width, int num_rows) {
  std::vector<int> groups;
  for (int r = 0; r < num_rows; ++r) {
    int w = (r % 2 == 0) ? narrow_width : narrow_width + 1;
    for (int j = 0; j < w; ++j) groups.push_back(r % 3);
  }
  return groups;
}

ErrorModel versluis_error_model() {
  ErrorModel model(0.999, 0.99, 0.997);
  model.set_durations_ns(20.0, 40.0, 600.0);
  return model;
}

}  // namespace

Device surface7_device() {
  Device d("surface-7", surface7(), surface_code_gateset(),
           versluis_error_model());
  d.set_control_groups({0, 0, 1, 1, 1, 2, 2});  // rows 2-3-2
  d.set_spec("surface7");
  return d;
}

Device surface17_device() {
  Device d("surface-17", surface17(), surface_code_gateset(),
           versluis_error_model());
  d.set_control_groups(surface_control_groups(2, 7));
  d.set_spec("surface17");
  return d;
}

Device surface97_device() {
  Device d("surface-97", surface97(), surface_code_gateset(),
           versluis_error_model());
  d.set_control_groups(surface_control_groups(6, 15));
  d.set_spec("surface97");
  return d;
}

Device heavy_hex27_device() {
  ErrorModel model(0.9995, 0.99, 0.98);
  model.set_durations_ns(35.0, 300.0, 700.0);
  Device d("heavy-hex-27", heavy_hex27(), ibm_gateset(), model);
  d.set_spec("heavyhex27");
  return d;
}

Device line_device(int n) {
  Device d(line_topology(n).name(), line_topology(n), surface_code_gateset(),
           versluis_error_model());
  d.set_spec("line(n=" + std::to_string(n) + ")");
  return d;
}

Device grid_device(int rows, int cols) {
  Topology t = grid_topology(rows, cols);
  std::string name = t.name();
  Device d(std::move(name), std::move(t), surface_code_gateset(),
           versluis_error_model());
  d.set_spec("grid(rows=" + std::to_string(rows) +
             ",cols=" + std::to_string(cols) + ")");
  return d;
}

Device fully_connected_device(int n) {
  Topology t = fully_connected_topology(n);
  std::string name = t.name();
  Device d(std::move(name), std::move(t), surface_code_gateset(),
           versluis_error_model());
  d.set_spec("full(n=" + std::to_string(n) + ")");
  return d;
}

}  // namespace qfs::device
