// Primitive gate sets: which gate kinds a device executes natively.
#pragma once

#include <set>
#include <string>

#include "circuit/circuit.h"

namespace qfs::device {

/// The native vocabulary of a quantum processor.
class GateSet {
 public:
  GateSet() = default;
  GateSet(std::string name, std::set<circuit::GateKind> kinds);

  const std::string& name() const { return name_; }

  /// Measure/reset/barrier are always permitted; unitary kinds must be in
  /// the set.
  bool supports(circuit::GateKind kind) const;

  /// True when every gate of the circuit is native.
  bool supports_circuit(const circuit::Circuit& circuit) const;

  const std::set<circuit::GateKind>& kinds() const { return kinds_; }

 private:
  std::string name_;
  std::set<circuit::GateKind> kinds_;
};

/// Surface-code superconducting chip set (Versluis et al. style): arbitrary
/// x/y/z-axis rotations plus CZ.
GateSet surface_code_gateset();

/// IBM-style basis: rz, sx, x, cx.
GateSet ibm_gateset();

/// Sycamore-style basis: the fSim-class entangler modelled as CZ over the
/// discrete {rz, sx, x} single-qubit vocabulary (phased-XZ with virtual Z).
GateSet sycamore_gateset();

/// Trapped-ion basis: MS/GPI class — arbitrary-axis rotations plus the
/// Mølmer–Sørensen entangler modelled as CX.
GateSet ion_trap_gateset();

/// Neutral-atom basis: global Raman rotations plus the Rydberg-blockade CZ.
GateSet rydberg_gateset();

/// Every unitary kind: used for "no decomposition" experiments.
GateSet universal_gateset();

}  // namespace qfs::device
