#include "device/gateset.h"

namespace qfs::device {

using circuit::GateKind;

GateSet::GateSet(std::string name, std::set<GateKind> kinds)
    : name_(std::move(name)), kinds_(std::move(kinds)) {}

bool GateSet::supports(GateKind kind) const {
  if (!circuit::is_unitary(kind)) return true;
  return kinds_.count(kind) != 0;
}

bool GateSet::supports_circuit(const circuit::Circuit& circuit) const {
  for (const auto& g : circuit.gates()) {
    if (!supports(g.kind)) return false;
  }
  return true;
}

GateSet surface_code_gateset() {
  return GateSet("surface-code",
                 {GateKind::kI, GateKind::kX, GateKind::kY, GateKind::kRx,
                  GateKind::kRy, GateKind::kRz, GateKind::kZ, GateKind::kCz});
}

GateSet ibm_gateset() {
  return GateSet("ibm", {GateKind::kI, GateKind::kRz, GateKind::kSx,
                         GateKind::kX, GateKind::kCx});
}

GateSet sycamore_gateset() {
  return GateSet("sycamore", {GateKind::kI, GateKind::kRz, GateKind::kSx,
                              GateKind::kX, GateKind::kCz});
}

GateSet ion_trap_gateset() {
  return GateSet("ion-ms",
                 {GateKind::kI, GateKind::kX, GateKind::kY, GateKind::kZ,
                  GateKind::kRx, GateKind::kRy, GateKind::kRz, GateKind::kCx});
}

GateSet rydberg_gateset() {
  return GateSet("rydberg-cz", {GateKind::kI, GateKind::kRx, GateKind::kRy,
                                GateKind::kRz, GateKind::kCz});
}

GateSet universal_gateset() {
  std::set<GateKind> all;
  for (int k = 0; k < circuit::kNumGateKinds; ++k) {
    auto kind = static_cast<GateKind>(k);
    if (circuit::is_unitary(kind)) all.insert(kind);
  }
  return GateSet("universal", std::move(all));
}

}  // namespace qfs::device
