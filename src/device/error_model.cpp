#include "device/error_model.h"

#include <algorithm>

namespace qfs::device {

using circuit::GateKind;

namespace {
std::pair<int, int> ordered(int a, int b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

ErrorModel::ErrorModel(double single_qubit_fidelity, double two_qubit_fidelity,
                       double measurement_fidelity)
    : f1_(single_qubit_fidelity),
      f2_(two_qubit_fidelity),
      fm_(measurement_fidelity) {
  QFS_ASSERT_MSG(0.0 < f1_ && f1_ <= 1.0, "bad single-qubit fidelity");
  QFS_ASSERT_MSG(0.0 < f2_ && f2_ <= 1.0, "bad two-qubit fidelity");
  QFS_ASSERT_MSG(0.0 < fm_ && fm_ <= 1.0, "bad measurement fidelity");
}

void ErrorModel::set_qubit_fidelity(int qubit, double fidelity) {
  QFS_ASSERT_MSG(0.0 < fidelity && fidelity <= 1.0, "bad fidelity");
  qubit_override_[qubit] = fidelity;
}

void ErrorModel::set_edge_fidelity(int a, int b, double fidelity) {
  QFS_ASSERT_MSG(0.0 < fidelity && fidelity <= 1.0, "bad fidelity");
  edge_override_[ordered(a, b)] = fidelity;
}

double ErrorModel::qubit_fidelity(int qubit) const {
  auto it = qubit_override_.find(qubit);
  return it == qubit_override_.end() ? f1_ : it->second;
}

double ErrorModel::edge_fidelity(int a, int b) const {
  auto it = edge_override_.find(ordered(a, b));
  return it == edge_override_.end() ? f2_ : it->second;
}

double ErrorModel::gate_fidelity(const circuit::Gate& g) const {
  switch (g.kind) {
    case GateKind::kBarrier:
      return 1.0;
    case GateKind::kMeasure:
    case GateKind::kReset:
      return fm_;
    default:
      break;
  }
  if (g.qubits.size() == 1) return qubit_fidelity(g.qubits[0]);
  QFS_ASSERT_MSG(g.qubits.size() == 2,
                 "3-qubit gates have no native fidelity; decompose first");
  return edge_fidelity(g.qubits[0], g.qubits[1]);
}

void ErrorModel::set_durations_ns(double single, double two, double measure) {
  QFS_ASSERT_MSG(single > 0 && two > 0 && measure > 0, "bad durations");
  dur1_ = single;
  dur2_ = two;
  durm_ = measure;
}

double ErrorModel::gate_duration_ns(GateKind kind) const {
  switch (kind) {
    case GateKind::kBarrier:
      return 0.0;
    case GateKind::kMeasure:
    case GateKind::kReset:
      return durm_;
    default:
      break;
  }
  int arity = circuit::gate_arity(kind);
  if (arity == 1) return dur1_;
  if (arity == 2) return dur2_;
  // Three-qubit gates are not native; use a conservative 3x two-qubit slot
  // so schedules of undecomposed circuits remain well-defined.
  return 3.0 * dur2_;
}

void ErrorModel::set_coherence_times_ns(double t1, double t2) {
  QFS_ASSERT_MSG(t1 > 0 && t2 > 0, "coherence times must be positive");
  t1_ = t1;
  t2_ = t2;
}

void ErrorModel::randomize(int num_qubits,
                           const std::vector<std::pair<int, int>>& edges,
                           double spread, qfs::Rng& rng) {
  QFS_ASSERT_MSG(0.0 <= spread && spread < 1.0, "bad spread");
  auto jitter = [&rng, spread](double base) {
    double v = base * (1.0 + rng.uniform_real(-spread, spread));
    return std::clamp(v, 1e-6, 1.0);
  };
  for (int q = 0; q < num_qubits; ++q) qubit_override_[q] = jitter(f1_);
  for (const auto& [a, b] : edges) edge_override_[ordered(a, b)] = jitter(f2_);
}

}  // namespace qfs::device
