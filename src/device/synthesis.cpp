#include "device/synthesis.h"

#include <algorithm>

#include "graph/algorithms.h"

namespace qfs::device {

Topology synthesize_topology(const graph::Graph& interaction,
                             const SynthesisOptions& options) {
  QFS_ASSERT_MSG(options.max_degree >= 2, "degree budget must be >= 2");
  const int n = interaction.num_nodes();
  QFS_ASSERT_MSG(n >= 1, "need at least one qubit");
  graph::Graph coupling(n);

  // Heaviest interactions first: each becomes a physical coupler while the
  // endpoints have fan-out left.
  std::vector<graph::Edge> edges = interaction.edges();
  std::stable_sort(edges.begin(), edges.end(),
                   [](const graph::Edge& a, const graph::Edge& b) {
                     return a.weight > b.weight;
                   });
  for (const auto& e : edges) {
    if (coupling.degree(e.u) < options.max_degree &&
        coupling.degree(e.v) < options.max_degree) {
      coupling.add_edge(e.u, e.v);
    }
  }

  // Stitch components (isolated qubits included) through low-degree nodes.
  while (true) {
    auto comp = graph::connected_components(coupling);
    int num_components = 0;
    for (int c : comp) num_components = std::max(num_components, c + 1);
    if (num_components <= 1) break;
    // Lowest-degree representative of each component.
    std::vector<int> representative(static_cast<std::size_t>(num_components), -1);
    for (int v = 0; v < n; ++v) {
      int c = comp[static_cast<std::size_t>(v)];
      int& rep = representative[static_cast<std::size_t>(c)];
      if (rep == -1 || coupling.degree(v) < coupling.degree(rep)) rep = v;
    }
    // Chain component 0's rep to component 1's rep; loop handles the rest.
    coupling.add_edge(representative[0], representative[1]);
  }

  return Topology(options.name, std::move(coupling));
}

}  // namespace qfs::device
