#include "device/faults.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "graph/algorithms.h"
#include "support/rng.h"
#include "support/strings.h"

namespace qfs::device {

namespace {

std::pair<int, int> ordered(int a, int b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

qfs::Status spec_error(const std::string& pair, const std::string& why) {
  return qfs::invalid_argument("fault spec '" + pair + "': " + why);
}

bool parse_fraction(const std::string& value, double lo_excl_hi, double& out) {
  // Accepts [0, lo_excl_hi]; rejects non-finite values.
  if (!qfs::parse_double(value, out)) return false;
  return std::isfinite(out) && 0.0 <= out && out <= lo_excl_hi;
}

}  // namespace

qfs::StatusOr<FaultSpec> parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  for (const auto& raw : qfs::split(text, ';')) {
    std::string pair(qfs::trim(raw));
    if (pair.empty()) continue;
    auto eq = pair.find('=');
    if (eq == std::string::npos) {
      return spec_error(pair, "expected key=value");
    }
    std::string key(qfs::trim(pair.substr(0, eq)));
    std::string value(qfs::trim(pair.substr(eq + 1)));
    if (key == "dead_qubits") {
      for (const auto& tok : qfs::split(value, '|')) {
        int q = 0;
        if (!qfs::parse_int(tok, q) || q < 0) {
          return spec_error(pair, "bad qubit id '" + tok + "'");
        }
        spec.dead_qubits.push_back(q);
      }
    } else if (key == "dead_edges") {
      for (const auto& tok : qfs::split(value, '|')) {
        auto ends = qfs::split(tok, '-');
        int a = 0, b = 0;
        if (ends.size() != 2 || !qfs::parse_int(ends[0], a) ||
            !qfs::parse_int(ends[1], b) || a < 0 || b < 0 || a == b) {
          return spec_error(pair, "bad edge '" + tok + "' (expected a-b)");
        }
        spec.dead_edges.push_back(ordered(a, b));
      }
    } else if (key == "dead_qubit_fraction") {
      if (!parse_fraction(value, 1.0, spec.dead_qubit_fraction)) {
        return spec_error(pair, "fraction must be in [0, 1]");
      }
    } else if (key == "dead_edge_fraction") {
      if (!parse_fraction(value, 1.0, spec.dead_edge_fraction)) {
        return spec_error(pair, "fraction must be in [0, 1]");
      }
    } else if (key == "drift") {
      if (!parse_fraction(value, 1.0, spec.fidelity_drift) ||
          spec.fidelity_drift >= 1.0) {
        return spec_error(pair, "drift must be in [0, 1)");
      }
    } else if (key == "seed") {
      int seed = 0;
      if (!qfs::parse_int(value, seed) || seed < 0) {
        return spec_error(pair, "bad seed");
      }
      spec.seed = static_cast<std::uint64_t>(seed);
    } else {
      return spec_error(pair, "unknown key '" + key + "'");
    }
  }
  return spec;
}

std::string fault_spec_to_string(const FaultSpec& spec) {
  std::ostringstream os;
  const char* sep = "";
  if (!spec.dead_qubits.empty()) {
    os << "dead_qubits=";
    for (std::size_t i = 0; i < spec.dead_qubits.size(); ++i) {
      os << (i ? "|" : "") << spec.dead_qubits[i];
    }
    sep = ";";
  }
  if (!spec.dead_edges.empty()) {
    os << sep << "dead_edges=";
    for (std::size_t i = 0; i < spec.dead_edges.size(); ++i) {
      os << (i ? "|" : "") << spec.dead_edges[i].first << '-'
         << spec.dead_edges[i].second;
    }
    sep = ";";
  }
  if (spec.dead_qubit_fraction > 0.0) {
    os << sep << "dead_qubit_fraction="
       << qfs::format_double(spec.dead_qubit_fraction, 4);
    sep = ";";
  }
  if (spec.dead_edge_fraction > 0.0) {
    os << sep << "dead_edge_fraction="
       << qfs::format_double(spec.dead_edge_fraction, 4);
    sep = ";";
  }
  if (spec.fidelity_drift > 0.0) {
    os << sep << "drift=" << qfs::format_double(spec.fidelity_drift, 4);
    sep = ";";
  }
  os << sep << "seed=" << spec.seed;
  return os.str();
}

std::string DegradedDevice::summary() const {
  std::ostringstream os;
  os << device.name() << ": " << device.num_qubits() << "/"
     << from_parent.size() << " qubits healthy (" << dead_qubits << " dead, "
     << stranded_qubits << " stranded), " << dead_edges << " couplers dead";
  return os.str();
}

qfs::StatusOr<DegradedDevice> FaultInjector::apply(const Device& parent) const {
  const Topology& topo = parent.topology();
  const int n = topo.num_qubits();
  const auto all_edges = topo.edge_list();

  // Explicit casualties, validated against the chip and deduplicated.
  std::set<int> dead_q;
  for (int q : spec_.dead_qubits) {
    if (q < 0 || q >= n) {
      return qfs::invalid_argument("fault spec kills qubit " +
                                   std::to_string(q) + " but " +
                                   parent.name() + " has qubits 0.." +
                                   std::to_string(n - 1));
    }
    dead_q.insert(q);
  }
  std::set<std::pair<int, int>> dead_e;
  for (const auto& [a, b] : spec_.dead_edges) {
    if (a >= n || b >= n || !topo.adjacent(a, b)) {
      return qfs::invalid_argument("fault spec kills coupler " +
                                   std::to_string(a) + "-" +
                                   std::to_string(b) + " which " +
                                   parent.name() + " does not have");
    }
    dead_e.insert(ordered(a, b));
  }

  qfs::Rng rng(spec_.seed);

  // Random qubit casualties on top of the explicit ones.
  std::vector<int> alive;
  for (int q = 0; q < n; ++q) {
    if (dead_q.count(q) == 0) alive.push_back(q);
  }
  int want_q = static_cast<int>(std::lround(spec_.dead_qubit_fraction * n));
  want_q = std::min(want_q, static_cast<int>(alive.size()));
  if (want_q > 0) {
    for (int idx : rng.sample_without_replacement(
             static_cast<int>(alive.size()), want_q)) {
      dead_q.insert(alive[static_cast<std::size_t>(idx)]);
    }
  }

  // Random coupler casualties among edges that are still operational.
  std::vector<std::pair<int, int>> live_edges;
  for (const auto& [a, b] : all_edges) {
    if (dead_q.count(a) || dead_q.count(b) || dead_e.count({a, b})) continue;
    live_edges.push_back({a, b});
  }
  int want_e = static_cast<int>(
      std::lround(spec_.dead_edge_fraction * all_edges.size()));
  want_e = std::min(want_e, static_cast<int>(live_edges.size()));
  if (want_e > 0) {
    for (int idx : rng.sample_without_replacement(
             static_cast<int>(live_edges.size()), want_e)) {
      dead_e.insert(live_edges[static_cast<std::size_t>(idx)]);
    }
  }

  if (static_cast<int>(dead_q.size()) == n) {
    return qfs::resource_exhausted("all " + std::to_string(n) + " qubits of " +
                                   parent.name() + " are dead");
  }

  // Healthy coupling graph over parent ids, then its largest connected
  // component restricted to healthy qubits becomes the degraded chip.
  graph::Graph healthy(n);
  for (const auto& [a, b] : all_edges) {
    if (dead_q.count(a) || dead_q.count(b) || dead_e.count({a, b})) continue;
    healthy.add_edge(a, b);
  }
  auto comp = graph::connected_components(healthy);
  std::vector<int> comp_size;
  for (int q = 0; q < n; ++q) {
    if (dead_q.count(q)) continue;  // dead qubits never count as members
    int c = comp[static_cast<std::size_t>(q)];
    if (c >= static_cast<int>(comp_size.size())) {
      comp_size.resize(static_cast<std::size_t>(c) + 1, 0);
    }
    ++comp_size[static_cast<std::size_t>(c)];
  }
  int best = -1;
  for (int c = 0; c < static_cast<int>(comp_size.size()); ++c) {
    if (best == -1 ||
        comp_size[static_cast<std::size_t>(c)] >
            comp_size[static_cast<std::size_t>(best)]) {
      best = c;
    }
  }
  std::vector<int> keep;
  for (int q = 0; q < n; ++q) {
    if (dead_q.count(q) == 0 && comp[static_cast<std::size_t>(q)] == best) {
      keep.push_back(q);
    }
  }
  QFS_ASSERT_MSG(!keep.empty(), "healthy component empty despite live qubits");

  DegradedDevice out;
  out.from_parent.assign(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    out.from_parent[static_cast<std::size_t>(keep[i])] = static_cast<int>(i);
  }
  out.to_parent = keep;
  out.dead_qubits = static_cast<int>(dead_q.size());
  out.dead_edges = static_cast<int>(dead_e.size());
  out.stranded_qubits =
      n - static_cast<int>(dead_q.size()) - static_cast<int>(keep.size());

  Topology degraded_topo(parent.name() + "-degraded",
                         graph::induced_subgraph(healthy, keep));

  // Translate the error model: surviving per-qubit/per-edge fidelities are
  // pinned as overrides on the new ids, then drifted downward.
  const ErrorModel& base = parent.error_model();
  ErrorModel em(base.single_qubit_fidelity(), base.two_qubit_fidelity(),
                base.measurement_fidelity());
  em.set_durations_ns(base.single_qubit_duration_ns(),
                      base.two_qubit_duration_ns(),
                      base.measurement_duration_ns());
  em.set_coherence_times_ns(base.t1_ns(), base.t2_ns());
  auto drifted = [this, &rng](double f) {
    if (spec_.fidelity_drift > 0.0) {
      f *= 1.0 - rng.uniform_real(0.0, spec_.fidelity_drift);
    }
    return std::clamp(f, 1e-6, 1.0);
  };
  for (int q = 0; q < degraded_topo.num_qubits(); ++q) {
    em.set_qubit_fidelity(
        q, drifted(base.qubit_fidelity(out.to_parent[static_cast<std::size_t>(q)])));
  }
  for (const auto& [a, b] : degraded_topo.edge_list()) {
    em.set_edge_fidelity(
        a, b,
        drifted(base.edge_fidelity(out.to_parent[static_cast<std::size_t>(a)],
                                   out.to_parent[static_cast<std::size_t>(b)])));
  }

  std::string name = degraded_topo.name();
  out.device = Device(name, std::move(degraded_topo), parent.gateset(), em);
  if (parent.has_control_groups()) {
    std::vector<int> groups;
    groups.reserve(keep.size());
    for (int p : keep) groups.push_back(parent.control_group(p));
    out.device.set_control_groups(std::move(groups));
  }
  return out;
}

}  // namespace qfs::device
