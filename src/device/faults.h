// Fault injection: degrade a Device the way NISQ hardware degrades between
// calibration runs — dead qubits, dead couplers, fidelity drift — so the
// compilation stack can be exercised and benchmarked against imperfect
// hardware instead of assuming a pristine chip.
//
// The injector is seeded and fully deterministic. Applying a FaultSpec
// yields a DegradedDevice: the largest connected healthy subgraph of the
// original chip, compacted to dense qubit ids, with the error model and
// control groups translated, plus the id maps back to the parent chip.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "device/device.h"
#include "support/status.h"

namespace qfs::device {

/// What breaks. Explicit lists name parent-chip qubits/couplers; fractions
/// add randomly chosen casualties on top (rounded to whole counts).
struct FaultSpec {
  std::vector<int> dead_qubits;
  std::vector<std::pair<int, int>> dead_edges;
  /// Fraction of the chip's qubits additionally killed at random, in [0, 1].
  double dead_qubit_fraction = 0.0;
  /// Fraction of the chip's couplers additionally killed at random, in [0, 1].
  double dead_edge_fraction = 0.0;
  /// Multiplicative fidelity drift: every surviving per-qubit/per-edge
  /// fidelity f becomes f * (1 - u) with u ~ uniform(0, drift), in [0, 1).
  double fidelity_drift = 0.0;
  std::uint64_t seed = 2022;

  bool empty() const {
    return dead_qubits.empty() && dead_edges.empty() &&
           dead_qubit_fraction == 0.0 && dead_edge_fraction == 0.0 &&
           fidelity_drift == 0.0;
  }
};

/// Parse a CLI fault spec: semicolon-separated key=value pairs.
///   dead_qubits=3|17|42 ; dead_edges=0-1|4-5 ; dead_qubit_fraction=0.1 ;
///   dead_edge_fraction=0.1 ; drift=0.02 ; seed=7
/// Unknown keys, malformed numbers, non-finite or out-of-range values are
/// rejected with an invalid_argument Status naming the offending pair.
qfs::StatusOr<FaultSpec> parse_fault_spec(const std::string& text);

/// Render a spec back into the parse_fault_spec format (for diagnostics).
std::string fault_spec_to_string(const FaultSpec& spec);

/// A degraded chip: the largest connected healthy region of the parent,
/// presented as a valid standalone Device.
struct DegradedDevice {
  Device device;
  /// Degraded qubit id -> parent qubit id (ascending).
  std::vector<int> to_parent;
  /// Parent qubit id -> degraded qubit id, or -1 if the qubit was lost.
  std::vector<int> from_parent;

  int dead_qubits = 0;      ///< qubits killed (explicit + random)
  int dead_edges = 0;       ///< couplers killed directly (explicit + random)
  int stranded_qubits = 0;  ///< healthy qubits lost to disconnection

  /// One-line human-readable report for logs and CLI diagnostics.
  std::string summary() const;
};

/// Applies a FaultSpec to devices. Stateless apart from the spec; every
/// apply() re-seeds, so the same injector is reusable across devices.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec) : spec_(std::move(spec)) {}

  const FaultSpec& spec() const { return spec_; }

  /// Degrade `parent`. Fails with invalid_argument when the spec names
  /// qubits or couplers the chip does not have, and with resource_exhausted
  /// when no healthy qubit survives (an unsalvageable device).
  qfs::StatusOr<DegradedDevice> apply(const Device& parent) const;

 private:
  FaultSpec spec_;
};

}  // namespace qfs::device
