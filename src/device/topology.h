// Chip topologies: named coupling graphs with precomputed hop distances.
//
// The surface-code lattice family is the paper's target hardware:
// surface7() is the chip of Fig. 2, surface17() the Versluis et al. layout,
// and surface_lattice(6, 15) the 97-qubit "extended 100-qubit Surface-17"
// used for Figs. 3 and 5.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace qfs::device {

/// Immutable coupling graph plus all-pairs hop distances.
class Topology {
 public:
  Topology() = default;
  Topology(std::string name, graph::Graph coupling);

  const std::string& name() const { return name_; }
  int num_qubits() const { return coupling_.num_nodes(); }
  const graph::Graph& coupling() const { return coupling_; }

  bool adjacent(int a, int b) const { return coupling_.has_edge(a, b); }

  /// Hop distance between physical qubits (0 for a==b).
  int distance(int a, int b) const;

  /// One shortest path from a to b inclusive (deterministic tie-break).
  std::vector<int> shortest_path(int a, int b) const;

  /// Coupling edges as (a, b) pairs with a < b.
  std::vector<std::pair<int, int>> edge_list() const;

 private:
  std::string name_;
  graph::Graph coupling_;
  std::vector<std::vector<int>> dist_;
};

/// A topology carved out of a parent chip (e.g. the healthy remainder after
/// fault injection), with the qubit-id translation in both directions.
struct SubTopology {
  Topology topology;
  /// New qubit id -> parent qubit id (ascending).
  std::vector<int> to_parent;
  /// Parent qubit id -> new qubit id, or -1 for qubits that were dropped.
  std::vector<int> from_parent;
};

/// Topology induced on `keep` (distinct, in-range parent qubit ids; order is
/// ignored — new ids are assigned ascending). The result may be disconnected;
/// use largest_connected_component for a routable target.
SubTopology induced_subtopology(const Topology& parent,
                                const std::vector<int>& keep,
                                const std::string& name = "");

/// Largest connected component of `parent` as a standalone topology (ties
/// broken toward the component containing the smallest qubit id).
SubTopology largest_connected_component(const Topology& parent,
                                        const std::string& name = "");

/// Surface-code lattice with alternating row widths (narrow, narrow+1, ...)
/// starting and ending on a narrow row. Row count must be odd and >= 3.
/// Qubits are numbered row-major; narrow-row qubit j couples to wide-row
/// qubits j and j+1 above and below. surface_lattice(2, 7) is Surface-17.
Topology surface_lattice(int narrow_width, int num_rows);

/// The 7-qubit surface chip of Fig. 2 (rows 2-3-2, canonical numbering).
Topology surface7();

/// The 17-qubit Versluis et al. chip (rows 2-3-2-3-2-3-2).
Topology surface17();

/// 97-qubit lattice: the closest family member to the paper's "extended
/// 100-qubit version of the Surface-17".
Topology surface97();

Topology line_topology(int n);
Topology ring_topology(int n);
Topology grid_topology(int rows, int cols);
Topology star_topology(int n);
Topology fully_connected_topology(int n);

/// 27-qubit IBM Falcon-style heavy-hex coupling map.
Topology heavy_hex27();

/// Parameterised IBM-style heavy-hex lattice: `rows` horizontal qubit rows
/// of `cols` qubits, with bridge qubits between consecutive rows at every
/// fourth column (offset by two on alternating row pairs). Degree <= 3
/// everywhere — the heavy-hex property. cols must be >= 3 and satisfy
/// cols % 4 == 1 so both bridge phases land inside the row.
Topology heavy_hex_lattice(int rows, int cols);

}  // namespace qfs::device
