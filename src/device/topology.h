// Chip topologies: named coupling graphs with precomputed hop distances.
//
// The surface-code lattice family is the paper's target hardware:
// surface7() is the chip of Fig. 2, surface17() the Versluis et al. layout,
// and surface_lattice(6, 15) the 97-qubit "extended 100-qubit Surface-17"
// used for Figs. 3 and 5.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "support/assert.h"

namespace qfs::device {

/// Precomputed lookup tables for one coupling graph, built once per
/// Topology construction and *shared* (via shared_ptr) by every copy of
/// that Topology — a Device copied into a compile_resilient fallback
/// attempt, a SubTopology handed around, or a Topology stored by value all
/// reuse the same buffers instead of recomputing or deep-copying them.
///
/// Layout is optimized for the router/placer inner loops:
///  - `dist` is a single flat row-major n*n buffer (one indirection and one
///    multiply per lookup; rows are contiguous for the scan patterns),
///  - `edges`/`edge_a`/`edge_b` cache the lexicographic edge list, in the
///    exact order graph::Graph::edges() reports (the candidate-swap
///    iteration order and the cache fingerprint's canonical_device_text
///    both depend on it),
///  - `nbr_offsets`/`nbr` are the CSR neighbour arrays (nbr_offsets has
///    n+1 entries; neighbours of q are nbr[nbr_offsets[q]..nbr_offsets[q+1])
///    in ascending order).
struct TopologyTables {
  int n = 0;
  /// Row-major hop distances; graph::kUnreachable for disconnected pairs.
  std::vector<int> dist;
  /// Coupling edges as (a, b), a < b, lexicographic.
  std::vector<std::pair<int, int>> edges;
  /// Structure-of-arrays mirror of `edges` for the router candidate loop.
  std::vector<int> edge_a;
  std::vector<int> edge_b;
  /// CSR neighbour lists (ascending within each qubit's range).
  std::vector<int> nbr_offsets;
  std::vector<int> nbr;
  /// True when every qubit pair has a finite hop distance.
  bool connected = false;
};

/// Immutable coupling graph plus all-pairs hop distances.
class Topology {
 public:
  Topology() = default;
  Topology(std::string name, graph::Graph coupling);

  const std::string& name() const { return name_; }
  int num_qubits() const { return coupling_.num_nodes(); }
  const graph::Graph& coupling() const { return coupling_; }

  bool adjacent(int a, int b) const { return coupling_.has_edge(a, b); }

  /// Hop distance between physical qubits (0 for a==b).
  ///
  /// Contract (pinned by device_test):
  ///  - `a` and `b` must be in [0, num_qubits()); violations throw
  ///    qfs::AssertionError ("qubit out of range"), they are never UB,
  ///  - a disconnected pair throws qfs::AssertionError ("disconnected
  ///    topology"); callers that must tolerate partitioned chips (fault
  ///    injection, subtopology carving) check `reachable()` or `connected()`
  ///    first instead of catching.
  int distance(int a, int b) const;

  /// `distance` without the range/connectivity checks: the inner-loop
  /// variant. Preconditions: a and b in range, pair reachable (else the
  /// sentinel graph::kUnreachable comes back raw).
  int distance_unchecked(int a, int b) const {
    return tables_->dist[static_cast<std::size_t>(a) *
                             static_cast<std::size_t>(tables_->n) +
                         static_cast<std::size_t>(b)];
  }

  /// Row `a` of the flat distance table (num_qubits() entries); the
  /// scan-friendly form for loops that probe many targets from one source.
  const int* distance_row(int a) const {
    QFS_ASSERT_MSG(0 <= a && a < num_qubits(), "qubit out of range");
    return tables_->dist.data() +
           static_cast<std::size_t>(a) * static_cast<std::size_t>(tables_->n);
  }

  /// True when a finite hop distance exists (both qubits in range).
  bool reachable(int a, int b) const;

  /// True when every pair of qubits is reachable (n <= 1 counts as
  /// connected; a default-constructed empty topology does too).
  bool connected() const { return tables_ == nullptr || tables_->connected; }

  /// One shortest path from a to b inclusive (deterministic tie-break).
  std::vector<int> shortest_path(int a, int b) const;

  /// Coupling edges as (a, b) pairs with a < b, lexicographic — the order
  /// canonical_device_text fingerprints and the router iterates. Cached:
  /// repeated calls return the same buffer without allocating.
  const std::vector<std::pair<int, int>>& edge_list() const;

  /// The shared lookup tables (never null once constructed with a graph;
  /// null only for a default-constructed empty topology).
  const TopologyTables* tables() const { return tables_.get(); }

 private:
  std::string name_;
  graph::Graph coupling_;
  std::shared_ptr<const TopologyTables> tables_;
};

/// A topology carved out of a parent chip (e.g. the healthy remainder after
/// fault injection), with the qubit-id translation in both directions.
struct SubTopology {
  Topology topology;
  /// New qubit id -> parent qubit id (ascending).
  std::vector<int> to_parent;
  /// Parent qubit id -> new qubit id, or -1 for qubits that were dropped.
  std::vector<int> from_parent;
};

/// Topology induced on `keep` (distinct, in-range parent qubit ids; order is
/// ignored — new ids are assigned ascending). The result may be disconnected;
/// use largest_connected_component for a routable target.
SubTopology induced_subtopology(const Topology& parent,
                                const std::vector<int>& keep,
                                const std::string& name = "");

/// Largest connected component of `parent` as a standalone topology (ties
/// broken toward the component containing the smallest qubit id).
SubTopology largest_connected_component(const Topology& parent,
                                        const std::string& name = "");

/// Surface-code lattice with alternating row widths (narrow, narrow+1, ...)
/// starting and ending on a narrow row. Row count must be odd and >= 3.
/// Qubits are numbered row-major; narrow-row qubit j couples to wide-row
/// qubits j and j+1 above and below. surface_lattice(2, 7) is Surface-17.
Topology surface_lattice(int narrow_width, int num_rows);

/// The 7-qubit surface chip of Fig. 2 (rows 2-3-2, canonical numbering).
Topology surface7();

/// The 17-qubit Versluis et al. chip (rows 2-3-2-3-2-3-2).
Topology surface17();

/// 97-qubit lattice: the closest family member to the paper's "extended
/// 100-qubit version of the Surface-17".
Topology surface97();

Topology line_topology(int n);
Topology ring_topology(int n);
Topology grid_topology(int rows, int cols);
Topology star_topology(int n);
Topology fully_connected_topology(int n);

/// Sycamore-style diagonal grid: a rows x cols nearest-neighbour grid plus
/// one diagonal coupler per unit cell, alternating orientation by cell
/// parity ((r+c) even adds (r,c)-(r+1,c+1), odd adds (r+1,c)-(r,c+1)).
/// Approximates the brick-pattern connectivity of Google's Sycamore chip.
/// rows and cols must be >= 2.
Topology sycamore_topology(int rows, int cols);

/// Neutral-atom square lattice with interaction-radius connectivity: atoms
/// at integer grid points (row, col); two atoms couple when their Euclidean
/// distance is <= radius. radius >= 1 keeps nearest neighbours coupled
/// (required — the mapper needs a connected target); radius >= sqrt(2)
/// adds diagonals, radius >= 2 next-nearest rows/columns, and so on.
Topology neutral_atom_topology(int rows, int cols, double radius);

/// 27-qubit IBM Falcon-style heavy-hex coupling map.
Topology heavy_hex27();

/// Parameterised IBM-style heavy-hex lattice: `rows` horizontal qubit rows
/// of `cols` qubits, with bridge qubits between consecutive rows at every
/// fourth column (offset by two on alternating row pairs). Degree <= 3
/// everywhere — the heavy-hex property. cols must be >= 3 and satisfy
/// cols % 4 == 1 so both bridge phases land inside the row.
Topology heavy_hex_lattice(int rows, int cols);

}  // namespace qfs::device
