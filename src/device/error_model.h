// Device error and timing model.
//
// Default rates follow the superconducting surface-code platform of
// Versluis et al. (the paper's error-rate source [32]): 99.9 % single-qubit
// gates, 99 % two-qubit (CZ) gates. Per-qubit and per-edge overrides allow
// modelling error variability across a chip for noise-aware mapping.
#pragma once

#include <map>
#include <utility>

#include "circuit/gate.h"
#include "support/rng.h"

namespace qfs::device {

class ErrorModel {
 public:
  ErrorModel() = default;
  ErrorModel(double single_qubit_fidelity, double two_qubit_fidelity,
             double measurement_fidelity);

  double single_qubit_fidelity() const { return f1_; }
  double two_qubit_fidelity() const { return f2_; }
  double measurement_fidelity() const { return fm_; }

  /// Per-qubit override for single-qubit gate fidelity.
  void set_qubit_fidelity(int qubit, double fidelity);
  /// Per-edge override for two-qubit gate fidelity (order-insensitive).
  void set_edge_fidelity(int a, int b, double fidelity);

  /// Fidelity of a single-qubit unitary on `qubit`.
  double qubit_fidelity(int qubit) const;
  /// Fidelity of a two-qubit unitary on edge {a, b}.
  double edge_fidelity(int a, int b) const;

  /// Fidelity of an arbitrary gate placed on physical operands. Barriers are
  /// 1.0; 3-qubit gates are a contract violation (decompose first).
  double gate_fidelity(const circuit::Gate& g) const;

  // Durations in nanoseconds (surface-code platform defaults).
  double single_qubit_duration_ns() const { return dur1_; }
  double two_qubit_duration_ns() const { return dur2_; }
  double measurement_duration_ns() const { return durm_; }
  void set_durations_ns(double single, double two, double measure);

  double gate_duration_ns(circuit::GateKind kind) const;

  // Coherence times (transmon-typical defaults). T2 <= 2*T1 physically;
  // the model does not enforce the bound, callers pick what they measure.
  double t1_ns() const { return t1_; }
  double t2_ns() const { return t2_; }
  void set_coherence_times_ns(double t1, double t2);

  /// Multiplicative jitter on all per-qubit/per-edge fidelities: each
  /// becomes base * (1 + uniform(-spread, +spread)), clamped to (0, 1].
  /// Models error variability across a NISQ chip.
  void randomize(int num_qubits,
                 const std::vector<std::pair<int, int>>& edges, double spread,
                 qfs::Rng& rng);

 private:
  double f1_ = 0.999;
  double f2_ = 0.99;
  double fm_ = 0.997;
  double dur1_ = 20.0;
  double dur2_ = 40.0;
  double durm_ = 600.0;
  double t1_ = 30000.0;
  double t2_ = 20000.0;
  std::map<int, double> qubit_override_;
  std::map<std::pair<int, int>, double> edge_override_;
};

}  // namespace qfs::device
