// Application-specific topology synthesis — the paper's concluding idea
// made concrete: "algorithm-driven devices could be an effective solution
// in dealing with limited NISQ computing resources, as they can precisely
// be designed for some dedicated purpose."
//
// Given a qubit interaction graph, synthesise a coupling topology that
// realises the heaviest interactions as direct couplings under a physical
// degree budget (superconducting chips top out around degree 4).
#pragma once

#include "device/topology.h"
#include "graph/graph.h"

namespace qfs::device {

struct SynthesisOptions {
  /// Physical fan-out limit per qubit (4 = surface-code style).
  int max_degree = 4;
  std::string name = "synthesized";
};

/// Build a coupling topology for `interaction`:
///  1. interaction edges are added heaviest-first while both endpoints
///     stay within the degree budget,
///  2. remaining disconnected components are stitched together through
///     their lowest-degree qubits (routing needs a connected chip).
/// The result has interaction.num_nodes() qubits. max_degree >= 2 required
/// (below that no connected chip exists beyond two qubits). Connectivity
/// takes priority over the budget: in the pathological case where every
/// qubit of a component is saturated, a stitching edge may exceed it.
Topology synthesize_topology(const graph::Graph& interaction,
                             const SynthesisOptions& options = {});

}  // namespace qfs::device
