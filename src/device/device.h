// A Device bundles everything the compiler needs to know about a chip:
// coupling topology, primitive gate set, error/timing model, and the
// shared-control channel groups that constrain parallel scheduling.
#pragma once

#include <string>
#include <vector>

#include "device/error_model.h"
#include "device/gateset.h"
#include "device/topology.h"

namespace qfs::device {

class Device {
 public:
  Device() = default;
  Device(std::string name, Topology topology, GateSet gateset,
         ErrorModel error_model);

  const std::string& name() const { return name_; }

  /// Canonical registry spec that produced this device ("surface17",
  /// "heavy_hex(rows=3,cols=9)"), or the display name for devices built
  /// outside the registry (file: topologies, tests). The compile-cache
  /// fingerprint hashes this, so two backends that happen to share a
  /// coupling graph can never collide.
  const std::string& spec() const { return spec_.empty() ? name_ : spec_; }
  void set_spec(std::string spec) { spec_ = std::move(spec); }

  int num_qubits() const { return topology_.num_qubits(); }
  const Topology& topology() const { return topology_; }
  const GateSet& gateset() const { return gateset_; }
  const ErrorModel& error_model() const { return error_model_; }
  ErrorModel& mutable_error_model() { return error_model_; }

  /// Control group of a qubit. Qubits sharing analog control electronics
  /// belong to the same group; the scheduler forbids *different* gate kinds
  /// in the same cycle within one group (same-kind broadcast is free).
  /// An empty configuration means no control constraints.
  void set_control_groups(std::vector<int> group_of_qubit);
  bool has_control_groups() const { return !control_group_.empty(); }
  int control_group(int qubit) const;

 private:
  std::string name_;
  std::string spec_;
  Topology topology_;
  GateSet gateset_;
  ErrorModel error_model_;
  std::vector<int> control_group_;
};

/// Surface-code devices with the Versluis et al. error model and 3-way
/// flux-control groups assigned cyclically by lattice row.
Device surface7_device();
Device surface17_device();
Device surface97_device();

/// Heavy-hex 27-qubit device with the IBM basis (no control groups).
Device heavy_hex27_device();

/// Simple geometries with the surface-code gate set (useful baselines).
Device line_device(int n);
Device grid_device(int rows, int cols);
Device fully_connected_device(int n);

}  // namespace qfs::device
