// Circuit fidelity estimation.
//
// Following the caption of the paper's Fig. 3, the estimated circuit
// fidelity is the product of the fidelities of all one- and two-qubit gates
// in the circuit, using the device error model. Measurements/resets are not
// part of that product (the paper's metric is gate fidelity only); a
// variant including them is provided for completeness.
#pragma once

#include "circuit/circuit.h"
#include "device/device.h"

namespace qfs::device {

/// Floor applied to every per-gate fidelity before taking its log. A
/// faulted or degraded device can report a gate fidelity of (or rounding
/// to) zero, and log(0) = -inf poisons every downstream ratio with NaN;
/// clamping here keeps log-fidelities finite. 1e-12 is far below any
/// physical gate fidelity, so the floor never distorts healthy estimates.
inline constexpr double kMinGateFidelity = 1e-12;

/// Product of gate fidelities over all one- and two-qubit unitaries.
double estimate_gate_fidelity(const circuit::Circuit& circuit,
                              const Device& device);

/// log(fidelity): numerically safe for the paper's 100k-gate circuits where
/// the product itself underflows to zero.
double estimate_log_gate_fidelity(const circuit::Circuit& circuit,
                                  const Device& device);

/// Product including measurement and reset fidelities.
double estimate_total_fidelity(const circuit::Circuit& circuit,
                               const Device& device);

}  // namespace qfs::device
