#include "device/fidelity.h"

#include <cmath>

namespace qfs::device {

using circuit::GateKind;

namespace {

/// log of one gate fidelity, clamped to the documented floor. The negated
/// comparison also routes NaN reports to the floor.
double log_clamped(double fidelity) {
  if (!(fidelity >= kMinGateFidelity)) fidelity = kMinGateFidelity;
  return std::log(fidelity);
}

}  // namespace

double estimate_log_gate_fidelity(const circuit::Circuit& circuit,
                                  const Device& device) {
  const ErrorModel& em = device.error_model();
  double log_f = 0.0;
  for (const auto& g : circuit.gates()) {
    if (!circuit::is_unitary(g.kind)) continue;
    QFS_ASSERT_MSG(g.qubits.size() <= 2,
                   "fidelity of undecomposed 3-qubit gate");
    log_f += log_clamped(em.gate_fidelity(g));
  }
  return log_f;
}

double estimate_gate_fidelity(const circuit::Circuit& circuit,
                              const Device& device) {
  return std::exp(estimate_log_gate_fidelity(circuit, device));
}

double estimate_total_fidelity(const circuit::Circuit& circuit,
                               const Device& device) {
  const ErrorModel& em = device.error_model();
  double log_f = estimate_log_gate_fidelity(circuit, device);
  for (const auto& g : circuit.gates()) {
    if (g.kind == GateKind::kMeasure || g.kind == GateKind::kReset) {
      log_f += log_clamped(em.gate_fidelity(g));
    }
  }
  return std::exp(log_f);
}

}  // namespace qfs::device
