// Rendering of compilation-cache telemetry: the one-line summary the suite
// benches print and the JSON object `qfsc --cache-stats` emits.
//
// Depends only on the dependency-free cache/stats.h snapshot, keeping the
// report layer free of the cache's storage machinery.
#pragma once

#include <string>

#include "cache/stats.h"
#include "support/json.h"

namespace qfs::report {

/// e.g. "cache: 200 lookups, 180 hits (160 mem / 20 disk), 20 misses,
///       3 evictions, 1.2 MiB read, 240.0 KiB written, 0 corrupt"
std::string cache_summary_line(const cache::CacheStatsSnapshot& stats);

/// The same counters as a JSON object (all integers, raw bytes).
JsonValue cache_stats_to_json(const cache::CacheStatsSnapshot& stats);

/// Human-readable byte count ("512 B", "1.5 KiB", "3.2 MiB").
std::string format_bytes(std::uint64_t bytes);

}  // namespace qfs::report
