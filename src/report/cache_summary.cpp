#include "report/cache_summary.h"

#include <sstream>

#include "support/strings.h"

namespace qfs::report {

std::string format_bytes(std::uint64_t bytes) {
  if (bytes < 1024) return std::to_string(bytes) + " B";
  double value = static_cast<double>(bytes);
  const char* units[] = {"KiB", "MiB", "GiB", "TiB"};
  int unit = -1;
  while (value >= 1024.0 && unit < 3) {
    value /= 1024.0;
    ++unit;
  }
  return qfs::format_double(value, 1) + " " + units[unit];
}

std::string cache_summary_line(const cache::CacheStatsSnapshot& stats) {
  std::ostringstream os;
  os << "cache: " << stats.lookups() << " lookups, " << stats.hits()
     << " hits (" << stats.memory_hits << " mem / " << stats.disk_hits
     << " disk), " << stats.misses << " misses, " << stats.evictions
     << " evictions, " << format_bytes(stats.bytes_read) << " read, "
     << format_bytes(stats.bytes_written) << " written, "
     << stats.corrupt_entries << " corrupt";
  return os.str();
}

JsonValue cache_stats_to_json(const cache::CacheStatsSnapshot& stats) {
  auto integer = [](std::uint64_t v) {
    return JsonValue::integer(static_cast<long long>(v));
  };
  JsonValue doc = JsonValue::object();
  doc.set("lookups", integer(stats.lookups()))
      .set("hits", integer(stats.hits()))
      .set("memory_hits", integer(stats.memory_hits))
      .set("disk_hits", integer(stats.disk_hits))
      .set("misses", integer(stats.misses))
      .set("stores", integer(stats.stores))
      .set("evictions", integer(stats.evictions))
      .set("bytes_read", integer(stats.bytes_read))
      .set("bytes_written", integer(stats.bytes_written))
      .set("corrupt_entries", integer(stats.corrupt_entries));
  return doc;
}

}  // namespace qfs::report
