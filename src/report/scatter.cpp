#include "report/scatter.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "support/assert.h"
#include "support/strings.h"

namespace qfs::report {

std::string render_scatter(const std::vector<ScatterSeries>& series,
                           const ScatterOptions& options) {
  QFS_ASSERT_MSG(options.width >= 10 && options.height >= 5, "plot too small");
  double min_x = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double min_y = min_x, max_y = max_x;
  std::size_t points = 0;
  for (const auto& s : series) {
    QFS_ASSERT_MSG(s.xs.size() == s.ys.size(), "series length mismatch");
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      double y = s.ys[i];
      if (options.log_y) {
        if (y <= 0.0) continue;
        y = std::log10(y);
      }
      min_x = std::min(min_x, s.xs[i]);
      max_x = std::max(max_x, s.xs[i]);
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
      ++points;
    }
  }
  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  if (points == 0) {
    os << "(no data)\n";
    return os.str();
  }
  if (max_x == min_x) max_x = min_x + 1.0;
  if (max_y == min_y) max_y = min_y + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(options.height),
                                std::string(static_cast<std::size_t>(options.width), ' '));
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      double y = s.ys[i];
      if (options.log_y) {
        if (y <= 0.0) continue;
        y = std::log10(y);
      }
      int col = static_cast<int>(std::lround(
          (s.xs[i] - min_x) / (max_x - min_x) * (options.width - 1)));
      int row = static_cast<int>(std::lround(
          (y - min_y) / (max_y - min_y) * (options.height - 1)));
      row = options.height - 1 - row;  // origin bottom-left
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = s.marker;
    }
  }

  std::string y_hi = qfs::format_double(options.log_y ? std::pow(10, max_y) : max_y, 3);
  std::string y_lo = qfs::format_double(options.log_y ? std::pow(10, min_y) : min_y, 3);
  std::size_t margin = std::max(y_hi.size(), y_lo.size());

  for (int r = 0; r < options.height; ++r) {
    std::string label;
    if (r == 0) label = y_hi;
    if (r == options.height - 1) label = y_lo;
    os << label << std::string(margin - label.size(), ' ') << " |"
       << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(margin + 1, ' ') << '+'
     << std::string(static_cast<std::size_t>(options.width), '-') << '\n';
  std::string x_lo = qfs::format_double(min_x, 3);
  std::string x_hi = qfs::format_double(max_x, 3);
  os << std::string(margin + 2, ' ') << x_lo
     << std::string(std::max<std::size_t>(
            1, static_cast<std::size_t>(options.width) - x_lo.size() - x_hi.size()),
                    ' ')
     << x_hi << '\n';
  if (!options.x_label.empty() || !options.y_label.empty()) {
    os << std::string(margin + 2, ' ') << "x: " << options.x_label;
    if (options.log_y) {
      os << "   y (log scale): " << options.y_label;
    } else {
      os << "   y: " << options.y_label;
    }
    os << '\n';
  }
  for (const auto& s : series) {
    os << "  '" << s.marker << "' = " << s.label << '\n';
  }
  return os.str();
}

}  // namespace qfs::report
