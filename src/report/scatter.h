// ASCII scatter plots: terminal renderings of the paper's figures so a
// bench binary's stdout shows the series shape directly.
#pragma once

#include <string>
#include <vector>

namespace qfs::report {

struct ScatterSeries {
  std::string label;
  char marker = '*';
  std::vector<double> xs;
  std::vector<double> ys;
};

struct ScatterOptions {
  int width = 72;    ///< plot area columns
  int height = 20;   ///< plot area rows
  std::string x_label;
  std::string y_label;
  std::string title;
  bool log_y = false;  ///< plot log10(y) (y must be > 0)
};

/// Render one or more series into a character grid with axis ranges in the
/// margins. Later series overdraw earlier ones where they collide.
std::string render_scatter(const std::vector<ScatterSeries>& series,
                           const ScatterOptions& options);

}  // namespace qfs::report
