#include "report/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/assert.h"
#include "support/strings.h"

namespace qfs::report {

std::string render_histogram(const std::vector<double>& values,
                             const HistogramOptions& options) {
  QFS_ASSERT_MSG(options.bins >= 1, "need at least one bin");
  QFS_ASSERT_MSG(options.max_bar_width >= 1, "bar width must be positive");
  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  if (values.empty()) {
    os << "(no data)\n";
    return os.str();
  }

  double lo = options.lower, hi = options.upper;
  if (lo >= hi) {
    lo = *std::min_element(values.begin(), values.end());
    hi = *std::max_element(values.begin(), values.end());
    if (lo == hi) hi = lo + 1.0;
  }
  const double width = (hi - lo) / options.bins;

  std::vector<int> counts(static_cast<std::size_t>(options.bins), 0);
  for (double v : values) {
    int bin = static_cast<int>(std::floor((v - lo) / width));
    bin = std::clamp(bin, 0, options.bins - 1);
    ++counts[static_cast<std::size_t>(bin)];
  }
  int max_count = *std::max_element(counts.begin(), counts.end());

  // Align the range labels.
  std::vector<std::string> labels;
  std::size_t label_width = 0;
  for (int b = 0; b < options.bins; ++b) {
    std::string label = "[" + qfs::format_double(lo + b * width, 1) + ", " +
                        qfs::format_double(lo + (b + 1) * width, 1) +
                        (b + 1 == options.bins ? "]" : ")");
    label_width = std::max(label_width, label.size());
    labels.push_back(std::move(label));
  }
  for (int b = 0; b < options.bins; ++b) {
    const std::string& label = labels[static_cast<std::size_t>(b)];
    os << label << std::string(label_width - label.size(), ' ') << ' ';
    int count = counts[static_cast<std::size_t>(b)];
    int bar = max_count == 0
                  ? 0
                  : static_cast<int>(std::lround(
                        static_cast<double>(count) * options.max_bar_width /
                        max_count));
    if (count > 0 && bar == 0) bar = 1;  // non-empty bins stay visible
    for (int i = 0; i < bar; ++i) os << "█";
    os << ' ' << count << '\n';
  }
  return os.str();
}

}  // namespace qfs::report
