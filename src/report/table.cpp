#include "report/table.h"

#include <sstream>

#include "support/assert.h"

namespace qfs::report {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  QFS_ASSERT_MSG(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  QFS_ASSERT_MSG(row.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&os, &width](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace qfs::report
