// Aligned text tables for bench output (the "rows the paper reports").
#pragma once

#include <string>
#include <vector>

namespace qfs::report {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> row);

  /// Render with column alignment and a header underline.
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qfs::report
