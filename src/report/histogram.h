// ASCII histograms: distribution views for bench output.
#pragma once

#include <string>
#include <vector>

namespace qfs::report {

struct HistogramOptions {
  int bins = 10;
  int max_bar_width = 50;  ///< columns for the largest bin
  std::string title;
  /// Fixed range; when lower >= upper the data range is used.
  double lower = 0.0;
  double upper = 0.0;
};

/// Render values into equal-width bins with proportional bars:
///   [  0.0,  50.0) ███████████ 23
/// Values outside a fixed range are clamped into the edge bins.
std::string render_histogram(const std::vector<double>& values,
                             const HistogramOptions& options = {});

}  // namespace qfs::report
