#include "mapper/routing.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <queue>

#include "circuit/dag.h"
#include "circuit/flat.h"
#include "mapper/optimal.h"

namespace qfs::mapper {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using device::Device;

namespace {

/// Emit `g` with operands translated from virtual to physical.
void emit_remapped(Circuit& out, const Gate& g, const Layout& layout) {
  std::vector<int> phys;
  phys.reserve(g.qubits.size());
  for (int v : g.qubits) phys.push_back(layout.physical(v));
  out.add(g.kind, std::move(phys), g.params);
}

/// Swap the virtual contents of two coupled physical qubits, recording the
/// gate and the layout update.
void emit_swap(Circuit& out, Layout& layout, int pa, int pb, int& counter) {
  out.add(GateKind::kSwap, {pa, pb});
  layout.apply_swap(pa, pb);
  ++counter;
}

void check_routable(const Circuit& circuit, const Device& device) {
  QFS_ASSERT_MSG(circuit.num_qubits() <= device.num_qubits(),
                 "circuit wider than device");
  for (const Gate& g : circuit.gates()) {
    QFS_ASSERT_MSG(g.kind == GateKind::kBarrier || g.qubits.size() <= 2,
                   "route requires gates of arity <= 2; decompose first");
  }
}

/// Route one two-qubit gate by swapping operand A along `path` until it is
/// adjacent to operand B. `path` runs from A's location to B's location.
void swap_along_path(Circuit& out, Layout& layout,
                     const std::vector<int>& path, int& counter) {
  QFS_ASSERT_MSG(path.size() >= 2, "path too short");
  for (std::size_t i = 0; i + 2 < path.size(); ++i) {
    emit_swap(out, layout, path[i], path[i + 1], counter);
  }
}

}  // namespace

bool respects_connectivity(const Circuit& mapped, const Device& device) {
  const auto& topo = device.topology();
  return mapped.satisfies_connectivity(
      [&topo](int a, int b) { return topo.adjacent(a, b); });
}

// ---------------------------------------------------------------------------
// TrivialRouter
// ---------------------------------------------------------------------------

RoutingResult TrivialRouter::route(const Circuit& circuit, const Device& device,
                                   const Layout& initial,
                                   [[maybe_unused]] qfs::Rng& rng) const {
  check_routable(circuit, device);
  RoutingResult result;
  result.mapped = Circuit(device.num_qubits(), circuit.name());
  result.final_layout = initial;
  Layout& layout = result.final_layout;
  const auto& topo = device.topology();

  for (const Gate& g : circuit.gates()) {
    if (circuit::is_unitary(g.kind) && g.qubits.size() == 2) {
      int pa = layout.physical(g.qubits[0]);
      int pb = layout.physical(g.qubits[1]);
      if (!topo.adjacent(pa, pb)) {
        swap_along_path(result.mapped, layout, topo.shortest_path(pa, pb),
                        result.swaps_inserted);
      }
    }
    emit_remapped(result.mapped, g, layout);
  }
  return result;
}

// ---------------------------------------------------------------------------
// BridgeRouter
// ---------------------------------------------------------------------------

RoutingResult BridgeRouter::route(const Circuit& circuit, const Device& device,
                                  const Layout& initial,
                                  [[maybe_unused]] qfs::Rng& rng) const {
  check_routable(circuit, device);
  RoutingResult result;
  result.mapped = Circuit(device.num_qubits(), circuit.name());
  result.final_layout = initial;
  Layout& layout = result.final_layout;
  const auto& topo = device.topology();

  auto emit_bridge_cx = [&](int pc, int pm, int pt) {
    // CX(c,t) == CX(c,m) CX(m,t) CX(c,m) CX(m,t) with m between them.
    result.mapped.cx(pc, pm);
    result.mapped.cx(pm, pt);
    result.mapped.cx(pc, pm);
    result.mapped.cx(pm, pt);
  };

  for (const Gate& g : circuit.gates()) {
    if (circuit::is_unitary(g.kind) && g.qubits.size() == 2) {
      int pa = layout.physical(g.qubits[0]);
      int pb = layout.physical(g.qubits[1]);
      int dist = topo.distance(pa, pb);
      bool bridgeable =
          dist == 2 && (g.kind == GateKind::kCx || g.kind == GateKind::kCz);
      if (bridgeable) {
        auto path = topo.shortest_path(pa, pb);
        QFS_ASSERT(path.size() == 3);
        int middle = path[1];
        if (g.kind == GateKind::kCz) {
          // CZ = (I ⊗ H) CX (I ⊗ H); the pipeline lowers H afterwards.
          result.mapped.h(pb);
          emit_bridge_cx(pa, middle, pb);
          result.mapped.h(pb);
        } else {
          emit_bridge_cx(pa, middle, pb);
        }
        continue;  // gate realised without touching the layout
      }
      if (!topo.adjacent(pa, pb)) {
        swap_along_path(result.mapped, layout, topo.shortest_path(pa, pb),
                        result.swaps_inserted);
      }
    }
    emit_remapped(result.mapped, g, layout);
  }
  return result;
}

// ---------------------------------------------------------------------------
// LookaheadRouter (SABRE-style)
// ---------------------------------------------------------------------------

namespace {

/// Per-Op unitarity, precomputed so the flat inner loops replace the
/// is_unitary(kind) switch with one table load.
struct OpTraits {
  bool is_unitary[circuit::kNumOps] = {};
};

const OpTraits& op_traits() {
  static const OpTraits traits = [] {
    OpTraits t;
    for (int k = 0; k < circuit::kNumOps; ++k) {
      t.is_unitary[k] = circuit::is_unitary(static_cast<GateKind>(k));
    }
    return t;
  }();
  return traits;
}

/// Scratch buffers of the flat lookahead path. thread_local: the
/// compile_resilient fallback ladder retries the same circuit several
/// times on one thread, and SABRE refinement routes it forward and backward
/// per round — every attempt reuses these allocations (a per-circuit arena)
/// instead of re-growing a fresh DAG bookkeeping set each time.
struct LookaheadScratch {
  circuit::FlatCircuit flat;
  std::vector<int> unresolved;
  std::vector<std::uint8_t> emitted;
  std::deque<int> ready;
  std::vector<int> ahead;
};

LookaheadScratch& lookahead_scratch() {
  static thread_local LookaheadScratch scratch;
  return scratch;
}

/// Flat-IR lookahead routing: the same algorithm as the legacy body below,
/// decision for decision — identical edge iteration order, identical
/// floating-point accumulation order, identical tie-breaks — scanning
/// Instr operands and the flat distance rows instead of chasing Gate
/// vectors and apply_swap/revert trials. Output is emitted from the
/// original Gate objects, so the routed circuit is byte-identical to the
/// legacy path's (pinned suite-wide by flat_ir_test and the QFS_IR
/// determinism ctest). Precondition: connected topology (the caller falls
/// back to the legacy path otherwise so disconnected chips fail with the
/// same AssertionError they always did).
RoutingResult route_lookahead_flat(const Circuit& circuit, const Device& device,
                                   const Layout& initial, int window,
                                   double weight) {
  RoutingResult result;
  result.mapped = Circuit(device.num_qubits(), circuit.name());
  result.final_layout = initial;
  Layout& layout = result.final_layout;
  const auto& topo = device.topology();
  const auto& gates = circuit.gates();
  const device::TopologyTables& tables = *topo.tables();
  const std::vector<int>& v2p = layout.v2p();
  const OpTraits& traits = op_traits();

  LookaheadScratch& scratch = lookahead_scratch();
  scratch.flat = circuit::flatten(circuit);
  const std::vector<circuit::Instr>& instrs = scratch.flat.instrs;

  circuit::DependencyDag dag(circuit);
  std::vector<int>& unresolved = scratch.unresolved;
  unresolved.assign(instrs.size(), 0);
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    unresolved[i] =
        static_cast<int>(dag.predecessors(static_cast<int>(i)).size());
  }

  std::deque<int>& ready = scratch.ready;
  ready.clear();
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    if (unresolved[i] == 0) ready.push_back(static_cast<int>(i));
  }

  std::vector<std::uint8_t>& emitted = scratch.emitted;
  emitted.assign(instrs.size(), 0);
  auto resolve = [&](int gi) {
    emitted[static_cast<std::size_t>(gi)] = 1;
    for (int s : dag.successors(gi)) {
      if (--unresolved[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  };

  const int* dist = tables.dist.data();
  const int n = tables.n;
  auto is_blocked_2q = [&](int gi) {
    const circuit::Instr& ins = instrs[static_cast<std::size_t>(gi)];
    if (!(ins.num_qubits == 2 &&
          traits.is_unitary[static_cast<int>(ins.op)]))
      return false;
    const int pa = v2p[static_cast<std::size_t>(ins.q[0])];
    const int pb = v2p[static_cast<std::size_t>(ins.q[1])];
    return dist[static_cast<std::size_t>(pa) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(pb)] != 1;
  };

  std::size_t scan_start = 0;
  auto lookahead_set = [&]() -> const std::vector<int>& {
    while (scan_start < instrs.size() && emitted[scan_start] != 0)
      ++scan_start;
    std::vector<int>& ahead = scratch.ahead;
    ahead.clear();
    for (std::size_t i = scan_start;
         i < instrs.size() && static_cast<int>(ahead.size()) < window; ++i) {
      if (emitted[i] != 0) continue;
      const circuit::Instr& ins = instrs[i];
      if (ins.num_qubits == 2 && traits.is_unitary[static_cast<int>(ins.op)]) {
        ahead.push_back(static_cast<int>(i));
      }
    }
    return ahead;
  };

  int last_swap_a = -1, last_swap_b = -1;
  int swaps_since_progress = 0;
  const int stall_limit = 4 * std::max(4, device.num_qubits());

  while (true) {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t k = 0; k < ready.size();) {
        int gi = ready[k];
        if (!is_blocked_2q(gi)) {
          emit_remapped(result.mapped, gates[static_cast<std::size_t>(gi)],
                        layout);
          resolve(gi);
          ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(k));
          progressed = true;
          swaps_since_progress = 0;
          last_swap_a = last_swap_b = -1;
        } else {
          ++k;
        }
      }
    }
    if (ready.empty()) break;  // all gates emitted

    if (swaps_since_progress >= stall_limit) {
      int gi = ready.front();
      const circuit::Instr& ins = instrs[static_cast<std::size_t>(gi)];
      int pa = v2p[static_cast<std::size_t>(ins.q[0])];
      int pb = v2p[static_cast<std::size_t>(ins.q[1])];
      swap_along_path(result.mapped, layout, topo.shortest_path(pa, pb),
                      result.swaps_inserted);
      swaps_since_progress = 0;
      continue;
    }

    const std::vector<int>& ahead = lookahead_set();

    // Candidate swaps over the cached SoA edge arrays, in the same
    // lexicographic order the legacy path iterates edge_list(). Trials
    // adjust indices arithmetically (p==ea -> eb, p==eb -> ea) instead of
    // mutating the layout — the summed per-gate distances are the same
    // integers in the same order, so the accumulated doubles match the
    // legacy apply_swap/revert trial exactly.
    double best_score = std::numeric_limits<double>::infinity();
    int best_a = -1, best_b = -1;
    const std::size_t num_edges = tables.edge_a.size();
    for (std::size_t e = 0; e < num_edges; ++e) {
      const int ea = tables.edge_a[e];
      const int eb = tables.edge_b[e];
      bool touches_front = false;
      for (int gi : ready) {
        const circuit::Instr& ins = instrs[static_cast<std::size_t>(gi)];
        for (int s = 0; s < ins.num_qubits; ++s) {
          const int p = v2p[static_cast<std::size_t>(ins.q[s])];
          if (p == ea || p == eb) {
            touches_front = true;
            break;
          }
        }
        if (touches_front) break;
      }
      if (!touches_front) continue;
      if (ea == last_swap_a && eb == last_swap_b) continue;  // no ping-pong

      double front_term = 0.0;
      for (int gi : ready) {
        const circuit::Instr& ins = instrs[static_cast<std::size_t>(gi)];
        int pa = v2p[static_cast<std::size_t>(ins.q[0])];
        int pb = v2p[static_cast<std::size_t>(ins.q[1])];
        if (pa == ea) pa = eb;
        else if (pa == eb) pa = ea;
        if (pb == ea) pb = eb;
        else if (pb == eb) pb = ea;
        front_term +=
            dist[static_cast<std::size_t>(pa) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(pb)];
      }
      double ahead_term = 0.0;
      for (int gi : ahead) {
        const circuit::Instr& ins = instrs[static_cast<std::size_t>(gi)];
        int pa = v2p[static_cast<std::size_t>(ins.q[0])];
        int pb = v2p[static_cast<std::size_t>(ins.q[1])];
        if (pa == ea) pa = eb;
        else if (pa == eb) pa = ea;
        if (pb == ea) pb = eb;
        else if (pb == eb) pb = ea;
        ahead_term +=
            dist[static_cast<std::size_t>(pa) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(pb)];
      }

      double score = front_term / static_cast<double>(ready.size());
      if (!ahead.empty()) {
        score += weight * ahead_term / static_cast<double>(ahead.size());
      }
      if (score < best_score) {
        best_score = score;
        best_a = ea;
        best_b = eb;
      }
    }
    QFS_ASSERT_MSG(best_a >= 0, "no candidate swap found");
    emit_swap(result.mapped, layout, best_a, best_b, result.swaps_inserted);
    last_swap_a = best_a;
    last_swap_b = best_b;
    ++swaps_since_progress;
  }
  return result;
}

}  // namespace

RoutingResult LookaheadRouter::route(const Circuit& circuit,
                                     const Device& device,
                                     const Layout& initial,
                                     [[maybe_unused]] qfs::Rng& rng) const {
  check_routable(circuit, device);
  if (circuit::ir_mode() == circuit::IrMode::kFlat &&
      device.topology().connected()) {
    return route_lookahead_flat(circuit, device, initial, window_, weight_);
  }
  RoutingResult result;
  result.mapped = Circuit(device.num_qubits(), circuit.name());
  result.final_layout = initial;
  Layout& layout = result.final_layout;
  const auto& topo = device.topology();
  const auto& gates = circuit.gates();

  circuit::DependencyDag dag(circuit);
  std::vector<int> unresolved(gates.size(), 0);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    unresolved[i] = static_cast<int>(dag.predecessors(static_cast<int>(i)).size());
  }

  std::deque<int> ready;  // gates with all dependencies emitted
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (unresolved[i] == 0) ready.push_back(static_cast<int>(i));
  }

  std::vector<bool> emitted(gates.size(), false);
  auto resolve = [&](int gi) {
    emitted[static_cast<std::size_t>(gi)] = true;
    for (int s : dag.successors(gi)) {
      if (--unresolved[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  };

  auto is_blocked_2q = [&](int gi) {
    const Gate& g = gates[static_cast<std::size_t>(gi)];
    if (!(circuit::is_unitary(g.kind) && g.qubits.size() == 2)) return false;
    return !topo.adjacent(layout.physical(g.qubits[0]),
                          layout.physical(g.qubits[1]));
  };

  // Collect the next `window_` two-qubit gates after the front (by program
  // order among not-yet-emitted gates) for the lookahead term. `scan_start`
  // is a persistent cursor at the first not-yet-emitted gate: indices below
  // it stay emitted forever, so each call resumes there instead of
  // rescanning from 0 — without it routing is O(gates x window) quadratic
  // on the paper's 100k-gate circuits.
  std::size_t scan_start = 0;
  auto lookahead_set = [&]() {
    while (scan_start < gates.size() && emitted[scan_start]) ++scan_start;
    std::vector<int> ahead;
    for (std::size_t i = scan_start;
         i < gates.size() && static_cast<int>(ahead.size()) < window_; ++i) {
      if (emitted[i]) continue;
      const Gate& g = gates[i];
      if (circuit::is_unitary(g.kind) && g.qubits.size() == 2) {
        ahead.push_back(static_cast<int>(i));
      }
    }
    return ahead;
  };

  int last_swap_a = -1, last_swap_b = -1;
  int swaps_since_progress = 0;
  const int stall_limit = 4 * std::max(4, device.num_qubits());

  while (true) {
    // Emit everything executable.
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t k = 0; k < ready.size();) {
        int gi = ready[k];
        if (!is_blocked_2q(gi)) {
          emit_remapped(result.mapped, gates[static_cast<std::size_t>(gi)], layout);
          resolve(gi);
          ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(k));
          progressed = true;
          swaps_since_progress = 0;
          last_swap_a = last_swap_b = -1;
        } else {
          ++k;
        }
      }
    }
    if (ready.empty()) break;  // all gates emitted

    // Every ready gate is a blocked two-qubit gate: pick a swap.
    if (swaps_since_progress >= stall_limit) {
      // Safety valve: force-route the first blocked gate trivially.
      int gi = ready.front();
      const Gate& g = gates[static_cast<std::size_t>(gi)];
      int pa = layout.physical(g.qubits[0]);
      int pb = layout.physical(g.qubits[1]);
      swap_along_path(result.mapped, layout, topo.shortest_path(pa, pb),
                      result.swaps_inserted);
      swaps_since_progress = 0;
      continue;
    }

    std::vector<int> ahead = lookahead_set();

    // Candidate swaps: coupling edges touching an operand of a front gate.
    double best_score = std::numeric_limits<double>::infinity();
    int best_a = -1, best_b = -1;
    for (const auto& [ea, eb] : topo.edge_list()) {
      bool touches_front = false;
      for (int gi : ready) {
        const Gate& g = gates[static_cast<std::size_t>(gi)];
        for (int v : g.qubits) {
          int p = layout.physical(v);
          if (p == ea || p == eb) {
            touches_front = true;
            break;
          }
        }
        if (touches_front) break;
      }
      if (!touches_front) continue;
      if (ea == last_swap_a && eb == last_swap_b) continue;  // no ping-pong

      layout.apply_swap(ea, eb);
      double front_term = 0.0;
      for (int gi : ready) {
        const Gate& g = gates[static_cast<std::size_t>(gi)];
        front_term += topo.distance(layout.physical(g.qubits[0]),
                                    layout.physical(g.qubits[1]));
      }
      double ahead_term = 0.0;
      for (int gi : ahead) {
        const Gate& g = gates[static_cast<std::size_t>(gi)];
        ahead_term += topo.distance(layout.physical(g.qubits[0]),
                                    layout.physical(g.qubits[1]));
      }
      layout.apply_swap(ea, eb);  // revert

      double score = front_term / static_cast<double>(ready.size());
      if (!ahead.empty()) {
        score += weight_ * ahead_term / static_cast<double>(ahead.size());
      }
      if (score < best_score) {
        best_score = score;
        best_a = ea;
        best_b = eb;
      }
    }
    QFS_ASSERT_MSG(best_a >= 0, "no candidate swap found");
    emit_swap(result.mapped, layout, best_a, best_b, result.swaps_inserted);
    last_swap_a = best_a;
    last_swap_b = best_b;
    ++swaps_since_progress;
  }
  return result;
}

// ---------------------------------------------------------------------------
// NoiseAwareRouter
// ---------------------------------------------------------------------------

namespace {

/// Highest-fidelity routing path between two physical qubits: Dijkstra on
/// -log(edge fidelity). Returns the node sequence from `from` to `to`.
std::vector<int> best_fidelity_path(const Device& device, int from, int to) {
  const auto& coupling = device.topology().coupling();
  const auto& em = device.error_model();
  const int n = coupling.num_nodes();
  std::vector<double> dist(static_cast<std::size_t>(n),
                           std::numeric_limits<double>::infinity());
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(from)] = 0.0;
  pq.emplace(0.0, from);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == to) break;
    for (const auto& [v, w] : coupling.neighbors(u)) {
      double cost = -std::log(em.edge_fidelity(u, v));
      if (d + cost < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = d + cost;
        parent[static_cast<std::size_t>(v)] = u;
        pq.emplace(d + cost, v);
      }
    }
  }
  QFS_ASSERT_MSG(dist[static_cast<std::size_t>(to)] <
                     std::numeric_limits<double>::infinity(),
                 "disconnected coupling graph");
  std::vector<int> path;
  for (int x = to; x != -1; x = parent[static_cast<std::size_t>(x)]) {
    path.push_back(x);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

RoutingResult NoiseAwareRouter::route(const Circuit& circuit,
                                      const Device& device,
                                      const Layout& initial,
                                      [[maybe_unused]] qfs::Rng& rng) const {
  check_routable(circuit, device);
  RoutingResult result;
  result.mapped = Circuit(device.num_qubits(), circuit.name());
  result.final_layout = initial;
  Layout& layout = result.final_layout;
  const auto& topo = device.topology();

  for (const Gate& g : circuit.gates()) {
    if (circuit::is_unitary(g.kind) && g.qubits.size() == 2) {
      int pa = layout.physical(g.qubits[0]);
      int pb = layout.physical(g.qubits[1]);
      if (!topo.adjacent(pa, pb)) {
        swap_along_path(result.mapped, layout,
                        best_fidelity_path(device, pa, pb),
                        result.swaps_inserted);
      }
    }
    emit_remapped(result.mapped, g, layout);
  }
  return result;
}

std::unique_ptr<Router> make_router(const std::string& name) {
  if (name == "trivial") return std::make_unique<TrivialRouter>();
  if (name == "lookahead") return std::make_unique<LookaheadRouter>();
  if (name == "noise-aware") return std::make_unique<NoiseAwareRouter>();
  if (name == "bridge") return std::make_unique<BridgeRouter>();
  if (name == "optimal") return std::make_unique<OptimalRouter>();
  QFS_ASSERT_MSG(false, "unknown router: " + name);
  return nullptr;
}

const std::vector<std::string>& known_router_names() {
  static const std::vector<std::string> names = {
      "trivial", "lookahead", "noise-aware", "bridge", "optimal"};
  return names;
}

bool is_known_router(const std::string& name) {
  const auto& names = known_router_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace qfs::mapper
