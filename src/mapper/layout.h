// Layout: the bijection between virtual (circuit) and physical (chip)
// qubits maintained during placement and routing.
//
// Internally the virtual register is padded to the physical size, so the
// layout is always a full permutation; callers usually only care about the
// first `num_virtual` entries.
#pragma once

#include <vector>

#include "support/assert.h"

namespace qfs::mapper {

class Layout {
 public:
  Layout() = default;

  /// Identity layout: virtual i -> physical i, padded to num_physical.
  static Layout identity(int num_physical);

  /// Layout from an explicit virtual->physical injection of the first
  /// entries; remaining physical qubits are assigned to padding virtuals in
  /// ascending order.
  static Layout from_partial(const std::vector<int>& virtual_to_physical,
                             int num_physical);

  int num_qubits() const { return static_cast<int>(v2p_.size()); }

  int physical(int virtual_qubit) const {
    QFS_ASSERT_MSG(0 <= virtual_qubit && virtual_qubit < num_qubits(),
                   "virtual qubit out of range");
    return v2p_[static_cast<std::size_t>(virtual_qubit)];
  }
  int virtual_qubit(int physical_qubit) const {
    QFS_ASSERT_MSG(0 <= physical_qubit && physical_qubit < num_qubits(),
                   "physical qubit out of range");
    return p2v_[static_cast<std::size_t>(physical_qubit)];
  }

  /// Raw virtual->physical table for inner loops that have already
  /// validated their indices (the flat-IR router scans this directly
  /// instead of paying physical()'s per-access range assert).
  const std::vector<int>& v2p() const { return v2p_; }

  /// Exchange the virtual qubits held by two physical locations (the
  /// layout-level effect of a SWAP gate on the chip).
  void apply_swap(int physical_a, int physical_b);

  /// First `count` entries of the virtual->physical map.
  std::vector<int> initial_segment(int count) const;

  bool operator==(const Layout& other) const { return v2p_ == other.v2p_; }

 private:
  std::vector<int> v2p_;
  std::vector<int> p2v_;
};

}  // namespace qfs::mapper
