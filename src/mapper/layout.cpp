#include "mapper/layout.h"

#include <numeric>

namespace qfs::mapper {

Layout Layout::identity(int num_physical) {
  QFS_ASSERT_MSG(num_physical >= 0, "negative size");
  Layout l;
  l.v2p_.resize(static_cast<std::size_t>(num_physical));
  std::iota(l.v2p_.begin(), l.v2p_.end(), 0);
  l.p2v_ = l.v2p_;
  return l;
}

Layout Layout::from_partial(const std::vector<int>& virtual_to_physical,
                            int num_physical) {
  QFS_ASSERT_MSG(static_cast<int>(virtual_to_physical.size()) <= num_physical,
                 "more virtual than physical qubits");
  Layout l;
  l.v2p_.assign(static_cast<std::size_t>(num_physical), -1);
  l.p2v_.assign(static_cast<std::size_t>(num_physical), -1);
  for (std::size_t v = 0; v < virtual_to_physical.size(); ++v) {
    int p = virtual_to_physical[v];
    QFS_ASSERT_MSG(0 <= p && p < num_physical, "physical target out of range");
    QFS_ASSERT_MSG(l.p2v_[static_cast<std::size_t>(p)] == -1,
                   "placement is not injective");
    l.v2p_[v] = p;
    l.p2v_[static_cast<std::size_t>(p)] = static_cast<int>(v);
  }
  // Pad remaining virtual ids onto free physical qubits in ascending order.
  int next_virtual = static_cast<int>(virtual_to_physical.size());
  for (int p = 0; p < num_physical; ++p) {
    if (l.p2v_[static_cast<std::size_t>(p)] == -1) {
      l.p2v_[static_cast<std::size_t>(p)] = next_virtual;
      l.v2p_[static_cast<std::size_t>(next_virtual)] = p;
      ++next_virtual;
    }
  }
  return l;
}

void Layout::apply_swap(int physical_a, int physical_b) {
  QFS_ASSERT_MSG(0 <= physical_a && physical_a < num_qubits(), "range");
  QFS_ASSERT_MSG(0 <= physical_b && physical_b < num_qubits(), "range");
  QFS_ASSERT_MSG(physical_a != physical_b, "swap of a qubit with itself");
  int va = p2v_[static_cast<std::size_t>(physical_a)];
  int vb = p2v_[static_cast<std::size_t>(physical_b)];
  std::swap(p2v_[static_cast<std::size_t>(physical_a)],
            p2v_[static_cast<std::size_t>(physical_b)]);
  v2p_[static_cast<std::size_t>(va)] = physical_b;
  v2p_[static_cast<std::size_t>(vb)] = physical_a;
}

std::vector<int> Layout::initial_segment(int count) const {
  QFS_ASSERT_MSG(0 <= count && count <= num_qubits(), "bad segment size");
  return {v2p_.begin(), v2p_.begin() + count};
}

}  // namespace qfs::mapper
