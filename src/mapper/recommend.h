// Algorithm-driven strategy selection — the paper's thesis as an API.
//
// "Analysing interaction graphs might help us understand why a mapping
// solution works better for specific (groups of) algorithms first, and
// then come up with optimised mapping techniques that are both
// algorithm-driven and hardware-aware."
//
// recommend_mapping() reads a circuit's interaction-graph profile and picks
// the mapping strategy its structure calls for, with a human-readable
// rationale. The rules use the paper's reduced metric set (max degree,
// density/avg shortest path, adjacency-weight spread).
#pragma once

#include <string>

#include "mapper/pipeline.h"
#include "profile/circuit_profile.h"

namespace qfs::mapper {

struct MappingRecommendation {
  MappingOptions options;
  std::string rationale;
};

/// Heuristic strategy choice from the profile:
///  * degree-<=4 sparse interaction graphs -> exact embedding (subgraph);
///  * concentrated weights (high adjacency spread) -> annealing placement;
///  * everything else -> degree-match placement;
/// all with the lookahead router and one SABRE refinement round.
MappingRecommendation recommend_mapping(const profile::CircuitProfile& p);

}  // namespace qfs::mapper
