// Routing (mapping step 4): insert SWAP gates so every two-qubit gate acts
// on coupled physical qubits.
//
// Implemented strategies:
//  * TrivialRouter    — for each non-adjacent two-qubit gate, swap one
//                       operand along a shortest coupling path until the
//                       operands are neighbours. This is the OpenQL
//                       trivial-mapper behaviour used for the paper's
//                       Figs. 3 and 5.
//  * LookaheadRouter  — SABRE-style: maintains the dependency front and
//                       picks the swap minimising a front + lookahead
//                       distance heuristic.
//  * NoiseAwareRouter — like TrivialRouter but routes along the coupling
//                       path with the highest SWAP fidelity product
//                       (hardware-aware co-design: per-edge error rates flow
//                       up into the compiler).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "device/device.h"
#include "mapper/layout.h"
#include "support/rng.h"

namespace qfs::mapper {

struct RoutingResult {
  /// Routed circuit on the physical register (may contain SWAP gates).
  circuit::Circuit mapped;
  Layout final_layout;
  int swaps_inserted = 0;
};

class Router {
 public:
  virtual ~Router() = default;
  virtual std::string name() const = 0;
  /// Route `circuit` (gates of arity <= 2; decompose first) starting from
  /// `initial`.
  virtual RoutingResult route(const circuit::Circuit& circuit,
                              const device::Device& device,
                              const Layout& initial, qfs::Rng& rng) const = 0;
};

class TrivialRouter final : public Router {
 public:
  std::string name() const override { return "trivial"; }
  RoutingResult route(const circuit::Circuit& circuit,
                      const device::Device& device, const Layout& initial,
                      qfs::Rng& rng) const override;
};

class LookaheadRouter final : public Router {
 public:
  explicit LookaheadRouter(int lookahead_window = 20,
                           double lookahead_weight = 0.5)
      : window_(lookahead_window), weight_(lookahead_weight) {}
  std::string name() const override { return "lookahead"; }
  RoutingResult route(const circuit::Circuit& circuit,
                      const device::Device& device, const Layout& initial,
                      qfs::Rng& rng) const override;

 private:
  int window_;
  double weight_;
};

class NoiseAwareRouter final : public Router {
 public:
  std::string name() const override { return "noise-aware"; }
  RoutingResult route(const circuit::Circuit& circuit,
                      const device::Device& device, const Layout& initial,
                      qfs::Rng& rng) const override;
};

/// TrivialRouter variant that realises distance-2 CX/CZ gates with the
/// 4-CX bridge network through the middle qubit instead of a SWAP — the
/// layout is preserved, which pays off when the same pair never interacts
/// again. Longer distances fall back to SWAP insertion.
class BridgeRouter final : public Router {
 public:
  std::string name() const override { return "bridge"; }
  RoutingResult route(const circuit::Circuit& circuit,
                      const device::Device& device, const Layout& initial,
                      qfs::Rng& rng) const override;

  /// Number of bridge networks emitted in the last result is reported via
  /// RoutingResult::swaps_inserted staying untouched; bridges add gates
  /// but no layout change.
};

/// Factory by name ("trivial", "lookahead", "noise-aware", "bridge",
/// "optimal"). An unknown name is a contract violation; external input
/// must be vetted with is_known_router first.
std::unique_ptr<Router> make_router(const std::string& name);

/// Every name make_router accepts, in factory order.
const std::vector<std::string>& known_router_names();
bool is_known_router(const std::string& name);

/// True when every multi-qubit gate of `mapped` respects the coupling graph
/// (the routing postcondition; used by tests and the pipeline contract).
bool respects_connectivity(const circuit::Circuit& mapped,
                           const device::Device& device);

}  // namespace qfs::mapper
