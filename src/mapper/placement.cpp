#include "mapper/placement.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "graph/algorithms.h"
#include "profile/interaction.h"

namespace qfs::mapper {

using circuit::Circuit;
using device::Device;

namespace {
void check_fits(const Circuit& circuit, const Device& device) {
  QFS_ASSERT_MSG(circuit.num_qubits() <= device.num_qubits(),
                 "circuit wider than device");
}
}  // namespace

Layout TrivialPlacer::place(const Circuit& circuit, const Device& device,
                            [[maybe_unused]] qfs::Rng& rng) const {
  check_fits(circuit, device);
  return Layout::identity(device.num_qubits());
}

Layout RandomPlacer::place(const Circuit& circuit, const Device& device,
                           qfs::Rng& rng) const {
  check_fits(circuit, device);
  std::vector<int> perm(static_cast<std::size_t>(device.num_qubits()));
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  perm.resize(static_cast<std::size_t>(circuit.num_qubits()));
  return Layout::from_partial(perm, device.num_qubits());
}

Layout DegreeMatchPlacer::place(const Circuit& circuit, const Device& device,
                                [[maybe_unused]] qfs::Rng& rng) const {
  check_fits(circuit, device);
  graph::Graph ig = profile::interaction_graph(circuit);

  // Virtual qubits by descending weighted degree (most interacting first).
  std::vector<int> virtuals(static_cast<std::size_t>(circuit.num_qubits()));
  std::iota(virtuals.begin(), virtuals.end(), 0);
  std::stable_sort(virtuals.begin(), virtuals.end(), [&ig](int a, int b) {
    return ig.weighted_degree(a) > ig.weighted_degree(b);
  });

  // Physical region: BFS from the highest-degree physical qubit keeps the
  // chosen region compact; inside the BFS frontier order, prefer
  // high-degree locations for high-degree virtuals.
  const auto& coupling = device.topology().coupling();
  int seed = 0;
  for (int p = 1; p < coupling.num_nodes(); ++p) {
    if (coupling.degree(p) > coupling.degree(seed)) seed = p;
  }
  std::vector<int> region = graph::bfs_order(coupling, seed);
  QFS_ASSERT_MSG(static_cast<int>(region.size()) >= circuit.num_qubits(),
                 "device coupling graph is disconnected");
  region.resize(static_cast<std::size_t>(circuit.num_qubits()));
  std::stable_sort(region.begin(), region.end(), [&coupling](int a, int b) {
    return coupling.degree(a) > coupling.degree(b);
  });

  std::vector<int> v2p(static_cast<std::size_t>(circuit.num_qubits()), -1);
  for (std::size_t i = 0; i < virtuals.size(); ++i) {
    v2p[static_cast<std::size_t>(virtuals[i])] = region[i];
  }
  return Layout::from_partial(v2p, device.num_qubits());
}

double AnnealingPlacer::placement_cost(const Circuit& circuit,
                                       const Device& device,
                                       const Layout& layout) {
  graph::Graph ig = profile::interaction_graph(circuit);
  double cost = 0.0;
  for (const auto& e : ig.edges()) {
    int d = device.topology().distance(layout.physical(e.u), layout.physical(e.v));
    cost += e.weight * (d - 1);
  }
  return cost;
}

Layout AnnealingPlacer::place(const Circuit& circuit, const Device& device,
                              qfs::Rng& rng) const {
  check_fits(circuit, device);
  graph::Graph ig = profile::interaction_graph(circuit);
  const auto& topo = device.topology();

  // Start from the degree-match heuristic.
  Layout layout = DegreeMatchPlacer().place(circuit, device, rng);

  auto cost_of = [&ig, &topo](const Layout& l) {
    double cost = 0.0;
    for (const auto& e : ig.edges()) {
      cost += e.weight * (topo.distance(l.physical(e.u), l.physical(e.v)) - 1);
    }
    return cost;
  };

  double current = cost_of(layout);
  Layout best = layout;
  double best_cost = current;
  double temp = initial_temp_;
  const int np = device.num_qubits();

  for (int it = 0; it < iterations_ && best_cost > 0.0; ++it) {
    int a = rng.uniform_int(0, np - 1);
    int b = rng.uniform_int(0, np - 1);
    if (a == b) continue;
    layout.apply_swap(a, b);
    double candidate = cost_of(layout);
    double delta = candidate - current;
    if (delta <= 0.0 || rng.uniform_real(0.0, 1.0) < std::exp(-delta / temp)) {
      current = candidate;
      if (current < best_cost) {
        best_cost = current;
        best = layout;
      }
    } else {
      layout.apply_swap(a, b);  // revert
    }
    temp = std::max(1e-3, temp * cooling_);
  }
  return best;
}

namespace {

/// Recursive backtracking core for SubgraphPlacer::find_embedding.
class EmbeddingSearch {
 public:
  EmbeddingSearch(const graph::Graph& pattern, const graph::Graph& host,
                  long long budget)
      : pattern_(pattern), host_(host), budget_(budget) {}

  std::vector<int> run() {
    const int np = pattern_.num_nodes();
    if (np == 0) return {};
    if (np > host_.num_nodes()) return {};
    order_ = connectivity_order();
    assignment_.assign(static_cast<std::size_t>(np), -1);
    used_.assign(static_cast<std::size_t>(host_.num_nodes()), false);
    if (extend(0)) return assignment_;
    return {};
  }

 private:
  /// Pattern nodes ordered so each (after the first) touches an earlier one
  /// where possible; ties by descending degree (most constrained first).
  std::vector<int> connectivity_order() const {
    const int n = pattern_.num_nodes();
    std::vector<int> order;
    std::vector<bool> chosen(static_cast<std::size_t>(n), false);
    for (int step = 0; step < n; ++step) {
      int best = -1;
      int best_links = -1, best_degree = -1;
      for (int v = 0; v < n; ++v) {
        if (chosen[static_cast<std::size_t>(v)]) continue;
        int links = 0;
        for (int u : order) {
          if (pattern_.has_edge(v, u)) ++links;
        }
        int degree = pattern_.degree(v);
        if (links > best_links ||
            (links == best_links && degree > best_degree)) {
          best = v;
          best_links = links;
          best_degree = degree;
        }
      }
      order.push_back(best);
      chosen[static_cast<std::size_t>(best)] = true;
    }
    return order;
  }

  bool extend(std::size_t depth) {
    if (depth == order_.size()) return true;
    if (--budget_ <= 0) return false;
    int v = order_[depth];
    // Candidate generation: if v already has a placed pattern neighbour,
    // only the host neighbours of its image can work — a VF2-style cut
    // that keeps the search linear on path/tree patterns.
    std::vector<int> candidates;
    int anchor = -1;
    for (const auto& [u, w] : pattern_.neighbors(v)) {
      if (assignment_[static_cast<std::size_t>(u)] >= 0) {
        anchor = assignment_[static_cast<std::size_t>(u)];
        break;
      }
    }
    if (anchor >= 0) {
      for (const auto& [p, w] : host_.neighbors(anchor)) {
        candidates.push_back(p);
      }
    } else {
      candidates.resize(static_cast<std::size_t>(host_.num_nodes()));
      std::iota(candidates.begin(), candidates.end(), 0);
    }
    for (int p : candidates) {
      if (used_[static_cast<std::size_t>(p)]) continue;
      if (host_.degree(p) < pattern_.degree(v)) continue;
      bool compatible = true;
      for (const auto& [u, w] : pattern_.neighbors(v)) {
        int pu = assignment_[static_cast<std::size_t>(u)];
        if (pu >= 0 && !host_.has_edge(p, pu)) {
          compatible = false;
          break;
        }
      }
      if (!compatible) continue;
      assignment_[static_cast<std::size_t>(v)] = p;
      used_[static_cast<std::size_t>(p)] = true;
      if (forward_check() && extend(depth + 1)) return true;
      assignment_[static_cast<std::size_t>(v)] = -1;
      used_[static_cast<std::size_t>(p)] = false;
      if (budget_ <= 0) return false;
    }
    return false;
  }

  /// Prune branches where some placed pattern node no longer has enough
  /// free host neighbours for its unplaced pattern neighbours (the
  /// "two-ended chain" trap on path-like interaction graphs).
  bool forward_check() const {
    for (int u = 0; u < pattern_.num_nodes(); ++u) {
      int pu = assignment_[static_cast<std::size_t>(u)];
      if (pu < 0) continue;
      int unplaced = 0;
      for (const auto& [nbr, w] : pattern_.neighbors(u)) {
        if (assignment_[static_cast<std::size_t>(nbr)] < 0) ++unplaced;
      }
      if (unplaced == 0) continue;
      int free_neighbors = 0;
      for (const auto& [hn, w] : host_.neighbors(pu)) {
        if (!used_[static_cast<std::size_t>(hn)]) ++free_neighbors;
      }
      if (free_neighbors < unplaced) return false;
    }
    return true;
  }

  const graph::Graph& pattern_;
  const graph::Graph& host_;
  long long budget_;
  std::vector<int> order_;
  std::vector<int> assignment_;
  std::vector<bool> used_;
};

}  // namespace

std::vector<int> SubgraphPlacer::find_embedding(const graph::Graph& pattern,
                                                const graph::Graph& host,
                                                long long node_budget) {
  return EmbeddingSearch(pattern, host, node_budget).run();
}

Layout SubgraphPlacer::place(const Circuit& circuit, const Device& device,
                             qfs::Rng& rng) const {
  check_fits(circuit, device);
  graph::Graph ig = profile::interaction_graph(circuit);
  std::vector<int> embedding =
      find_embedding(ig, device.topology().coupling(), node_budget_);
  if (embedding.empty() && ig.num_nodes() > 0 && ig.num_edges() > 0) {
    return AnnealingPlacer().place(circuit, device, rng);
  }
  if (static_cast<int>(embedding.size()) < circuit.num_qubits()) {
    embedding.resize(static_cast<std::size_t>(circuit.num_qubits()), -1);
  }
  // Isolated virtual qubits (or an empty circuit) need arbitrary free spots.
  std::vector<bool> used(static_cast<std::size_t>(device.num_qubits()), false);
  for (int p : embedding) {
    if (p >= 0) used[static_cast<std::size_t>(p)] = true;
  }
  int next = 0;
  for (auto& p : embedding) {
    if (p >= 0) continue;
    while (used[static_cast<std::size_t>(next)]) ++next;
    p = next;
    used[static_cast<std::size_t>(next)] = true;
  }
  return Layout::from_partial(embedding, device.num_qubits());
}

Layout NoiseAwarePlacer::place(const Circuit& circuit, const Device& device,
                               [[maybe_unused]] qfs::Rng& rng) const {
  check_fits(circuit, device);
  graph::Graph ig = profile::interaction_graph(circuit);
  const auto& topo = device.topology();
  const auto& em = device.error_model();

  std::vector<int> virtuals(static_cast<std::size_t>(circuit.num_qubits()));
  std::iota(virtuals.begin(), virtuals.end(), 0);
  std::stable_sort(virtuals.begin(), virtuals.end(), [&ig](int a, int b) {
    return ig.weighted_degree(a) > ig.weighted_degree(b);
  });

  std::vector<int> v2p(static_cast<std::size_t>(circuit.num_qubits()), -1);
  std::vector<bool> used(static_cast<std::size_t>(device.num_qubits()), false);

  // Seed: the physical qubit whose incident edges have the best total
  // log-fidelity (the sweet spot of the chip).
  auto site_quality = [&topo, &em](int p) {
    double q = 0.0;
    for (const auto& [nbr, w] : topo.coupling().neighbors(p)) {
      q += std::log(em.edge_fidelity(p, nbr));
    }
    return q;
  };

  for (int v : virtuals) {
    int best_p = -1;
    double best_score = -std::numeric_limits<double>::infinity();
    for (int p = 0; p < device.num_qubits(); ++p) {
      if (used[static_cast<std::size_t>(p)]) continue;
      double score = 0.0;
      bool has_placed_neighbor = false;
      for (const auto& [u, w] : ig.neighbors(v)) {
        int pu = v2p[static_cast<std::size_t>(u)];
        if (pu < 0) continue;
        has_placed_neighbor = true;
        if (topo.adjacent(p, pu)) {
          score += w * std::log(em.edge_fidelity(p, pu));
        } else {
          // Each hop of distance will cost a SWAP (3 entanglers) at the
          // chip's typical two-qubit fidelity.
          score += w * 3.0 * (topo.distance(p, pu) - 1) *
                   std::log(em.two_qubit_fidelity());
        }
      }
      if (!has_placed_neighbor) score = site_quality(p);
      if (score > best_score) {
        best_score = score;
        best_p = p;
      }
    }
    v2p[static_cast<std::size_t>(v)] = best_p;
    used[static_cast<std::size_t>(best_p)] = true;
  }
  return Layout::from_partial(v2p, device.num_qubits());
}

std::unique_ptr<Placer> make_placer(const std::string& name) {
  if (name == "trivial") return std::make_unique<TrivialPlacer>();
  if (name == "random") return std::make_unique<RandomPlacer>();
  if (name == "degree-match") return std::make_unique<DegreeMatchPlacer>();
  if (name == "annealing") return std::make_unique<AnnealingPlacer>();
  if (name == "subgraph") return std::make_unique<SubgraphPlacer>();
  if (name == "noise-aware") return std::make_unique<NoiseAwarePlacer>();
  QFS_ASSERT_MSG(false, "unknown placer: " + name);
  return nullptr;
}

const std::vector<std::string>& known_placer_names() {
  static const std::vector<std::string> names = {
      "trivial", "random", "degree-match", "annealing", "subgraph",
      "noise-aware"};
  return names;
}

bool is_known_placer(const std::string& name) {
  const auto& names = known_placer_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace qfs::mapper
