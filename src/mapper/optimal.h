// Exact routing for small instances: A* over (layout, executed-prefix)
// states with an admissible remaining-distance heuristic.
//
// Semantics match TrivialRouter's sequential model: gates execute in
// program order; a SWAP on any coupling edge costs 1. The result is a
// minimum-SWAP routing for that model, which serves as the optimality
// anchor the heuristic routers are measured against (bench_optimality_gap)
// and as a strong test oracle.
#pragma once

#include "mapper/routing.h"

namespace qfs::mapper {

class OptimalRouter final : public Router {
 public:
  /// `state_budget` bounds explored states; beyond it the router falls
  /// back to TrivialRouter (correct, not optimal) and reports via
  /// RoutingResult as usual.
  explicit OptimalRouter(long long state_budget = 2000000)
      : state_budget_(state_budget) {}

  std::string name() const override { return "optimal"; }

  RoutingResult route(const circuit::Circuit& circuit,
                      const device::Device& device, const Layout& initial,
                      qfs::Rng& rng) const override;

 private:
  long long state_budget_;
};

}  // namespace qfs::mapper
