// Initial placement (mapping step 3): choose which physical qubit each
// virtual qubit starts on.
//
// Implemented strategies:
//  * TrivialPlacer     — identity map (the OpenQL trivial-mapper baseline
//                        used throughout the paper's experiments).
//  * RandomPlacer      — uniformly random injection (control baseline).
//  * DegreeMatchPlacer — algorithm-driven: virtual qubits sorted by weighted
//                        interaction-graph degree are laid onto a BFS-compact
//                        region of the chip sorted by coupling degree.
//  * AnnealingPlacer   — algorithm-driven: simulated annealing on the
//                        weighted sum of coupling distances over interaction
//                        edges (the routing-pressure proxy).
#pragma once

#include <memory>
#include <string>

#include "circuit/circuit.h"
#include "device/device.h"
#include "mapper/layout.h"
#include "support/rng.h"

namespace qfs::mapper {

class Placer {
 public:
  virtual ~Placer() = default;
  virtual std::string name() const = 0;
  /// Produce an initial layout for `circuit` on `device`. The circuit must
  /// not be wider than the device.
  virtual Layout place(const circuit::Circuit& circuit,
                       const device::Device& device, qfs::Rng& rng) const = 0;
};

class TrivialPlacer final : public Placer {
 public:
  std::string name() const override { return "trivial"; }
  Layout place(const circuit::Circuit& circuit, const device::Device& device,
               qfs::Rng& rng) const override;
};

class RandomPlacer final : public Placer {
 public:
  std::string name() const override { return "random"; }
  Layout place(const circuit::Circuit& circuit, const device::Device& device,
               qfs::Rng& rng) const override;
};

class DegreeMatchPlacer final : public Placer {
 public:
  std::string name() const override { return "degree-match"; }
  Layout place(const circuit::Circuit& circuit, const device::Device& device,
               qfs::Rng& rng) const override;
};

class AnnealingPlacer final : public Placer {
 public:
  explicit AnnealingPlacer(int iterations = 20000, double initial_temp = 5.0,
                           double cooling = 0.9995)
      : iterations_(iterations), initial_temp_(initial_temp), cooling_(cooling) {}
  std::string name() const override { return "annealing"; }
  Layout place(const circuit::Circuit& circuit, const device::Device& device,
               qfs::Rng& rng) const override;

  /// The annealer's objective: sum over interaction edges of
  /// weight * (coupling distance - 1); 0 means every interacting pair is
  /// already adjacent.
  static double placement_cost(const circuit::Circuit& circuit,
                               const device::Device& device,
                               const Layout& layout);

 private:
  int iterations_;
  double initial_temp_;
  double cooling_;
};

/// Exact embedding search: if the circuit's interaction graph is
/// subgraph-isomorphic to the coupling graph, every two-qubit gate becomes
/// nearest-neighbour and routing inserts zero SWAPs. Backtracking with
/// most-constrained-first ordering and a node budget; falls back to the
/// annealing placer when no embedding is found in budget.
class SubgraphPlacer final : public Placer {
 public:
  explicit SubgraphPlacer(long long node_budget = 200000)
      : node_budget_(node_budget) {}
  std::string name() const override { return "subgraph"; }
  Layout place(const circuit::Circuit& circuit, const device::Device& device,
               qfs::Rng& rng) const override;

  /// The embedding search itself: virtual-graph node -> coupling node, or
  /// empty when no embedding was found within the budget.
  static std::vector<int> find_embedding(const graph::Graph& pattern,
                                         const graph::Graph& host,
                                         long long node_budget);

 private:
  long long node_budget_;
};

/// Noise-aware greedy placement: virtual qubits (heaviest interaction
/// first) are laid onto the physical region that maximises the log-fidelity
/// of their realised interactions, penalising non-adjacent placements by
/// coupling distance. The placement-side counterpart of NoiseAwareRouter.
class NoiseAwarePlacer final : public Placer {
 public:
  std::string name() const override { return "noise-aware"; }
  Layout place(const circuit::Circuit& circuit, const device::Device& device,
               qfs::Rng& rng) const override;
};

/// Factory by name ("trivial", "random", "degree-match", "annealing",
/// "subgraph", "noise-aware"). An unknown name is a contract violation;
/// external input must be vetted with is_known_placer first.
std::unique_ptr<Placer> make_placer(const std::string& name);

/// Every name make_placer accepts, in factory order.
const std::vector<std::string>& known_placer_names();
bool is_known_placer(const std::string& name);

}  // namespace qfs::mapper
