#include "mapper/recommend.h"

namespace qfs::mapper {

MappingRecommendation recommend_mapping(const profile::CircuitProfile& p) {
  MappingRecommendation rec;
  rec.options.router = "lookahead";
  rec.options.sabre_refinement_rounds = 1;

  // Degree <= 4 and moderate density: the interaction graph has a real
  // chance of embedding into a surface/grid chip outright.
  if (p.ig_nodes >= 2 && p.max_degree <= 4 && p.density <= 0.5) {
    rec.options.placer = "subgraph";
    rec.rationale =
        "sparse low-degree interaction graph (max degree " +
        std::to_string(p.max_degree) +
        "): try an exact embedding for zero-SWAP placement";
    return rec;
  }

  // Concentrated interactions: a few pairs dominate the weight. The
  // annealer can pin those pairs adjacent and eat the residual cheaply.
  if (p.edge_weight_stddev > 0.5 * (p.edge_weight_mean + 1e-12)) {
    rec.options.placer = "annealing";
    rec.rationale =
        "interaction weight concentrated on few pairs (weight CV > 0.5): "
        "anneal the placement around the heavy edges";
    return rec;
  }

  // Dense, uniform interaction structure: no placement can win big;
  // degree-match is the cheap reasonable default.
  rec.options.placer = "degree-match";
  rec.rationale =
      "dense/uniform interaction graph: match high-degree qubits to "
      "high-degree sites and rely on lookahead routing";
  return rec;
}

}  // namespace qfs::mapper
