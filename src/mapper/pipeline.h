// The full mapping pipeline (the paper's Sec. III four-step process):
//   1. decompose to the device's primitive gate set,
//   2. place virtual qubits (initial layout),
//   3. route with SWAP insertion,
//   4. expand SWAPs to primitives and (optionally) schedule.
//
// The result carries the paper's evaluation metrics: gate overhead,
// depth/latency overhead, and estimated fidelity before/after mapping.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "compiler/schedule.h"
#include "device/device.h"
#include "mapper/placement.h"
#include "mapper/routing.h"
#include "support/rng.h"
#include "support/status.h"

namespace qfs::mapper {

struct MappingOptions {
  std::string placer = "trivial";
  std::string router = "trivial";
  /// Non-empty: use this explicit virtual->physical placement (one entry
  /// per circuit qubit) instead of running the placer.
  std::vector<int> initial_layout;
  /// SABRE-style placement refinement: each round routes the circuit
  /// forward then backward, feeding the resulting layout back as the next
  /// initial placement. 0 disables refinement.
  int sabre_refinement_rounds = 0;
  /// Also compute ASAP schedules of the pre-/post-mapping circuits to
  /// report latency overhead (slower; off for bulk sweeps).
  bool compute_latency = false;
};

struct MappingResult {
  /// Final physical circuit: primitives only, connectivity-compliant.
  circuit::Circuit mapped;

  /// Virtual -> physical maps over the original circuit's qubits.
  std::vector<int> initial_layout;
  std::vector<int> final_layout;

  int swaps_inserted = 0;

  /// Gate counts of the decomposed circuit before and after mapping.
  int gates_before = 0;
  int gates_after = 0;
  /// (after - before) / before * 100.
  double gate_overhead_pct = 0.0;

  int depth_before = 0;
  int depth_after = 0;
  double depth_overhead_pct = 0.0;

  /// Estimated fidelity (product over 1q/2q gates) before/after mapping.
  double fidelity_before = 1.0;
  double fidelity_after = 1.0;
  double log_fidelity_before = 0.0;
  double log_fidelity_after = 0.0;
  /// (f_before - f_after) / f_before * 100 == (1 - exp(dlog)) * 100.
  double fidelity_decrease_pct = 0.0;

  /// ASAP makespans in ns (only when options.compute_latency).
  double latency_before_ns = 0.0;
  double latency_after_ns = 0.0;
  double latency_overhead_pct = 0.0;
};

/// Map `circuit` onto `device`. The circuit may use any gate kinds; it is
/// decomposed to the device gate set first. Deterministic given `rng`.
MappingResult map_circuit(const circuit::Circuit& circuit,
                          const device::Device& device,
                          const MappingOptions& options, qfs::Rng& rng);

/// Convenience overload: the paper's baseline (trivial placer + router).
MappingResult map_circuit(const circuit::Circuit& circuit,
                          const device::Device& device, qfs::Rng& rng);

// ---------------------------------------------------------------------------
// Resilient compilation: a fallback ladder over (placer, router, seed)
// attempts with per-attempt validation, for degraded or adversarial inputs.
// Unlike map_circuit, nothing here asserts on bad external input: every
// failure mode is reported as a structured Status and logged per attempt.
// ---------------------------------------------------------------------------

/// Per-attempt memoization hooks for compile_resilient, wired up by the
/// compilation cache (src/cache) without a mapper->cache dependency. The
/// attempt key is the rung's "placer|router|seed" triple; the installer is
/// expected to fold it into its own circuit/device/pipeline fingerprint.
/// `lookup` returns true and fills `out` on a hit; a hit still passes the
/// normal per-attempt validation, so a stale or damaged artifact degrades
/// to a fresh compile instead of escaping. `store` receives only results
/// that passed validation.
struct AttemptMemo {
  std::function<bool(const std::string& attempt_key, MappingResult* out)>
      lookup;
  std::function<void(const std::string& attempt_key, const MappingResult&)>
      store;
};

struct ResilientOptions {
  /// First attempt runs exactly these options; fallback attempts override
  /// only placer, router and seed.
  MappingOptions base;
  int max_attempts = 6;
  std::uint64_t seed = 2022;
  /// Small-circuit equivalence checking simulates the full physical
  /// register (cost 2^n); it only runs when the device has at most this
  /// many qubits and the input circuit is unitary-only.
  int equivalence_max_qubits = 8;
  int equivalence_trials = 2;
  /// Optional per-attempt result memoization (not owned; may be null).
  const AttemptMemo* memo = nullptr;
};

/// Outcome of one rung of the fallback ladder.
struct CompileAttempt {
  int attempt = 0;
  std::string placer;
  std::string router;
  std::uint64_t seed = 0;
  /// ok for the winning attempt; otherwise why the attempt was rejected.
  qfs::Status status;
  double fidelity_after = 0.0;
  int gates_after = 0;
  int swaps_inserted = 0;
};

/// Every attempt made, in order; the last entry is ok iff compilation
/// succeeded.
using CompileAttemptLog = std::vector<CompileAttempt>;

/// Multi-line human-readable rendering of an attempt log (diagnostics).
std::string attempt_log_to_string(const CompileAttemptLog& log);

struct ResilientResult {
  MappingResult mapping;
  MappingOptions options_used;
  std::uint64_t seed_used = 0;
  CompileAttemptLog log;
};

/// Compile `circuit` for `device`, retrying across a fallback ladder of
/// (placer, router, seed) combinations until an attempt passes validation:
/// coupling-graph compliance, primitive-gate-set compliance, fidelity
/// sanity, and (small devices) simulation-based equivalence. Returns
/// resource_exhausted when the circuit cannot fit the device or when every
/// attempt fails; `log_out` (optional) receives the attempt log either way.
qfs::StatusOr<ResilientResult> compile_resilient(
    const circuit::Circuit& circuit, const device::Device& device,
    const ResilientOptions& options = {}, CompileAttemptLog* log_out = nullptr);

}  // namespace qfs::mapper
