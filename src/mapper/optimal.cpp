#include "mapper/optimal.h"

#include <algorithm>
#include <map>
#include <queue>
#include <unordered_map>

namespace qfs::mapper {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using device::Device;

namespace {

/// Two-qubit interaction (virtual operand pair) extracted per gate; -1 for
/// gates that never block routing.
struct GatePair {
  int a = -1;
  int b = -1;
};

std::vector<GatePair> blocking_pairs(const Circuit& circuit) {
  std::vector<GatePair> pairs;
  pairs.reserve(circuit.gates().size());
  for (const Gate& g : circuit.gates()) {
    if (circuit::is_unitary(g.kind) && g.qubits.size() == 2) {
      pairs.push_back(GatePair{g.qubits[0], g.qubits[1]});
    } else {
      pairs.push_back(GatePair{});
    }
  }
  return pairs;
}

struct SearchState {
  std::vector<int> p2v;  ///< physical -> virtual (full permutation)
  int next_gate = 0;     ///< first unexecuted gate index
};

struct StateKey {
  std::string bytes;
  bool operator==(const StateKey& other) const { return bytes == other.bytes; }
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& k) const {
    return std::hash<std::string>()(k.bytes);
  }
};

StateKey make_key(const SearchState& s) {
  StateKey key;
  key.bytes.reserve(s.p2v.size() * sizeof(int) + sizeof(int));
  auto append_int = [&key](int value) {
    key.bytes.append(reinterpret_cast<const char*>(&value), sizeof(int));
  };
  for (int v : s.p2v) append_int(v);
  append_int(s.next_gate);
  return key;
}

}  // namespace

RoutingResult OptimalRouter::route(const Circuit& circuit,
                                   const Device& device, const Layout& initial,
                                   qfs::Rng& rng) const {
  QFS_ASSERT_MSG(circuit.num_qubits() <= device.num_qubits(),
                 "circuit wider than device");
  for (const Gate& g : circuit.gates()) {
    QFS_ASSERT_MSG(g.kind == GateKind::kBarrier || g.qubits.size() <= 2,
                   "route requires gates of arity <= 2; decompose first");
  }
  const auto& topo = device.topology();
  const int np = device.num_qubits();
  const auto pairs = blocking_pairs(circuit);
  const int num_gates = static_cast<int>(pairs.size());
  const auto edges = topo.edge_list();

  // Virtual -> physical lookup from a p2v vector.
  auto phys_of = [np](const std::vector<int>& p2v, int virtual_qubit) {
    for (int p = 0; p < np; ++p) {
      if (p2v[static_cast<std::size_t>(p)] == virtual_qubit) return p;
    }
    QFS_ASSERT_MSG(false, "virtual qubit not in layout");
    return -1;
  };

  // Advance past all gates executable under the given layout.
  auto advance = [&](SearchState& s) {
    while (s.next_gate < num_gates) {
      const GatePair& gp = pairs[static_cast<std::size_t>(s.next_gate)];
      if (gp.a >= 0) {
        int pa = phys_of(s.p2v, gp.a);
        int pb = phys_of(s.p2v, gp.b);
        if (!topo.adjacent(pa, pb)) return;
      }
      ++s.next_gate;
    }
  };

  // Admissible heuristic: the next blocked gate alone needs dist-1 swaps.
  auto heuristic = [&](const SearchState& s) {
    if (s.next_gate >= num_gates) return 0;
    const GatePair& gp = pairs[static_cast<std::size_t>(s.next_gate)];
    if (gp.a < 0) return 0;
    return topo.distance(phys_of(s.p2v, gp.a), phys_of(s.p2v, gp.b)) - 1;
  };

  SearchState start;
  start.p2v.resize(static_cast<std::size_t>(np));
  for (int p = 0; p < np; ++p) start.p2v[static_cast<std::size_t>(p)] = initial.virtual_qubit(p);
  advance(start);

  struct QueueItem {
    int f = 0;
    int g = 0;
    long long id = 0;  ///< index into `parents`/`states`
  };
  auto cmp = [](const QueueItem& a, const QueueItem& b) { return a.f > b.f; };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> open(cmp);

  struct NodeRecord {
    SearchState state;
    long long parent = -1;
    int via_edge = -1;  ///< index into `edges` of the swap that led here
  };
  std::vector<NodeRecord> nodes;
  std::unordered_map<StateKey, int, StateKeyHash> best_cost;

  nodes.push_back(NodeRecord{start, -1, -1});
  best_cost[make_key(start)] = 0;
  open.push(QueueItem{heuristic(start), 0, 0});

  long long explored = 0;
  long long goal_id = -1;
  while (!open.empty()) {
    QueueItem item = open.top();
    open.pop();
    // Copy: nodes may reallocate while this state's successors are pushed.
    const SearchState s = nodes[static_cast<std::size_t>(item.id)].state;
    auto it = best_cost.find(make_key(s));
    if (it != best_cost.end() && it->second < item.g) continue;  // stale
    if (s.next_gate >= num_gates) {
      goal_id = item.id;
      break;
    }
    if (++explored > state_budget_) break;

    for (std::size_t e = 0; e < edges.size(); ++e) {
      SearchState next = s;
      std::swap(next.p2v[static_cast<std::size_t>(edges[e].first)],
                next.p2v[static_cast<std::size_t>(edges[e].second)]);
      advance(next);
      int g_cost = item.g + 1;
      StateKey key = make_key(next);
      auto found = best_cost.find(key);
      if (found != best_cost.end() && found->second <= g_cost) continue;
      best_cost[key] = g_cost;
      nodes.push_back(NodeRecord{std::move(next), item.id, static_cast<int>(e)});
      open.push(QueueItem{g_cost + heuristic(nodes.back().state), g_cost,
                          static_cast<long long>(nodes.size()) - 1});
    }
  }

  if (goal_id < 0) {
    // Budget exceeded: fall back to the always-correct trivial router.
    return TrivialRouter().route(circuit, device, initial, rng);
  }

  // Reconstruct the swap sequence.
  std::vector<int> swap_edges;
  for (long long id = goal_id; id >= 0;
       id = nodes[static_cast<std::size_t>(id)].parent) {
    int e = nodes[static_cast<std::size_t>(id)].via_edge;
    if (e >= 0) swap_edges.push_back(e);
  }
  std::reverse(swap_edges.begin(), swap_edges.end());

  // Replay: emit gates in order, inserting the planned swaps exactly when
  // the next gate is blocked.
  RoutingResult result;
  result.mapped = Circuit(np, circuit.name());
  result.final_layout = initial;
  Layout& layout = result.final_layout;
  std::size_t swap_cursor = 0;
  for (std::size_t i = 0; i < circuit.gates().size(); ++i) {
    const Gate& g = circuit.gates()[i];
    const GatePair& gp = pairs[i];
    if (gp.a >= 0) {
      while (!topo.adjacent(layout.physical(gp.a), layout.physical(gp.b))) {
        QFS_ASSERT_MSG(swap_cursor < swap_edges.size(),
                       "optimal plan exhausted before gates executable");
        const auto& edge = edges[static_cast<std::size_t>(
            swap_edges[swap_cursor++])];
        result.mapped.add(GateKind::kSwap, {edge.first, edge.second});
        layout.apply_swap(edge.first, edge.second);
        ++result.swaps_inserted;
      }
    }
    std::vector<int> phys;
    phys.reserve(g.qubits.size());
    for (int v : g.qubits) phys.push_back(layout.physical(v));
    result.mapped.add(g.kind, std::move(phys), g.params);
  }
  // Any remaining planned swaps are unnecessary for correctness; the A*
  // cost function means there are none on an optimal plan.
  QFS_ASSERT_MSG(swap_cursor == swap_edges.size(),
                 "optimal plan left unused swaps");
  return result;
}

}  // namespace qfs::mapper
