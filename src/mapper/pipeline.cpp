#include "mapper/pipeline.h"

#include <cmath>
#include <iterator>
#include <sstream>

#include "analysis/equiv.h"
#include "compiler/decompose.h"
#include "device/fidelity.h"
#include "sim/equivalence.h"

namespace qfs::mapper {

using circuit::Circuit;
using device::Device;

namespace {

/// Fidelity of the pre-mapping circuit: evaluated with the same error model
/// but ignoring connectivity (as if the chip were fully connected), which is
/// exactly the paper's "before mapping" reference point.
double log_fidelity_uniform(const Circuit& circuit, const Device& device) {
  const auto& em = device.error_model();
  double log_f = 0.0;
  for (const auto& g : circuit.gates()) {
    if (!circuit::is_unitary(g.kind)) continue;
    if (g.qubits.size() == 1) {
      log_f += std::log(em.single_qubit_fidelity());
    } else {
      log_f += std::log(em.two_qubit_fidelity());
    }
  }
  return log_f;
}

}  // namespace

MappingResult map_circuit(const Circuit& circuit, const Device& device,
                          const MappingOptions& options, qfs::Rng& rng) {
  QFS_ASSERT_MSG(circuit.num_qubits() <= device.num_qubits(),
                 "circuit wider than device");

  // Step 1: decompose to the primitive gate set.
  Circuit decomposed = compiler::decompose_to_gateset(circuit, device.gateset());

  // Step 2: initial placement.
  Layout initial;
  if (!options.initial_layout.empty()) {
    QFS_ASSERT_MSG(static_cast<int>(options.initial_layout.size()) ==
                       circuit.num_qubits(),
                   "explicit initial layout must cover every circuit qubit");
    initial = Layout::from_partial(options.initial_layout, device.num_qubits());
  } else {
    initial = make_placer(options.placer)->place(decomposed, device, rng);
  }

  // Step 3: routing, optionally preceded by SABRE-style refinement: the
  // final layout of a forward+backward routing pass becomes the next
  // initial placement, letting the circuit's own traffic shape the layout.
  auto router = make_router(options.router);
  if (options.sabre_refinement_rounds > 0) {
    Circuit reversed(decomposed.num_qubits(), decomposed.name());
    for (auto it = decomposed.gates().rbegin(); it != decomposed.gates().rend();
         ++it) {
      reversed.add(*it);
    }
    for (int round = 0; round < options.sabre_refinement_rounds; ++round) {
      RoutingResult forward = router->route(decomposed, device, initial, rng);
      RoutingResult backward =
          router->route(reversed, device, forward.final_layout, rng);
      initial = backward.final_layout;
    }
  }
  RoutingResult routed = router->route(decomposed, device, initial, rng);

  // Step 4: expand SWAPs, then lower any CX they introduced on CZ devices.
  Circuit final_circuit = compiler::decompose_to_gateset(
      compiler::expand_swaps(routed.mapped), device.gateset());

  QFS_ASSERT_MSG(respects_connectivity(final_circuit, device),
                 "routing postcondition violated");

  MappingResult result;
  result.mapped = std::move(final_circuit);
  result.initial_layout = initial.initial_segment(circuit.num_qubits());
  result.final_layout =
      routed.final_layout.initial_segment(circuit.num_qubits());
  result.swaps_inserted = routed.swaps_inserted;

  result.gates_before = decomposed.gate_count();
  result.gates_after = result.mapped.gate_count();
  if (result.gates_before > 0) {
    result.gate_overhead_pct =
        100.0 * (result.gates_after - result.gates_before) /
        static_cast<double>(result.gates_before);
  }

  result.depth_before = decomposed.depth();
  result.depth_after = result.mapped.depth();
  if (result.depth_before > 0) {
    result.depth_overhead_pct =
        100.0 * (result.depth_after - result.depth_before) /
        static_cast<double>(result.depth_before);
  }

  result.log_fidelity_before = log_fidelity_uniform(decomposed, device);
  result.log_fidelity_after =
      device::estimate_log_gate_fidelity(result.mapped, device);
  result.fidelity_before = std::exp(result.log_fidelity_before);
  result.fidelity_after = std::exp(result.log_fidelity_after);
  result.fidelity_decrease_pct =
      100.0 *
      (1.0 - std::exp(result.log_fidelity_after - result.log_fidelity_before));

  if (options.compute_latency) {
    compiler::ScheduleOptions sched;
    result.latency_before_ns =
        compiler::asap_schedule(decomposed, device, sched).makespan_ns();
    result.latency_after_ns =
        compiler::asap_schedule(result.mapped, device, sched).makespan_ns();
    if (result.latency_before_ns > 0.0) {
      result.latency_overhead_pct =
          100.0 * (result.latency_after_ns - result.latency_before_ns) /
          result.latency_before_ns;
    }
  }
  return result;
}

MappingResult map_circuit(const Circuit& circuit, const Device& device,
                          qfs::Rng& rng) {
  return map_circuit(circuit, device, MappingOptions{}, rng);
}

// ---------------------------------------------------------------------------
// Resilient compilation
// ---------------------------------------------------------------------------

namespace {

bool unitary_only(const Circuit& circuit) {
  for (const auto& g : circuit.gates()) {
    if (!circuit::is_unitary(g.kind)) return false;
  }
  return true;
}

/// Validate one mapping attempt against the contracts external callers rely
/// on. Returns ok when the result is safe to hand out.
qfs::Status validate_attempt(const Circuit& original,
                             const MappingResult& result, const Device& device,
                             const ResilientOptions& options,
                             std::uint64_t seed) {
  // Translation validation subsumes the old ad-hoc connectivity and
  // gate-set checks: the validator proves every physical gate is native, on
  // a live coupler, and realizes exactly one source gate under the tracked
  // permutation (QFS101-QFS110).
  analysis::TranslationArtifact artifact;
  artifact.mapped = &result.mapped;
  artifact.initial_layout = result.initial_layout;
  artifact.final_layout = result.final_layout;
  artifact.swaps_inserted = result.swaps_inserted;
  analysis::EquivOptions equiv;
  equiv.max_diagnostics = 1;  // the first finding decides the attempt
  std::vector<analysis::Diagnostic> findings =
      analysis::validate_translation(original, device, artifact, equiv);
  if (!findings.empty()) {
    return qfs::failed_precondition("translation validation failed: " +
                                    analysis::diagnostic_to_string(
                                        findings.front()));
  }
  if (!std::isfinite(result.log_fidelity_after) ||
      result.log_fidelity_after > 1e-9 ||
      !(result.fidelity_after >= 0.0 && result.fidelity_after <= 1.0 + 1e-9)) {
    return qfs::failed_precondition("fidelity estimate is not sane");
  }
  if (device.num_qubits() <= options.equivalence_max_qubits &&
      unitary_only(original) && unitary_only(result.mapped)) {
    qfs::Rng eq_rng(seed ^ 0x5eed5eedULL);
    if (!sim::mapping_preserves_semantics(
            original, result.mapped, result.initial_layout,
            result.final_layout, eq_rng, options.equivalence_trials)) {
      return qfs::failed_precondition(
          "mapped circuit is not equivalent to the input circuit");
    }
  }
  return qfs::Status::ok();
}

}  // namespace

std::string attempt_log_to_string(const CompileAttemptLog& log) {
  std::ostringstream os;
  for (const auto& a : log) {
    os << "attempt " << a.attempt << " [placer=" << a.placer
       << " router=" << a.router << " seed=" << a.seed << "]: ";
    if (a.status.is_ok()) {
      os << "ok (gates=" << a.gates_after << " swaps=" << a.swaps_inserted
         << ")";
    } else {
      os << a.status.to_string();
    }
    os << '\n';
  }
  return os.str();
}

qfs::StatusOr<ResilientResult> compile_resilient(const Circuit& circuit,
                                                 const Device& device,
                                                 const ResilientOptions& options,
                                                 CompileAttemptLog* log_out) {
  if (log_out) log_out->clear();
  if (circuit.num_qubits() > device.num_qubits()) {
    return qfs::resource_exhausted(
        "circuit needs " + std::to_string(circuit.num_qubits()) +
        " qubits but " + device.name() + " has only " +
        std::to_string(device.num_qubits()) + " healthy");
  }
  if (options.max_attempts < 1) {
    return qfs::invalid_argument("max_attempts must be >= 1");
  }

  // The fallback ladder: progressively different strategies; once the list
  // is exhausted the ladder wraps around with fresh seeds.
  const std::pair<const char*, const char*> kFallbacks[] = {
      {"trivial", "trivial"},        {"degree-match", "lookahead"},
      {"annealing", "lookahead"},    {"noise-aware", "noise-aware"},
      {"subgraph", "lookahead"},
  };
  const int num_fallbacks = static_cast<int>(std::size(kFallbacks));

  CompileAttemptLog log;
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    MappingOptions opts = options.base;
    std::uint64_t seed = options.seed;
    if (attempt > 0) {
      // A retry with the exact same options would fail identically; the
      // explicit initial layout (if any) is also dropped, since it may be
      // the reason routing cannot make progress.
      const auto& fb = kFallbacks[(attempt - 1) % num_fallbacks];
      opts.placer = fb.first;
      opts.router = fb.second;
      opts.initial_layout.clear();
      seed = options.seed + 0x9e37ULL * static_cast<std::uint64_t>(attempt);
    }

    CompileAttempt entry;
    entry.attempt = attempt;
    entry.placer = opts.placer;
    entry.router = opts.router;
    entry.seed = seed;

    // Attempt-level memo key; the cache folds it into the full
    // circuit/device/pipeline fingerprint (see cache/memo.h).
    std::string attempt_key =
        opts.placer + "|" + opts.router + "|" + std::to_string(seed);

    try {
      MappingResult result;
      bool memoized = options.memo != nullptr && options.memo->lookup &&
                      options.memo->lookup(attempt_key, &result);
      if (memoized) {
        entry.status = validate_attempt(circuit, result, device, options, seed);
      }
      if (!memoized || !entry.status.is_ok()) {
        // Fresh compile: also the fallback when a memoized artifact fails
        // validation (a corrupt or stale entry must degrade, not escape).
        qfs::Rng rng(seed);
        result = map_circuit(circuit, device, opts, rng);
        entry.status = validate_attempt(circuit, result, device, options, seed);
        if (entry.status.is_ok() && options.memo != nullptr &&
            options.memo->store) {
          options.memo->store(attempt_key, result);
        }
      }
      entry.fidelity_after = result.fidelity_after;
      entry.gates_after = result.gates_after;
      entry.swaps_inserted = result.swaps_inserted;
      log.push_back(entry);
      if (entry.status.is_ok()) {
        ResilientResult out;
        out.mapping = std::move(result);
        out.options_used = std::move(opts);
        out.seed_used = seed;
        out.log = log;
        if (log_out) *log_out = std::move(log);
        return out;
      }
    } catch (const qfs::AssertionError& e) {
      // A contract violation inside a strategy must not take the driver
      // down: record it and climb to the next rung.
      entry.status =
          qfs::failed_precondition(std::string("mapper aborted: ") + e.what());
      log.push_back(entry);
    }
  }

  std::string last = log.empty() ? "no attempts made"
                                 : log.back().status.to_string();
  if (log_out) *log_out = std::move(log);
  return qfs::resource_exhausted(
      "compilation failed after " + std::to_string(options.max_attempts) +
      " attempt(s); last error: " + last);
}

}  // namespace qfs::mapper
