#include "mapper/pipeline.h"

#include <cmath>

#include "compiler/decompose.h"
#include "device/fidelity.h"

namespace qfs::mapper {

using circuit::Circuit;
using device::Device;

namespace {

/// Fidelity of the pre-mapping circuit: evaluated with the same error model
/// but ignoring connectivity (as if the chip were fully connected), which is
/// exactly the paper's "before mapping" reference point.
double log_fidelity_uniform(const Circuit& circuit, const Device& device) {
  const auto& em = device.error_model();
  double log_f = 0.0;
  for (const auto& g : circuit.gates()) {
    if (!circuit::is_unitary(g.kind)) continue;
    if (g.qubits.size() == 1) {
      log_f += std::log(em.single_qubit_fidelity());
    } else {
      log_f += std::log(em.two_qubit_fidelity());
    }
  }
  return log_f;
}

}  // namespace

MappingResult map_circuit(const Circuit& circuit, const Device& device,
                          const MappingOptions& options, qfs::Rng& rng) {
  QFS_ASSERT_MSG(circuit.num_qubits() <= device.num_qubits(),
                 "circuit wider than device");

  // Step 1: decompose to the primitive gate set.
  Circuit decomposed = compiler::decompose_to_gateset(circuit, device.gateset());

  // Step 2: initial placement.
  Layout initial;
  if (!options.initial_layout.empty()) {
    QFS_ASSERT_MSG(static_cast<int>(options.initial_layout.size()) ==
                       circuit.num_qubits(),
                   "explicit initial layout must cover every circuit qubit");
    initial = Layout::from_partial(options.initial_layout, device.num_qubits());
  } else {
    initial = make_placer(options.placer)->place(decomposed, device, rng);
  }

  // Step 3: routing, optionally preceded by SABRE-style refinement: the
  // final layout of a forward+backward routing pass becomes the next
  // initial placement, letting the circuit's own traffic shape the layout.
  auto router = make_router(options.router);
  if (options.sabre_refinement_rounds > 0) {
    Circuit reversed(decomposed.num_qubits(), decomposed.name());
    for (auto it = decomposed.gates().rbegin(); it != decomposed.gates().rend();
         ++it) {
      reversed.add(*it);
    }
    for (int round = 0; round < options.sabre_refinement_rounds; ++round) {
      RoutingResult forward = router->route(decomposed, device, initial, rng);
      RoutingResult backward =
          router->route(reversed, device, forward.final_layout, rng);
      initial = backward.final_layout;
    }
  }
  RoutingResult routed = router->route(decomposed, device, initial, rng);

  // Step 4: expand SWAPs, then lower any CX they introduced on CZ devices.
  Circuit final_circuit = compiler::decompose_to_gateset(
      compiler::expand_swaps(routed.mapped), device.gateset());

  QFS_ASSERT_MSG(respects_connectivity(final_circuit, device),
                 "routing postcondition violated");

  MappingResult result;
  result.mapped = std::move(final_circuit);
  result.initial_layout = initial.initial_segment(circuit.num_qubits());
  result.final_layout =
      routed.final_layout.initial_segment(circuit.num_qubits());
  result.swaps_inserted = routed.swaps_inserted;

  result.gates_before = decomposed.gate_count();
  result.gates_after = result.mapped.gate_count();
  if (result.gates_before > 0) {
    result.gate_overhead_pct =
        100.0 * (result.gates_after - result.gates_before) /
        static_cast<double>(result.gates_before);
  }

  result.depth_before = decomposed.depth();
  result.depth_after = result.mapped.depth();
  if (result.depth_before > 0) {
    result.depth_overhead_pct =
        100.0 * (result.depth_after - result.depth_before) /
        static_cast<double>(result.depth_before);
  }

  result.log_fidelity_before = log_fidelity_uniform(decomposed, device);
  result.log_fidelity_after =
      device::estimate_log_gate_fidelity(result.mapped, device);
  result.fidelity_before = std::exp(result.log_fidelity_before);
  result.fidelity_after = std::exp(result.log_fidelity_after);
  result.fidelity_decrease_pct =
      100.0 *
      (1.0 - std::exp(result.log_fidelity_after - result.log_fidelity_before));

  if (options.compute_latency) {
    compiler::ScheduleOptions sched;
    result.latency_before_ns =
        compiler::asap_schedule(decomposed, device, sched).makespan_ns();
    result.latency_after_ns =
        compiler::asap_schedule(result.mapped, device, sched).makespan_ns();
    if (result.latency_before_ns > 0.0) {
      result.latency_overhead_pct =
          100.0 * (result.latency_after_ns - result.latency_before_ns) /
          result.latency_before_ns;
    }
  }
  return result;
}

MappingResult map_circuit(const Circuit& circuit, const Device& device,
                          qfs::Rng& rng) {
  return map_circuit(circuit, device, MappingOptions{}, rng);
}

}  // namespace qfs::mapper
