#include "backends/registry.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "device/calibration.h"
#include "support/strings.h"

namespace qfs::backends {

namespace {

using device::Device;
using device::ErrorModel;
using device::Topology;

double clamp_fidelity(double f) { return std::min(1.0, std::max(0.5, f)); }

/// Deterministic pseudo-calibration: a fixed index-keyed wave over qubits
/// and edges so noise-aware passes see realistic cross-chip variation
/// without an RNG (registry resolution must be bit-reproducible).
void apply_default_calibration(Device& d, double qubit_spread,
                               double edge_spread) {
  ErrorModel& em = d.mutable_error_model();
  const double f1 = em.single_qubit_fidelity();
  const double f2 = em.two_qubit_fidelity();
  for (int q = 0; q < d.num_qubits(); ++q) {
    const double t = static_cast<double>((q * 37) % 11) / 10.0;  // 0..1
    em.set_qubit_fidelity(q, clamp_fidelity(f1 * (1.0 - qubit_spread * t)));
  }
  const auto& edges = d.topology().edge_list();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const double t = static_cast<double>((i * 53) % 13) / 12.0;
    em.set_edge_fidelity(edges[i].first, edges[i].second,
                         clamp_fidelity(f2 * (1.0 - edge_spread * t)));
  }
}

// ---------------------------------------------------------------------------
// Factories. Each receives the resolved parameter values in declaration
// order (defaults already applied, ranges already checked) and returns the
// assembled device; structural constraints the range metadata cannot
// express (heavy-hex column phase) are typed errors here.
// ---------------------------------------------------------------------------

qfs::StatusOr<Device> make_surface7(const std::vector<double>&) {
  return device::surface7_device();
}
qfs::StatusOr<Device> make_surface17(const std::vector<double>&) {
  return device::surface17_device();
}
qfs::StatusOr<Device> make_surface97(const std::vector<double>&) {
  return device::surface97_device();
}
qfs::StatusOr<Device> make_heavyhex27(const std::vector<double>&) {
  return device::heavy_hex27_device();
}
qfs::StatusOr<Device> make_line(const std::vector<double>& v) {
  return device::line_device(static_cast<int>(v[0]));
}
qfs::StatusOr<Device> make_grid(const std::vector<double>& v) {
  return device::grid_device(static_cast<int>(v[0]), static_cast<int>(v[1]));
}
qfs::StatusOr<Device> make_full(const std::vector<double>& v) {
  return device::fully_connected_device(static_cast<int>(v[0]));
}

/// IBM heavy-hex lattice: {rz,sx,x,cx} basis, Falcon/Eagle-flavoured rates.
qfs::StatusOr<Device> make_heavy_hex(const std::vector<double>& v) {
  const int rows = static_cast<int>(v[0]);
  const int cols = static_cast<int>(v[1]);
  if (cols % 4 != 1) {
    return qfs::invalid_argument(
        "heavy_hex cols must satisfy cols % 4 == 1 (got " +
        std::to_string(cols) + ")");
  }
  ErrorModel model(0.9995, 0.99, 0.98);
  model.set_durations_ns(35.0, 300.0, 700.0);
  model.set_coherence_times_ns(120000.0, 90000.0);
  Topology topo = device::heavy_hex_lattice(rows, cols);
  std::string name = topo.name();
  Device d(std::move(name), std::move(topo), device::ibm_gateset(), model);
  apply_default_calibration(d, 0.0008, 0.006);
  return d;
}

/// Sycamore-style diagonal grid: fSim-as-CZ over {rz,sx,x}, supremacy-paper
/// flavoured rates (1q 0.15 %, 2q 0.6 %, readout 3.5 %).
qfs::StatusOr<Device> make_sycamore(const std::vector<double>& v) {
  const int rows = static_cast<int>(v[0]);
  const int cols = static_cast<int>(v[1]);
  ErrorModel model(0.9985, 0.994, 0.965);
  model.set_durations_ns(25.0, 32.0, 4000.0);
  model.set_coherence_times_ns(15000.0, 10000.0);
  Topology topo = device::sycamore_topology(rows, cols);
  std::string name = topo.name();
  Device d(std::move(name), std::move(topo), device::sycamore_gateset(),
           model);
  apply_default_calibration(d, 0.001, 0.005);
  return d;
}

/// Trapped-ion chain: all-to-all MS/GPI class. The chain-length cost model
/// folds into the *global* two-qubit duration and fidelity (a longer chain
/// means slower, noisier MS gates for everyone), and the ion-shuttling cost
/// into per-edge fidelities (distant ions pay extra transport/recooling).
qfs::StatusOr<Device> make_trapped_ion(const std::vector<double>& v) {
  const int ions = static_cast<int>(v[0]);
  const double chain = static_cast<double>(ions);
  // Base MS fidelity 99.6 % for a 2-ion crystal, degrading 0.05 % per
  // additional ion (spectral crowding of the motional modes).
  const double f2 = clamp_fidelity(0.996 - 0.0005 * (chain - 2.0));
  ErrorModel model(0.9999, f2, 0.9952);
  // 1q Raman gates ~12 us; MS gate 200 us base plus 4 us per ion in the
  // chain; state detection ~130 us.
  model.set_durations_ns(12000.0, 200000.0 + 4000.0 * chain, 130000.0);
  model.set_coherence_times_ns(1.0e10, 1.0e9);
  Topology topo = device::fully_connected_topology(ions);
  std::string name = "trapped-ion-" + std::to_string(ions);
  Device d(std::move(name), std::move(topo), device::ion_trap_gateset(),
           model);
  ErrorModel& em = d.mutable_error_model();
  for (const auto& [a, b] : d.topology().edge_list()) {
    // 0.03 % extra infidelity per unit of ion separation beyond neighbours.
    const double separation = static_cast<double>(b - a);
    em.set_edge_fidelity(a, b,
                         clamp_fidelity(f2 * (1.0 - 0.0003 * (separation - 1.0))));
  }
  return d;
}

/// Neutral-atom square lattice: Rydberg-blockade CZ within the interaction
/// radius; longer-range pairs sit nearer the blockade edge and pay a
/// distance-dependent fidelity penalty.
qfs::StatusOr<Device> make_neutral_atom(const std::vector<double>& v) {
  const int rows = static_cast<int>(v[0]);
  const int cols = static_cast<int>(v[1]);
  const double radius = v[2];
  ErrorModel model(0.9995, 0.989, 0.975);
  model.set_durations_ns(500.0, 270.0, 20000.0);
  model.set_coherence_times_ns(1.5e9, 4.0e6);
  Topology topo = device::neutral_atom_topology(rows, cols, radius);
  std::string name = topo.name();
  Device d(std::move(name), std::move(topo), device::rydberg_gateset(), model);
  ErrorModel& em = d.mutable_error_model();
  for (const auto& [a, b] : d.topology().edge_list()) {
    const double dr = a / cols - b / cols;
    const double dc = a % cols - b % cols;
    const double dist = std::sqrt(dr * dr + dc * dc);
    // 2 % extra infidelity per unit of distance beyond nearest neighbour.
    em.set_edge_fidelity(
        a, b, clamp_fidelity(0.989 * (1.0 - 0.02 * (dist - 1.0))));
  }
  return d;
}

ParamInfo int_param(std::string name, double min, double max, double def,
                    std::string doc) {
  ParamInfo p;
  p.name = std::move(name);
  p.min_value = min;
  p.max_value = max;
  p.default_value = def;
  p.integer = true;
  p.doc = std::move(doc);
  return p;
}

ParamInfo real_param(std::string name, double min, double max, double def,
                     std::string doc) {
  ParamInfo p = int_param(std::move(name), min, max, def, std::move(doc));
  p.integer = false;
  return p;
}

/// Levenshtein distance, small inputs only (did-you-mean on backend names).
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

std::string closest_name(std::string_view arg,
                         const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_distance = 4;  // suggest only within edit distance 3
  for (const auto& c : candidates) {
    std::size_t d = edit_distance(arg, c);
    if (d < best_distance) {
      best_distance = d;
      best = c;
    }
  }
  return best;
}

}  // namespace

BackendRegistry::BackendRegistry() {
  add({"surface7", "7-qubit surface-code chip (Fig. 2 of the paper)", {}},
      &make_surface7);
  add({"surface17",
       "17-qubit Versluis et al. surface-code chip with 3-way flux groups",
       {}},
      &make_surface17);
  add({"surface97",
       "97-qubit extended surface lattice (the paper's 100-qubit target)",
       {}},
      &make_surface97);
  add({"heavyhex27", "27-qubit IBM Falcon heavy-hex chip, {rz,sx,x,cx} basis",
       {}},
      &make_heavyhex27);
  add({"line",
       "1D nearest-neighbour chain with the surface-code basis",
       {int_param("n", 2, 4096, 16, "number of qubits")}},
      &make_line);
  add({"grid",
       "2D nearest-neighbour grid with the surface-code basis",
       {int_param("rows", 1, 64, 4, "grid rows"),
        int_param("cols", 1, 64, 5, "grid columns")}},
      &make_grid);
  add({"full",
       "fully connected coupling with the surface-code basis",
       {int_param("n", 2, 256, 9, "number of qubits")}},
      &make_full);
  add({"heavy_hex",
       "IBM-style heavy-hex lattice, {rz,sx,x,cx} basis, degree <= 3",
       {int_param("rows", 1, 32, 3, "horizontal qubit rows"),
        int_param("cols", 5, 65, 9, "qubits per row (cols % 4 == 1)")}},
      &make_heavy_hex);
  add({"sycamore",
       "Sycamore-style grid with diagonal couplers, fSim-as-CZ over {rz,sx,x}",
       {int_param("rows", 2, 32, 5, "grid rows"),
        int_param("cols", 2, 32, 4, "grid columns")}},
      &make_sycamore);
  add({"trapped_ion",
       "all-to-all trapped-ion chain, MS/GPI basis, chain-length cost model",
       {int_param("ions", 2, 64, 20, "ions in the chain")}},
      &make_trapped_ion);
  add({"neutral_atom",
       "neutral-atom lattice with interaction-radius Rydberg-CZ connectivity",
       {int_param("rows", 2, 32, 4, "lattice rows"),
        int_param("cols", 2, 32, 5, "lattice columns"),
        real_param("radius", 1.0, 3.0, 1.5,
                   "interaction radius in lattice units")}},
      &make_neutral_atom);
}

void BackendRegistry::add(BackendInfo info, Factory factory) {
  infos_.push_back(std::move(info));
  factories_.push_back(factory);
}

const BackendRegistry& BackendRegistry::global() {
  static const BackendRegistry registry;
  return registry;
}

const BackendInfo* BackendRegistry::find(std::string_view name) const {
  for (const auto& info : infos_) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

qfs::StatusOr<device::Device> BackendRegistry::make(
    const DeviceSpec& spec) const {
  const BackendInfo* info = nullptr;
  Factory factory = nullptr;
  for (std::size_t i = 0; i < infos_.size(); ++i) {
    if (infos_[i].name == spec.name) {
      info = &infos_[i];
      factory = factories_[i];
      break;
    }
  }
  if (info == nullptr) {
    std::vector<std::string> names;
    names.reserve(infos_.size());
    for (const auto& e : infos_) names.push_back(e.name);
    std::string message = "unknown device '" + spec.name + "'";
    std::string suggestion = closest_name(spec.name, names);
    if (!suggestion.empty()) {
      message += " (did you mean '" + suggestion + "'?)";
    } else {
      message += " (try --list-devices)";
    }
    return qfs::invalid_argument(message);
  }

  if (spec.args.size() > info->params.size()) {
    return qfs::invalid_argument(
        "backend '" + info->name + "' takes at most " +
        std::to_string(info->params.size()) + " parameter(s), got " +
        std::to_string(spec.args.size()));
  }
  std::vector<double> values;
  std::vector<bool> assigned(info->params.size(), false);
  values.reserve(info->params.size());
  for (const auto& p : info->params) values.push_back(p.default_value);

  for (std::size_t i = 0; i < spec.args.size(); ++i) {
    const SpecArg& arg = spec.args[i];
    std::size_t slot = i;
    if (!arg.name.empty()) {
      slot = info->params.size();
      for (std::size_t j = 0; j < info->params.size(); ++j) {
        if (info->params[j].name == arg.name) {
          slot = j;
          break;
        }
      }
      if (slot == info->params.size()) {
        std::vector<std::string> names;
        for (const auto& p : info->params) names.push_back(p.name);
        std::string message = "backend '" + info->name +
                              "' has no parameter '" + arg.name + "'";
        std::string suggestion = closest_name(arg.name, names);
        if (!suggestion.empty()) {
          message += " (did you mean '" + suggestion + "'?)";
        }
        return qfs::invalid_argument(message);
      }
    }
    if (assigned[slot]) {
      return qfs::invalid_argument("duplicate parameter '" +
                                   info->params[slot].name + "' for backend '" +
                                   info->name + "'");
    }
    const ParamInfo& param = info->params[slot];
    if (arg.value < param.min_value || arg.value > param.max_value) {
      return qfs::invalid_argument(
          "parameter '" + param.name + "' of backend '" + info->name +
          "' must be in [" + format_spec_value(param.min_value) + ", " +
          format_spec_value(param.max_value) + "], got " +
          format_spec_value(arg.value));
    }
    if (param.integer && arg.value != std::nearbyint(arg.value)) {
      return qfs::invalid_argument("parameter '" + param.name +
                                   "' of backend '" + info->name +
                                   "' must be an integer, got " +
                                   format_spec_value(arg.value));
    }
    values[slot] = arg.value;
    assigned[slot] = true;
  }

  auto made = factory(values);
  if (!made.is_ok()) return made.status();
  device::Device dev = std::move(made).value();

  // Stamp the fully resolved canonical spec (every parameter named, in
  // declaration order) — the identity the cache fingerprint hashes.
  DeviceSpec canonical;
  canonical.name = info->name;
  for (std::size_t j = 0; j < info->params.size(); ++j) {
    canonical.args.push_back({info->params[j].name, values[j]});
  }
  dev.set_spec(spec_to_string(canonical));
  return dev;
}

qfs::StatusOr<device::Device> BackendRegistry::make(
    std::string_view spec_text) const {
  auto spec = parse_device_spec(spec_text);
  if (!spec.is_ok()) return spec.status();
  return make(spec.value());
}

qfs::StatusOr<device::Device> make_device(std::string_view spec_text) {
  return BackendRegistry::global().make(spec_text);
}

std::string default_calibration_text(const device::Device& dev) {
  return device::calibration_to_text(dev.error_model(), dev.num_qubits(),
                                     dev.topology().edge_list());
}

std::string list_devices_text() {
  std::ostringstream os;
  for (const auto& info : BackendRegistry::global().entries()) {
    os << info.name;
    if (!info.params.empty()) {
      os << '(';
      for (std::size_t j = 0; j < info.params.size(); ++j) {
        if (j > 0) os << ',';
        os << info.params[j].name << '='
           << format_spec_value(info.params[j].default_value);
      }
      os << ')';
    }
    os << '\n';
    os << "    " << info.summary << '\n';
    for (const auto& p : info.params) {
      os << "    " << p.name << ": " << p.doc << ", "
         << (p.integer ? "integer" : "real") << " in ["
         << format_spec_value(p.min_value) << ", "
         << format_spec_value(p.max_value) << "], default "
         << format_spec_value(p.default_value) << '\n';
    }
  }
  return os.str();
}

std::string list_devices_json() {
  std::ostringstream os;
  os << '[';
  bool first_backend = true;
  for (const auto& info : BackendRegistry::global().entries()) {
    if (!first_backend) os << ',';
    first_backend = false;
    os << "{\"name\":\"" << info.name << "\",\"summary\":\"" << info.summary
       << "\",\"params\":[";
    for (std::size_t j = 0; j < info.params.size(); ++j) {
      if (j > 0) os << ',';
      const ParamInfo& p = info.params[j];
      os << "{\"name\":\"" << p.name << "\",\"min\":"
         << format_spec_value(p.min_value)
         << ",\"max\":" << format_spec_value(p.max_value)
         << ",\"default\":" << format_spec_value(p.default_value)
         << ",\"integer\":" << (p.integer ? "true" : "false") << "}";
    }
    os << "]}";
  }
  os << ']';
  return os.str();
}

}  // namespace qfs::backends
