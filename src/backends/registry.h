// The backend registry: every compilable target, by name.
//
// A backend is a named, parameterized device generator — topology, native
// gate set, error/timing model, control groups, and a deterministic default
// calibration, bundled into a device::Device. The registry is the single
// resolution point: qfsc/qfsd/the benches all turn a spec string
// ("heavy_hex(rows=3,cols=9)") into a Device here, so adding a backend is
// one registration, not a scavenger hunt through flag parsers.
//
// Four connectivity regimes beyond the surface-code family:
//  - heavy_hex(rows,cols): IBM heavy-hex lattice, {rz,sx,x,cx} basis.
//  - sycamore(rows,cols): Google-style 2D grid with alternating diagonal
//    couplers; fSim-class entangler modelled as CZ over a {rz,sx,x} basis.
//  - trapped_ion(ions): all-to-all MS/GPI-class chain. The chain-length
//    cost model folds into the global two-qubit duration/fidelity, and an
//    ion-separation shuttling penalty into per-edge fidelities.
//  - neutral_atom(rows,cols,radius): square lattice with interaction-radius
//    connectivity (Rydberg-blockade CZ); longer-range pairs pay a fidelity
//    penalty.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "backends/spec.h"
#include "device/device.h"
#include "support/status.h"

namespace qfs::backends {

/// One declared parameter of a backend: range, default, integrality.
struct ParamInfo {
  std::string name;
  double min_value = 0.0;
  double max_value = 0.0;
  double default_value = 0.0;
  bool integer = true;
  std::string doc;
};

/// Registry metadata for one backend (what --list-devices prints).
struct BackendInfo {
  std::string name;
  std::string summary;
  std::vector<ParamInfo> params;
};

/// Named, parameterized device generators with strict spec validation.
class BackendRegistry {
 public:
  /// The process-wide registry with every built-in backend registered.
  static const BackendRegistry& global();

  const std::vector<BackendInfo>& entries() const { return infos_; }
  const BackendInfo* find(std::string_view name) const;

  /// Resolve a parsed spec: unknown backends get a did-you-mean, unknown or
  /// duplicate parameters are rejected, missing ones take their defaults,
  /// and every value is range- and integrality-checked before the factory
  /// runs. The returned Device carries the canonical spec (Device::spec()).
  qfs::StatusOr<device::Device> make(const DeviceSpec& spec) const;

  /// Parse + resolve in one step.
  qfs::StatusOr<device::Device> make(std::string_view spec_text) const;

 private:
  using Factory =
      qfs::StatusOr<device::Device> (*)(const std::vector<double>& values);

  BackendRegistry();
  void add(BackendInfo info, Factory factory);

  std::vector<BackendInfo> infos_;
  std::vector<Factory> factories_;
};

/// Resolve `spec_text` through the global registry.
qfs::StatusOr<device::Device> make_device(std::string_view spec_text);

/// The device's effective error model rendered as a calibration file
/// (device::parse_calibration round-trips it). This is the "default
/// calibration" users start from when hand-tuning a backend.
std::string default_calibration_text(const device::Device& dev);

/// Human-readable registry listing for `qfsc --list-devices`: one backend
/// per stanza with parameter ranges and defaults.
std::string list_devices_text();

/// JSON array of registry entries for the qfsd "devices" op.
std::string list_devices_json();

}  // namespace qfs::backends
