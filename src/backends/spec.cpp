#include "backends/spec.h"

#include <cmath>
#include <cstdio>

#include "support/strings.h"

namespace qfs::backends {

namespace {

bool is_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
}

bool valid_name(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!is_name_char(c)) return false;
  }
  return true;
}

qfs::Status bad_spec(std::string_view text, const std::string& why) {
  return qfs::invalid_argument("bad device spec '" + std::string(text) +
                               "': " + why);
}

}  // namespace

qfs::StatusOr<DeviceSpec> parse_device_spec(std::string_view text) {
  std::string_view s = qfs::trim(text);
  if (s.empty()) return qfs::invalid_argument("empty device spec");

  DeviceSpec spec;
  std::size_t open = s.find('(');
  std::string_view name = open == std::string_view::npos ? s : s.substr(0, open);
  if (!valid_name(name)) {
    return bad_spec(text, "backend name must be [a-z0-9_]+");
  }
  spec.name = std::string(name);
  if (open == std::string_view::npos) return spec;

  if (s.back() != ')') {
    return bad_spec(text, "missing ')' after parameter list");
  }
  std::string_view body = s.substr(open + 1, s.size() - open - 2);
  if (qfs::trim(body).empty()) return spec;  // "name()" == "name"

  bool seen_named = false;
  for (const std::string& raw : qfs::split(body, ',')) {
    std::string_view arg = qfs::trim(raw);
    if (arg.empty()) return bad_spec(text, "empty parameter");
    SpecArg out;
    std::string_view value_text = arg;
    std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      std::string_view key = qfs::trim(arg.substr(0, eq));
      if (!valid_name(key)) {
        return bad_spec(text, "parameter name '" + std::string(key) +
                                  "' must be [a-z0-9_]+");
      }
      out.name = std::string(key);
      value_text = qfs::trim(arg.substr(eq + 1));
      seen_named = true;
    } else if (seen_named) {
      return bad_spec(text,
                      "positional parameter after a named one ('" +
                          std::string(arg) + "')");
    }
    if (!qfs::parse_double(value_text, out.value) ||
        !std::isfinite(out.value)) {
      return bad_spec(text, "malformed number '" + std::string(value_text) +
                                "'");
    }
    spec.args.push_back(std::move(out));
  }
  return spec;
}

std::string format_spec_value(double value) {
  double rounded = std::nearbyint(value);
  if (rounded == value && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(rounded));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string spec_to_string(const DeviceSpec& spec) {
  if (spec.args.empty()) return spec.name;
  std::string out = spec.name + "(";
  for (std::size_t i = 0; i < spec.args.size(); ++i) {
    if (i > 0) out += ',';
    if (!spec.args[i].name.empty()) out += spec.args[i].name + "=";
    out += format_spec_value(spec.args[i].value);
  }
  out += ')';
  return out;
}

}  // namespace qfs::backends
