// Device-spec strings: the wire syntax every entrypoint uses to name a
// backend ("surface17", "heavy_hex(rows=3,cols=9)", "trapped_ion(20)").
//
// The grammar is deliberately tiny — a lower-case backend name plus an
// optional parenthesised argument list, each argument a number, positional
// or named. Parsing is strict: trailing junk, empty arguments, positional
// arguments after named ones, and malformed numbers are all typed errors,
// never silently ignored, because a spec that round-trips loosely would
// poison the compile-cache fingerprint that embeds it.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace qfs::backends {

/// One argument of a device spec: positional ("17") or named ("ions=17").
struct SpecArg {
  std::string name;  ///< empty for a positional argument
  double value = 0.0;
};

/// A parsed device spec: backend name plus arguments in written order.
struct DeviceSpec {
  std::string name;
  std::vector<SpecArg> args;
};

/// Parse "name", "name()", "name(17)", "name(rows=3,cols=9)". Backend names
/// are [a-z0-9_]+; values are finite decimal numbers. A positional argument
/// may not follow a named one (the usual call-syntax rule).
qfs::StatusOr<DeviceSpec> parse_device_spec(std::string_view text);

/// Canonical rendering: "name" for a bare spec, else "name(a=1,b=2.5)" with
/// every argument named and numbers in their shortest exact form. This is
/// the string Device::spec() carries and the cache fingerprint hashes.
std::string spec_to_string(const DeviceSpec& spec);

/// Shortest exact rendering of a spec value: integers without a decimal
/// point, everything else via %.17g (round-trips every finite double).
std::string format_spec_value(double value);

}  // namespace qfs::backends
