#include "graph/generators.h"

#include <algorithm>
#include <numeric>

namespace qfs::graph {

Graph path_graph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph cycle_graph(int n) {
  QFS_ASSERT_MSG(n >= 3, "cycle needs >= 3 nodes");
  Graph g = path_graph(n);
  g.add_edge(n - 1, 0);
  return g;
}

Graph complete_graph(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph star_graph(int n) {
  QFS_ASSERT_MSG(n >= 1, "star needs >= 1 node");
  Graph g(n);
  for (int v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph grid_graph(int rows, int cols) {
  QFS_ASSERT_MSG(rows >= 1 && cols >= 1, "grid needs positive dims");
  Graph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph erdos_renyi(int n, double p, qfs::Rng& rng) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph random_connected_graph(int n, double extra_edge_prob, qfs::Rng& rng) {
  QFS_ASSERT_MSG(n >= 1, "need >= 1 node");
  Graph g(n);
  // Random spanning tree: attach each node (in shuffled order) to a random
  // earlier node.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  for (int i = 1; i < n; ++i) {
    int parent = order[static_cast<std::size_t>(
        rng.uniform_int(0, i - 1))];
    g.add_edge(order[static_cast<std::size_t>(i)], parent);
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (!g.has_edge(u, v) && rng.bernoulli(extra_edge_prob)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph random_regular_graph(int n, int k, qfs::Rng& rng) {
  QFS_ASSERT_MSG(n >= 2 && k >= 1 && k < n, "bad regular graph parameters");
  Graph g(n);
  // Greedy stub pairing with a bounded number of retries per pass; falls
  // back to leaving a node slightly under-degree rather than looping.
  std::vector<int> need(static_cast<std::size_t>(n), k);
  for (int pass = 0; pass < 4 * n * k; ++pass) {
    std::vector<int> open;
    for (int u = 0; u < n; ++u) {
      if (need[static_cast<std::size_t>(u)] > 0) open.push_back(u);
    }
    if (open.size() < 2) break;
    int u = open[static_cast<std::size_t>(rng.uniform_index(open.size()))];
    std::vector<int> candidates;
    for (int v : open) {
      if (v != u && !g.has_edge(u, v)) candidates.push_back(v);
    }
    if (candidates.empty()) {
      need[static_cast<std::size_t>(u)] = 0;  // cannot extend u further
      continue;
    }
    int v = candidates[static_cast<std::size_t>(rng.uniform_index(candidates.size()))];
    g.add_edge(u, v);
    --need[static_cast<std::size_t>(u)];
    --need[static_cast<std::size_t>(v)];
  }
  return g;
}

}  // namespace qfs::graph
