#include "graph/graph.h"

namespace qfs::graph {

Graph::Graph(int num_nodes) {
  QFS_ASSERT_MSG(num_nodes >= 0, "negative node count");
  adjacency_.resize(static_cast<std::size_t>(num_nodes));
}

void Graph::ensure_nodes(int n) {
  if (n > num_nodes()) adjacency_.resize(static_cast<std::size_t>(n));
}

void Graph::add_edge(Node u, Node v, double weight) {
  check_node(u);
  check_node(v);
  QFS_ASSERT_MSG(u != v, "self-loop not allowed");
  auto [it_u, inserted] = adjacency_[static_cast<std::size_t>(u)].try_emplace(v, 0.0);
  it_u->second += weight;
  adjacency_[static_cast<std::size_t>(v)][u] = it_u->second;
  if (inserted) ++num_edges_;
}

void Graph::set_edge_weight(Node u, Node v, double weight) {
  check_node(u);
  check_node(v);
  QFS_ASSERT_MSG(u != v, "self-loop not allowed");
  auto [it_u, inserted] = adjacency_[static_cast<std::size_t>(u)].try_emplace(v, 0.0);
  it_u->second = weight;
  adjacency_[static_cast<std::size_t>(v)][u] = weight;
  if (inserted) ++num_edges_;
}

bool Graph::has_edge(Node u, Node v) const {
  check_node(u);
  check_node(v);
  return adjacency_[static_cast<std::size_t>(u)].count(v) != 0;
}

double Graph::edge_weight(Node u, Node v) const {
  check_node(u);
  check_node(v);
  auto it = adjacency_[static_cast<std::size_t>(u)].find(v);
  return it == adjacency_[static_cast<std::size_t>(u)].end() ? 0.0 : it->second;
}

int Graph::degree(Node u) const {
  check_node(u);
  return static_cast<int>(adjacency_[static_cast<std::size_t>(u)].size());
}

double Graph::weighted_degree(Node u) const {
  check_node(u);
  double sum = 0.0;
  for (const auto& [v, w] : adjacency_[static_cast<std::size_t>(u)]) {
    sum += w;
  }
  return sum;
}

const std::map<Node, double>& Graph::neighbors(Node u) const {
  check_node(u);
  return adjacency_[static_cast<std::size_t>(u)];
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(static_cast<std::size_t>(num_edges_));
  for (Node u = 0; u < num_nodes(); ++u) {
    for (const auto& [v, w] : adjacency_[static_cast<std::size_t>(u)]) {
      if (u < v) out.push_back(Edge{u, v, w});
    }
  }
  return out;
}

double Graph::total_weight() const {
  double sum = 0.0;
  for (Node u = 0; u < num_nodes(); ++u) sum += weighted_degree(u);
  return sum / 2.0;
}

std::vector<std::vector<double>> Graph::adjacency_matrix() const {
  std::vector<std::vector<double>> m(
      static_cast<std::size_t>(num_nodes()),
      std::vector<double>(static_cast<std::size_t>(num_nodes()), 0.0));
  for (Node u = 0; u < num_nodes(); ++u) {
    for (const auto& [v, w] : adjacency_[static_cast<std::size_t>(u)]) {
      m[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] = w;
    }
  }
  return m;
}

}  // namespace qfs::graph
