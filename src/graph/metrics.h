// Graph-theoretic metrics used to characterise qubit interaction graphs
// (Table I of the paper) plus the auxiliary metrics the paper's Sec. IV
// starts from before Pearson reduction.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace qfs::graph {

/// Average hop count over all ordered connected pairs ("hopcount" in
/// Table I). 0 for graphs with < 2 nodes; pairs in different components are
/// ignored (the paper's suite graphs are connected on their active qubits).
double average_shortest_path(const Graph& g);

/// Closeness centrality of one node: (n-1) / sum of hop distances to all
/// reachable nodes, 0 when isolated.
double closeness(const Graph& g, Node u);

/// Mean closeness over all nodes.
double average_closeness(const Graph& g);

/// Local clustering coefficient of u: fraction of neighbour pairs that are
/// themselves connected; 0 when degree < 2.
double local_clustering(const Graph& g, Node u);

/// Global (average-of-local) clustering coefficient.
double average_clustering(const Graph& g);

/// Edge density: num_edges / (n choose 2); 0 for n < 2.
double density(const Graph& g);

struct DegreeStats {
  int min = 0;
  int max = 0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Unweighted degree statistics over all nodes.
DegreeStats degree_stats(const Graph& g);

struct WeightStats {
  double min = 0.0;   ///< smallest edge weight (0 when no edges)
  double max = 0.0;   ///< largest edge weight
  double mean = 0.0;  ///< mean edge weight
  double stddev = 0.0;
  double variance = 0.0;
};

/// Statistics over existing edge weights only.
WeightStats edge_weight_stats(const Graph& g);

/// Statistics over all upper-triangle adjacency-matrix entries, including
/// the zeros of absent edges. This is the "adjacency matrix std. dev." of
/// Table I: it reflects both how weights vary and how sparse the graph is.
WeightStats adjacency_matrix_stats(const Graph& g);

/// Degree assortativity (Pearson correlation of endpoint degrees over
/// edges); 0 when undefined (fewer than 2 edges or zero variance).
double degree_assortativity(const Graph& g);

/// Betweenness centrality of every node (Brandes' algorithm, unweighted,
/// unnormalised: the number of shortest paths through the node, counted
/// fractionally).
std::vector<double> betweenness_centrality(const Graph& g);

/// Mean betweenness over all nodes.
double average_betweenness(const Graph& g);

/// Eccentricity of u: largest hop distance to any reachable node.
int eccentricity(const Graph& g, Node u);

/// Radius: smallest eccentricity over all nodes (0 for n <= 1,
/// computed per component-reachable sets for disconnected graphs).
int radius(const Graph& g);

/// Algebraic connectivity: the second-smallest eigenvalue of the
/// (unweighted) graph Laplacian, estimated by deflated power iteration.
/// 0 for disconnected graphs; higher values mean better-connected graphs
/// (complete graph: n). Accuracy ~1e-6 for the graph sizes qfs profiles.
double algebraic_connectivity(const Graph& g, int iterations = 2000);

}  // namespace qfs::graph
