// Graph algorithms: shortest paths, connectivity, traversal.
#pragma once

#include <limits>
#include <vector>

#include "graph/graph.h"

namespace qfs::graph {

/// Sentinel distance for unreachable node pairs.
inline constexpr int kUnreachable = std::numeric_limits<int>::max();

/// Hop distances from `source` to every node (BFS); kUnreachable if none.
std::vector<int> bfs_distances(const Graph& g, Node source);

/// All-pairs hop distances; result[u][v] == kUnreachable when disconnected.
std::vector<std::vector<int>> all_pairs_hop_distances(const Graph& g);

/// All-pairs hop distances as one flat row-major buffer: entry u*n + v is
/// the hop count from u to v, kUnreachable when disconnected. Rows are
/// BFS-filled in place, so no per-row vectors are allocated; this is the
/// layout device::TopologyTables serves to the routing inner loops.
std::vector<int> flat_all_pairs_hop_distances(const Graph& g);

/// One shortest (fewest-hop) path from `source` to `target`, inclusive of
/// both endpoints. Empty if unreachable. Ties broken toward smaller node ids
/// so results are deterministic.
std::vector<Node> shortest_path(const Graph& g, Node source, Node target);

/// Weighted shortest-path distances (Dijkstra, weights must be >= 0).
std::vector<double> dijkstra_distances(const Graph& g, Node source);

/// Connected component id per node (ids are dense, ordered by first member).
std::vector<int> connected_components(const Graph& g);

/// True when every node is reachable from every other (n <= 1 counts).
bool is_connected(const Graph& g);

/// Longest shortest-path hop distance; kUnreachable if disconnected,
/// 0 for graphs with fewer than two nodes.
int diameter(const Graph& g);

/// Nodes in breadth-first order from `source` (its component only).
std::vector<Node> bfs_order(const Graph& g, Node source);

/// Subgraph induced on `keep` (must be distinct, in-range nodes). Node i of
/// the result corresponds to keep[i]; edge weights are preserved.
Graph induced_subgraph(const Graph& g, const std::vector<Node>& keep);

/// Nodes of the largest connected component, ascending. Ties broken toward
/// the component containing the smallest node id. Empty for empty graphs.
std::vector<Node> largest_component_nodes(const Graph& g);

}  // namespace qfs::graph
