#include "graph/metrics.h"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.h"

namespace qfs::graph {

double average_shortest_path(const Graph& g) {
  const int n = g.num_nodes();
  if (n < 2) return 0.0;
  long long total = 0;
  long long pairs = 0;
  for (Node u = 0; u < n; ++u) {
    auto dist = bfs_distances(g, u);
    for (Node v = 0; v < n; ++v) {
      if (v == u) continue;
      if (dist[static_cast<std::size_t>(v)] != kUnreachable) {
        total += dist[static_cast<std::size_t>(v)];
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(pairs);
}

double closeness(const Graph& g, Node u) {
  const int n = g.num_nodes();
  if (n < 2) return 0.0;
  auto dist = bfs_distances(g, u);
  long long total = 0;
  int reachable = 0;
  for (Node v = 0; v < n; ++v) {
    if (v == u || dist[static_cast<std::size_t>(v)] == kUnreachable) continue;
    total += dist[static_cast<std::size_t>(v)];
    ++reachable;
  }
  if (reachable == 0 || total == 0) return 0.0;
  // Wasserman-Faust style normalisation so values are comparable across
  // components of different sizes.
  double frac = static_cast<double>(reachable) / static_cast<double>(n - 1);
  return frac * static_cast<double>(reachable) / static_cast<double>(total);
}

double average_closeness(const Graph& g) {
  const int n = g.num_nodes();
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (Node u = 0; u < n; ++u) sum += closeness(g, u);
  return sum / n;
}

double local_clustering(const Graph& g, Node u) {
  const auto& nbrs = g.neighbors(u);
  const int k = static_cast<int>(nbrs.size());
  if (k < 2) return 0.0;
  int links = 0;
  for (auto it1 = nbrs.begin(); it1 != nbrs.end(); ++it1) {
    auto it2 = it1;
    for (++it2; it2 != nbrs.end(); ++it2) {
      if (g.has_edge(it1->first, it2->first)) ++links;
    }
  }
  return 2.0 * links / (static_cast<double>(k) * (k - 1));
}

double average_clustering(const Graph& g) {
  const int n = g.num_nodes();
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (Node u = 0; u < n; ++u) sum += local_clustering(g, u);
  return sum / n;
}

double density(const Graph& g) {
  const int n = g.num_nodes();
  if (n < 2) return 0.0;
  return 2.0 * g.num_edges() / (static_cast<double>(n) * (n - 1));
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  const int n = g.num_nodes();
  if (n == 0) return s;
  s.min = g.degree(0);
  s.max = g.degree(0);
  double sum = 0.0;
  for (Node u = 0; u < n; ++u) {
    int d = g.degree(u);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    sum += d;
  }
  s.mean = sum / n;
  double var = 0.0;
  for (Node u = 0; u < n; ++u) {
    double diff = g.degree(u) - s.mean;
    var += diff * diff;
  }
  s.stddev = std::sqrt(var / n);
  return s;
}

namespace {
WeightStats stats_from_values(const std::vector<double>& values) {
  WeightStats s;
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) {
    double diff = v - s.mean;
    var += diff * diff;
  }
  s.variance = var / static_cast<double>(values.size());
  s.stddev = std::sqrt(s.variance);
  return s;
}
}  // namespace

WeightStats edge_weight_stats(const Graph& g) {
  std::vector<double> w;
  w.reserve(static_cast<std::size_t>(g.num_edges()));
  for (const Edge& e : g.edges()) w.push_back(e.weight);
  return stats_from_values(w);
}

WeightStats adjacency_matrix_stats(const Graph& g) {
  const int n = g.num_nodes();
  if (n < 2) return WeightStats{};
  std::vector<double> entries;
  entries.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (Node u = 0; u < n; ++u) {
    for (Node v = u + 1; v < n; ++v) entries.push_back(g.edge_weight(u, v));
  }
  return stats_from_values(entries);
}

std::vector<double> betweenness_centrality(const Graph& g) {
  const int n = g.num_nodes();
  std::vector<double> centrality(static_cast<std::size_t>(n), 0.0);
  // Brandes' algorithm: one BFS per source with dependency accumulation.
  for (Node s = 0; s < n; ++s) {
    std::vector<std::vector<Node>> preds(static_cast<std::size_t>(n));
    std::vector<double> sigma(static_cast<std::size_t>(n), 0.0);
    std::vector<int> dist(static_cast<std::size_t>(n), -1);
    std::vector<Node> order;
    sigma[static_cast<std::size_t>(s)] = 1.0;
    dist[static_cast<std::size_t>(s)] = 0;
    std::vector<Node> queue = {s};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      Node v = queue[head];
      order.push_back(v);
      for (const auto& [w, weight] : g.neighbors(v)) {
        if (dist[static_cast<std::size_t>(w)] < 0) {
          dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
          queue.push_back(w);
        }
        if (dist[static_cast<std::size_t>(w)] ==
            dist[static_cast<std::size_t>(v)] + 1) {
          sigma[static_cast<std::size_t>(w)] += sigma[static_cast<std::size_t>(v)];
          preds[static_cast<std::size_t>(w)].push_back(v);
        }
      }
    }
    std::vector<double> delta(static_cast<std::size_t>(n), 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      Node w = *it;
      for (Node v : preds[static_cast<std::size_t>(w)]) {
        delta[static_cast<std::size_t>(v)] +=
            sigma[static_cast<std::size_t>(v)] /
            sigma[static_cast<std::size_t>(w)] *
            (1.0 + delta[static_cast<std::size_t>(w)]);
      }
      if (w != s) centrality[static_cast<std::size_t>(w)] += delta[static_cast<std::size_t>(w)];
    }
  }
  // Each undirected pair was counted twice (once per endpoint as source).
  for (double& c : centrality) c /= 2.0;
  return centrality;
}

double average_betweenness(const Graph& g) {
  if (g.num_nodes() == 0) return 0.0;
  auto c = betweenness_centrality(g);
  double sum = 0.0;
  for (double v : c) sum += v;
  return sum / g.num_nodes();
}

int eccentricity(const Graph& g, Node u) {
  auto dist = bfs_distances(g, u);
  int worst = 0;
  for (int d : dist) {
    if (d != kUnreachable) worst = std::max(worst, d);
  }
  return worst;
}

int radius(const Graph& g) {
  if (g.num_nodes() <= 1) return 0;
  int best = kUnreachable;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    best = std::min(best, eccentricity(g, u));
  }
  return best;
}

double algebraic_connectivity(const Graph& g, int iterations) {
  const int n = g.num_nodes();
  if (n <= 1) return 0.0;
  if (!is_connected(g)) return 0.0;

  // Power iteration on M = c*I - L converges to the eigenvector of L's
  // smallest eigenvalue among those kept; deflating the all-ones vector
  // (L's kernel) leaves lambda_2 as the target. c = max degree * 2 + 1
  // keeps M positive definite on the deflated space.
  std::vector<int> degree(static_cast<std::size_t>(n));
  int max_degree = 0;
  for (Node u = 0; u < n; ++u) {
    degree[static_cast<std::size_t>(u)] = g.degree(u);
    max_degree = std::max(max_degree, g.degree(u));
  }
  const double c = 2.0 * max_degree + 1.0;

  // Deterministic pseudo-random start vector, orthogonal to all-ones.
  std::vector<double> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] =
        std::sin(1.0 + 0.7318 * static_cast<double>(i + 1));
  }

  auto deflate = [n](std::vector<double>& x) {
    double mean = 0.0;
    for (double xi : x) mean += xi;
    mean /= n;
    for (double& xi : x) xi -= mean;
  };
  auto normalize = [](std::vector<double>& x) {
    double norm = 0.0;
    for (double xi : x) norm += xi * xi;
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (double& xi : x) xi /= norm;
    }
    return norm;
  };

  deflate(v);
  normalize(v);
  std::vector<double> next(static_cast<std::size_t>(n));
  for (int it = 0; it < iterations; ++it) {
    // next = (c*I - L) v = c*v - D*v + A*v
    for (int u = 0; u < n; ++u) {
      double acc = (c - degree[static_cast<std::size_t>(u)]) *
                   v[static_cast<std::size_t>(u)];
      for (const auto& [nbr, w] : g.neighbors(u)) {
        acc += v[static_cast<std::size_t>(nbr)];
      }
      next[static_cast<std::size_t>(u)] = acc;
    }
    deflate(next);
    normalize(next);
    std::swap(v, next);
  }
  // Rayleigh quotient of L at the converged vector.
  double quad = 0.0;
  for (const auto& e : g.edges()) {
    double diff = v[static_cast<std::size_t>(e.u)] - v[static_cast<std::size_t>(e.v)];
    quad += diff * diff;
  }
  double norm_sq = 0.0;
  for (double xi : v) norm_sq += xi * xi;
  return norm_sq > 0 ? quad / norm_sq : 0.0;
}

double degree_assortativity(const Graph& g) {
  auto es = g.edges();
  if (es.size() < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const double m = static_cast<double>(es.size()) * 2.0;  // both orientations
  for (const Edge& e : es) {
    double du = g.degree(e.u);
    double dv = g.degree(e.v);
    // Count each edge in both orientations so the measure is symmetric.
    sx += du + dv;
    sy += dv + du;
    sxx += du * du + dv * dv;
    syy += dv * dv + du * du;
    sxy += 2.0 * du * dv;
  }
  double cov = sxy / m - (sx / m) * (sy / m);
  double varx = sxx / m - (sx / m) * (sx / m);
  double vary = syy / m - (sy / m) * (sy / m);
  if (varx <= 0.0 || vary <= 0.0) return 0.0;
  return cov / std::sqrt(varx * vary);
}

}  // namespace qfs::graph
