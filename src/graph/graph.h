// Weighted undirected graph.
//
// Used both for device coupling graphs (unit weights) and for qubit
// interaction graphs (edge weight = number of two-qubit gates between a
// qubit pair). Parallel edges are collapsed: adding an existing edge
// accumulates its weight.
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "support/assert.h"

namespace qfs::graph {

/// Node index type; nodes are dense integers [0, num_nodes).
using Node = int;

/// One undirected weighted edge (u < v is normalised on query helpers).
struct Edge {
  Node u = 0;
  Node v = 0;
  double weight = 1.0;
};

/// Weighted undirected simple graph with O(deg) neighbour iteration and
/// O(log deg) edge lookup.
class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_nodes);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  int num_edges() const { return num_edges_; }

  /// Grow the node set to at least `n` nodes.
  void ensure_nodes(int n);

  /// Add `weight` to edge {u, v}, creating it if absent.
  /// Self-loops are a contract violation (interaction graphs never have
  /// them: a two-qubit gate touches two distinct qubits).
  void add_edge(Node u, Node v, double weight = 1.0);

  /// Replace the weight of edge {u, v}, creating it if absent.
  void set_edge_weight(Node u, Node v, double weight);

  bool has_edge(Node u, Node v) const;

  /// Weight of {u, v}; 0 if the edge does not exist.
  double edge_weight(Node u, Node v) const;

  /// Unweighted degree (number of incident edges).
  int degree(Node u) const;

  /// Sum of incident edge weights (a.k.a. node strength).
  double weighted_degree(Node u) const;

  /// Neighbours of u with weights, ordered by neighbour index.
  const std::map<Node, double>& neighbors(Node u) const;

  /// All edges, each reported once with u < v, ordered lexicographically.
  std::vector<Edge> edges() const;

  /// Total edge weight of the graph.
  double total_weight() const;

  /// Dense symmetric adjacency matrix (num_nodes x num_nodes), zero diagonal.
  std::vector<std::vector<double>> adjacency_matrix() const;

  bool operator==(const Graph& other) const {
    return adjacency_ == other.adjacency_;
  }

 private:
  void check_node(Node u) const {
    QFS_ASSERT_MSG(0 <= u && u < num_nodes(), "node index out of range");
  }

  std::vector<std::map<Node, double>> adjacency_;
  int num_edges_ = 0;
};

}  // namespace qfs::graph
