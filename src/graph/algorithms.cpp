#include "graph/algorithms.h"

#include <algorithm>
#include <queue>

namespace qfs::graph {

std::vector<int> bfs_distances(const Graph& g, Node source) {
  QFS_ASSERT_MSG(0 <= source && source < g.num_nodes(), "bad source node");
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()), kUnreachable);
  std::queue<Node> q;
  dist[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    Node u = q.front();
    q.pop();
    for (const auto& [v, w] : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(v)] == kUnreachable) {
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

std::vector<std::vector<int>> all_pairs_hop_distances(const Graph& g) {
  std::vector<std::vector<int>> all;
  all.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (Node u = 0; u < g.num_nodes(); ++u) all.push_back(bfs_distances(g, u));
  return all;
}

std::vector<int> flat_all_pairs_hop_distances(const Graph& g) {
  const std::size_t n = static_cast<std::size_t>(g.num_nodes());
  std::vector<int> flat(n * n, kUnreachable);
  std::queue<Node> q;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    int* row = flat.data() + static_cast<std::size_t>(u) * n;
    row[u] = 0;
    q.push(u);
    while (!q.empty()) {
      Node a = q.front();
      q.pop();
      for (const auto& [b, w] : g.neighbors(a)) {
        if (row[b] == kUnreachable) {
          row[b] = row[a] + 1;
          q.push(b);
        }
      }
    }
  }
  return flat;
}

std::vector<Node> shortest_path(const Graph& g, Node source, Node target) {
  QFS_ASSERT_MSG(0 <= source && source < g.num_nodes(), "bad source node");
  QFS_ASSERT_MSG(0 <= target && target < g.num_nodes(), "bad target node");
  if (source == target) return {source};
  std::vector<Node> parent(static_cast<std::size_t>(g.num_nodes()), -1);
  std::vector<bool> seen(static_cast<std::size_t>(g.num_nodes()), false);
  std::queue<Node> q;
  seen[static_cast<std::size_t>(source)] = true;
  q.push(source);
  while (!q.empty()) {
    Node u = q.front();
    q.pop();
    // std::map iteration gives ascending neighbour ids => deterministic ties.
    for (const auto& [v, w] : g.neighbors(u)) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        parent[static_cast<std::size_t>(v)] = u;
        if (v == target) {
          std::vector<Node> path;
          for (Node x = target; x != -1; x = parent[static_cast<std::size_t>(x)]) {
            path.push_back(x);
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        q.push(v);
      }
    }
  }
  return {};
}

std::vector<double> dijkstra_distances(const Graph& g, Node source) {
  QFS_ASSERT_MSG(0 <= source && source < g.num_nodes(), "bad source node");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(g.num_nodes()), kInf);
  using Item = std::pair<double, Node>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(source)] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const auto& [v, w] : g.neighbors(u)) {
      QFS_ASSERT_MSG(w >= 0.0, "dijkstra requires non-negative weights");
      double nd = d + w;
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        pq.emplace(nd, v);
      }
    }
  }
  return dist;
}

std::vector<int> connected_components(const Graph& g) {
  std::vector<int> comp(static_cast<std::size_t>(g.num_nodes()), -1);
  int next = 0;
  for (Node s = 0; s < g.num_nodes(); ++s) {
    if (comp[static_cast<std::size_t>(s)] != -1) continue;
    int id = next++;
    std::queue<Node> q;
    comp[static_cast<std::size_t>(s)] = id;
    q.push(s);
    while (!q.empty()) {
      Node u = q.front();
      q.pop();
      for (const auto& [v, w] : g.neighbors(u)) {
        if (comp[static_cast<std::size_t>(v)] == -1) {
          comp[static_cast<std::size_t>(v)] = id;
          q.push(v);
        }
      }
    }
  }
  return comp;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  auto comp = connected_components(g);
  return std::all_of(comp.begin(), comp.end(), [](int c) { return c == 0; });
}

int diameter(const Graph& g) {
  if (g.num_nodes() <= 1) return 0;
  int best = 0;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    auto dist = bfs_distances(g, u);
    for (int d : dist) {
      if (d == kUnreachable) return kUnreachable;
      best = std::max(best, d);
    }
  }
  return best;
}

std::vector<Node> bfs_order(const Graph& g, Node source) {
  QFS_ASSERT_MSG(0 <= source && source < g.num_nodes(), "bad source node");
  std::vector<Node> order;
  std::vector<bool> seen(static_cast<std::size_t>(g.num_nodes()), false);
  std::queue<Node> q;
  seen[static_cast<std::size_t>(source)] = true;
  q.push(source);
  while (!q.empty()) {
    Node u = q.front();
    q.pop();
    order.push_back(u);
    for (const auto& [v, w] : g.neighbors(u)) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        q.push(v);
      }
    }
  }
  return order;
}

Graph induced_subgraph(const Graph& g, const std::vector<Node>& keep) {
  std::vector<int> to_new(static_cast<std::size_t>(g.num_nodes()), -1);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    Node u = keep[i];
    QFS_ASSERT_MSG(0 <= u && u < g.num_nodes(), "kept node out of range");
    QFS_ASSERT_MSG(to_new[static_cast<std::size_t>(u)] == -1,
                   "kept node listed twice");
    to_new[static_cast<std::size_t>(u)] = static_cast<int>(i);
  }
  Graph sub(static_cast<int>(keep.size()));
  for (std::size_t i = 0; i < keep.size(); ++i) {
    for (const auto& [v, w] : g.neighbors(keep[i])) {
      int nv = to_new[static_cast<std::size_t>(v)];
      if (nv > static_cast<int>(i)) {
        sub.add_edge(static_cast<Node>(i), nv, w);
      }
    }
  }
  return sub;
}

std::vector<Node> largest_component_nodes(const Graph& g) {
  auto comp = connected_components(g);
  std::vector<int> size;
  for (int c : comp) {
    if (c >= static_cast<int>(size.size())) size.resize(static_cast<std::size_t>(c) + 1, 0);
    ++size[static_cast<std::size_t>(c)];
  }
  int best = -1;
  for (int c = 0; c < static_cast<int>(size.size()); ++c) {
    // Strict > keeps the first (smallest-first-node) component on ties.
    if (best == -1 || size[static_cast<std::size_t>(c)] > size[static_cast<std::size_t>(best)]) best = c;
  }
  std::vector<Node> nodes;
  if (best == -1) return nodes;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    if (comp[static_cast<std::size_t>(u)] == best) nodes.push_back(u);
  }
  return nodes;
}

}  // namespace qfs::graph
