// Canonical graph families: used by tests (known closed-form metric values),
// by device topologies, and by the QAOA workload generator (problem graphs).
#pragma once

#include "graph/graph.h"
#include "support/rng.h"

namespace qfs::graph {

/// Path 0-1-...-(n-1).
Graph path_graph(int n);

/// Cycle of n >= 3 nodes.
Graph cycle_graph(int n);

/// Complete graph K_n, unit weights.
Graph complete_graph(int n);

/// Star with node 0 at the centre and n-1 leaves.
Graph star_graph(int n);

/// rows x cols 2D grid with nearest-neighbour edges.
Graph grid_graph(int rows, int cols);

/// Erdős–Rényi G(n, p); connectivity is not guaranteed.
Graph erdos_renyi(int n, double p, qfs::Rng& rng);

/// Connected random graph: a uniform random spanning tree plus extra
/// G(n, p)-style edges. Every node pair stays reachable.
Graph random_connected_graph(int n, double extra_edge_prob, qfs::Rng& rng);

/// Random k-regular-ish graph built by pairing node stubs; simple (no
/// multi-edges) but may fall short of k on a few nodes when n*k is small.
Graph random_regular_graph(int n, int k, qfs::Rng& rng);

}  // namespace qfs::graph
