#include "compiler/optimize.h"

#include <cmath>
#include <optional>

namespace qfs::compiler {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

namespace {

bool same_operands(const Gate& a, const Gate& b) { return a.qubits == b.qubits; }

bool params_close(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > 1e-12) return false;
  }
  return true;
}

/// True when b is exactly the inverse of a (same operands).
bool are_inverse_pair(const Gate& a, const Gate& b) {
  if (!circuit::is_unitary(a.kind) || !circuit::is_unitary(b.kind)) return false;
  if (!same_operands(a, b)) return false;
  Gate inv = circuit::inverse_gate(a);
  return inv.kind == b.kind && params_close(inv.params, b.params);
}

bool is_rotation(GateKind kind) {
  return kind == GateKind::kRx || kind == GateKind::kRy ||
         kind == GateKind::kRz || kind == GateKind::kPhase;
}

/// One sweep of inverse-pair cancellation; returns nullopt when nothing
/// changed.
std::optional<Circuit> cancel_sweep(const Circuit& input) {
  const auto& gates = input.gates();
  std::vector<bool> removed(gates.size(), false);
  // Track, per qubit, the index of the latest surviving gate touching it.
  std::vector<int> last(static_cast<std::size_t>(input.num_qubits()), -1);
  bool changed = false;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    // Find the unique previous gate across all operands (must be the same
    // gate index on every operand for adjacency in the dependency sense).
    int prev = -1;
    bool uniform = true;
    for (int q : g.qubits) {
      int p = last[static_cast<std::size_t>(q)];
      if (prev == -1) {
        prev = p;
      } else if (prev != p) {
        uniform = false;
      }
    }
    if (uniform && prev >= 0 && !removed[static_cast<std::size_t>(prev)] &&
        are_inverse_pair(gates[static_cast<std::size_t>(prev)], g)) {
      removed[static_cast<std::size_t>(prev)] = true;
      removed[i] = true;
      changed = true;
      // Roll back `last` for the cancelled pair's qubits by rescanning.
      for (int q : g.qubits) {
        int restored = -1;
        for (int j = static_cast<int>(i) - 1; j >= 0; --j) {
          if (removed[static_cast<std::size_t>(j)]) continue;
          const Gate& h = gates[static_cast<std::size_t>(j)];
          for (int hq : h.qubits) {
            if (hq == q) {
              restored = j;
              break;
            }
          }
          if (restored != -1) break;
        }
        last[static_cast<std::size_t>(q)] = restored;
      }
      continue;
    }
    for (int q : g.qubits) last[static_cast<std::size_t>(q)] = static_cast<int>(i);
  }
  if (!changed) return std::nullopt;
  Circuit out(input.num_qubits(), input.name());
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (!removed[i]) out.add(gates[i]);
  }
  return out;
}

}  // namespace

Circuit remove_identities(const Circuit& input) {
  Circuit out(input.num_qubits(), input.name());
  for (const Gate& g : input.gates()) {
    if (g.kind == GateKind::kI) continue;
    if (is_rotation(g.kind) &&
        std::abs(std::remainder(g.params[0], 2.0 * M_PI)) < 1e-12) {
      continue;  // identity up to global phase
    }
    out.add(g);
  }
  return out;
}

Circuit cancel_inverse_pairs(const Circuit& input) {
  Circuit current = input;
  while (auto next = cancel_sweep(current)) current = std::move(*next);
  return current;
}

Circuit merge_rotations(const Circuit& input) {
  Circuit out(input.num_qubits(), input.name());
  // Pending rotation per qubit: kind + accumulated angle.
  struct Pending {
    GateKind kind = GateKind::kI;
    double angle = 0.0;
    bool active = false;
  };
  std::vector<Pending> pending(static_cast<std::size_t>(input.num_qubits()));

  auto flush = [&out](Pending& p, int q) {
    if (!p.active) return;
    if (std::abs(std::remainder(p.angle, 2.0 * M_PI)) >= 1e-12) {
      out.add(p.kind, {q}, {p.angle});
    }
    p.active = false;
    p.angle = 0.0;
  };

  for (const Gate& g : input.gates()) {
    if (is_rotation(g.kind) && g.qubits.size() == 1) {
      auto& p = pending[static_cast<std::size_t>(g.qubits[0])];
      if (p.active && p.kind == g.kind) {
        p.angle += g.params[0];
      } else {
        flush(p, g.qubits[0]);
        p.kind = g.kind;
        p.angle = g.params[0];
        p.active = true;
      }
      continue;
    }
    for (int q : g.qubits) flush(pending[static_cast<std::size_t>(q)], q);
    out.add(g);
  }
  for (int q = 0; q < input.num_qubits(); ++q) {
    flush(pending[static_cast<std::size_t>(q)], q);
  }
  return out;
}

namespace {

/// Per-qubit commutation class.
enum class Axis { kDiag, kXLike, kOther };

Axis axis_on(const Gate& g, int qubit) {
  switch (g.kind) {
    case GateKind::kZ:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kRz:
    case GateKind::kPhase:
    case GateKind::kCz:
    case GateKind::kCphase:
    case GateKind::kCcz:
      return Axis::kDiag;
    case GateKind::kX:
    case GateKind::kRx:
    case GateKind::kSx:
    case GateKind::kSxdg:
      return Axis::kXLike;
    case GateKind::kCx:
      return qubit == g.qubits[0] ? Axis::kDiag : Axis::kXLike;
    case GateKind::kCcx:
      return qubit == g.qubits[2] ? Axis::kXLike : Axis::kDiag;
    default:
      return Axis::kOther;
  }
}

}  // namespace

bool gates_commute(const Gate& a, const Gate& b) {
  if (!circuit::is_unitary(a.kind) || !circuit::is_unitary(b.kind)) {
    return false;
  }
  for (int qa : a.qubits) {
    for (int qb : b.qubits) {
      if (qa != qb) continue;
      Axis ax = axis_on(a, qa);
      Axis bx = axis_on(b, qb);
      if (ax == Axis::kOther || ax != bx) return false;
    }
  }
  return true;
}

namespace {

std::optional<Circuit> commutation_cancel_sweep(const Circuit& input) {
  const auto& gates = input.gates();
  std::vector<bool> removed(gates.size(), false);
  bool changed = false;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (removed[i]) continue;
    const Gate& g = gates[i];
    if (!circuit::is_unitary(g.kind)) continue;
    // Walk left past commuting gates looking for the inverse partner.
    for (std::size_t jj = i; jj > 0; --jj) {
      std::size_t j = jj - 1;
      if (removed[j]) continue;
      const Gate& h = gates[j];
      if (are_inverse_pair(h, g)) {
        removed[i] = true;
        removed[j] = true;
        changed = true;
        break;
      }
      if (!gates_commute(g, h)) break;
    }
  }
  if (!changed) return std::nullopt;
  Circuit out(input.num_qubits(), input.name());
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (!removed[i]) out.add(gates[i]);
  }
  return out;
}

}  // namespace

Circuit cancel_with_commutation(const Circuit& input) {
  Circuit current = input;
  while (auto next = commutation_cancel_sweep(current)) current = std::move(*next);
  return current;
}

Circuit optimize(const Circuit& input) {
  Circuit current = input;
  while (true) {
    Circuit next = cancel_with_commutation(
        cancel_inverse_pairs(merge_rotations(remove_identities(current))));
    if (next == current) return current;
    current = std::move(next);
  }
}

}  // namespace qfs::compiler
