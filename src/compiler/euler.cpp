#include "compiler/euler.h"

#include <cmath>

namespace qfs::compiler {

using circuit::CMatrix;
using circuit::Complex;

ZyzAngles zyz_decompose(const CMatrix& u) {
  QFS_ASSERT_MSG(u.dim() == 2, "zyz_decompose needs a 2x2 matrix");
  QFS_ASSERT_MSG(u.is_unitary(1e-8), "zyz_decompose needs a unitary matrix");

  // Normalise to SU(2): su = u / sqrt(det u).
  Complex det = u.at(0, 0) * u.at(1, 1) - u.at(0, 1) * u.at(1, 0);
  Complex sqrt_det = std::sqrt(det);
  CMatrix su = u.scaled(Complex(1.0, 0.0) / sqrt_det);

  // su = [[cos(t/2) e^{-i(phi+lambda)/2}, -sin(t/2) e^{-i(phi-lambda)/2}],
  //       [sin(t/2) e^{ i(phi-lambda)/2},  cos(t/2) e^{ i(phi+lambda)/2}]]
  ZyzAngles angles;
  double c = std::abs(su.at(0, 0));
  double s = std::abs(su.at(1, 0));
  angles.theta = 2.0 * std::atan2(s, c);

  const double eps = 1e-12;
  if (s < eps) {
    // Diagonal: only phi + lambda is determined; put it all in lambda.
    angles.phi = 0.0;
    angles.lambda = 2.0 * std::arg(su.at(1, 1));
  } else if (c < eps) {
    // Anti-diagonal: only phi - lambda is determined.
    angles.phi = 0.0;
    angles.lambda = -2.0 * std::arg(su.at(1, 0));
  } else {
    double sum = 2.0 * std::arg(su.at(1, 1));   // phi + lambda
    double diff = 2.0 * std::arg(su.at(1, 0));  // phi - lambda
    angles.phi = 0.5 * (sum + diff);
    angles.lambda = 0.5 * (sum - diff);
  }

  // Recover the global phase of the original (non-SU) matrix:
  // u = e^{i phase} Rz(phi) Ry(theta) Rz(lambda).
  angles.phase = std::arg(sqrt_det);
  return angles;
}

}  // namespace qfs::compiler
