#include "compiler/schedule.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "circuit/flat.h"

namespace qfs::compiler {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

namespace {

int duration_in_cycles(const Gate& g, const device::Device& device,
                       double cycle_time_ns) {
  if (g.kind == GateKind::kBarrier) return 0;
  double ns = device.error_model().gate_duration_ns(g.kind);
  return std::max(1, static_cast<int>(std::ceil(ns / cycle_time_ns)));
}

/// Occupancy of one control group: which gate kind holds each cycle.
/// Same-kind gates may share a cycle; different kinds may not.
class GroupOccupancy {
 public:
  bool compatible(int start, int duration, GateKind kind) const {
    for (int c = start; c < start + duration; ++c) {
      auto it = kind_by_cycle_.find(c);
      if (it != kind_by_cycle_.end() && it->second != kind) return false;
    }
    return true;
  }

  void occupy(int start, int duration, GateKind kind) {
    for (int c = start; c < start + duration; ++c) kind_by_cycle_[c] = kind;
  }

 private:
  std::map<int, GateKind> kind_by_cycle_;
};

}  // namespace

namespace {

/// Scheduled two-qubit span, for crosstalk exclusion checks.
struct TwoQubitSpan {
  int start, end;
  int a, b;
};

/// True when gates on edges {a1,b1} and {a2,b2} would crosstalk: the edges
/// are distinct but some endpoint of one couples to an endpoint of the
/// other (spectator coupling).
bool edges_crosstalk(const device::Device& device, int a1, int b1, int a2,
                     int b2) {
  const auto& topo = device.topology();
  for (int p : {a1, b1}) {
    for (int q : {a2, b2}) {
      if (p == q || topo.adjacent(p, q)) return true;
    }
  }
  return false;
}

}  // namespace

Schedule asap_schedule(const Circuit& circuit, const device::Device& device,
                       const ScheduleOptions& options) {
  Schedule schedule;
  schedule.cycle_time_ns = options.cycle_time_ns;
  const bool use_groups =
      options.respect_control_groups && device.has_control_groups();

  // Flat scan: the inner loop reads contiguous Instr operand slots and
  // per-kind tables (duration, two-qubit flag) instead of walking each
  // Gate's qubit vector and re-deriving its duration from the error model.
  // Every computed start cycle is the same arithmetic in the same order as
  // the per-Gate loop this replaces, so the schedule is identical.
  const circuit::FlatCircuit flat = circuit::flatten(circuit);
  int duration_by_op[circuit::kNumOps];
  bool two_qubit_op[circuit::kNumOps];
  for (int k = 0; k < circuit::kNumOps; ++k) {
    const GateKind kind = static_cast<GateKind>(k);
    two_qubit_op[k] = circuit::is_two_qubit(kind);
    if (kind == GateKind::kBarrier) {
      duration_by_op[k] = 0;
      continue;
    }
    double ns = device.error_model().gate_duration_ns(kind);
    duration_by_op[k] =
        std::max(1, static_cast<int>(std::ceil(ns / options.cycle_time_ns)));
  }

  std::vector<int> qubit_free(static_cast<std::size_t>(circuit.num_qubits()), 0);
  std::map<int, GroupOccupancy> groups;
  std::vector<TwoQubitSpan> two_qubit_spans;

  for (std::size_t i = 0; i < flat.size(); ++i) {
    const circuit::Instr& ins = flat.instrs[i];
    const int op = static_cast<int>(ins.op);
    const GateKind kind = circuit::to_gate_kind(ins.op);
    int operand_count = 0;
    const std::int32_t* operands = flat.qubits_of(i, &operand_count);
    const int duration = duration_by_op[op];
    const bool is_2q = two_qubit_op[op];
    int ready = 0;
    for (int s = 0; s < operand_count; ++s) {
      ready = std::max(ready, qubit_free[static_cast<std::size_t>(operands[s])]);
    }
    int start = ready;
    if (duration > 0) {
      while (true) {
        bool ok = true;
        if (use_groups) {
          for (int s = 0; s < operand_count; ++s) {
            int group = device.control_group(operands[s]);
            if (!groups[group].compatible(start, duration, kind)) {
              ok = false;
              break;
            }
          }
        }
        if (ok && options.avoid_crosstalk && is_2q) {
          for (const auto& span : two_qubit_spans) {
            bool overlaps = start < span.end && span.start < start + duration;
            if (overlaps && edges_crosstalk(device, operands[0], operands[1],
                                            span.a, span.b)) {
              ok = false;
              break;
            }
          }
        }
        if (ok) break;
        ++start;
      }
      if (use_groups) {
        for (int s = 0; s < operand_count; ++s) {
          groups[device.control_group(operands[s])].occupy(start, duration,
                                                           kind);
        }
      }
      if (options.avoid_crosstalk && is_2q) {
        two_qubit_spans.push_back(
            TwoQubitSpan{start, start + duration, operands[0], operands[1]});
      }
    }
    for (int s = 0; s < operand_count; ++s) {
      qubit_free[static_cast<std::size_t>(operands[s])] = start + duration;
    }
    schedule.gates.push_back(ScheduledGate{static_cast<int>(i), start, duration});
    schedule.makespan_cycles = std::max(schedule.makespan_cycles, start + duration);
  }
  return schedule;
}

int count_crosstalk_pairs(const Circuit& circuit, const device::Device& device,
                          const Schedule& schedule) {
  std::vector<TwoQubitSpan> spans;
  for (const auto& sg : schedule.gates) {
    const Gate& g = circuit.gates()[static_cast<std::size_t>(sg.gate_index)];
    if (!circuit::is_two_qubit(g.kind)) continue;
    spans.push_back(TwoQubitSpan{sg.start_cycle,
                                 sg.start_cycle + sg.duration_cycles,
                                 g.qubits[0], g.qubits[1]});
  }
  int pairs = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      bool overlaps =
          spans[i].start < spans[j].end && spans[j].start < spans[i].end;
      if (overlaps && edges_crosstalk(device, spans[i].a, spans[i].b,
                                      spans[j].a, spans[j].b)) {
        ++pairs;
      }
    }
  }
  return pairs;
}

double estimate_scheduled_log_fidelity(const Circuit& circuit,
                                       const device::Device& device,
                                       const Schedule& schedule,
                                       double crosstalk_fidelity_factor) {
  QFS_ASSERT_MSG(0.0 < crosstalk_fidelity_factor &&
                     crosstalk_fidelity_factor <= 1.0,
                 "bad crosstalk factor");
  double log_f = 0.0;
  const auto& em = device.error_model();
  for (const Gate& g : circuit.gates()) {
    if (!circuit::is_unitary(g.kind)) continue;
    log_f += std::log(em.gate_fidelity(g));
  }
  log_f += count_crosstalk_pairs(circuit, device, schedule) *
           std::log(crosstalk_fidelity_factor);
  return log_f;
}

Schedule alap_schedule(const Circuit& circuit, const device::Device& device,
                       const ScheduleOptions& options) {
  // Schedule the reversed circuit ASAP, then mirror the times. Control-group
  // validity is preserved because the constraint is time-symmetric.
  Circuit reversed(circuit.num_qubits(), circuit.name());
  const auto& gates = circuit.gates();
  for (auto it = gates.rbegin(); it != gates.rend(); ++it) reversed.add(*it);

  Schedule rev = asap_schedule(reversed, device, options);
  Schedule schedule;
  schedule.cycle_time_ns = options.cycle_time_ns;
  schedule.makespan_cycles = rev.makespan_cycles;
  schedule.gates.resize(gates.size());
  const int n = static_cast<int>(gates.size());
  for (int rev_index = 0; rev_index < n; ++rev_index) {
    const ScheduledGate& sg = rev.gates[static_cast<std::size_t>(rev_index)];
    int orig_index = n - 1 - rev_index;
    int mirrored_start =
        rev.makespan_cycles - (sg.start_cycle + sg.duration_cycles);
    schedule.gates[static_cast<std::size_t>(orig_index)] =
        ScheduledGate{orig_index, mirrored_start, sg.duration_cycles};
  }
  return schedule;
}

double estimate_log_fidelity_with_decoherence(const Circuit& circuit,
                                              const device::Device& device,
                                              const Schedule& schedule) {
  const auto& em = device.error_model();
  double log_f = 0.0;
  for (const Gate& g : circuit.gates()) {
    if (!circuit::is_unitary(g.kind)) continue;
    log_f += std::log(em.gate_fidelity(g));
  }
  // Busy cycles per qubit.
  std::vector<long long> busy(static_cast<std::size_t>(circuit.num_qubits()), 0);
  std::vector<bool> used(static_cast<std::size_t>(circuit.num_qubits()), false);
  for (const auto& sg : schedule.gates) {
    const Gate& g = circuit.gates()[static_cast<std::size_t>(sg.gate_index)];
    if (g.kind == GateKind::kBarrier) continue;
    for (int q : g.qubits) {
      busy[static_cast<std::size_t>(q)] += sg.duration_cycles;
      used[static_cast<std::size_t>(q)] = true;
    }
  }
  for (int q = 0; q < circuit.num_qubits(); ++q) {
    if (!used[static_cast<std::size_t>(q)]) continue;
    double idle_ns =
        (schedule.makespan_cycles - busy[static_cast<std::size_t>(q)]) *
        schedule.cycle_time_ns;
    log_f -= idle_ns / em.t2_ns();
  }
  return log_f;
}

bool schedule_is_valid(const Circuit& circuit, const device::Device& device,
                       const Schedule& schedule,
                       const ScheduleOptions& options) {
  const auto& gates = circuit.gates();
  if (schedule.gates.size() != gates.size()) return false;

  // Qubit exclusivity + dependency order (program order on shared qubits).
  std::vector<std::vector<std::pair<int, int>>> qubit_busy(
      static_cast<std::size_t>(circuit.num_qubits()));
  for (const auto& sg : schedule.gates) {
    const Gate& g = gates[static_cast<std::size_t>(sg.gate_index)];
    int expected =
        duration_in_cycles(g, device, options.cycle_time_ns);
    if (sg.duration_cycles != expected) return false;
    if (sg.start_cycle < 0) return false;
    if (sg.start_cycle + sg.duration_cycles > schedule.makespan_cycles) {
      return false;
    }
    for (int q : g.qubits) {
      for (const auto& [s, e] : qubit_busy[static_cast<std::size_t>(q)]) {
        if (sg.start_cycle < e && s < sg.start_cycle + sg.duration_cycles) {
          return false;  // overlap on a qubit
        }
      }
      qubit_busy[static_cast<std::size_t>(q)].emplace_back(
          sg.start_cycle, sg.start_cycle + sg.duration_cycles);
    }
  }

  // Program order on shared qubits: gate j after gate i must not start
  // before i ends when they share a qubit.
  std::vector<int> last_end(static_cast<std::size_t>(circuit.num_qubits()), 0);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const auto& sg = schedule.gates[i];
    for (int q : gates[i].qubits) {
      if (sg.start_cycle < last_end[static_cast<std::size_t>(q)]) return false;
      last_end[static_cast<std::size_t>(q)] =
          std::max(last_end[static_cast<std::size_t>(q)],
                   sg.start_cycle + sg.duration_cycles);
    }
  }

  if (options.respect_control_groups && device.has_control_groups()) {
    // No two different kinds overlapping within one group.
    struct Span {
      int start, end;
      GateKind kind;
    };
    std::map<int, std::vector<Span>> spans;
    for (const auto& sg : schedule.gates) {
      const Gate& g = gates[static_cast<std::size_t>(sg.gate_index)];
      if (sg.duration_cycles == 0) continue;
      for (int q : g.qubits) {
        spans[device.control_group(q)].push_back(
            {sg.start_cycle, sg.start_cycle + sg.duration_cycles, g.kind});
      }
    }
    for (const auto& [group, list] : spans) {
      for (std::size_t i = 0; i < list.size(); ++i) {
        for (std::size_t j = i + 1; j < list.size(); ++j) {
          if (list[i].kind != list[j].kind && list[i].start < list[j].end &&
              list[j].start < list[i].end) {
            return false;
          }
        }
      }
    }
  }

  if (options.avoid_crosstalk &&
      count_crosstalk_pairs(circuit, device, schedule) != 0) {
    return false;
  }
  return true;
}

}  // namespace qfs::compiler
