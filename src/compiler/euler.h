// Euler-angle decomposition of single-qubit unitaries.
#pragma once

#include "circuit/matrix.h"

namespace qfs::compiler {

/// Angles such that U = e^{i phase} Rz(phi) Ry(theta) Rz(lambda).
struct ZyzAngles {
  double theta = 0.0;
  double phi = 0.0;
  double lambda = 0.0;
  double phase = 0.0;
};

/// Extract ZYZ Euler angles from a 2x2 unitary.
ZyzAngles zyz_decompose(const circuit::CMatrix& u);

}  // namespace qfs::compiler
