#include "compiler/decompose.h"

#include <cmath>

#include "circuit/matrix.h"
#include "compiler/euler.h"

namespace qfs::compiler {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

namespace {

constexpr double kPi = M_PI;

/// Emits gates into `out`, lowering recursively until native.
class Lowerer {
 public:
  Lowerer(Circuit& out, const device::GateSet& target)
      : out_(out), target_(target) {}

  void lower(const Gate& g) {
    if (target_.supports(g.kind)) {
      out_.add(g);
      return;
    }
    switch (g.kind) {
      // ---- three-qubit ----
      case GateKind::kCcx:
        lower_ccx(g.qubits[0], g.qubits[1], g.qubits[2]);
        return;
      case GateKind::kCcz:
        // ccz = H(c) ccx H(c)
        lower_1q(GateKind::kH, g.qubits[2]);
        lower_ccx(g.qubits[0], g.qubits[1], g.qubits[2]);
        lower_1q(GateKind::kH, g.qubits[2]);
        return;
      case GateKind::kCswap:
        // cswap(c,a,b) = cx(b,a) ccx(c,a,b) cx(b,a)
        lower_cx(g.qubits[2], g.qubits[1]);
        lower_ccx(g.qubits[0], g.qubits[1], g.qubits[2]);
        lower_cx(g.qubits[2], g.qubits[1]);
        return;
      // ---- two-qubit ----
      case GateKind::kCx:
        lower_cx(g.qubits[0], g.qubits[1]);
        return;
      case GateKind::kCz:
        // target lacks cz but (by contract) has cx
        lower_1q(GateKind::kH, g.qubits[1]);
        lower_cx(g.qubits[0], g.qubits[1]);
        lower_1q(GateKind::kH, g.qubits[1]);
        return;
      case GateKind::kCy:
        lower_1q(GateKind::kSdg, g.qubits[1]);
        lower_cx(g.qubits[0], g.qubits[1]);
        lower_1q(GateKind::kS, g.qubits[1]);
        return;
      case GateKind::kSwap:
        lower_cx(g.qubits[0], g.qubits[1]);
        lower_cx(g.qubits[1], g.qubits[0]);
        lower_cx(g.qubits[0], g.qubits[1]);
        return;
      case GateKind::kCphase: {
        // cp(l) a,b = p(l/2) a ; cx a,b ; p(-l/2) b ; cx a,b ; p(l/2) b
        double l = g.params[0];
        lower_param(GateKind::kPhase, g.qubits[0], l / 2);
        lower_cx(g.qubits[0], g.qubits[1]);
        lower_param(GateKind::kPhase, g.qubits[1], -l / 2);
        lower_cx(g.qubits[0], g.qubits[1]);
        lower_param(GateKind::kPhase, g.qubits[1], l / 2);
        return;
      }
      // ---- single-qubit ----
      default:
        QFS_ASSERT_MSG(circuit::gate_arity(g.kind) == 1 &&
                           circuit::is_unitary(g.kind),
                       "no lowering rule for gate");
        lower_1q_unitary(g);
        return;
    }
  }

 private:
  void lower_1q(GateKind kind, int q) { lower(circuit::make_gate(kind, {q})); }

  void lower_param(GateKind kind, int q, double value) {
    lower(circuit::make_gate(kind, {q}, {value}));
  }

  void lower_cx(int control, int t) {
    if (target_.supports(GateKind::kCx)) {
      out_.add(GateKind::kCx, {control, t});
      return;
    }
    QFS_ASSERT_MSG(target_.supports(GateKind::kCz),
                   "target gate set has no entangling primitive");
    // cx(c,t) = Ry(-pi/2) t ; cz(c,t) ; Ry(pi/2) t   (H-conjugation with the
    // Ry form native to surface-code sets).
    lower_param(GateKind::kRy, t, -kPi / 2);
    out_.add(GateKind::kCz, {control, t});
    lower_param(GateKind::kRy, t, kPi / 2);
  }

  void lower_ccx(int c1, int c2, int t) {
    // Standard 6-CX Toffoli network.
    lower_1q(GateKind::kH, t);
    lower_cx(c2, t);
    lower_1q(GateKind::kTdg, t);
    lower_cx(c1, t);
    lower_1q(GateKind::kT, t);
    lower_cx(c2, t);
    lower_1q(GateKind::kTdg, t);
    lower_cx(c1, t);
    lower_1q(GateKind::kT, c2);
    lower_1q(GateKind::kT, t);
    lower_1q(GateKind::kH, t);
    lower_cx(c1, c2);
    lower_1q(GateKind::kT, c1);
    lower_1q(GateKind::kTdg, c2);
    lower_cx(c1, c2);
  }

  void lower_1q_unitary(const Gate& g) {
    const int q = g.qubits[0];
    ZyzAngles a = zyz_decompose(circuit::gate_matrix(g));
    const bool has_ry = target_.supports(GateKind::kRy);
    const bool has_rz = target_.supports(GateKind::kRz);
    if (has_ry && has_rz) {
      // Circuit order: Rz(lambda), Ry(theta), Rz(phi).
      emit_if_nonzero(GateKind::kRz, q, a.lambda);
      emit_if_nonzero(GateKind::kRy, q, a.theta);
      emit_if_nonzero(GateKind::kRz, q, a.phi);
      return;
    }
    QFS_ASSERT_MSG(has_rz && target_.supports(GateKind::kSx),
                   "1q lowering needs {Ry,Rz} or {Sx,Rz} in the target set");
    // Qiskit ZSX identity (up to global phase):
    // U(theta,phi,lambda) = Rz(phi+pi) Sx Rz(theta+pi) Sx Rz(lambda).
    emit_if_nonzero(GateKind::kRz, q, a.lambda);
    out_.add(GateKind::kSx, {q});
    emit_if_nonzero(GateKind::kRz, q, a.theta + kPi);
    out_.add(GateKind::kSx, {q});
    emit_if_nonzero(GateKind::kRz, q, a.phi + kPi);
  }

  void emit_if_nonzero(GateKind kind, int q, double angle) {
    // Skip exact multiples of 2*pi only when they produce the identity for
    // rotations (global phase is irrelevant to circuit semantics here).
    double normalized = std::remainder(angle, 4.0 * kPi);
    if (std::abs(std::remainder(normalized, 2.0 * kPi)) < 1e-12) {
      // Rz(2pi) = -I: a pure global phase; safe to drop.
      return;
    }
    out_.add(kind, {q}, {angle});
  }

  Circuit& out_;
  const device::GateSet& target_;
};

}  // namespace

Circuit decompose_to_gateset(const Circuit& input,
                             const device::GateSet& target) {
  Circuit out(input.num_qubits(), input.name());
  Lowerer lowerer(out, target);
  for (const Gate& g : input.gates()) {
    if (!circuit::is_unitary(g.kind)) {
      out.add(g);  // measure/reset/barrier pass through
      continue;
    }
    lowerer.lower(g);
  }
  return out;
}

Circuit expand_swaps(const Circuit& input) {
  Circuit out(input.num_qubits(), input.name());
  for (const Gate& g : input.gates()) {
    if (g.kind == GateKind::kSwap) {
      out.cx(g.qubits[0], g.qubits[1]);
      out.cx(g.qubits[1], g.qubits[0]);
      out.cx(g.qubits[0], g.qubits[1]);
    } else {
      out.add(g);
    }
  }
  return out;
}

}  // namespace qfs::compiler
