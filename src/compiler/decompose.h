// Gate decomposition: rewrite a circuit so every gate is native to a target
// gate set (mapping step 1 in the paper's Sec. III).
//
// Strategy:
//   1. Three-qubit gates expand to the standard CX+T networks.
//   2. Two-qubit gates normalise to CX, then CX -> CZ conjugated by Ry when
//      the target is a CZ-based (surface-code) set.
//   3. Foreign single-qubit gates go through ZYZ Euler angles onto
//      {Rz, Ry} or, for SX-based sets, the Rz-SX-Rz-SX-Rz identity.
// The result is unitary-equivalent (up to global phase) to the input;
// tests verify this with the state-vector simulator.
#pragma once

#include "circuit/circuit.h"
#include "device/gateset.h"

namespace qfs::compiler {

/// Rewrite `input` using only gates of `target`. Measure/reset/barrier pass
/// through. A contract violation is raised for target sets missing a
/// two-qubit entangling primitive (CX or CZ) when one is required.
circuit::Circuit decompose_to_gateset(const circuit::Circuit& input,
                                      const device::GateSet& target);

/// Expand SWAP gates into three CX (used after routing when the device has
/// no native SWAP). Other gates pass through untouched.
circuit::Circuit expand_swaps(const circuit::Circuit& input);

}  // namespace qfs::compiler
