// Operation scheduling (mapping step 2 in the paper's Sec. III):
// assign start cycles to gates, leveraging parallelism while honouring
//   * data dependencies (shared qubits serialise),
//   * gate durations from the device error/timing model, and
//   * shared classical-control constraints: qubits in the same control
//     group cannot run *different* gate kinds in overlapping cycles
//     (same-kind broadcast is what shared analog electronics allow).
#pragma once

#include <vector>

#include "circuit/circuit.h"
#include "device/device.h"

namespace qfs::compiler {

struct ScheduledGate {
  int gate_index = 0;      ///< index into circuit.gates()
  int start_cycle = 0;     ///< inclusive
  int duration_cycles = 0; ///< >= 1 for non-barrier gates
};

struct Schedule {
  std::vector<ScheduledGate> gates;  ///< one per circuit gate, program order
  int makespan_cycles = 0;
  double cycle_time_ns = 20.0;

  double makespan_ns() const { return makespan_cycles * cycle_time_ns; }
};

struct ScheduleOptions {
  double cycle_time_ns = 20.0;
  /// Apply the device's shared-control-group constraint (if configured).
  bool respect_control_groups = true;
  /// Forbid two two-qubit gates from overlapping in time when their edges
  /// are adjacent on the coupling graph (spatial crosstalk exclusion, the
  /// scheduling side of software crosstalk mitigation).
  bool avoid_crosstalk = false;
};

/// As-soon-as-possible list schedule.
Schedule asap_schedule(const circuit::Circuit& circuit,
                       const device::Device& device,
                       const ScheduleOptions& options = {});

/// As-late-as-possible schedule (same makespan as ASAP; gates pushed late).
Schedule alap_schedule(const circuit::Circuit& circuit,
                       const device::Device& device,
                       const ScheduleOptions& options = {});

/// Validate that a schedule respects dependencies, durations, qubit
/// exclusivity and (optionally) control groups and crosstalk exclusion.
/// Used by property tests.
bool schedule_is_valid(const circuit::Circuit& circuit,
                       const device::Device& device, const Schedule& schedule,
                       const ScheduleOptions& options = {});

/// Number of concurrently-scheduled two-qubit gate pairs on adjacent
/// coupling edges (the crosstalk events a crosstalk-aware schedule avoids).
int count_crosstalk_pairs(const circuit::Circuit& circuit,
                          const device::Device& device,
                          const Schedule& schedule);

/// Gate-fidelity product extended with a multiplicative crosstalk penalty:
/// every crosstalking pair costs one factor of `crosstalk_fidelity_factor`.
/// Returned as a log-fidelity (safe for large circuits).
double estimate_scheduled_log_fidelity(const circuit::Circuit& circuit,
                                       const device::Device& device,
                                       const Schedule& schedule,
                                       double crosstalk_fidelity_factor);

/// Gate-fidelity product plus idle decoherence: every active qubit decays
/// as exp(-idle_ns / T2) over its idle time within the schedule's makespan
/// (idle = makespan minus the qubit's busy cycles; unused qubits are
/// exempt). This is the quantitative reason scheduling "leverages
/// parallelism to shorten execution time" (mapping step 2).
double estimate_log_fidelity_with_decoherence(const circuit::Circuit& circuit,
                                              const device::Device& device,
                                              const Schedule& schedule);

}  // namespace qfs::compiler
