// Compiler pass framework: compose circuit-to-circuit transformations with
// per-pass bookkeeping (the organisational backbone of the compiler layer).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "device/gateset.h"

namespace qfs::compiler {

/// A named, pure circuit transformation.
struct Pass {
  std::string name;
  std::function<circuit::Circuit(const circuit::Circuit&)> run;
};

/// Statistics recorded for one executed pass.
struct PassStats {
  std::string name;
  int gates_before = 0;
  int gates_after = 0;
  int depth_before = 0;
  int depth_after = 0;
};

class PassManager {
 public:
  /// Append a pass; returns *this for chaining.
  PassManager& add(Pass pass);
  PassManager& add(std::string name,
                   std::function<circuit::Circuit(const circuit::Circuit&)> run);

  /// Run every pass in order, recording stats.
  circuit::Circuit run(const circuit::Circuit& input);

  const std::vector<PassStats>& stats() const { return stats_; }

  /// Multi-line "pass: gates a -> b, depth c -> d" report of the last run.
  std::string report() const;

  std::size_t size() const { return passes_.size(); }

 private:
  std::vector<Pass> passes_;
  std::vector<PassStats> stats_;
};

/// The standard qfs lowering pipeline up to (not including) mapping:
/// decompose to `target`, then clean up with the optimisation passes.
PassManager standard_lowering_pipeline(const device::GateSet& target);

}  // namespace qfs::compiler
