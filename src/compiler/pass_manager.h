// Compiler pass framework: compose circuit-to-circuit transformations with
// per-pass bookkeeping (the organisational backbone of the compiler layer).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "device/gateset.h"

namespace qfs::compiler {

/// A named, pure circuit transformation.
struct Pass {
  std::string name;
  std::function<circuit::Circuit(const circuit::Circuit&)> run;
};

/// Statistics recorded for one executed pass.
struct PassStats {
  std::string name;
  int gates_before = 0;
  int gates_after = 0;
  int depth_before = 0;
  int depth_after = 0;
};

/// One invariant violation found in a pass's output. The pass framework is
/// deliberately decoupled from the analysis layer: a check function maps a
/// circuit to findings (empty = clean), and analysis::make_pass_check
/// builds one from the standard checker registry.
struct PassCheckFinding {
  std::string code;     ///< stable diagnostic code ("QFS005", ...)
  std::string message;

  bool operator==(const PassCheckFinding&) const = default;
};

using PassCheckFn =
    std::function<std::vector<PassCheckFinding>(const circuit::Circuit&)>;

/// Outcome of verify-between-passes mode: which pass first broke an
/// invariant, and what it broke. Analogous to mapper::CompileAttemptLog —
/// the explainability record for a failed pipeline.
struct PassVerifierReport {
  /// False until a verified run() completes (or aborts).
  bool ran = false;
  /// True when every pass output (and the input) checked clean.
  bool ok = true;
  /// Index into the pipeline of the offending pass, or -1 when the *input*
  /// was already invalid (offending_pass is then "<input>").
  int offending_pass_index = -1;
  std::string offending_pass;
  std::vector<PassCheckFinding> findings;

  /// "pass 'merge-rotations' (#2) violated QFS005: ..." (one line per
  /// finding), or "all passes verified".
  std::string to_string() const;
};

class PassManager {
 public:
  /// Append a pass; returns *this for chaining.
  PassManager& add(Pass pass);
  PassManager& add(std::string name,
                   std::function<circuit::Circuit(const circuit::Circuit&)> run);

  /// Verify-between-passes mode: run `check` on the input and after every
  /// pass; the first pass whose output has findings is recorded in
  /// verifier_report() and the pipeline stops there (later passes could
  /// crash on the broken invariant). Returns *this for chaining.
  PassManager& enable_verification(PassCheckFn check);

  /// Run every pass in order, recording stats. In verification mode the
  /// returned circuit is the last one produced (the offending pass's
  /// output when verification fails — callers must consult
  /// verifier_report().ok before trusting it).
  circuit::Circuit run(const circuit::Circuit& input);

  const std::vector<PassStats>& stats() const { return stats_; }

  /// Report of the last verified run (ran == false when verification is
  /// not enabled or run() has not executed yet).
  const PassVerifierReport& verifier_report() const { return verifier_report_; }

  /// Multi-line "pass: gates a -> b, depth c -> d" report of the last run.
  std::string report() const;

  std::size_t size() const { return passes_.size(); }

 private:
  std::vector<Pass> passes_;
  std::vector<PassStats> stats_;
  PassCheckFn check_;
  PassVerifierReport verifier_report_;
};

/// The standard qfs lowering pipeline up to (not including) mapping:
/// decompose to `target`, then clean up with the optimisation passes.
PassManager standard_lowering_pipeline(const device::GateSet& target);

}  // namespace qfs::compiler
