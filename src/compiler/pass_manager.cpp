#include "compiler/pass_manager.h"

#include <sstream>

#include "compiler/decompose.h"
#include "compiler/optimize.h"
#include "support/assert.h"

namespace qfs::compiler {

PassManager& PassManager::add(Pass pass) {
  QFS_ASSERT_MSG(!pass.name.empty(), "pass needs a name");
  QFS_ASSERT_MSG(static_cast<bool>(pass.run), "pass needs a body");
  passes_.push_back(std::move(pass));
  return *this;
}

PassManager& PassManager::add(
    std::string name,
    std::function<circuit::Circuit(const circuit::Circuit&)> run) {
  return add(Pass{std::move(name), std::move(run)});
}

circuit::Circuit PassManager::run(const circuit::Circuit& input) {
  stats_.clear();
  circuit::Circuit current = input;
  for (const Pass& pass : passes_) {
    PassStats s;
    s.name = pass.name;
    s.gates_before = current.gate_count();
    s.depth_before = current.depth();
    current = pass.run(current);
    s.gates_after = current.gate_count();
    s.depth_after = current.depth();
    stats_.push_back(std::move(s));
  }
  return current;
}

std::string PassManager::report() const {
  std::ostringstream os;
  for (const PassStats& s : stats_) {
    os << s.name << ": gates " << s.gates_before << " -> " << s.gates_after
       << ", depth " << s.depth_before << " -> " << s.depth_after << '\n';
  }
  return os.str();
}

PassManager standard_lowering_pipeline(const device::GateSet& target) {
  PassManager pm;
  pm.add("decompose", [target](const circuit::Circuit& c) {
    return decompose_to_gateset(c, target);
  });
  pm.add("remove-identities", remove_identities);
  pm.add("merge-rotations", merge_rotations);
  pm.add("cancel-inverses", cancel_inverse_pairs);
  pm.add("cancel-commuting", cancel_with_commutation);
  return pm;
}

}  // namespace qfs::compiler
