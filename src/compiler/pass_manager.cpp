#include "compiler/pass_manager.h"

#include <sstream>

#include "compiler/decompose.h"
#include "compiler/optimize.h"
#include "support/assert.h"

namespace qfs::compiler {

PassManager& PassManager::add(Pass pass) {
  QFS_ASSERT_MSG(!pass.name.empty(), "pass needs a name");
  QFS_ASSERT_MSG(static_cast<bool>(pass.run), "pass needs a body");
  passes_.push_back(std::move(pass));
  return *this;
}

PassManager& PassManager::add(
    std::string name,
    std::function<circuit::Circuit(const circuit::Circuit&)> run) {
  return add(Pass{std::move(name), std::move(run)});
}

PassManager& PassManager::enable_verification(PassCheckFn check) {
  QFS_ASSERT_MSG(static_cast<bool>(check), "verification needs a check fn");
  check_ = std::move(check);
  return *this;
}

circuit::Circuit PassManager::run(const circuit::Circuit& input) {
  stats_.clear();
  verifier_report_ = PassVerifierReport{};
  verifier_report_.ran = static_cast<bool>(check_);

  auto verify = [this](const circuit::Circuit& c, int pass_index,
                       const std::string& pass_name) {
    if (!check_) return true;
    std::vector<PassCheckFinding> findings = check_(c);
    if (findings.empty()) return true;
    verifier_report_.ok = false;
    verifier_report_.offending_pass_index = pass_index;
    verifier_report_.offending_pass = pass_name;
    verifier_report_.findings = std::move(findings);
    return false;
  };

  circuit::Circuit current = input;
  // A pre-broken input is attributed to "<input>", never to pass 0.
  if (!verify(current, -1, "<input>")) return current;
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    const Pass& pass = passes_[i];
    PassStats s;
    s.name = pass.name;
    s.gates_before = current.gate_count();
    s.depth_before = current.depth();
    current = pass.run(current);
    s.gates_after = current.gate_count();
    s.depth_after = current.depth();
    stats_.push_back(std::move(s));
    if (!verify(current, static_cast<int>(i), pass.name)) return current;
  }
  return current;
}

std::string PassVerifierReport::to_string() const {
  if (!ran) return "pass verification not enabled\n";
  if (ok) return "all passes verified\n";
  std::ostringstream os;
  for (const PassCheckFinding& f : findings) {
    os << "pass '" << offending_pass << "'";
    if (offending_pass_index >= 0) os << " (#" << offending_pass_index << ")";
    os << " violated " << f.code << ": " << f.message << '\n';
  }
  return os.str();
}

std::string PassManager::report() const {
  std::ostringstream os;
  for (const PassStats& s : stats_) {
    os << s.name << ": gates " << s.gates_before << " -> " << s.gates_after
       << ", depth " << s.depth_before << " -> " << s.depth_after << '\n';
  }
  return os.str();
}

PassManager standard_lowering_pipeline(const device::GateSet& target) {
  PassManager pm;
  pm.add("decompose", [target](const circuit::Circuit& c) {
    return decompose_to_gateset(c, target);
  });
  pm.add("remove-identities", remove_identities);
  pm.add("merge-rotations", merge_rotations);
  pm.add("cancel-inverses", cancel_inverse_pairs);
  pm.add("cancel-commuting", cancel_with_commutation);
  return pm;
}

}  // namespace qfs::compiler
