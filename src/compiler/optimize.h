// Circuit optimisation passes (the "general optimisations, e.g. gate
// cancellation" the paper attributes to the compiler layer).
#pragma once

#include "circuit/circuit.h"

namespace qfs::compiler {

/// Remove explicit identity gates.
circuit::Circuit remove_identities(const circuit::Circuit& input);

/// Cancel adjacent gate/inverse pairs acting on the same operands with no
/// intervening gate on any shared qubit. Runs to a fixpoint.
circuit::Circuit cancel_inverse_pairs(const circuit::Circuit& input);

/// Merge runs of same-axis rotations (rx/ry/rz/p) on a qubit into one gate;
/// rotations summing to an identity (mod 2*pi, up to global phase) vanish.
circuit::Circuit merge_rotations(const circuit::Circuit& input);

/// True when `a` and `b` provably commute under the per-qubit axis rule:
/// on every shared qubit both act Z-like (diagonal) or both act X-like.
/// Sound but not complete (OTHER-typed overlaps report false).
bool gates_commute(const circuit::Gate& a, const circuit::Gate& b);

/// Inverse-pair cancellation that may hop over commuting gates (e.g. the
/// rz on a CX control cancels its partner across the CX). Runs to a
/// fixpoint.
circuit::Circuit cancel_with_commutation(const circuit::Circuit& input);

/// remove_identities + merge_rotations + cancel_inverse_pairs +
/// cancel_with_commutation to fixpoint.
circuit::Circuit optimize(const circuit::Circuit& input);

}  // namespace qfs::compiler
