// Suite persistence: materialise a generated benchmark suite as OpenQASM
// files plus a manifest, and load circuits back — so experiments can be
// re-run on the exact same inputs (or exchanged with other toolchains).
#pragma once

#include <string>
#include <vector>

#include "support/status.h"
#include "workloads/suite.h"

namespace qfs::workloads {

/// Write every benchmark as "<dir>/<name>.qasm" plus "<dir>/manifest.csv"
/// (columns: name, family, qubits, gates, file). Creates the directory.
qfs::Status write_suite_to_directory(const std::vector<Benchmark>& suite,
                                     const std::string& directory);

/// Load one OpenQASM file as a circuit.
qfs::StatusOr<circuit::Circuit> load_circuit_file(const std::string& path);

/// Load a previously written suite via its manifest.
qfs::StatusOr<std::vector<Benchmark>> load_suite_from_directory(
    const std::string& directory);

/// Load every "*.qasm" file in `directory` (no manifest required), sorted
/// by filename for determinism. Each circuit is named after its file stem
/// and tagged Family::kReal — the ingestion path for external corpora such
/// as QASMBench.
qfs::StatusOr<std::vector<Benchmark>> load_qasm_directory(
    const std::string& directory);

}  // namespace qfs::workloads
