#include "workloads/random_circuit.h"

#include <cmath>
#include <sstream>

namespace qfs::workloads {

using circuit::Circuit;
using circuit::GateKind;

Circuit random_circuit(const RandomCircuitSpec& spec, qfs::Rng& rng) {
  QFS_ASSERT_MSG(spec.num_qubits >= 1, "need at least one qubit");
  QFS_ASSERT_MSG(spec.num_gates >= 0, "negative gate count");
  QFS_ASSERT_MSG(0.0 <= spec.two_qubit_fraction && spec.two_qubit_fraction <= 1.0,
                 "two-qubit fraction out of [0,1]");
  int two_qubit_gates =
      static_cast<int>(std::lround(spec.two_qubit_fraction * spec.num_gates));
  QFS_ASSERT_MSG(spec.num_qubits >= 2 || two_qubit_gates == 0,
                 "two-qubit gates need at least two qubits");

  std::ostringstream name;
  name << "random_q" << spec.num_qubits << "_g" << spec.num_gates;
  Circuit c(spec.num_qubits, name.str());

  // Choose which gate slots are two-qubit.
  std::vector<bool> is_two(static_cast<std::size_t>(spec.num_gates), false);
  auto chosen = rng.sample_without_replacement(spec.num_gates, two_qubit_gates);
  for (int idx : chosen) is_two[static_cast<std::size_t>(idx)] = true;

  static const GateKind one_q_pool[] = {
      GateKind::kX,  GateKind::kY,  GateKind::kZ, GateKind::kH,
      GateKind::kS,  GateKind::kT,  GateKind::kRx, GateKind::kRy,
      GateKind::kRz};
  static const GateKind two_q_pool[] = {GateKind::kCx, GateKind::kCz};

  for (int i = 0; i < spec.num_gates; ++i) {
    if (is_two[static_cast<std::size_t>(i)]) {
      int a = rng.uniform_int(0, spec.num_qubits - 1);
      int b = rng.uniform_int(0, spec.num_qubits - 2);
      if (b >= a) ++b;
      GateKind kind = two_q_pool[rng.uniform_int(0, 1)];
      c.add(kind, {a, b});
    } else {
      GateKind kind = one_q_pool[rng.uniform_int(0, 8)];
      int q = rng.uniform_int(0, spec.num_qubits - 1);
      if (circuit::gate_param_count(kind) == 1) {
        c.add(kind, {q}, {rng.uniform_real(-M_PI, M_PI)});
      } else {
        c.add(kind, {q});
      }
    }
  }
  return c;
}

}  // namespace qfs::workloads
