// Random (synthetic) circuit generation — the "randomly generated circuits"
// family of the paper's benchmark suite. Size parameters are controlled
// exactly so random circuits can be pinned to the same (qubits, gates,
// two-qubit %) triple as a real algorithm (Fig. 4).
#pragma once

#include "circuit/circuit.h"
#include "support/rng.h"

namespace qfs::workloads {

struct RandomCircuitSpec {
  int num_qubits = 4;
  int num_gates = 100;
  /// Exact fraction of two-qubit gates (rounded to a whole gate count).
  double two_qubit_fraction = 0.3;
};

/// Uniformly random circuit: two-qubit gates (cx/cz) on uniform random
/// pairs, single-qubit gates from {x,y,z,h,s,t,rx,ry,rz} with random
/// angles. The exact requested number of two-qubit gates is placed at
/// random positions.
circuit::Circuit random_circuit(const RandomCircuitSpec& spec, qfs::Rng& rng);

}  // namespace qfs::workloads
