#include "workloads/reversible.h"

#include <sstream>

namespace qfs::workloads {

using circuit::Circuit;

Circuit random_reversible(const ReversibleSpec& spec, qfs::Rng& rng) {
  QFS_ASSERT_MSG(spec.num_qubits >= 3, "reversible circuits need >= 3 qubits");
  std::ostringstream name;
  name << "rev_q" << spec.num_qubits << "_g" << spec.num_gates;
  Circuit c(spec.num_qubits, name.str());
  for (int i = 0; i < spec.num_gates; ++i) {
    int pick = rng.uniform_int(0, 4);  // 1:2:2 weights for x:cx:ccx
    if (pick == 0) {
      c.x(rng.uniform_int(0, spec.num_qubits - 1));
    } else if (pick <= 2) {
      auto qs = rng.sample_without_replacement(spec.num_qubits, 2);
      c.cx(qs[0], qs[1]);
    } else {
      auto qs = rng.sample_without_replacement(spec.num_qubits, 3);
      c.ccx(qs[0], qs[1], qs[2]);
    }
  }
  return c;
}

Circuit reversible_majority_chain(int n) {
  QFS_ASSERT_MSG(n >= 3, "majority chain needs >= 3 qubits");
  std::ostringstream name;
  name << "maj_q" << n;
  Circuit c(n, name.str());
  for (int i = 0; i + 2 < n; ++i) {
    c.cx(i + 2, i + 1);
    c.cx(i + 2, i);
    c.ccx(i, i + 1, i + 2);
  }
  return c;
}

Circuit reversible_bit_reversal(int n) {
  QFS_ASSERT_MSG(n >= 2, "bit reversal needs >= 2 qubits");
  std::ostringstream name;
  name << "bitrev_q" << n;
  Circuit c(n, name.str());
  for (int i = 0; i < n / 2; ++i) {
    int j = n - 1 - i;
    c.cx(i, j);
    c.cx(j, i);
    c.cx(i, j);
  }
  return c;
}

}  // namespace qfs::workloads
