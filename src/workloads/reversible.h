// Reversible-logic circuits (the RevLib-style family of the benchmark
// suite): Toffoli/CNOT/NOT networks and a few named reversible functions.
#pragma once

#include "circuit/circuit.h"
#include "support/rng.h"

namespace qfs::workloads {

struct ReversibleSpec {
  int num_qubits = 6;
  int num_gates = 200;
  /// Mix of {x, cx, ccx} drawn with weights (1 : 2 : 2), matching the
  /// Toffoli-heavy profile of RevLib netlists.
};

/// Random reversible (Toffoli-network) circuit.
circuit::Circuit random_reversible(const ReversibleSpec& spec, qfs::Rng& rng);

/// n-bit reversible full comparator-style majority chain (named function).
circuit::Circuit reversible_majority_chain(int n);

/// Bit-reversal permutation implemented with CX swaps (named function).
circuit::Circuit reversible_bit_reversal(int n);

}  // namespace qfs::workloads
