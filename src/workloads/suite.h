// The qbench-like benchmark suite: a seeded, offline stand-in for the
// paper's benchmark set [34] covering the same three families (random,
// real algorithms, reversible) and the same size ranges (the paper quotes
// 1-54 qubits, 5-100000 gates, 10-90 % two-qubit gates).
#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "support/rng.h"

namespace qfs::workloads {

enum class Family { kRandom, kReal, kReversible };

const char* family_name(Family family);

struct Benchmark {
  std::string name;
  Family family = Family::kRandom;
  circuit::Circuit circuit;
};

struct SuiteOptions {
  int random_count = 80;
  int real_count = 80;
  int reversible_count = 40;
  int min_qubits = 2;
  int max_qubits = 54;
  int min_gates = 5;
  /// Gate counts are drawn log-uniformly in [min_gates, max_gates].
  int max_gates = 20000;
  double min_two_qubit_fraction = 0.10;
  double max_two_qubit_fraction = 0.90;
};

/// Deterministic suite for a given rng seed. Real-algorithm instances cycle
/// through {ghz, qft, bv, grover, adder, qaoa, vqe, reversible named
/// functions} with sizes drawn from the configured ranges.
std::vector<Benchmark> make_suite(const SuiteOptions& options, qfs::Rng& rng);

/// The default 200-circuit suite of the paper's Sec. IV experiments.
std::vector<Benchmark> paper_suite(qfs::Rng& rng);

}  // namespace qfs::workloads
