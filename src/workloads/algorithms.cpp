#include "workloads/algorithms.h"

#include <cmath>
#include <sstream>

namespace qfs::workloads {

using circuit::Circuit;

Circuit ghz(int n) {
  QFS_ASSERT_MSG(n >= 1, "ghz needs >= 1 qubit");
  std::ostringstream name;
  name << "ghz_q" << n;
  Circuit c(n, name.str());
  c.h(0);
  for (int i = 0; i + 1 < n; ++i) c.cx(i, i + 1);
  return c;
}

Circuit qft(int n, bool with_final_swaps) {
  QFS_ASSERT_MSG(n >= 1, "qft needs >= 1 qubit");
  std::ostringstream name;
  name << "qft_q" << n;
  Circuit c(n, name.str());
  for (int i = 0; i < n; ++i) {
    c.h(i);
    for (int j = i + 1; j < n; ++j) {
      c.cp(M_PI / std::pow(2.0, j - i), j, i);
    }
  }
  if (with_final_swaps) {
    for (int i = 0; i < n / 2; ++i) c.swap(i, n - 1 - i);
  }
  return c;
}

Circuit bernstein_vazirani(int n, std::uint64_t secret) {
  QFS_ASSERT_MSG(1 <= n && n <= 63, "secret width out of range");
  std::ostringstream name;
  name << "bv_q" << n + 1;
  Circuit c(n + 1, name.str());
  int ancilla = n;
  c.x(ancilla);
  c.h(ancilla);
  for (int i = 0; i < n; ++i) c.h(i);
  for (int i = 0; i < n; ++i) {
    if ((secret >> i) & 1) c.cx(i, ancilla);
  }
  for (int i = 0; i < n; ++i) c.h(i);
  for (int i = 0; i < n; ++i) c.measure(i);
  return c;
}

namespace {

/// Multi-controlled Z over controls[0..k-1] and target, using a clean CCX
/// ladder over `ancillas` (size >= k-1 for k >= 2). Ancillas are returned
/// to |0> by the mirrored ladder.
void apply_mcz(Circuit& c, const std::vector<int>& controls, int target,
               const std::vector<int>& ancillas) {
  const int k = static_cast<int>(controls.size());
  if (k == 0) {
    c.z(target);
    return;
  }
  if (k == 1) {
    c.cz(controls[0], target);
    return;
  }
  if (k == 2) {
    c.ccz(controls[0], controls[1], target);
    return;
  }
  QFS_ASSERT_MSG(static_cast<int>(ancillas.size()) >= k - 1,
                 "not enough ancillas for multi-controlled Z");
  // AND-accumulate controls into ancillas.
  c.ccx(controls[0], controls[1], ancillas[0]);
  for (int i = 2; i < k; ++i) {
    c.ccx(controls[static_cast<std::size_t>(i)],
          ancillas[static_cast<std::size_t>(i - 2)],
          ancillas[static_cast<std::size_t>(i - 1)]);
  }
  c.cz(ancillas[static_cast<std::size_t>(k - 2)], target);
  // Uncompute.
  for (int i = k - 1; i >= 2; --i) {
    c.ccx(controls[static_cast<std::size_t>(i)],
          ancillas[static_cast<std::size_t>(i - 2)],
          ancillas[static_cast<std::size_t>(i - 1)]);
  }
  c.ccx(controls[0], controls[1], ancillas[0]);
}

}  // namespace

Circuit grover(int n, std::uint64_t marked, int iterations) {
  QFS_ASSERT_MSG(2 <= n && n <= 20, "grover width out of range");
  QFS_ASSERT_MSG(marked < (std::uint64_t{1} << n), "marked item out of range");
  if (iterations <= 0) {
    iterations = std::max(
        1, static_cast<int>(std::floor(M_PI / 4.0 * std::sqrt(std::pow(2.0, n)))));
  }
  const int num_ancilla = std::max(0, n - 2);
  std::ostringstream name;
  name << "grover_q" << n + num_ancilla;
  Circuit c(n + num_ancilla, name.str());

  std::vector<int> data(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) data[static_cast<std::size_t>(i)] = i;
  std::vector<int> ancillas(static_cast<std::size_t>(num_ancilla));
  for (int i = 0; i < num_ancilla; ++i) ancillas[static_cast<std::size_t>(i)] = n + i;

  std::vector<int> controls(data.begin(), data.end() - 1);
  int target = data.back();

  for (int q : data) c.h(q);
  for (int round = 0; round < iterations; ++round) {
    // Oracle: phase-flip |marked>. Conjugate an MCZ with X on zero bits.
    for (int i = 0; i < n; ++i) {
      if (!((marked >> i) & 1)) c.x(i);
    }
    apply_mcz(c, controls, target, ancillas);
    for (int i = 0; i < n; ++i) {
      if (!((marked >> i) & 1)) c.x(i);
    }
    // Diffusion: H X (MCZ) X H.
    for (int q : data) c.h(q);
    for (int q : data) c.x(q);
    apply_mcz(c, controls, target, ancillas);
    for (int q : data) c.x(q);
    for (int q : data) c.h(q);
  }
  for (int q : data) c.measure(q);
  return c;
}

Circuit cuccaro_adder(int n) {
  QFS_ASSERT_MSG(n >= 1, "adder needs >= 1 bit");
  // Layout: 0 = carry-in c0, then pairs (a_i, b_i), last = carry-out z.
  std::ostringstream name;
  name << "adder_q" << 2 * n + 2;
  Circuit c(2 * n + 2, name.str());
  auto a = [](int i) { return 1 + 2 * i; };
  auto b = [](int i) { return 2 + 2 * i; };
  const int carry_in = 0;
  const int carry_out = 2 * n + 1;

  auto maj = [&c](int x, int y, int z) {
    c.cx(z, y);
    c.cx(z, x);
    c.ccx(x, y, z);
  };
  auto uma = [&c](int x, int y, int z) {
    c.ccx(x, y, z);
    c.cx(z, x);
    c.cx(x, y);
  };

  maj(carry_in, b(0), a(0));
  for (int i = 1; i < n; ++i) maj(a(i - 1), b(i), a(i));
  c.cx(a(n - 1), carry_out);
  for (int i = n - 1; i >= 1; --i) uma(a(i - 1), b(i), a(i));
  uma(carry_in, b(0), a(0));
  return c;
}

Circuit qaoa_maxcut(const graph::Graph& problem, int layers, qfs::Rng& rng) {
  QFS_ASSERT_MSG(problem.num_nodes() >= 2, "qaoa needs >= 2 qubits");
  QFS_ASSERT_MSG(layers >= 1, "qaoa needs >= 1 layer");
  std::ostringstream name;
  name << "qaoa_q" << problem.num_nodes() << "_p" << layers;
  Circuit c(problem.num_nodes(), name.str());
  for (int q = 0; q < problem.num_nodes(); ++q) c.h(q);
  for (int layer = 0; layer < layers; ++layer) {
    double gamma = rng.uniform_real(0.0, M_PI);
    double beta = rng.uniform_real(0.0, M_PI / 2.0);
    for (const auto& e : problem.edges()) {
      // exp(-i gamma w Z_u Z_v) via CX - Rz - CX.
      c.cx(e.u, e.v);
      c.rz(2.0 * gamma * e.weight, e.v);
      c.cx(e.u, e.v);
    }
    for (int q = 0; q < problem.num_nodes(); ++q) c.rx(2.0 * beta, q);
  }
  for (int q = 0; q < problem.num_nodes(); ++q) c.measure(q);
  return c;
}

Circuit vqe_ansatz(int n, int layers, qfs::Rng& rng) {
  QFS_ASSERT_MSG(n >= 2, "ansatz needs >= 2 qubits");
  QFS_ASSERT_MSG(layers >= 1, "ansatz needs >= 1 layer");
  std::ostringstream name;
  name << "vqe_q" << n << "_l" << layers;
  Circuit c(n, name.str());
  for (int layer = 0; layer < layers; ++layer) {
    for (int q = 0; q < n; ++q) {
      c.ry(rng.uniform_real(-M_PI, M_PI), q);
      c.rz(rng.uniform_real(-M_PI, M_PI), q);
    }
    for (int q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  }
  for (int q = 0; q < n; ++q) {
    c.ry(rng.uniform_real(-M_PI, M_PI), q);
    c.rz(rng.uniform_real(-M_PI, M_PI), q);
  }
  return c;
}

Circuit w_state(int n) {
  QFS_ASSERT_MSG(n >= 1, "w_state needs >= 1 qubit");
  std::ostringstream name;
  name << "wstate_q" << n;
  Circuit c(n, name.str());
  c.x(0);
  // Carrier walk: at step i the carrier sits on qubit i with amplitude
  // sqrt((n-i)/n); a controlled-Ry splits off 1/sqrt(n) to stay.
  for (int i = 0; i + 1 < n; ++i) {
    double theta = 2.0 * std::acos(1.0 / std::sqrt(static_cast<double>(n - i)));
    // cry(theta) control=i target=i+1, decomposed into ry/cx.
    c.ry(theta / 2.0, i + 1);
    c.cx(i, i + 1);
    c.ry(-theta / 2.0, i + 1);
    c.cx(i, i + 1);
    c.cx(i + 1, i);
  }
  return c;
}

Circuit phase_estimation(int counting_qubits, double phase) {
  QFS_ASSERT_MSG(1 <= counting_qubits && counting_qubits <= 20,
                 "counting register out of range");
  const int n = counting_qubits;
  std::ostringstream name;
  name << "qpe_q" << n + 1;
  Circuit c(n + 1, name.str());
  const int eigen = n;
  c.x(eigen);  // |1> is the P(lambda) eigenstate with eigenvalue e^{i lambda}
  for (int i = 0; i < n; ++i) c.h(i);
  // Counting qubit i controls U^{2^i}: phase kickback of 2*pi*phase*2^i.
  for (int i = 0; i < n; ++i) {
    double lambda = 2.0 * M_PI * phase * std::pow(2.0, i);
    c.cp(lambda, i, eigen);
  }
  // Inverse QFT on the counting register (qubit 0 = least significant).
  // qft() treats qubit 0 as the most significant, so relabel: counting
  // register reversed == qft convention; composing with its inverse gives
  // the textbook IQFT.
  Circuit iqft = qft(n, true).inverse();
  for (const auto& g : iqft.gates()) {
    // Map qft qubit j -> counting qubit n-1-j (reverse significance).
    std::vector<int> mapped;
    for (int q : g.qubits) mapped.push_back(n - 1 - q);
    c.add(g.kind, std::move(mapped), g.params);
  }
  for (int i = 0; i < n; ++i) c.measure(i);
  return c;
}

Circuit deutsch_jozsa(int n, std::uint64_t balanced_mask) {
  QFS_ASSERT_MSG(1 <= n && n <= 63, "input width out of range");
  QFS_ASSERT_MSG(balanced_mask < (std::uint64_t{1} << n), "mask out of range");
  std::ostringstream name;
  name << "dj_q" << n + 1;
  Circuit c(n + 1, name.str());
  const int ancilla = n;
  c.x(ancilla);
  c.h(ancilla);
  for (int i = 0; i < n; ++i) c.h(i);
  if (balanced_mask == 0) {
    // Constant f = 0: the oracle is the identity.
  } else {
    for (int i = 0; i < n; ++i) {
      if ((balanced_mask >> i) & 1) c.cx(i, ancilla);
    }
  }
  for (int i = 0; i < n; ++i) c.h(i);
  for (int i = 0; i < n; ++i) c.measure(i);
  return c;
}

Circuit ising_trotter(int n, int steps, double j_coupling, double h_field,
                      double dt) {
  QFS_ASSERT_MSG(n >= 2, "ising chain needs >= 2 qubits");
  QFS_ASSERT_MSG(steps >= 1, "need >= 1 trotter step");
  std::ostringstream name;
  name << "ising_q" << n << "_t" << steps;
  Circuit c(n, name.str());
  for (int s = 0; s < steps; ++s) {
    for (int i = 0; i + 1 < n; ++i) {
      // exp(-i J dt Z_i Z_{i+1})
      c.cx(i, i + 1);
      c.rz(2.0 * j_coupling * dt, i + 1);
      c.cx(i, i + 1);
    }
    for (int i = 0; i < n; ++i) {
      // exp(-i h dt X_i)
      c.rx(2.0 * h_field * dt, i);
    }
  }
  return c;
}

Circuit quantum_volume(int n, int depth, qfs::Rng& rng) {
  QFS_ASSERT_MSG(n >= 2, "quantum volume needs >= 2 qubits");
  QFS_ASSERT_MSG(depth >= 1, "need >= 1 layer");
  std::ostringstream name;
  name << "qv_q" << n << "_d" << depth;
  Circuit c(n, name.str());
  auto random_u3 = [&c, &rng](int q) {
    c.u3(rng.uniform_real(0, M_PI), rng.uniform_real(-M_PI, M_PI),
         rng.uniform_real(-M_PI, M_PI), q);
  };
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (int layer = 0; layer < depth; ++layer) {
    rng.shuffle(perm);
    for (int p = 0; p + 1 < n; p += 2) {
      int a = perm[static_cast<std::size_t>(p)];
      int b = perm[static_cast<std::size_t>(p + 1)];
      // Random two-qubit block: a KAK-style u3/cx sandwich.
      random_u3(a);
      random_u3(b);
      c.cx(a, b);
      random_u3(a);
      random_u3(b);
      c.cx(b, a);
      random_u3(a);
      random_u3(b);
    }
  }
  return c;
}

double maxcut_value(const graph::Graph& problem, std::uint64_t assignment) {
  double cut = 0.0;
  for (const auto& e : problem.edges()) {
    bool side_u = (assignment >> e.u) & 1;
    bool side_v = (assignment >> e.v) & 1;
    if (side_u != side_v) cut += e.weight;
  }
  return cut;
}

double maxcut_optimum(const graph::Graph& problem) {
  const int n = problem.num_nodes();
  QFS_ASSERT_MSG(1 <= n && n <= 24, "exact MaxCut limited to 24 vertices");
  double best = 0.0;
  // Fix vertex 0's side (cuts are symmetric under global flip).
  const std::uint64_t half = std::uint64_t{1} << (n - 1);
  for (std::uint64_t a = 0; a < half; ++a) {
    best = std::max(best, maxcut_value(problem, a << 1));
  }
  return best;
}

Circuit repetition_code_cycle(int n_data, int rounds) {
  QFS_ASSERT_MSG(n_data >= 2, "repetition code needs >= 2 data qubits");
  QFS_ASSERT_MSG(rounds >= 1, "need >= 1 round");
  const int n_anc = n_data - 1;
  std::ostringstream name;
  name << "repcode_q" << n_data + n_anc << "_r" << rounds;
  Circuit c(n_data + n_anc, name.str());
  auto anc = [n_data](int i) { return n_data + i; };
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < n_anc; ++i) {
      c.cx(i, anc(i));
      c.cx(i + 1, anc(i));
    }
    for (int i = 0; i < n_anc; ++i) c.measure(anc(i));
    if (r + 1 < rounds) {
      for (int i = 0; i < n_anc; ++i) c.reset(anc(i));
    }
  }
  return c;
}

}  // namespace qfs::workloads
