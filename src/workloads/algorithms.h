// Real quantum algorithm generators — the "real algorithms" family of the
// benchmark suite (GHZ, QFT, Bernstein-Vazirani, Grover, ripple-carry
// adder, QAOA-MaxCut, hardware-efficient VQE ansatz).
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "graph/graph.h"
#include "support/rng.h"

namespace qfs::workloads {

/// GHZ state preparation: H then a CX chain. n >= 1.
circuit::Circuit ghz(int n);

/// Quantum Fourier transform on n qubits (controlled-phase ladder).
/// `with_final_swaps` appends the bit-reversal SWAP network.
circuit::Circuit qft(int n, bool with_final_swaps = true);

/// Bernstein-Vazirani for an n-bit secret (bit i of `secret` = qubit i).
/// Uses n data qubits plus one ancilla (qubit n).
circuit::Circuit bernstein_vazirani(int n, std::uint64_t secret);

/// Grover search for one marked n-bit item, `iterations` rounds
/// (0 = the floor(pi/4*sqrt(2^n)) optimum). Multi-controlled Z is built
/// with a CCX ladder over max(0, n-2) ancilla qubits, so the circuit has
/// n + max(0, n-2) qubits.
circuit::Circuit grover(int n, std::uint64_t marked, int iterations = 0);

/// Cuccaro ripple-carry adder: computes b += a on two n-bit registers.
/// Register layout: carry-in (qubit 0), then a_i/b_i interleaved, then the
/// carry-out qubit; 2n + 2 qubits total.
circuit::Circuit cuccaro_adder(int n);

/// QAOA for MaxCut on `problem`: p layers of ZZ(gamma) cost + Rx(beta)
/// mixer after an initial Hadamard layer. Angles drawn from `rng`.
circuit::Circuit qaoa_maxcut(const graph::Graph& problem, int layers,
                             qfs::Rng& rng);

/// Hardware-efficient VQE ansatz: `layers` of per-qubit Ry+Rz rotations and
/// a linear CX entangler. Angles drawn from `rng`.
circuit::Circuit vqe_ansatz(int n, int layers, qfs::Rng& rng);

/// W-state preparation on n qubits (carrier-walk construction with
/// controlled-Ry splitters decomposed into ry/cx).
circuit::Circuit w_state(int n);

/// Quantum phase estimation of the phase gate P(2*pi*phase) with
/// `counting_qubits` precision qubits plus one eigenstate qubit (prepared
/// in |1>). Ends with the inverse QFT on the counting register and
/// measurements.
circuit::Circuit phase_estimation(int counting_qubits, double phase);

/// Deutsch-Jozsa on an n-bit input register (+1 ancilla). `balanced_mask`
/// == 0 gives a constant oracle; otherwise f(x) = parity(x & mask).
circuit::Circuit deutsch_jozsa(int n, std::uint64_t balanced_mask);

/// First-order Trotterised transverse-field Ising evolution on a chain:
/// `steps` repetitions of exp(-i J dt ZZ) links + exp(-i h dt X) fields.
circuit::Circuit ising_trotter(int n, int steps, double j_coupling,
                               double h_field, double dt);

/// Quantum-volume style model circuit: `depth` layers of a random qubit
/// permutation followed by random two-qubit blocks (u3/cx sandwiches) on
/// adjacent pairs.
circuit::Circuit quantum_volume(int n, int depth, qfs::Rng& rng);

/// Cut value of a bitstring assignment for a MaxCut problem graph: the
/// total weight of edges whose endpoints fall on opposite sides. Bit i of
/// `assignment` is vertex i's side.
double maxcut_value(const graph::Graph& problem, std::uint64_t assignment);

/// Largest cut over all 2^n assignments (exact, n <= 24 by contract);
/// the denominator of QAOA approximation ratios.
double maxcut_optimum(const graph::Graph& problem);

/// `rounds` rounds of repetition-code syndrome extraction on `n_data` data
/// qubits: ancilla i (between data i and i+1) accumulates the ZZ parity of
/// its neighbours via two CX and is measured. Qubit layout: data 0..n-1,
/// ancillas n..2n-2. Clifford, so verifiable at scale with the stabilizer
/// simulator; the canonical NISQ error-detection workload.
circuit::Circuit repetition_code_cycle(int n_data, int rounds = 1);

}  // namespace qfs::workloads
