#include "workloads/suite_io.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "qasm/parser.h"
#include "qasm/writer.h"
#include "support/csv.h"
#include "support/strings.h"

namespace qfs::workloads {

namespace fs = std::filesystem;

namespace {

/// File-system-safe version of a benchmark name.
std::string sanitize(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_') {
      out += c;
    } else {
      out += '_';
    }
  }
  return out.empty() ? "circuit" : out;
}

qfs::StatusOr<Family> family_from_name(const std::string& name) {
  if (name == "random") return Family::kRandom;
  if (name == "real") return Family::kReal;
  if (name == "reversible") return Family::kReversible;
  return qfs::parse_error("unknown family '" + name + "' in manifest");
}

}  // namespace

qfs::Status write_suite_to_directory(const std::vector<Benchmark>& suite,
                                     const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return qfs::io_error("cannot create directory '" + directory +
                         "': " + ec.message());
  }
  std::ofstream manifest(fs::path(directory) / "manifest.csv");
  if (!manifest) return qfs::io_error("cannot write manifest in " + directory);
  qfs::CsvWriter csv(manifest);
  csv.header({"name", "family", "qubits", "gates", "file"});
  for (const auto& b : suite) {
    std::string filename = sanitize(b.name) + ".qasm";
    std::ofstream out(fs::path(directory) / filename);
    if (!out) return qfs::io_error("cannot write " + filename);
    out << qasm::to_qasm(b.circuit);
    csv.row({b.name, family_name(b.family),
             std::to_string(b.circuit.num_qubits()),
             std::to_string(b.circuit.gate_count()), filename});
  }
  return qfs::Status::ok();
}

qfs::StatusOr<circuit::Circuit> load_circuit_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return qfs::io_error("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = qasm::parse(buffer.str());
  if (!parsed.is_ok()) return parsed.status();
  circuit::Circuit c = std::move(parsed).value();
  c.set_name(fs::path(path).stem().string());
  return c;
}

qfs::StatusOr<std::vector<Benchmark>> load_suite_from_directory(
    const std::string& directory) {
  std::ifstream manifest(fs::path(directory) / "manifest.csv");
  if (!manifest) {
    return qfs::io_error("cannot open manifest in '" + directory + "'");
  }
  std::vector<Benchmark> suite;
  std::string line;
  bool header = true;
  int line_no = 0;
  while (std::getline(manifest, line)) {
    ++line_no;
    if (header) {
      header = false;
      continue;
    }
    if (qfs::trim(line).empty()) continue;
    auto fields = qfs::split(line, ',');
    if (fields.size() != 5) {
      return qfs::parse_error("manifest line " + std::to_string(line_no) +
                              ": expected 5 fields");
    }
    auto family = family_from_name(fields[1]);
    if (!family.is_ok()) return family.status();
    auto circuit =
        load_circuit_file((fs::path(directory) / fields[4]).string());
    if (!circuit.is_ok()) return circuit.status();
    Benchmark b;
    b.name = fields[0];
    b.family = family.value();
    b.circuit = std::move(circuit).value();
    b.circuit.set_name(b.name);
    suite.push_back(std::move(b));
  }
  return suite;
}

qfs::StatusOr<std::vector<Benchmark>> load_qasm_directory(
    const std::string& directory) {
  std::error_code ec;
  fs::directory_iterator it(directory, ec);
  if (ec) {
    return qfs::io_error("cannot open directory '" + directory +
                         "': " + ec.message());
  }
  std::vector<fs::path> files;
  for (const auto& entry : it) {
    if (entry.is_regular_file() && entry.path().extension() == ".qasm") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    return qfs::io_error("no .qasm files in '" + directory + "'");
  }
  std::vector<Benchmark> suite;
  for (const auto& path : files) {
    auto circuit = load_circuit_file(path.string());
    if (!circuit.is_ok()) {
      return qfs::parse_error(path.filename().string() + ": " +
                              circuit.status().message());
    }
    Benchmark b;
    b.name = path.stem().string();
    b.family = Family::kReal;
    b.circuit = std::move(circuit).value();
    suite.push_back(std::move(b));
  }
  return suite;
}

}  // namespace qfs::workloads
