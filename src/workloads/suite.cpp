#include "workloads/suite.h"

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "workloads/algorithms.h"
#include "workloads/random_circuit.h"
#include "workloads/reversible.h"

namespace qfs::workloads {

const char* family_name(Family family) {
  switch (family) {
    case Family::kRandom: return "random";
    case Family::kReal: return "real";
    case Family::kReversible: return "reversible";
  }
  return "?";
}

namespace {

int log_uniform(int lo, int hi, qfs::Rng& rng) {
  QFS_ASSERT_MSG(1 <= lo && lo <= hi, "bad log-uniform range");
  double v = rng.uniform_real(std::log(static_cast<double>(lo)),
                              std::log(static_cast<double>(hi) + 1.0));
  int out = static_cast<int>(std::exp(v));
  return std::clamp(out, lo, hi);
}

Benchmark make_random_benchmark(const SuiteOptions& o, qfs::Rng& rng) {
  RandomCircuitSpec spec;
  spec.num_qubits = rng.uniform_int(std::max(2, o.min_qubits), o.max_qubits);
  spec.num_gates = log_uniform(o.min_gates, o.max_gates, rng);
  spec.two_qubit_fraction =
      rng.uniform_real(o.min_two_qubit_fraction, o.max_two_qubit_fraction);
  circuit::Circuit c = random_circuit(spec, rng);
  return Benchmark{c.name(), Family::kRandom, std::move(c)};
}

Benchmark make_real_benchmark(const SuiteOptions& o, int index, qfs::Rng& rng) {
  // Cycle through the algorithm families so the suite stays diverse even
  // for small counts.
  const int family = index % 13;
  const int max_q = o.max_qubits;
  circuit::Circuit c;
  switch (family) {
    case 12: {
      int n_data = rng.uniform_int(2, std::max(2, (max_q + 1) / 2));
      c = repetition_code_cycle(n_data, rng.uniform_int(1, 3));
      break;
    }
    case 7:
      c = w_state(rng.uniform_int(std::max(3, o.min_qubits), max_q));
      break;
    case 8:
      c = phase_estimation(rng.uniform_int(3, std::min(16, max_q - 1)),
                           rng.uniform_real(0.0, 1.0));
      break;
    case 9: {
      int n = rng.uniform_int(std::max(3, o.min_qubits),
                              std::min(48, max_q - 1));
      std::uint64_t mask = 0;
      for (int b = 0; b < n; ++b) {
        if (rng.bernoulli(0.5)) mask |= std::uint64_t{1} << b;
      }
      c = deutsch_jozsa(n, mask);
      break;
    }
    case 10:
      c = ising_trotter(rng.uniform_int(std::max(3, o.min_qubits), max_q),
                        rng.uniform_int(1, 8), 1.0, 0.7, 0.1);
      break;
    case 11:
      c = quantum_volume(rng.uniform_int(std::max(4, o.min_qubits),
                                         std::min(30, max_q)),
                         rng.uniform_int(2, 8), rng);
      break;
    case 0:
      c = ghz(rng.uniform_int(std::max(3, o.min_qubits), max_q));
      break;
    case 1:
      c = qft(rng.uniform_int(std::max(3, o.min_qubits), std::min(24, max_q)));
      break;
    case 2: {
      int n = rng.uniform_int(std::max(3, o.min_qubits),
                              std::min(48, max_q - 1));
      std::uint64_t secret = 0;
      for (int b = 0; b < n; ++b) {
        if (rng.bernoulli(0.5)) secret |= std::uint64_t{1} << b;
      }
      c = bernstein_vazirani(n, secret);
      break;
    }
    case 3: {
      int n = rng.uniform_int(3, 8);
      std::uint64_t marked =
          rng.uniform_index(std::uint64_t{1} << n);
      c = grover(n, marked, rng.uniform_int(1, 3));
      break;
    }
    case 4: {
      int bits = rng.uniform_int(2, std::min(22, (max_q - 2) / 2));
      c = cuccaro_adder(bits);
      break;
    }
    case 5: {
      int n = rng.uniform_int(std::max(4, o.min_qubits), std::min(40, max_q));
      qfs::Rng g = rng.fork();
      graph::Graph problem = graph::random_connected_graph(n, 0.15, g);
      c = qaoa_maxcut(problem, rng.uniform_int(1, 4), rng);
      break;
    }
    default: {
      int n = rng.uniform_int(std::max(4, o.min_qubits), std::min(30, max_q));
      c = vqe_ansatz(n, rng.uniform_int(1, 6), rng);
      break;
    }
  }
  return Benchmark{c.name(), Family::kReal, std::move(c)};
}

Benchmark make_reversible_benchmark(const SuiteOptions& o, int index,
                                    qfs::Rng& rng) {
  // Every fourth instance is a named reversible function; the rest are
  // random Toffoli networks.
  if (index % 4 == 3) {
    int n = rng.uniform_int(std::max(3, o.min_qubits), o.max_qubits);
    circuit::Circuit c = (index % 8 == 3) ? reversible_majority_chain(n)
                                          : reversible_bit_reversal(n);
    return Benchmark{c.name(), Family::kReversible, std::move(c)};
  }
  ReversibleSpec spec;
  spec.num_qubits = rng.uniform_int(std::max(3, o.min_qubits), o.max_qubits);
  spec.num_gates = log_uniform(o.min_gates, o.max_gates, rng);
  circuit::Circuit c = random_reversible(spec, rng);
  return Benchmark{c.name(), Family::kReversible, std::move(c)};
}

}  // namespace

std::vector<Benchmark> make_suite(const SuiteOptions& options, qfs::Rng& rng) {
  std::vector<Benchmark> suite;
  suite.reserve(static_cast<std::size_t>(
      options.random_count + options.real_count + options.reversible_count));
  for (int i = 0; i < options.random_count; ++i) {
    suite.push_back(make_random_benchmark(options, rng));
  }
  for (int i = 0; i < options.real_count; ++i) {
    suite.push_back(make_real_benchmark(options, i, rng));
  }
  for (int i = 0; i < options.reversible_count; ++i) {
    suite.push_back(make_reversible_benchmark(options, i, rng));
  }
  // Disambiguate duplicate names with an index suffix.
  for (std::size_t i = 0; i < suite.size(); ++i) {
    suite[i].name += "_#" + std::to_string(i);
    suite[i].circuit.set_name(suite[i].name);
  }
  return suite;
}

std::vector<Benchmark> paper_suite(qfs::Rng& rng) {
  return make_suite(SuiteOptions{}, rng);
}

}  // namespace qfs::workloads
