// Compilation-artifact serialization: MappingResult <-> cache payload.
//
// A text format with exact (%.17g) doubles, so a warm-cache compile
// reproduces the cold run byte for byte — metrics, layouts and the mapped
// circuit included. Deserialization never asserts on malformed bytes:
// every structural violation comes back as a parse_error Status, which
// callers treat as a cache miss (recompute and overwrite).
#pragma once

#include <optional>
#include <string>

#include "cache/cache.h"
#include "mapper/pipeline.h"
#include "support/status.h"

namespace qfs::cache {

std::string serialize_mapping_result(const mapper::MappingResult& result);

qfs::StatusOr<mapper::MappingResult> deserialize_mapping_result(
    const std::string& payload);

/// Cache-aware convenience: lookup + decode. A payload that fails decoding
/// is counted corrupt and reported as a miss.
std::optional<mapper::MappingResult> load_mapping(CompileCache& cache,
                                                  const Fingerprint& key);

/// Encode + store.
void store_mapping(CompileCache& cache, const Fingerprint& key,
                   const mapper::MappingResult& result);

}  // namespace qfs::cache
