#include "cache/memo.h"

#include "analysis/equiv.h"
#include "cache/artifact.h"

namespace qfs::cache {

Fingerprint attempt_fingerprint(const Fingerprint& base,
                                const std::string& attempt_key) {
  FingerprintBuilder builder;
  builder.field("base", base.hex()).field("attempt", attempt_key);
  return builder.finish();
}

mapper::AttemptMemo make_attempt_memo(CompileCache& cache, Fingerprint base) {
  return make_attempt_memo(cache, base, MemoValidation{});
}

mapper::AttemptMemo make_attempt_memo(CompileCache& cache, Fingerprint base,
                                      MemoValidation validation) {
  mapper::AttemptMemo memo;
  memo.lookup = [&cache, base, validation](const std::string& attempt_key,
                                           mapper::MappingResult* out) {
    auto hit = load_mapping(cache, attempt_fingerprint(base, attempt_key));
    if (!hit) return false;
    if (validation.source != nullptr && validation.device != nullptr) {
      analysis::TranslationArtifact artifact;
      artifact.mapped = &hit->mapped;
      artifact.initial_layout = hit->initial_layout;
      artifact.final_layout = hit->final_layout;
      artifact.swaps_inserted = hit->swaps_inserted;
      analysis::EquivOptions options;
      options.max_diagnostics = 1;
      if (!analysis::translation_is_valid(*validation.source,
                                          *validation.device, artifact,
                                          options)) {
        // Semantically corrupt payload: valid serialization, wrong circuit.
        // Count it with the store-level corruption stats and degrade to a
        // miss; the fresh compile overwrites the bad entry on store.
        cache.count_corrupt_payload();
        return false;
      }
    }
    *out = std::move(*hit);
    return true;
  };
  memo.store = [&cache, base](const std::string& attempt_key,
                              const mapper::MappingResult& result) {
    store_mapping(cache, attempt_fingerprint(base, attempt_key), result);
  };
  return memo;
}

}  // namespace qfs::cache
