#include "cache/memo.h"

#include "cache/artifact.h"

namespace qfs::cache {

Fingerprint attempt_fingerprint(const Fingerprint& base,
                                const std::string& attempt_key) {
  FingerprintBuilder builder;
  builder.field("base", base.hex()).field("attempt", attempt_key);
  return builder.finish();
}

mapper::AttemptMemo make_attempt_memo(CompileCache& cache, Fingerprint base) {
  mapper::AttemptMemo memo;
  memo.lookup = [&cache, base](const std::string& attempt_key,
                               mapper::MappingResult* out) {
    auto hit = load_mapping(cache, attempt_fingerprint(base, attempt_key));
    if (!hit) return false;
    *out = std::move(*hit);
    return true;
  };
  memo.store = [&cache, base](const std::string& attempt_key,
                              const mapper::MappingResult& result) {
    store_mapping(cache, attempt_fingerprint(base, attempt_key), result);
  };
  return memo;
}

}  // namespace qfs::cache
