#include "cache/artifact.h"

#include <cstdio>
#include <map>
#include <sstream>

#include "support/strings.h"

namespace qfs::cache {

namespace {

constexpr const char kMagic[] = "qfs-artifact 1";

std::string g17(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

const std::map<std::string, circuit::GateKind>& kind_by_name() {
  static const std::map<std::string, circuit::GateKind> table = [] {
    std::map<std::string, circuit::GateKind> t;
    for (int i = 0; i < circuit::kNumGateKinds; ++i) {
      auto kind = static_cast<circuit::GateKind>(i);
      t[circuit::gate_name(kind)] = kind;
    }
    return t;
  }();
  return table;
}

void emit_layout(std::ostringstream& os, const char* tag,
                 const std::vector<int>& layout) {
  os << tag;
  for (int p : layout) os << ' ' << p;
  os << '\n';
}

qfs::Status bad(const std::string& what) {
  return qfs::parse_error("artifact: " + what);
}

qfs::Status parse_int_list(std::string_view text, std::vector<int>& out) {
  for (const std::string& tok : qfs::split_whitespace(text)) {
    int v = 0;
    if (!qfs::parse_int(tok, v)) return bad("bad integer '" + tok + "'");
    out.push_back(v);
  }
  return qfs::Status::ok();
}

qfs::Status parse_double_field(std::string_view text, double& out) {
  if (!qfs::parse_double(text, out)) {
    return bad("bad number '" + std::string(text) + "'");
  }
  return qfs::Status::ok();
}

/// Validate one gate line's shape before touching circuit::make_gate (which
/// asserts on contract violations — a cache read must never abort).
qfs::Status checked_add(circuit::Circuit& c, circuit::GateKind kind,
                        std::vector<int> qubits, std::vector<double> params) {
  int arity = circuit::gate_arity(kind);
  if (arity != 0 && static_cast<int>(qubits.size()) != arity) {
    return bad("wrong operand count");
  }
  if (kind == circuit::GateKind::kBarrier && qubits.empty()) {
    return bad("empty barrier");
  }
  if (static_cast<int>(params.size()) != circuit::gate_param_count(kind)) {
    return bad("wrong parameter count");
  }
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    if (qubits[i] < 0 || qubits[i] >= c.num_qubits()) {
      return bad("qubit operand out of range");
    }
    for (std::size_t j = i + 1; j < qubits.size(); ++j) {
      if (qubits[i] == qubits[j]) return bad("repeated qubit operand");
    }
  }
  c.add(circuit::make_gate(kind, std::move(qubits), std::move(params)));
  return qfs::Status::ok();
}

}  // namespace

std::string serialize_mapping_result(const mapper::MappingResult& result) {
  std::ostringstream os;
  os << kMagic << '\n';
  os << "qubits " << result.mapped.num_qubits() << '\n';
  os << "name " << result.mapped.name() << '\n';
  os << "gates " << result.mapped.gates().size() << '\n';
  for (const auto& g : result.mapped.gates()) {
    os << "g " << circuit::gate_name(g.kind);
    for (int q : g.qubits) os << ' ' << q;
    if (!g.params.empty()) {
      os << " ;";
      for (double p : g.params) os << ' ' << g17(p);
    }
    os << '\n';
  }
  emit_layout(os, "initial-layout", result.initial_layout);
  emit_layout(os, "final-layout", result.final_layout);
  os << "swaps " << result.swaps_inserted << '\n';
  os << "gates-before " << result.gates_before << '\n';
  os << "gates-after " << result.gates_after << '\n';
  os << "gate-overhead-pct " << g17(result.gate_overhead_pct) << '\n';
  os << "depth-before " << result.depth_before << '\n';
  os << "depth-after " << result.depth_after << '\n';
  os << "depth-overhead-pct " << g17(result.depth_overhead_pct) << '\n';
  os << "fidelity-before " << g17(result.fidelity_before) << '\n';
  os << "fidelity-after " << g17(result.fidelity_after) << '\n';
  os << "log-fidelity-before " << g17(result.log_fidelity_before) << '\n';
  os << "log-fidelity-after " << g17(result.log_fidelity_after) << '\n';
  os << "fidelity-decrease-pct " << g17(result.fidelity_decrease_pct) << '\n';
  os << "latency-before-ns " << g17(result.latency_before_ns) << '\n';
  os << "latency-after-ns " << g17(result.latency_after_ns) << '\n';
  os << "latency-overhead-pct " << g17(result.latency_overhead_pct) << '\n';
  return os.str();
}

qfs::StatusOr<mapper::MappingResult> deserialize_mapping_result(
    const std::string& payload) {
  std::istringstream in(payload);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return bad("bad magic");

  auto next_field = [&in, &line](std::string_view tag,
                                 std::string_view& value) -> qfs::Status {
    if (!std::getline(in, line)) return bad("truncated payload");
    std::string prefix = std::string(tag) + " ";
    if (line == std::string(tag)) {  // empty value (e.g. unnamed circuit)
      value = std::string_view();
      return qfs::Status::ok();
    }
    if (!qfs::starts_with(line, prefix)) {
      return bad("expected '" + std::string(tag) + "', got '" + line + "'");
    }
    value = std::string_view(line).substr(prefix.size());
    return qfs::Status::ok();
  };

  std::string_view value;
  if (auto s = next_field("qubits", value); !s.is_ok()) return s;
  int num_qubits = 0;
  if (!qfs::parse_int(value, num_qubits) || num_qubits < 0 ||
      num_qubits > 1 << 20) {
    return bad("bad qubit count");
  }
  if (auto s = next_field("name", value); !s.is_ok()) return s;
  std::string name(value);
  if (auto s = next_field("gates", value); !s.is_ok()) return s;
  int num_gates = 0;
  if (!qfs::parse_int(value, num_gates) || num_gates < 0) {
    return bad("bad gate count");
  }

  mapper::MappingResult result;
  result.mapped = circuit::Circuit(num_qubits, std::move(name));
  for (int i = 0; i < num_gates; ++i) {
    if (!std::getline(in, line)) return bad("truncated gate list");
    if (!qfs::starts_with(line, "g ")) return bad("bad gate line");
    std::string_view rest = std::string_view(line).substr(2);
    auto semi = rest.find(';');
    std::string_view qubit_part = rest.substr(0, semi);
    std::vector<std::string> toks = qfs::split_whitespace(qubit_part);
    if (toks.empty()) return bad("gate line without a kind");
    auto kind_it = kind_by_name().find(toks[0]);
    if (kind_it == kind_by_name().end()) {
      return bad("unknown gate kind '" + toks[0] + "'");
    }
    std::vector<int> qubits;
    for (std::size_t t = 1; t < toks.size(); ++t) {
      int q = 0;
      if (!qfs::parse_int(toks[t], q)) return bad("bad qubit operand");
      qubits.push_back(q);
    }
    std::vector<double> params;
    if (semi != std::string_view::npos) {
      for (const std::string& tok :
           qfs::split_whitespace(rest.substr(semi + 1))) {
        double p = 0.0;
        if (!qfs::parse_double(tok, p)) return bad("bad gate parameter");
        params.push_back(p);
      }
    }
    if (auto s = checked_add(result.mapped, kind_it->second, std::move(qubits),
                             std::move(params));
        !s.is_ok()) {
      return s;
    }
  }

  if (auto s = next_field("initial-layout", value); !s.is_ok()) return s;
  if (auto s = parse_int_list(value, result.initial_layout); !s.is_ok()) {
    return s;
  }
  if (auto s = next_field("final-layout", value); !s.is_ok()) return s;
  if (auto s = parse_int_list(value, result.final_layout); !s.is_ok()) return s;

  struct IntField {
    const char* tag;
    int* slot;
  };
  struct DoubleField {
    const char* tag;
    double* slot;
  };
  const IntField int_fields[] = {
      {"swaps", &result.swaps_inserted},
      {"gates-before", &result.gates_before},
      {"gates-after", &result.gates_after},
  };
  for (const auto& f : int_fields) {
    if (auto s = next_field(f.tag, value); !s.is_ok()) return s;
    if (!qfs::parse_int(value, *f.slot)) return bad("bad integer field");
  }
  if (auto s = next_field("gate-overhead-pct", value); !s.is_ok()) return s;
  if (auto s = parse_double_field(value, result.gate_overhead_pct); !s.is_ok()) {
    return s;
  }
  const IntField depth_fields[] = {
      {"depth-before", &result.depth_before},
      {"depth-after", &result.depth_after},
  };
  for (const auto& f : depth_fields) {
    if (auto s = next_field(f.tag, value); !s.is_ok()) return s;
    if (!qfs::parse_int(value, *f.slot)) return bad("bad integer field");
  }
  const DoubleField double_fields[] = {
      {"depth-overhead-pct", &result.depth_overhead_pct},
      {"fidelity-before", &result.fidelity_before},
      {"fidelity-after", &result.fidelity_after},
      {"log-fidelity-before", &result.log_fidelity_before},
      {"log-fidelity-after", &result.log_fidelity_after},
      {"fidelity-decrease-pct", &result.fidelity_decrease_pct},
      {"latency-before-ns", &result.latency_before_ns},
      {"latency-after-ns", &result.latency_after_ns},
      {"latency-overhead-pct", &result.latency_overhead_pct},
  };
  for (const auto& f : double_fields) {
    if (auto s = next_field(f.tag, value); !s.is_ok()) return s;
    if (auto s = parse_double_field(value, *f.slot); !s.is_ok()) return s;
  }
  return result;
}

std::optional<mapper::MappingResult> load_mapping(CompileCache& cache,
                                                  const Fingerprint& key) {
  auto payload = cache.lookup(key);
  if (!payload) return std::nullopt;
  auto decoded = deserialize_mapping_result(*payload);
  if (!decoded.is_ok()) {
    cache.count_corrupt_payload();
    return std::nullopt;
  }
  return std::move(decoded).value();
}

void store_mapping(CompileCache& cache, const Fingerprint& key,
                   const mapper::MappingResult& result) {
  cache.store(key, serialize_mapping_result(result));
}

}  // namespace qfs::cache
