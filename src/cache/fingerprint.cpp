#include "cache/fingerprint.h"

#include <cstdio>
#include <sstream>

namespace qfs::cache {

namespace {

/// Shortest exact rendering of a double (%.17g round-trips every finite
/// value); used for calibration data where 1-ulp drift must change the key.
std::string g17(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

FingerprintBuilder& FingerprintBuilder::field(std::string_view tag,
                                              std::string_view value) {
  // Length-prefix tag and value so field boundaries cannot be forged by
  // concatenation ("ab"+"c" never hashes like "a"+"bc").
  std::uint64_t sizes[2] = {tag.size(), value.size()};
  for (std::uint64_t size : sizes) {
    unsigned char le[8];
    for (int i = 0; i < 8; ++i) {
      le[i] = static_cast<unsigned char>((size >> (8 * i)) & 0xff);
    }
    hasher_.update(le, sizeof(le));
  }
  hasher_.update(tag);
  hasher_.update(value);
  return *this;
}

std::string canonical_device_text(const device::Device& device) {
  std::ostringstream os;
  const auto& topo = device.topology();
  const auto& em = device.error_model();
  os << "device " << device.name() << '\n';
  // The registry spec (backend name + resolved parameters): two backends
  // that happen to share a coupling graph and error model still get
  // distinct cache keys.
  os << "spec " << device.spec() << '\n';
  os << "qubits " << device.num_qubits() << '\n';
  os << "edges";
  for (const auto& [a, b] : topo.edge_list()) os << ' ' << a << '-' << b;
  os << '\n';
  os << "gateset " << device.gateset().name();
  for (circuit::GateKind kind : device.gateset().kinds()) {
    os << ' ' << circuit::gate_name(kind);
  }
  os << '\n';
  os << "base-fidelity " << g17(em.single_qubit_fidelity()) << ' '
     << g17(em.two_qubit_fidelity()) << ' ' << g17(em.measurement_fidelity())
     << '\n';
  os << "durations-ns " << g17(em.single_qubit_duration_ns()) << ' '
     << g17(em.two_qubit_duration_ns()) << ' '
     << g17(em.measurement_duration_ns()) << '\n';
  os << "coherence-ns " << g17(em.t1_ns()) << ' ' << g17(em.t2_ns()) << '\n';
  // Effective per-qubit / per-edge fidelities: calibration overrides are
  // private to the model, but evaluating every site captures them exactly.
  os << "qubit-fidelity";
  for (int q = 0; q < device.num_qubits(); ++q) {
    os << ' ' << g17(em.qubit_fidelity(q));
  }
  os << '\n';
  os << "edge-fidelity";
  for (const auto& [a, b] : topo.edge_list()) {
    os << ' ' << g17(em.edge_fidelity(a, b));
  }
  os << '\n';
  os << "control-groups";
  if (device.has_control_groups()) {
    for (int q = 0; q < device.num_qubits(); ++q) {
      os << ' ' << device.control_group(q);
    }
  }
  os << '\n';
  return os.str();
}

std::string canonical_options_text(const mapper::MappingOptions& options) {
  std::ostringstream os;
  os << "placer " << options.placer << '\n';
  os << "router " << options.router << '\n';
  os << "sabre-rounds " << options.sabre_refinement_rounds << '\n';
  os << "initial-layout";
  for (int p : options.initial_layout) os << ' ' << p;
  os << '\n';
  os << "compute-latency " << (options.compute_latency ? 1 : 0) << '\n';
  return os.str();
}

Fingerprint compile_fingerprint(std::string_view canonical_qasm,
                                const device::Device& device,
                                const mapper::MappingOptions& options,
                                std::uint64_t seed, std::string_view salt) {
  FingerprintBuilder builder;
  builder.field("salt", salt)
      .field("qasm", canonical_qasm)
      .field("device", canonical_device_text(device))
      .field("options", canonical_options_text(options))
      .field("seed", std::to_string(seed));
  return builder.finish();
}

}  // namespace qfs::cache
