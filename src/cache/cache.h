// Two-tier content-addressed compilation cache.
//
// Tier 1 is a sharded in-memory LRU (byte-budgeted, per-shard mutex); tier 2
// is an on-disk store addressed by the entry's 128-bit fingerprint. Disk
// entries are written to a unique temporary file and atomically renamed into
// place, so any number of processes/threads may share one --cache-dir (an
// interrupted write can never leave a half-entry under its final name), and
// every read re-verifies a magic header, the embedded key, the payload size
// and a payload digest — a damaged or truncated entry is a recorded miss,
// never a crash.
//
// The cache stores opaque byte payloads; what goes inside (serialized
// MappingResults) is the business of cache/artifact.h.
#pragma once

#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/stats.h"
#include "support/hash.h"

namespace qfs::cache {

/// Cache keys are stable 128-bit fingerprints (see cache/fingerprint.h).
using Fingerprint = qfs::Hash128;

struct CacheConfig {
  /// Root directory of the on-disk tier; empty disables it (memory only).
  std::string disk_dir;
  /// Total in-memory payload budget across all shards; 0 disables tier 1.
  std::size_t memory_budget_bytes = std::size_t{64} << 20;
  /// Number of LRU shards (clamped to >= 1). More shards, less contention.
  int shards = 8;
};

class CompileCache {
 public:
  explicit CompileCache(CacheConfig config);

  CompileCache(const CompileCache&) = delete;
  CompileCache& operator=(const CompileCache&) = delete;

  /// The payload stored under `key`, or nullopt. Checks memory first, then
  /// disk; a disk hit is promoted into the memory tier.
  std::optional<std::string> lookup(const Fingerprint& key);

  /// Insert into both tiers. Re-storing an existing key overwrites it.
  void store(const Fingerprint& key, const std::string& payload);

  /// Record that a structurally valid payload failed *semantic* decoding
  /// (cache/artifact.h calls this); keeps the corrupt counter honest when
  /// corruption is only detectable above the store layer.
  void count_corrupt_payload() { stats_.count_corrupt(); }

  CacheStatsSnapshot stats() const { return stats_.snapshot(); }
  const CacheConfig& config() const { return config_; }

  /// Final path of `key`'s disk entry ("" when the disk tier is disabled).
  std::string entry_path(const Fingerprint& key) const;

 private:
  struct Shard {
    std::mutex mu;
    /// Most-recently-used front. Entries own their payload bytes.
    std::list<std::pair<std::string, std::string>> lru;  // (hex key, payload)
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, std::string>>::iterator>
        index;
    std::size_t bytes = 0;
  };

  Shard& shard_for(const Fingerprint& key);
  std::optional<std::string> memory_lookup(const Fingerprint& key);
  void memory_store(const Fingerprint& key, const std::string& payload);
  std::optional<std::string> disk_lookup(const Fingerprint& key);
  void disk_store(const Fingerprint& key, const std::string& payload);

  CacheConfig config_;
  std::size_t shard_budget_ = 0;
  std::vector<Shard> shards_;
  CacheStats stats_;
};

}  // namespace qfs::cache
