// Adapter binding a CompileCache to mapper::compile_resilient's per-attempt
// memo hooks.
//
// The mapper hands over only the attempt triple "placer|router|seed"; the
// adapter combines it with a base fingerprint covering the canonical input
// circuit, the device and the pipeline configuration, so two different
// inputs can never share an attempt entry.
//
// When given the source circuit and device, the adapter also revalidates
// every hit with the translation validator (analysis/equiv.h): a payload
// that deserializes cleanly but no longer computes the source circuit — a
// bit-flipped gate, a stale layout — is counted as corrupt, reported as a
// miss, and recompiled fresh instead of escaping to a caller.
#pragma once

#include "cache/cache.h"
#include "cache/fingerprint.h"
#include "circuit/circuit.h"
#include "device/device.h"
#include "mapper/pipeline.h"

namespace qfs::cache {

/// Hooks memoizing successful attempts of one (circuit, device, pipeline)
/// combination in `cache`. The returned object owns closures that reference
/// `cache`; it must not outlive it. `base` should come from
/// compile_fingerprint over the resilient options' base configuration.
mapper::AttemptMemo make_attempt_memo(CompileCache& cache, Fingerprint base);

/// Borrowed validation context for hit revalidation.
struct MemoValidation {
  const circuit::Circuit* source = nullptr;
  const device::Device* device = nullptr;
};

/// As above, but every hit is first checked by the translation validator
/// against `validation` (both pointers must outlive the memo). A hit whose
/// artifact fails validation increments the cache's corrupt counter and is
/// returned as a miss, so compile_resilient recompiles and re-stores it.
mapper::AttemptMemo make_attempt_memo(CompileCache& cache, Fingerprint base,
                                      MemoValidation validation);

/// The cache key of one attempt: base fingerprint x attempt triple.
Fingerprint attempt_fingerprint(const Fingerprint& base,
                                const std::string& attempt_key);

}  // namespace qfs::cache
