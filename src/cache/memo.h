// Adapter binding a CompileCache to mapper::compile_resilient's per-attempt
// memo hooks.
//
// The mapper hands over only the attempt triple "placer|router|seed"; the
// adapter combines it with a base fingerprint covering the canonical input
// circuit, the device and the pipeline configuration, so two different
// inputs can never share an attempt entry.
#pragma once

#include "cache/cache.h"
#include "cache/fingerprint.h"
#include "mapper/pipeline.h"

namespace qfs::cache {

/// Hooks memoizing successful attempts of one (circuit, device, pipeline)
/// combination in `cache`. The returned object owns closures that reference
/// `cache`; it must not outlive it. `base` should come from
/// compile_fingerprint over the resilient options' base configuration.
mapper::AttemptMemo make_attempt_memo(CompileCache& cache, Fingerprint base);

/// The cache key of one attempt: base fingerprint x attempt triple.
Fingerprint attempt_fingerprint(const Fingerprint& base,
                                const std::string& attempt_key);

}  // namespace qfs::cache
