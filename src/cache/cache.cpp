#include "cache/cache.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "support/strings.h"

namespace qfs::cache {

namespace fs = std::filesystem;

namespace {

constexpr const char kMagic[] = "qfs-cache 1";

/// Serialized entry: four header lines, then the raw payload bytes.
///   qfs-cache 1
///   key <32 hex>
///   size <decimal byte count>
///   sum <32 hex payload digest>
std::string encode_entry(const Fingerprint& key, const std::string& payload) {
  std::ostringstream os;
  os << kMagic << '\n'
     << "key " << key.hex() << '\n'
     << "size " << payload.size() << '\n'
     << "sum " << qfs::hash128(payload).hex() << '\n'
     << payload;
  return os.str();
}

/// Per-process token making temporary-file names unique across concurrent
/// writers (threads disambiguate via the atomic counter).
std::uint64_t process_token() {
  static const std::uint64_t token = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }();
  return token;
}

}  // namespace

CompileCache::CompileCache(CacheConfig config) : config_(std::move(config)) {
  if (config_.shards < 1) config_.shards = 1;
  shards_ = std::vector<Shard>(static_cast<std::size_t>(config_.shards));
  shard_budget_ =
      config_.memory_budget_bytes / static_cast<std::size_t>(config_.shards);
}

CompileCache::Shard& CompileCache::shard_for(const Fingerprint& key) {
  return shards_[static_cast<std::size_t>(key.lo) %
                 static_cast<std::size_t>(config_.shards)];
}

std::string CompileCache::entry_path(const Fingerprint& key) const {
  if (config_.disk_dir.empty()) return "";
  std::string hex = key.hex();
  return (fs::path(config_.disk_dir) / hex.substr(0, 2) /
          (hex.substr(2) + ".entry"))
      .string();
}

std::optional<std::string> CompileCache::memory_lookup(const Fingerprint& key) {
  if (shard_budget_ == 0) return std::nullopt;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.hex());
  if (it == shard.index.end()) return std::nullopt;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void CompileCache::memory_store(const Fingerprint& key,
                                const std::string& payload) {
  if (shard_budget_ == 0 || payload.size() > shard_budget_) return;
  Shard& shard = shard_for(key);
  std::string hex = key.hex();
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(hex);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->second.size();
    it->second->second = payload;
    shard.bytes += payload.size();
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.emplace_front(hex, payload);
    shard.index[hex] = shard.lru.begin();
    shard.bytes += payload.size();
  }
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    auto& victim = shard.lru.back();
    shard.bytes -= victim.second.size();
    shard.index.erase(victim.first);
    shard.lru.pop_back();
    stats_.count_eviction();
  }
}

std::optional<std::string> CompileCache::disk_lookup(const Fingerprint& key) {
  std::string path = entry_path(key);
  if (path.empty()) return std::nullopt;
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // absent: a plain miss, not corruption
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string raw = buffer.str();

  // Parse and verify the header; any deviation is a recorded corrupt miss.
  auto fail = [this]() -> std::optional<std::string> {
    stats_.count_corrupt();
    return std::nullopt;
  };
  std::istringstream header(raw);
  std::string line;
  if (!std::getline(header, line) || line != kMagic) return fail();
  if (!std::getline(header, line) || !qfs::starts_with(line, "key ") ||
      line.substr(4) != key.hex()) {
    return fail();
  }
  if (!std::getline(header, line) || !qfs::starts_with(line, "size ")) {
    return fail();
  }
  int declared_size = 0;
  if (!qfs::parse_int(line.substr(5), declared_size) || declared_size < 0) {
    return fail();
  }
  if (!std::getline(header, line) || !qfs::starts_with(line, "sum ")) {
    return fail();
  }
  std::string declared_sum = line.substr(4);
  std::streampos pos = header.tellg();
  if (pos < 0) return fail();  // truncated inside the header
  auto payload_start = static_cast<std::size_t>(pos);
  if (payload_start > raw.size() ||
      raw.size() - payload_start != static_cast<std::size_t>(declared_size)) {
    return fail();
  }
  std::string payload = raw.substr(payload_start);
  if (qfs::hash128(payload).hex() != declared_sum) return fail();
  return payload;
}

void CompileCache::disk_store(const Fingerprint& key,
                              const std::string& payload) {
  std::string path = entry_path(key);
  if (path.empty()) return;
  static std::atomic<std::uint64_t> counter{0};
  std::error_code ec;
  fs::path final_path(path);
  fs::create_directories(final_path.parent_path(), ec);
  if (ec) return;  // best effort: an unwritable store degrades to misses

  std::ostringstream tmp_name;
  tmp_name << "." << final_path.filename().string() << "." << std::hex
           << process_token() << "." << counter.fetch_add(1) << ".tmp";
  fs::path tmp_path = final_path.parent_path() / tmp_name.str();
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << encode_entry(key, payload);
    out.flush();
    if (!out.good()) {
      out.close();
      fs::remove(tmp_path, ec);
      return;
    }
  }
  // Atomic publish: readers see either the old complete entry or the new
  // complete entry, never a partial write.
  fs::rename(tmp_path, final_path, ec);
  if (ec) fs::remove(tmp_path, ec);
}

std::optional<std::string> CompileCache::lookup(const Fingerprint& key) {
  if (auto hit = memory_lookup(key)) {
    stats_.count_memory_hit();
    return hit;
  }
  if (auto hit = disk_lookup(key)) {
    stats_.count_disk_hit(hit->size());
    memory_store(key, *hit);  // promote for subsequent lookups
    return hit;
  }
  stats_.count_miss();
  return std::nullopt;
}

void CompileCache::store(const Fingerprint& key, const std::string& payload) {
  memory_store(key, payload);
  disk_store(key, payload);
  stats_.count_store(payload.size());
}

}  // namespace qfs::cache
