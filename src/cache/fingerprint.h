// Cache-key derivation: stable fingerprints over canonical text.
//
// A compilation artifact is addressed by a 128-bit digest of everything
// that can change its bytes:
//   - the canonical QASM text of the input circuit (print->parse->print is
//     a fixed point, pinned by tests/qasm_roundtrip_test.cpp),
//   - the full device configuration (topology, gate set, calibration /
//     error model, control groups),
//   - the pass-pipeline configuration (placer, router, SABRE rounds,
//     explicit layout, latency computation) and the RNG seed,
//   - kCacheVersionSalt, bumped whenever compiler output or the artifact
//     format changes incompatibly.
// Fields are length-prefixed before hashing so no two field sequences can
// collide by concatenation.
#pragma once

#include <string>
#include <string_view>

#include "cache/cache.h"
#include "device/device.h"
#include "mapper/pipeline.h"

namespace qfs::cache {

/// Version salt folded into every cache key and printed by `qfsc --version`.
/// Bump the suffix to invalidate all previously stored artifacts.
inline constexpr std::string_view kCacheVersionSalt = "qfs-compile-cache-v1";

/// Accumulates tagged, length-prefixed fields into one digest.
class FingerprintBuilder {
 public:
  FingerprintBuilder& field(std::string_view tag, std::string_view value);
  Fingerprint finish() const { return hasher_.finish(); }

 private:
  qfs::Hasher hasher_;
};

/// Deterministic full rendering of a device: name, topology edge list,
/// gate-set kinds, effective per-qubit/per-edge fidelities (calibration
/// overrides included), durations, coherence times and control groups.
std::string canonical_device_text(const device::Device& device);

/// Deterministic rendering of the mapping pipeline configuration.
std::string canonical_options_text(const mapper::MappingOptions& options);

/// The cache key of one compile: canonical circuit text x device x options
/// x seed x version salt.
Fingerprint compile_fingerprint(std::string_view canonical_qasm,
                                const device::Device& device,
                                const mapper::MappingOptions& options,
                                std::uint64_t seed,
                                std::string_view salt = kCacheVersionSalt);

}  // namespace qfs::cache
