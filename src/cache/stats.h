// Cache telemetry: thread-safe counters plus a plain snapshot struct.
//
// The snapshot is deliberately dependency-free (POD + <string> only) so the
// report layer can render a cache summary line without linking the cache's
// storage machinery.
#pragma once

#include <atomic>
#include <cstdint>

namespace qfs::cache {

/// A point-in-time copy of every counter. Plain values; safe to pass around.
struct CacheStatsSnapshot {
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  /// Disk entries that failed a magic/size/digest check (treated as misses)
  /// plus payloads the decoder rejected.
  std::uint64_t corrupt_entries = 0;

  std::uint64_t hits() const { return memory_hits + disk_hits; }
  std::uint64_t lookups() const { return hits() + misses; }
};

/// Lock-free counters updated from any thread.
class CacheStats {
 public:
  void count_memory_hit() { memory_hits_.fetch_add(1, kOrder); }
  void count_disk_hit(std::uint64_t bytes) {
    disk_hits_.fetch_add(1, kOrder);
    bytes_read_.fetch_add(bytes, kOrder);
  }
  void count_miss() { misses_.fetch_add(1, kOrder); }
  void count_store(std::uint64_t bytes) {
    stores_.fetch_add(1, kOrder);
    bytes_written_.fetch_add(bytes, kOrder);
  }
  void count_eviction() { evictions_.fetch_add(1, kOrder); }
  void count_corrupt() { corrupt_entries_.fetch_add(1, kOrder); }

  CacheStatsSnapshot snapshot() const {
    CacheStatsSnapshot s;
    s.memory_hits = memory_hits_.load(kOrder);
    s.disk_hits = disk_hits_.load(kOrder);
    s.misses = misses_.load(kOrder);
    s.stores = stores_.load(kOrder);
    s.evictions = evictions_.load(kOrder);
    s.bytes_read = bytes_read_.load(kOrder);
    s.bytes_written = bytes_written_.load(kOrder);
    s.corrupt_entries = corrupt_entries_.load(kOrder);
    return s;
  }

 private:
  static constexpr std::memory_order kOrder = std::memory_order_relaxed;

  std::atomic<std::uint64_t> memory_hits_{0};
  std::atomic<std::uint64_t> disk_hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> corrupt_entries_{0};
};

}  // namespace qfs::cache
