# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("graph")
subdirs("stats")
subdirs("circuit")
subdirs("device")
subdirs("sim")
subdirs("compiler")
subdirs("isa")
subdirs("qasm")
subdirs("profile")
subdirs("mapper")
subdirs("workloads")
subdirs("report")
