# Empty compiler generated dependencies file for qfs_circuit.
# This may be replaced when dependencies are built.
