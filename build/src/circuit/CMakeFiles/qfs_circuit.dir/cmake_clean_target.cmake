file(REMOVE_RECURSE
  "libqfs_circuit.a"
)
