file(REMOVE_RECURSE
  "CMakeFiles/qfs_circuit.dir/circuit.cpp.o"
  "CMakeFiles/qfs_circuit.dir/circuit.cpp.o.d"
  "CMakeFiles/qfs_circuit.dir/dag.cpp.o"
  "CMakeFiles/qfs_circuit.dir/dag.cpp.o.d"
  "CMakeFiles/qfs_circuit.dir/draw.cpp.o"
  "CMakeFiles/qfs_circuit.dir/draw.cpp.o.d"
  "CMakeFiles/qfs_circuit.dir/gate.cpp.o"
  "CMakeFiles/qfs_circuit.dir/gate.cpp.o.d"
  "CMakeFiles/qfs_circuit.dir/matrix.cpp.o"
  "CMakeFiles/qfs_circuit.dir/matrix.cpp.o.d"
  "libqfs_circuit.a"
  "libqfs_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qfs_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
