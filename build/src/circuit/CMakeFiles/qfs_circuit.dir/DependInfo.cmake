
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/circuit.cpp" "src/circuit/CMakeFiles/qfs_circuit.dir/circuit.cpp.o" "gcc" "src/circuit/CMakeFiles/qfs_circuit.dir/circuit.cpp.o.d"
  "/root/repo/src/circuit/dag.cpp" "src/circuit/CMakeFiles/qfs_circuit.dir/dag.cpp.o" "gcc" "src/circuit/CMakeFiles/qfs_circuit.dir/dag.cpp.o.d"
  "/root/repo/src/circuit/draw.cpp" "src/circuit/CMakeFiles/qfs_circuit.dir/draw.cpp.o" "gcc" "src/circuit/CMakeFiles/qfs_circuit.dir/draw.cpp.o.d"
  "/root/repo/src/circuit/gate.cpp" "src/circuit/CMakeFiles/qfs_circuit.dir/gate.cpp.o" "gcc" "src/circuit/CMakeFiles/qfs_circuit.dir/gate.cpp.o.d"
  "/root/repo/src/circuit/matrix.cpp" "src/circuit/CMakeFiles/qfs_circuit.dir/matrix.cpp.o" "gcc" "src/circuit/CMakeFiles/qfs_circuit.dir/matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/qfs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
