file(REMOVE_RECURSE
  "CMakeFiles/qfs_compiler.dir/decompose.cpp.o"
  "CMakeFiles/qfs_compiler.dir/decompose.cpp.o.d"
  "CMakeFiles/qfs_compiler.dir/euler.cpp.o"
  "CMakeFiles/qfs_compiler.dir/euler.cpp.o.d"
  "CMakeFiles/qfs_compiler.dir/optimize.cpp.o"
  "CMakeFiles/qfs_compiler.dir/optimize.cpp.o.d"
  "CMakeFiles/qfs_compiler.dir/pass_manager.cpp.o"
  "CMakeFiles/qfs_compiler.dir/pass_manager.cpp.o.d"
  "CMakeFiles/qfs_compiler.dir/schedule.cpp.o"
  "CMakeFiles/qfs_compiler.dir/schedule.cpp.o.d"
  "libqfs_compiler.a"
  "libqfs_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qfs_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
