
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/decompose.cpp" "src/compiler/CMakeFiles/qfs_compiler.dir/decompose.cpp.o" "gcc" "src/compiler/CMakeFiles/qfs_compiler.dir/decompose.cpp.o.d"
  "/root/repo/src/compiler/euler.cpp" "src/compiler/CMakeFiles/qfs_compiler.dir/euler.cpp.o" "gcc" "src/compiler/CMakeFiles/qfs_compiler.dir/euler.cpp.o.d"
  "/root/repo/src/compiler/optimize.cpp" "src/compiler/CMakeFiles/qfs_compiler.dir/optimize.cpp.o" "gcc" "src/compiler/CMakeFiles/qfs_compiler.dir/optimize.cpp.o.d"
  "/root/repo/src/compiler/pass_manager.cpp" "src/compiler/CMakeFiles/qfs_compiler.dir/pass_manager.cpp.o" "gcc" "src/compiler/CMakeFiles/qfs_compiler.dir/pass_manager.cpp.o.d"
  "/root/repo/src/compiler/schedule.cpp" "src/compiler/CMakeFiles/qfs_compiler.dir/schedule.cpp.o" "gcc" "src/compiler/CMakeFiles/qfs_compiler.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/qfs_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/qfs_device.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qfs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
