file(REMOVE_RECURSE
  "libqfs_compiler.a"
)
