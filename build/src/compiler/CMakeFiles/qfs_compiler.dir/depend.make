# Empty dependencies file for qfs_compiler.
# This may be replaced when dependencies are built.
