# Empty dependencies file for qfs_stats.
# This may be replaced when dependencies are built.
