file(REMOVE_RECURSE
  "libqfs_stats.a"
)
