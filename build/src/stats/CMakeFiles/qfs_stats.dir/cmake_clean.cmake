file(REMOVE_RECURSE
  "CMakeFiles/qfs_stats.dir/correlation.cpp.o"
  "CMakeFiles/qfs_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/qfs_stats.dir/descriptive.cpp.o"
  "CMakeFiles/qfs_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/qfs_stats.dir/kmeans.cpp.o"
  "CMakeFiles/qfs_stats.dir/kmeans.cpp.o.d"
  "CMakeFiles/qfs_stats.dir/regression.cpp.o"
  "CMakeFiles/qfs_stats.dir/regression.cpp.o.d"
  "libqfs_stats.a"
  "libqfs_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qfs_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
