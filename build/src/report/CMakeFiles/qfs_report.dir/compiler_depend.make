# Empty compiler generated dependencies file for qfs_report.
# This may be replaced when dependencies are built.
