file(REMOVE_RECURSE
  "CMakeFiles/qfs_report.dir/histogram.cpp.o"
  "CMakeFiles/qfs_report.dir/histogram.cpp.o.d"
  "CMakeFiles/qfs_report.dir/scatter.cpp.o"
  "CMakeFiles/qfs_report.dir/scatter.cpp.o.d"
  "CMakeFiles/qfs_report.dir/table.cpp.o"
  "CMakeFiles/qfs_report.dir/table.cpp.o.d"
  "libqfs_report.a"
  "libqfs_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qfs_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
