file(REMOVE_RECURSE
  "libqfs_report.a"
)
