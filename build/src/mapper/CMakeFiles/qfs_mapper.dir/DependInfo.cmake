
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapper/layout.cpp" "src/mapper/CMakeFiles/qfs_mapper.dir/layout.cpp.o" "gcc" "src/mapper/CMakeFiles/qfs_mapper.dir/layout.cpp.o.d"
  "/root/repo/src/mapper/optimal.cpp" "src/mapper/CMakeFiles/qfs_mapper.dir/optimal.cpp.o" "gcc" "src/mapper/CMakeFiles/qfs_mapper.dir/optimal.cpp.o.d"
  "/root/repo/src/mapper/pipeline.cpp" "src/mapper/CMakeFiles/qfs_mapper.dir/pipeline.cpp.o" "gcc" "src/mapper/CMakeFiles/qfs_mapper.dir/pipeline.cpp.o.d"
  "/root/repo/src/mapper/placement.cpp" "src/mapper/CMakeFiles/qfs_mapper.dir/placement.cpp.o" "gcc" "src/mapper/CMakeFiles/qfs_mapper.dir/placement.cpp.o.d"
  "/root/repo/src/mapper/recommend.cpp" "src/mapper/CMakeFiles/qfs_mapper.dir/recommend.cpp.o" "gcc" "src/mapper/CMakeFiles/qfs_mapper.dir/recommend.cpp.o.d"
  "/root/repo/src/mapper/routing.cpp" "src/mapper/CMakeFiles/qfs_mapper.dir/routing.cpp.o" "gcc" "src/mapper/CMakeFiles/qfs_mapper.dir/routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/qfs_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/qfs_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/qfs_device.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/qfs_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/qfs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qfs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
