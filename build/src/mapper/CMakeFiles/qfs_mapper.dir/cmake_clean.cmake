file(REMOVE_RECURSE
  "CMakeFiles/qfs_mapper.dir/layout.cpp.o"
  "CMakeFiles/qfs_mapper.dir/layout.cpp.o.d"
  "CMakeFiles/qfs_mapper.dir/optimal.cpp.o"
  "CMakeFiles/qfs_mapper.dir/optimal.cpp.o.d"
  "CMakeFiles/qfs_mapper.dir/pipeline.cpp.o"
  "CMakeFiles/qfs_mapper.dir/pipeline.cpp.o.d"
  "CMakeFiles/qfs_mapper.dir/placement.cpp.o"
  "CMakeFiles/qfs_mapper.dir/placement.cpp.o.d"
  "CMakeFiles/qfs_mapper.dir/recommend.cpp.o"
  "CMakeFiles/qfs_mapper.dir/recommend.cpp.o.d"
  "CMakeFiles/qfs_mapper.dir/routing.cpp.o"
  "CMakeFiles/qfs_mapper.dir/routing.cpp.o.d"
  "libqfs_mapper.a"
  "libqfs_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qfs_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
