file(REMOVE_RECURSE
  "libqfs_mapper.a"
)
