# Empty compiler generated dependencies file for qfs_mapper.
# This may be replaced when dependencies are built.
