file(REMOVE_RECURSE
  "CMakeFiles/qfs_isa.dir/binary.cpp.o"
  "CMakeFiles/qfs_isa.dir/binary.cpp.o.d"
  "CMakeFiles/qfs_isa.dir/pulse.cpp.o"
  "CMakeFiles/qfs_isa.dir/pulse.cpp.o.d"
  "CMakeFiles/qfs_isa.dir/timed_program.cpp.o"
  "CMakeFiles/qfs_isa.dir/timed_program.cpp.o.d"
  "libqfs_isa.a"
  "libqfs_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qfs_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
