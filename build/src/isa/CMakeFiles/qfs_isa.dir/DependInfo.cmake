
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/binary.cpp" "src/isa/CMakeFiles/qfs_isa.dir/binary.cpp.o" "gcc" "src/isa/CMakeFiles/qfs_isa.dir/binary.cpp.o.d"
  "/root/repo/src/isa/pulse.cpp" "src/isa/CMakeFiles/qfs_isa.dir/pulse.cpp.o" "gcc" "src/isa/CMakeFiles/qfs_isa.dir/pulse.cpp.o.d"
  "/root/repo/src/isa/timed_program.cpp" "src/isa/CMakeFiles/qfs_isa.dir/timed_program.cpp.o" "gcc" "src/isa/CMakeFiles/qfs_isa.dir/timed_program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/qfs_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/qfs_device.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/qfs_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qfs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
