file(REMOVE_RECURSE
  "libqfs_isa.a"
)
