# Empty dependencies file for qfs_isa.
# This may be replaced when dependencies are built.
