file(REMOVE_RECURSE
  "libqfs_sim.a"
)
