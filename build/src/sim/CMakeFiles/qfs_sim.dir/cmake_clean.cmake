file(REMOVE_RECURSE
  "CMakeFiles/qfs_sim.dir/density_matrix.cpp.o"
  "CMakeFiles/qfs_sim.dir/density_matrix.cpp.o.d"
  "CMakeFiles/qfs_sim.dir/equivalence.cpp.o"
  "CMakeFiles/qfs_sim.dir/equivalence.cpp.o.d"
  "CMakeFiles/qfs_sim.dir/noisy.cpp.o"
  "CMakeFiles/qfs_sim.dir/noisy.cpp.o.d"
  "CMakeFiles/qfs_sim.dir/stabilizer.cpp.o"
  "CMakeFiles/qfs_sim.dir/stabilizer.cpp.o.d"
  "CMakeFiles/qfs_sim.dir/statevector.cpp.o"
  "CMakeFiles/qfs_sim.dir/statevector.cpp.o.d"
  "libqfs_sim.a"
  "libqfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
