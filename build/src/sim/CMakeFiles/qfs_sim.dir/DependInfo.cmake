
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/density_matrix.cpp" "src/sim/CMakeFiles/qfs_sim.dir/density_matrix.cpp.o" "gcc" "src/sim/CMakeFiles/qfs_sim.dir/density_matrix.cpp.o.d"
  "/root/repo/src/sim/equivalence.cpp" "src/sim/CMakeFiles/qfs_sim.dir/equivalence.cpp.o" "gcc" "src/sim/CMakeFiles/qfs_sim.dir/equivalence.cpp.o.d"
  "/root/repo/src/sim/noisy.cpp" "src/sim/CMakeFiles/qfs_sim.dir/noisy.cpp.o" "gcc" "src/sim/CMakeFiles/qfs_sim.dir/noisy.cpp.o.d"
  "/root/repo/src/sim/stabilizer.cpp" "src/sim/CMakeFiles/qfs_sim.dir/stabilizer.cpp.o" "gcc" "src/sim/CMakeFiles/qfs_sim.dir/stabilizer.cpp.o.d"
  "/root/repo/src/sim/statevector.cpp" "src/sim/CMakeFiles/qfs_sim.dir/statevector.cpp.o" "gcc" "src/sim/CMakeFiles/qfs_sim.dir/statevector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/qfs_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/qfs_device.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qfs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
