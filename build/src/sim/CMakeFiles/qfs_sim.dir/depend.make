# Empty dependencies file for qfs_sim.
# This may be replaced when dependencies are built.
