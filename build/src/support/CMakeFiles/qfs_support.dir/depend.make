# Empty dependencies file for qfs_support.
# This may be replaced when dependencies are built.
