file(REMOVE_RECURSE
  "CMakeFiles/qfs_support.dir/assert.cpp.o"
  "CMakeFiles/qfs_support.dir/assert.cpp.o.d"
  "CMakeFiles/qfs_support.dir/csv.cpp.o"
  "CMakeFiles/qfs_support.dir/csv.cpp.o.d"
  "CMakeFiles/qfs_support.dir/json.cpp.o"
  "CMakeFiles/qfs_support.dir/json.cpp.o.d"
  "CMakeFiles/qfs_support.dir/rng.cpp.o"
  "CMakeFiles/qfs_support.dir/rng.cpp.o.d"
  "CMakeFiles/qfs_support.dir/status.cpp.o"
  "CMakeFiles/qfs_support.dir/status.cpp.o.d"
  "CMakeFiles/qfs_support.dir/strings.cpp.o"
  "CMakeFiles/qfs_support.dir/strings.cpp.o.d"
  "libqfs_support.a"
  "libqfs_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qfs_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
