file(REMOVE_RECURSE
  "libqfs_support.a"
)
