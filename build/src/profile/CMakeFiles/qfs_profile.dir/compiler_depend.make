# Empty compiler generated dependencies file for qfs_profile.
# This may be replaced when dependencies are built.
