file(REMOVE_RECURSE
  "libqfs_profile.a"
)
