
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/circuit_profile.cpp" "src/profile/CMakeFiles/qfs_profile.dir/circuit_profile.cpp.o" "gcc" "src/profile/CMakeFiles/qfs_profile.dir/circuit_profile.cpp.o.d"
  "/root/repo/src/profile/clustering.cpp" "src/profile/CMakeFiles/qfs_profile.dir/clustering.cpp.o" "gcc" "src/profile/CMakeFiles/qfs_profile.dir/clustering.cpp.o.d"
  "/root/repo/src/profile/dot_export.cpp" "src/profile/CMakeFiles/qfs_profile.dir/dot_export.cpp.o" "gcc" "src/profile/CMakeFiles/qfs_profile.dir/dot_export.cpp.o.d"
  "/root/repo/src/profile/interaction.cpp" "src/profile/CMakeFiles/qfs_profile.dir/interaction.cpp.o" "gcc" "src/profile/CMakeFiles/qfs_profile.dir/interaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/qfs_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/qfs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qfs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
