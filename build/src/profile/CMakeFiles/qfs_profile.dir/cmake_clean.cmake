file(REMOVE_RECURSE
  "CMakeFiles/qfs_profile.dir/circuit_profile.cpp.o"
  "CMakeFiles/qfs_profile.dir/circuit_profile.cpp.o.d"
  "CMakeFiles/qfs_profile.dir/clustering.cpp.o"
  "CMakeFiles/qfs_profile.dir/clustering.cpp.o.d"
  "CMakeFiles/qfs_profile.dir/dot_export.cpp.o"
  "CMakeFiles/qfs_profile.dir/dot_export.cpp.o.d"
  "CMakeFiles/qfs_profile.dir/interaction.cpp.o"
  "CMakeFiles/qfs_profile.dir/interaction.cpp.o.d"
  "libqfs_profile.a"
  "libqfs_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qfs_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
