# Empty dependencies file for qfs_qasm.
# This may be replaced when dependencies are built.
