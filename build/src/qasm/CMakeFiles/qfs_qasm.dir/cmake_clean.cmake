file(REMOVE_RECURSE
  "CMakeFiles/qfs_qasm.dir/cqasm_writer.cpp.o"
  "CMakeFiles/qfs_qasm.dir/cqasm_writer.cpp.o.d"
  "CMakeFiles/qfs_qasm.dir/parser.cpp.o"
  "CMakeFiles/qfs_qasm.dir/parser.cpp.o.d"
  "CMakeFiles/qfs_qasm.dir/writer.cpp.o"
  "CMakeFiles/qfs_qasm.dir/writer.cpp.o.d"
  "libqfs_qasm.a"
  "libqfs_qasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qfs_qasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
