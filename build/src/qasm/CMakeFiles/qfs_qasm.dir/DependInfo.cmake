
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qasm/cqasm_writer.cpp" "src/qasm/CMakeFiles/qfs_qasm.dir/cqasm_writer.cpp.o" "gcc" "src/qasm/CMakeFiles/qfs_qasm.dir/cqasm_writer.cpp.o.d"
  "/root/repo/src/qasm/parser.cpp" "src/qasm/CMakeFiles/qfs_qasm.dir/parser.cpp.o" "gcc" "src/qasm/CMakeFiles/qfs_qasm.dir/parser.cpp.o.d"
  "/root/repo/src/qasm/writer.cpp" "src/qasm/CMakeFiles/qfs_qasm.dir/writer.cpp.o" "gcc" "src/qasm/CMakeFiles/qfs_qasm.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/qfs_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/qfs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/qfs_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/qfs_device.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qfs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
