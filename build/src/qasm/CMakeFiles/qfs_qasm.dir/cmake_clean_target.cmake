file(REMOVE_RECURSE
  "libqfs_qasm.a"
)
