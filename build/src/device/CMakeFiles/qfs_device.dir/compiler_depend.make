# Empty compiler generated dependencies file for qfs_device.
# This may be replaced when dependencies are built.
