file(REMOVE_RECURSE
  "libqfs_device.a"
)
