
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/calibration.cpp" "src/device/CMakeFiles/qfs_device.dir/calibration.cpp.o" "gcc" "src/device/CMakeFiles/qfs_device.dir/calibration.cpp.o.d"
  "/root/repo/src/device/device.cpp" "src/device/CMakeFiles/qfs_device.dir/device.cpp.o" "gcc" "src/device/CMakeFiles/qfs_device.dir/device.cpp.o.d"
  "/root/repo/src/device/error_model.cpp" "src/device/CMakeFiles/qfs_device.dir/error_model.cpp.o" "gcc" "src/device/CMakeFiles/qfs_device.dir/error_model.cpp.o.d"
  "/root/repo/src/device/fidelity.cpp" "src/device/CMakeFiles/qfs_device.dir/fidelity.cpp.o" "gcc" "src/device/CMakeFiles/qfs_device.dir/fidelity.cpp.o.d"
  "/root/repo/src/device/gateset.cpp" "src/device/CMakeFiles/qfs_device.dir/gateset.cpp.o" "gcc" "src/device/CMakeFiles/qfs_device.dir/gateset.cpp.o.d"
  "/root/repo/src/device/synthesis.cpp" "src/device/CMakeFiles/qfs_device.dir/synthesis.cpp.o" "gcc" "src/device/CMakeFiles/qfs_device.dir/synthesis.cpp.o.d"
  "/root/repo/src/device/topology.cpp" "src/device/CMakeFiles/qfs_device.dir/topology.cpp.o" "gcc" "src/device/CMakeFiles/qfs_device.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/qfs_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qfs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
