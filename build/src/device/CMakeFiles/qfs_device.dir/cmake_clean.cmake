file(REMOVE_RECURSE
  "CMakeFiles/qfs_device.dir/calibration.cpp.o"
  "CMakeFiles/qfs_device.dir/calibration.cpp.o.d"
  "CMakeFiles/qfs_device.dir/device.cpp.o"
  "CMakeFiles/qfs_device.dir/device.cpp.o.d"
  "CMakeFiles/qfs_device.dir/error_model.cpp.o"
  "CMakeFiles/qfs_device.dir/error_model.cpp.o.d"
  "CMakeFiles/qfs_device.dir/fidelity.cpp.o"
  "CMakeFiles/qfs_device.dir/fidelity.cpp.o.d"
  "CMakeFiles/qfs_device.dir/gateset.cpp.o"
  "CMakeFiles/qfs_device.dir/gateset.cpp.o.d"
  "CMakeFiles/qfs_device.dir/synthesis.cpp.o"
  "CMakeFiles/qfs_device.dir/synthesis.cpp.o.d"
  "CMakeFiles/qfs_device.dir/topology.cpp.o"
  "CMakeFiles/qfs_device.dir/topology.cpp.o.d"
  "libqfs_device.a"
  "libqfs_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qfs_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
