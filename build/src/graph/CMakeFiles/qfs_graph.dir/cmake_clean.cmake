file(REMOVE_RECURSE
  "CMakeFiles/qfs_graph.dir/algorithms.cpp.o"
  "CMakeFiles/qfs_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/qfs_graph.dir/generators.cpp.o"
  "CMakeFiles/qfs_graph.dir/generators.cpp.o.d"
  "CMakeFiles/qfs_graph.dir/graph.cpp.o"
  "CMakeFiles/qfs_graph.dir/graph.cpp.o.d"
  "CMakeFiles/qfs_graph.dir/metrics.cpp.o"
  "CMakeFiles/qfs_graph.dir/metrics.cpp.o.d"
  "libqfs_graph.a"
  "libqfs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qfs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
