# Empty dependencies file for qfs_graph.
# This may be replaced when dependencies are built.
