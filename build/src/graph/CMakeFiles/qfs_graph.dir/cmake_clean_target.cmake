file(REMOVE_RECURSE
  "libqfs_graph.a"
)
