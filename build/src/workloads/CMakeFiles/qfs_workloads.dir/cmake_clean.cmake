file(REMOVE_RECURSE
  "CMakeFiles/qfs_workloads.dir/algorithms.cpp.o"
  "CMakeFiles/qfs_workloads.dir/algorithms.cpp.o.d"
  "CMakeFiles/qfs_workloads.dir/random_circuit.cpp.o"
  "CMakeFiles/qfs_workloads.dir/random_circuit.cpp.o.d"
  "CMakeFiles/qfs_workloads.dir/reversible.cpp.o"
  "CMakeFiles/qfs_workloads.dir/reversible.cpp.o.d"
  "CMakeFiles/qfs_workloads.dir/suite.cpp.o"
  "CMakeFiles/qfs_workloads.dir/suite.cpp.o.d"
  "CMakeFiles/qfs_workloads.dir/suite_io.cpp.o"
  "CMakeFiles/qfs_workloads.dir/suite_io.cpp.o.d"
  "libqfs_workloads.a"
  "libqfs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qfs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
