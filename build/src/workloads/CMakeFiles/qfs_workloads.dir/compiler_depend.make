# Empty compiler generated dependencies file for qfs_workloads.
# This may be replaced when dependencies are built.
