
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/algorithms.cpp" "src/workloads/CMakeFiles/qfs_workloads.dir/algorithms.cpp.o" "gcc" "src/workloads/CMakeFiles/qfs_workloads.dir/algorithms.cpp.o.d"
  "/root/repo/src/workloads/random_circuit.cpp" "src/workloads/CMakeFiles/qfs_workloads.dir/random_circuit.cpp.o" "gcc" "src/workloads/CMakeFiles/qfs_workloads.dir/random_circuit.cpp.o.d"
  "/root/repo/src/workloads/reversible.cpp" "src/workloads/CMakeFiles/qfs_workloads.dir/reversible.cpp.o" "gcc" "src/workloads/CMakeFiles/qfs_workloads.dir/reversible.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/workloads/CMakeFiles/qfs_workloads.dir/suite.cpp.o" "gcc" "src/workloads/CMakeFiles/qfs_workloads.dir/suite.cpp.o.d"
  "/root/repo/src/workloads/suite_io.cpp" "src/workloads/CMakeFiles/qfs_workloads.dir/suite_io.cpp.o" "gcc" "src/workloads/CMakeFiles/qfs_workloads.dir/suite_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/qfs_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/qasm/CMakeFiles/qfs_qasm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/qfs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/qfs_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/qfs_device.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qfs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
