file(REMOVE_RECURSE
  "libqfs_workloads.a"
)
