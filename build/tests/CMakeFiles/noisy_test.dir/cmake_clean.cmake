file(REMOVE_RECURSE
  "CMakeFiles/noisy_test.dir/noisy_test.cpp.o"
  "CMakeFiles/noisy_test.dir/noisy_test.cpp.o.d"
  "noisy_test"
  "noisy_test.pdb"
  "noisy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noisy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
