
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/noisy_test.cpp" "tests/CMakeFiles/noisy_test.dir/noisy_test.cpp.o" "gcc" "tests/CMakeFiles/noisy_test.dir/noisy_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/qfs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/qfs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/qfs_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/qasm/CMakeFiles/qfs_qasm.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/qfs_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/qfs_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/qfs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/qfs_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/mapper/CMakeFiles/qfs_mapper.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/qfs_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/qfs_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
