# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/circuit_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/qasm_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/mapper_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/noisy_test[1]_include.cmake")
include("/root/repo/build/tests/stabilizer_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
