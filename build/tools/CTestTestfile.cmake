# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(qfsc_help "/root/repo/build/tools/qfsc" "--help")
set_tests_properties(qfsc_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(qfsc_compile "/root/repo/build/tools/qfsc" "--device" "surface17" "--placer" "subgraph" "/root/repo/tools/testdata/ghz5.qasm")
set_tests_properties(qfsc_compile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(qfsc_profile "/root/repo/build/tools/qfsc" "--profile" "/root/repo/tools/testdata/ghz5.qasm")
set_tests_properties(qfsc_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(qfsc_emit_timed "/root/repo/build/tools/qfsc" "--device" "line:6" "--emit-timed" "--crosstalk-safe" "/root/repo/tools/testdata/ghz5.qasm")
set_tests_properties(qfsc_emit_timed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(qfsc_rejects_bad_device "/root/repo/build/tools/qfsc" "--device" "warp9" "/root/repo/tools/testdata/ghz5.qasm")
set_tests_properties(qfsc_rejects_bad_device PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(qfsc_rejects_missing_file "/root/repo/build/tools/qfsc" "/nonexistent.qasm")
set_tests_properties(qfsc_rejects_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(qfsc_emit_json "/root/repo/build/tools/qfsc" "--device" "surface17" "--emit-json" "/root/repo/tools/testdata/ghz5.qasm")
set_tests_properties(qfsc_emit_json PROPERTIES  PASS_REGULAR_EXPRESSION "\"gates_after\"" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(qfsc_emit_dot "/root/repo/build/tools/qfsc" "--emit-dot" "/root/repo/tools/testdata/ghz5.qasm")
set_tests_properties(qfsc_emit_dot PROPERTIES  PASS_REGULAR_EXPRESSION "graph interaction" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(qfsc_emit_cqasm "/root/repo/build/tools/qfsc" "--device" "line:6" "--emit-cqasm" "/root/repo/tools/testdata/ghz5.qasm")
set_tests_properties(qfsc_emit_cqasm PROPERTIES  PASS_REGULAR_EXPRESSION "version 1.0" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;30;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(qfsc_bridge_router "/root/repo/build/tools/qfsc" "--device" "surface17" "--router" "bridge" "--sabre" "1" "/root/repo/tools/testdata/ghz5.qasm")
set_tests_properties(qfsc_bridge_router PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;35;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(qfsc_recommend "/root/repo/build/tools/qfsc" "--recommend" "/root/repo/tools/testdata/ghz5.qasm")
set_tests_properties(qfsc_recommend PROPERTIES  PASS_REGULAR_EXPRESSION "recommendation: placer=subgraph" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;38;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(qfsc_draw "/root/repo/build/tools/qfsc" "--draw" "/root/repo/tools/testdata/ghz5.qasm")
set_tests_properties(qfsc_draw PROPERTIES  PASS_REGULAR_EXPRESSION "q0: " _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;42;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(qfsc_optimal_router "/root/repo/build/tools/qfsc" "--device" "line:6" "--router" "optimal" "/root/repo/tools/testdata/ghz5.qasm")
set_tests_properties(qfsc_optimal_router PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;46;add_test;/root/repo/tools/CMakeLists.txt;0;")
