file(REMOVE_RECURSE
  "CMakeFiles/qfsc.dir/qfsc.cpp.o"
  "CMakeFiles/qfsc.dir/qfsc.cpp.o.d"
  "qfsc"
  "qfsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qfsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
