# Empty compiler generated dependencies file for qfsc.
# This may be replaced when dependencies are built.
