# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;10;qfs_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_qaoa_compile "/root/repo/build/examples/qaoa_compile")
set_tests_properties(example_qaoa_compile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;11;qfs_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_profile_and_cluster "/root/repo/build/examples/profile_and_cluster")
set_tests_properties(example_profile_and_cluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;12;qfs_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_noise_aware_routing "/root/repo/build/examples/noise_aware_routing")
set_tests_properties(example_noise_aware_routing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;13;qfs_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_full_stack_lowering "/root/repo/build/examples/full_stack_lowering")
set_tests_properties(example_full_stack_lowering PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;14;qfs_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_suite_benchmarking "/root/repo/build/examples/suite_benchmarking")
set_tests_properties(example_suite_benchmarking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;15;qfs_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_error_detection "/root/repo/build/examples/error_detection")
set_tests_properties(example_error_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;16;qfs_add_example;/root/repo/examples/CMakeLists.txt;0;")
