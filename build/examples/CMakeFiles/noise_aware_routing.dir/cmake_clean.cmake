file(REMOVE_RECURSE
  "CMakeFiles/noise_aware_routing.dir/noise_aware_routing.cpp.o"
  "CMakeFiles/noise_aware_routing.dir/noise_aware_routing.cpp.o.d"
  "noise_aware_routing"
  "noise_aware_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_aware_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
