# Empty dependencies file for noise_aware_routing.
# This may be replaced when dependencies are built.
