# Empty dependencies file for suite_benchmarking.
# This may be replaced when dependencies are built.
