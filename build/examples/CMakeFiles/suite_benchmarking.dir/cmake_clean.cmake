file(REMOVE_RECURSE
  "CMakeFiles/suite_benchmarking.dir/suite_benchmarking.cpp.o"
  "CMakeFiles/suite_benchmarking.dir/suite_benchmarking.cpp.o.d"
  "suite_benchmarking"
  "suite_benchmarking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_benchmarking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
