# Empty compiler generated dependencies file for full_stack_lowering.
# This may be replaced when dependencies are built.
