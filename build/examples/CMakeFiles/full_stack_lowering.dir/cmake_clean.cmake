file(REMOVE_RECURSE
  "CMakeFiles/full_stack_lowering.dir/full_stack_lowering.cpp.o"
  "CMakeFiles/full_stack_lowering.dir/full_stack_lowering.cpp.o.d"
  "full_stack_lowering"
  "full_stack_lowering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_stack_lowering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
