file(REMOVE_RECURSE
  "CMakeFiles/profile_and_cluster.dir/profile_and_cluster.cpp.o"
  "CMakeFiles/profile_and_cluster.dir/profile_and_cluster.cpp.o.d"
  "profile_and_cluster"
  "profile_and_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_and_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
