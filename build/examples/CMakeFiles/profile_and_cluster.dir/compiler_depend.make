# Empty compiler generated dependencies file for profile_and_cluster.
# This may be replaced when dependencies are built.
