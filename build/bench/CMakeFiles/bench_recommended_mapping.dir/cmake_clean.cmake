file(REMOVE_RECURSE
  "CMakeFiles/bench_recommended_mapping.dir/bench_recommended_mapping.cpp.o"
  "CMakeFiles/bench_recommended_mapping.dir/bench_recommended_mapping.cpp.o.d"
  "bench_recommended_mapping"
  "bench_recommended_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recommended_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
