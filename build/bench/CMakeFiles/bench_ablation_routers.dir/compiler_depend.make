# Empty compiler generated dependencies file for bench_ablation_routers.
# This may be replaced when dependencies are built.
