file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_routers.dir/bench_ablation_routers.cpp.o"
  "CMakeFiles/bench_ablation_routers.dir/bench_ablation_routers.cpp.o.d"
  "bench_ablation_routers"
  "bench_ablation_routers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_routers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
