# Empty compiler generated dependencies file for bench_application_quality.
# This may be replaced when dependencies are built.
