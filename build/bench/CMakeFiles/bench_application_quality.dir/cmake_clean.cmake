file(REMOVE_RECURSE
  "CMakeFiles/bench_application_quality.dir/bench_application_quality.cpp.o"
  "CMakeFiles/bench_application_quality.dir/bench_application_quality.cpp.o.d"
  "bench_application_quality"
  "bench_application_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_application_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
