# Empty compiler generated dependencies file for bench_codesign_accelerator.
# This may be replaced when dependencies are built.
