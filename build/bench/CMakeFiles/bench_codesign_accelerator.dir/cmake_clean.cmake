file(REMOVE_RECURSE
  "CMakeFiles/bench_codesign_accelerator.dir/bench_codesign_accelerator.cpp.o"
  "CMakeFiles/bench_codesign_accelerator.dir/bench_codesign_accelerator.cpp.o.d"
  "bench_codesign_accelerator"
  "bench_codesign_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codesign_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
