# Empty dependencies file for bench_ablation_topologies.
# This may be replaced when dependencies are built.
