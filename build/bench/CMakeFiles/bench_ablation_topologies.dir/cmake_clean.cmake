file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_topologies.dir/bench_ablation_topologies.cpp.o"
  "CMakeFiles/bench_ablation_topologies.dir/bench_ablation_topologies.cpp.o.d"
  "bench_ablation_topologies"
  "bench_ablation_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
