file(REMOVE_RECURSE
  "CMakeFiles/bench_fidelity_validation.dir/bench_fidelity_validation.cpp.o"
  "CMakeFiles/bench_fidelity_validation.dir/bench_fidelity_validation.cpp.o.d"
  "bench_fidelity_validation"
  "bench_fidelity_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fidelity_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
