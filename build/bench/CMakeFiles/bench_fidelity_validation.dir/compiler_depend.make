# Empty compiler generated dependencies file for bench_fidelity_validation.
# This may be replaced when dependencies are built.
