# Empty dependencies file for bench_fig4_interaction_graphs.
# This may be replaced when dependencies are built.
