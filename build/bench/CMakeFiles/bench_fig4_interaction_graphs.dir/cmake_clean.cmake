file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_interaction_graphs.dir/bench_fig4_interaction_graphs.cpp.o"
  "CMakeFiles/bench_fig4_interaction_graphs.dir/bench_fig4_interaction_graphs.cpp.o.d"
  "bench_fig4_interaction_graphs"
  "bench_fig4_interaction_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_interaction_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
