# Empty dependencies file for bench_fig3_mapping_impact.
# This may be replaced when dependencies are built.
