file(REMOVE_RECURSE
  "CMakeFiles/bench_pearson_reduction.dir/bench_pearson_reduction.cpp.o"
  "CMakeFiles/bench_pearson_reduction.dir/bench_pearson_reduction.cpp.o.d"
  "bench_pearson_reduction"
  "bench_pearson_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pearson_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
