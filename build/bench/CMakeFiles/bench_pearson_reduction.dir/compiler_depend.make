# Empty compiler generated dependencies file for bench_pearson_reduction.
# This may be replaced when dependencies are built.
