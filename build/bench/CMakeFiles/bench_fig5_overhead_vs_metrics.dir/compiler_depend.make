# Empty compiler generated dependencies file for bench_fig5_overhead_vs_metrics.
# This may be replaced when dependencies are built.
